"""Shared fixtures for the benchmark harness.

Datasets and trained models are module-scoped and deliberately smaller than
the real Wikipedia/Reddit/GDELT streams so the full harness completes in
minutes; every bench prints the paper's published values next to ours, and
EXPERIMENTS.md records the comparison.
"""

import numpy as np
import pytest

from repro.datasets import gdelt_like, reddit_like, wikipedia_like
from repro.models import ModelConfig, TGNN


def pytest_addoption(parser):
    parser.addoption(
        "--smoke", action="store_true", default=False,
        help="shrink bench workloads to a seconds-scale smoke run "
             "(exercised by the tier-1 test suite)")


def pytest_configure(config):
    # Benches print their tables; keep them visible in the bench log.
    config.option.verbose = max(config.option.verbose, 0)
    config.addinivalue_line(
        "markers", "smoke: bench supports the --smoke reduced workload")
    # Registered here as well as in the repo-root conftest so a bench file
    # can be run from inside benchmarks/ (different rootdir) without
    # tripping --strict-markers; the root conftest owns the deselection.
    config.addinivalue_line(
        "markers",
        "tier2: slow statistical test, excluded from tier-1; run with "
        "`pytest -m tier2`")


@pytest.fixture(scope="session")
def smoke(request):
    """True when the harness runs with ``--smoke`` (reduced workloads)."""
    return request.config.getoption("--smoke")


@pytest.fixture(scope="session")
def wiki():
    """Wikipedia analogue at bench scale."""
    return wikipedia_like(num_edges=4000, num_users=400, num_items=60)


@pytest.fixture(scope="session")
def reddit():
    return reddit_like(num_edges=4000, num_users=400, num_items=50)


@pytest.fixture(scope="session")
def gdelt():
    return gdelt_like(num_edges=4000, num_users=300, num_items=300)


@pytest.fixture(scope="session")
def datasets(wiki, reddit, gdelt):
    return {"wikipedia": wiki, "reddit": reddit, "gdelt": gdelt}


def np_model(graph, budget, seed=0, **overrides) -> TGNN:
    """Calibrated co-designed model NP(budget) at paper dims."""
    cfg = ModelConfig(simplified_attention=True, lut_time_encoder=True,
                      pruning_budget=budget,
                      edge_dim=graph.edge_dim, node_dim=graph.node_dim,
                      name=f"NP({budget})", **overrides)
    model = TGNN(cfg, rng=np.random.default_rng(seed))
    model.calibrate(graph)
    model.prepare_inference()
    return model


@pytest.fixture(scope="session")
def wiki_np_models(wiki):
    """NP(L/M/S) models on the Wikipedia analogue (paper dims)."""
    return {name: np_model(wiki, budget)
            for name, budget in (("NP(L)", 6), ("NP(M)", 4), ("NP(S)", 2))}
