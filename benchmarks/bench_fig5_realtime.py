"""Figure 5 (right column): real-time inference latency in 15-minute windows.

Paper artifact: replay the test stream in 15-minute batches and plot the
latency of each batch over stream time, for GPU, U200, and ZCU104.

Reproduction targets (shape): U200 well below GPU; ZCU104 in the GPU's
neighbourhood but with larger fluctuation (resource-constrained); NP(S)
under 10 ms per window on U200.
"""

import numpy as np
import pytest

from repro.hw import FPGAAccelerator, U200_DESIGN, ZCU104_DESIGN
from repro.models import ModelConfig
from repro.perf import GPU
from repro.pipeline import (FIFTEEN_MINUTES, ModeledGPPBackend,
                            SimulatedFPGABackend, realtime_replay, summarize)
from repro.profiling import count_ops
from repro.reporting import render_table, save_result


@pytest.mark.parametrize("dataset", ["wikipedia", "reddit", "gdelt"])
def test_fig5_realtime_windows(benchmark, capsys, datasets, dataset):
    graph = datasets[dataset]
    from conftest import np_model
    model = np_model(graph, 2)        # NP(S), the paper's real-time pick
    start = int(graph.num_edges * 0.85)

    backends = {
        "u200": SimulatedFPGABackend(FPGAAccelerator(model, U200_DESIGN),
                                     graph),
        "gpu": ModeledGPPBackend(
            GPU, count_ops(ModelConfig(edge_dim=graph.edge_dim,
                                       node_dim=graph.node_dim)),
            model, graph, functional=False),
    }
    if dataset == "wikipedia":      # ZCU104 runs Wikipedia only (paper)
        backends["zcu104"] = SimulatedFPGABackend(
            FPGAAccelerator(model, ZCU104_DESIGN), graph)

    results = {}
    for name, be in backends.items():
        pts = realtime_replay(be, graph, window_s=FIFTEEN_MINUTES,
                              start=start)
        results[name] = pts

    rows = []
    for name, pts in results.items():
        s = summarize(pts)
        rows.append({"backend": name, "windows": int(s["windows"]),
                     "mean_edges": s["mean_edges"],
                     "mean_ms": s["mean_s"] * 1e3,
                     "p95_ms": s["p95_s"] * 1e3,
                     "max_ms": s["max_s"] * 1e3,
                     "cv": float(np.std([p.latency_s for p in pts])
                                 / max(np.mean([p.latency_s for p in pts]),
                                       1e-12))})
    table = render_table(rows, precision=3,
                         title=f"Figure 5 — 15-minute real-time replay "
                               f"({dataset}), NP(S)")
    sample = [{"t_hours": p.t_start_s / 3600.0, "edges": p.n_edges,
               "u200_ms": p.latency_s * 1e3}
              for p in results["u200"][:12]]
    table += "\n" + render_table(sample, precision=3,
                                 title="U200 latency trace (first windows)")
    with capsys.disabled():
        print(table)
    save_result(f"fig5_realtime_{dataset}", table)

    # --- shape assertions ---------------------------------------------------
    mean = {r["backend"]: r["mean_ms"] for r in rows}
    assert mean["u200"] < mean["gpu"]                      # U200 wins
    assert mean["u200"] < 10.0                             # NP(S) < 10 ms
    if "zcu104" in mean:
        cv = {r["backend"]: r["cv"] for r in rows}
        assert mean["zcu104"] < 8 * mean["gpu"]            # GPU-class
        assert cv["zcu104"] >= cv["gpu"] * 0.5             # fluctuates more

    benchmark.pedantic(
        lambda: realtime_replay(backends["u200"], graph,
                                window_s=FIFTEEN_MINUTES, start=start,
                                end=min(start + 400, graph.num_edges)),
        rounds=3, iterations=1, warmup_rounds=1)
