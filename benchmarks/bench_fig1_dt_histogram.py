"""Figure 1 reproduction: frequency distribution of time-encoder inputs Δt.

Paper artifact: histograms of Δt on Wikipedia and Reddit showing a power-law
shape with most mass near zero — the motivation for equal-frequency LUT
binning (§III-C).  We print the equal-width histogram (the figure) and the
equal-frequency bin edges the LUT encoder derives from it.
"""

import numpy as np
import pytest

from repro.datasets import (delta_t_histogram, encoder_input_deltas,
                            equal_frequency_edges, tail_heaviness)
from repro.reporting import render_table, save_result


@pytest.mark.parametrize("dataset", ["wikipedia", "reddit"])
def test_fig1_dt_distribution(benchmark, capsys, datasets, dataset):
    graph = datasets[dataset]
    deltas = benchmark(encoder_input_deltas, graph)

    edges, counts = delta_t_histogram(deltas, n_bins=25)
    total = counts.sum()
    rows = [{"dt_days": f"[{edges[i]:.1f},{edges[i+1]:.1f})",
             "count": int(counts[i]),
             "frac_pct": 100.0 * counts[i] / total}
            for i in range(len(counts)) if counts[i] > 0][:15]
    table = render_table(rows, precision=2,
                         title=f"Figure 1 — Δt histogram ({dataset})")

    ef = equal_frequency_edges(deltas, n_bins=8) / 3600.0
    lut_rows = [{"bin": i, "lo_h": ef[i],
                 "hi_h": (ef[i + 1] if np.isfinite(ef[i + 1]) else -1.0)}
                for i in range(8)]
    table += "\n" + render_table(
        lut_rows, precision=3,
        title=f"Equal-frequency LUT bin edges, hours ({dataset})")
    heaviness = tail_heaviness(deltas)
    table += f"\nmedian/mean Δt ratio: {heaviness:.3f} " \
             f"(exponential ≈ 0.69; lower = heavier tail, paper shape)"
    with capsys.disabled():
        print(table)
    save_result(f"fig1_{dataset}", table)

    # Shape assertions: power-law concentration near zero.
    assert counts[0] == counts.max()
    assert counts[0] > 0.3 * total
    assert heaviness < 0.69
