"""Figure 6 reproduction: performance-model predictions vs simulated actuals.

Paper artifact: predicted and actual latency/throughput over batch sizes for
the NP(M) model on Wikipedia, on both FPGAs; reported average prediction
error 9.9-12.8 %, attributed to HLS pipeline flush cycles and DRAM refresh.

Our analytical model omits exactly those effects (they live only in the
cycle simulator), so the error structure reproduces; the refined fill term
(see ``repro.perf.performance_model``) makes our average error somewhat
tighter than the paper's.
"""

import numpy as np
import pytest

from repro.hw import U200_DESIGN, ZCU104_DESIGN
from repro.perf import validate_performance_model
from repro.profiling.paper_reference import HEADLINE
from repro.reporting import render_table, save_result

BATCHES = [100, 200, 500, 1000, 2000, 4000]


def test_fig6_predicted_vs_actual(benchmark, capsys, wiki, wiki_np_models):
    model = wiki_np_models["NP(M)"]
    all_rows = []
    errors = {}
    for board, hw in (("u200", U200_DESIGN), ("zcu104", ZCU104_DESIGN)):
        pts = benchmark.pedantic(
            validate_performance_model, args=(model, hw, wiki, BATCHES),
            rounds=1, iterations=1) if board == "u200" else \
            validate_performance_model(model, hw, wiki, BATCHES)
        for p in pts:
            all_rows.append({
                "board": board, "batch": p.batch_size,
                "pred_lat_ms": p.predicted_latency_s * 1e3,
                "actual_lat_ms": p.actual_latency_s * 1e3,
                "lat_err_pct": p.latency_error * 100,
                "pred_kEs": p.predicted_throughput_eps / 1e3,
                "actual_kEs": p.actual_throughput_eps / 1e3,
                "thpt_err_pct": p.throughput_error * 100,
            })
        errors[board] = (float(np.mean([p.latency_error for p in pts])),
                         float(np.mean([p.throughput_error for p in pts])))

    table = render_table(all_rows, precision=2,
                         title="Figure 6 — performance model vs simulator "
                               "(NP(M), Wikipedia)")
    lo, hi = HEADLINE["perf_model_error_range"]
    table += (f"\nmean latency/throughput error: "
              f"u200 {errors['u200'][0] * 100:.1f}%/"
              f"{errors['u200'][1] * 100:.1f}%, "
              f"zcu104 {errors['zcu104'][0] * 100:.1f}%/"
              f"{errors['zcu104'][1] * 100:.1f}% "
              f"(paper: {lo * 100:.1f}-{hi * 100:.1f}%)")
    with capsys.disabled():
        print(table)
    save_result("fig6_perf_model", table)

    # Shape assertions: error in the paper's order of magnitude, and the
    # model under-predicts latency only where it should (small batches pay
    # the fill/flush the model idealises away).
    for board in ("u200", "zcu104"):
        assert errors[board][0] < hi + 0.05
        assert errors[board][1] < hi + 0.05
    large = [r for r in all_rows if r["batch"] >= 1000]
    assert all(r["lat_err_pct"] < 12.0 for r in large)
