"""Extension experiment: serving scale — shards x streams x load x policy.

The paper serves one stream on one idle device; the ROADMAP north star is
heavy multi-tenant traffic.  This bench sweeps the serving engine
(`repro.serving`) over shard counts, concurrent streams, and stream-time
compression, and reports the numbers an operator sizes a fleet with:
per-shard utilization, end-to-end window response percentiles, cross-shard
replication overhead, and stability.

Shape expectations: per-shard busy time falls as shards grow (state is
partitioned, at the price of cross-shard edge replication); more streams
multiply load and response percentiles never improve; the engine with one
shard reproduces the single-server `replay_under_load` numbers exactly.

`test_placement_topology_matrix` sweeps the placement policies
(``hash`` / ``rebalance`` / ``replicate``) against both queue topologies
(partitioned ``sharded`` vs shared-queue ``pool``) and reports the p95/p99
crossover: with overhead-dominated small windows the pool avoids paying the
per-batch overhead once per shard per window and wins the tail; with
marginal-cost-dominated big windows the sharded fork-join parallelism wins.

`test_ingest_topology_matrix` is the unified-event-core three-way table
(ISSUE 4): topology {sharded, pool, hybrid} x ingest {serial, pipelined}.
Pipelined (double-buffered) ingest strictly lowers p95 on the
batching-delay-dominated workload, and the hybrid hot/cold topology beats
both pure topologies on the skewed head/tail workload.

`test_online_rebalance_drift` is the online-rebalancing acceptance table
(ISSUE 5): on a drifting-hot-set workload (the hot set rotates between
shards mid-stream) mid-run `MigrationEvent` rebalancing strictly beats
both the static hash partition and the two-pass `LoadAwareRebalance` on
p95, with the state handoff priced (nonzero `handoff_rows` reported and
die-crossing hops charged through `mail_hop_s`).

Run standalone (``pytest benchmarks/bench_serving_scale.py``) or with
``--smoke`` for a seconds-scale reduced sweep — the tier-1 suite invokes
the smoke path (under a wall-clock budget that guards the event loop's
per-event overhead) to keep this harness from rotting.
"""

import numpy as np
import pytest

from repro.datasets import drifting_hot_set_graph, wikipedia_like
from repro.graph import TemporalGraph
from repro.models import ModelConfig, TGNN
from repro.perf import CPU_32T
from repro.pipeline import (LinearCostBackend, ModeledGPPBackend,
                            replay_under_load)
from repro.profiling import count_ops
from repro.reporting import render_table, save_json, save_result
from repro.serving import (MEMSYNC_POLICIES, AutoScaler, CapacityConfig,
                           DynamicBatcher, FailurePlan,
                           HeapEventScheduler, HotColdHybrid,
                           OnlineRebalancer, Placement, ServingEngine,
                           StaticHashPlacement, VertexHeat, hash_assignment,
                           make_policy, make_stream_arrivals)

pytestmark = pytest.mark.smoke


def run_sweep(graph, model, shards_list, streams_list, speedups,
              backend="zcu104", window_s=900.0, start=0,
              deadline_s=0.0, batch_edges=None):
    """Sweep the engine and return (rows, reports-by-key)."""
    rows, reports = [], {}
    for n_shards in shards_list:
        for n_streams in streams_list:
            for speedup in speedups:
                engine = ServingEngine.from_registry(
                    backend, model, graph, num_shards=n_shards,
                    backend_kwargs={"functional": False}
                    if backend in ("cpu-32t", "gpu") else None,
                    batcher=DynamicBatcher(max_edges=batch_edges,
                                           max_delay_s=deadline_s))
                rep = engine.run(graph, window_s=window_s, start=start,
                                 speedup=speedup, num_streams=n_streams)
                reports[(n_shards, n_streams, speedup)] = rep
                util = [s.utilization for s in rep.shard_stats]
                busy = [s.busy_s for s in rep.shard_stats]
                rows.append({
                    "shards": n_shards, "streams": n_streams,
                    "load_x": speedup,
                    "windows": rep.windows,
                    "max_util_pct": 100 * max(util),
                    "max_busy_s": max(busy),
                    "p95_ms": rep.p95_response_s * 1e3,
                    "p99_ms": rep.p99_response_s * 1e3,
                    "xshard_pct": 100 * rep.cross_shard_edges
                    / max(rep.ingested_edges, 1),
                    "stable": rep.stable,
                })
    return rows, reports


def test_serving_scale(request, capsys, smoke):
    if smoke:
        graph = wikipedia_like(num_edges=800, num_users=100, num_items=20)
        cfg = ModelConfig(memory_dim=8, time_dim=6, embed_dim=8,
                          edge_dim=graph.edge_dim, num_neighbors=4,
                          simplified_attention=True, lut_time_encoder=True,
                          lut_bins=8, pruning_budget=2)
        model = TGNN(cfg, rng=np.random.default_rng(0))
        model.calibrate(graph)
        model.prepare_inference()
        shards_list, streams_list, speedups = [1, 2], [1, 2], [2.0]
        window_s, start = 3600.0, 200
    else:
        graph = request.getfixturevalue("wiki")
        model = request.getfixturevalue("wiki_np_models")["NP(M)"]
        shards_list, streams_list = [1, 2, 4, 8], [1, 2, 4]
        speedups = [1.0, 2.0, 30.0]
        window_s, start = 900.0, int(graph.num_edges * 0.5)

    backend = "cpu-32t"   # modeled timing: deterministic and fast
    rows, reports = run_sweep(graph, model, shards_list, streams_list,
                              speedups, backend=backend, window_s=window_s,
                              start=start)
    table = render_table(
        rows, precision=3,
        title=f"Serving scale — shards x streams x load ({backend}, "
              f"{'smoke' if smoke else 'full'})")

    # Single-shard engine == single-server queueing replay (bit-exact).
    base_key = (1, 1, speedups[0])
    ref_backend = ModeledGPPBackend(CPU_32T, count_ops(model.cfg), model,
                                    graph, functional=False)
    qs = replay_under_load(ref_backend, graph, window_s=window_s,
                           start=start, speedup=speedups[0])
    rep1 = reports[base_key]
    assert rep1.shard_stats[0].utilization == pytest.approx(qs.utilization)
    assert rep1.p95_response_s == pytest.approx(qs.p95_response_s)
    table += (f"\n1-shard check: engine p95 "
              f"{rep1.p95_response_s * 1e3:.3f} ms == replay_under_load "
              f"{qs.p95_response_s * 1e3:.3f} ms")

    # Scaling shape: sharding splits work, streams multiply it.
    hot = speedups[-1]
    for n_streams in streams_list:
        busy_1 = max(s.busy_s for s in
                     reports[(shards_list[0], n_streams, hot)].shard_stats)
        busy_n = max(s.busy_s for s in
                     reports[(shards_list[-1], n_streams, hot)].shard_stats)
        assert busy_n < busy_1          # per-shard work strictly falls
    for n_shards in shards_list:
        w1 = reports[(n_shards, streams_list[0], hot)].windows
        wn = reports[(n_shards, streams_list[-1], hot)].windows
        assert wn == w1 * streams_list[-1] // streams_list[0]

    with capsys.disabled():
        print(table)
    save_result("serving_scale", table)


# --------------------------------------------------------------------------- #
# Fixed overhead + linear per-edge cost: isolates queueing/placement effects
# from cost-model noise so the policy comparison is exact.
DeterministicBackend = LinearCostBackend


def test_placement_topology_matrix(capsys, smoke):
    """Sweep placement {hash,rebalance,replicate} x topology {sharded,pool}.

    Acceptance (ISSUE 2): rebalance reduces max per-shard utilization vs
    hash on a skewed workload, and the pool beats sharded p99 at low load
    (overhead-dominated regime) while sharded wins the marginal-dominated
    regime — the crossover the table reports.
    """
    if smoke:
        graph = wikipedia_like(num_edges=800, num_users=24, num_items=12)
        shards = 4
        overhead_load = dict(speedup=3e3, num_streams=4)
    else:
        graph = wikipedia_like(num_edges=4000, num_users=48, num_items=24)
        shards = 8
        # A bigger fleet needs more tenants before per-window overheads
        # collide on the shards; the pool's pooled capacity absorbs them.
        overhead_load = dict(speedup=6e3, num_streams=8)
    heat = VertexHeat.from_graph(graph)
    rows = []

    # --- placement sweep (sharded, marginal-cost-dominated service) ------- #
    def run_sharded(placement, per_edge_s=5e-3, overhead_s=0.0,
                    window_s=86400.0, speedup=5e4):
        engine = ServingEngine(
            [DeterministicBackend(per_edge_s, overhead_s)
             for _ in range(shards)],
            graph.num_nodes, placement=placement)
        return engine.run(graph, window_s=window_s, speedup=speedup,
                          num_streams=4)

    base = StaticHashPlacement().place(heat, shards)
    rep_hash = run_sharded(base)
    util_hash = max(s.utilization for s in rep_hash.shard_stats)

    rebalance = make_policy("rebalance",
                            util_threshold=0.9 * util_hash)
    rep_rebal = run_sharded(rebalance.place(heat, shards,
                                            profile=rep_hash.shard_stats))
    util_rebal = max(s.utilization for s in rep_rebal.shard_stats)

    rep_repl = run_sharded(make_policy("replicate", top_k=4).place(heat,
                                                                   shards))

    for name, rep in (("hash", rep_hash), ("rebalance", rep_rebal),
                      ("replicate", rep_repl)):
        rows.append({
            "placement": name, "topology": "sharded",
            "regime": "per-edge",
            "max_util_pct": 100 * max(s.utilization
                                      for s in rep.shard_stats),
            "p95_ms": rep.p95_response_s * 1e3,
            "p99_ms": rep.p99_response_s * 1e3,
            "repl_x": rep.replication_factor,
            "stable": rep.stable,
        })

    # --- topology crossover (hash placement held fixed) ------------------- #
    # Low load / tiny windows: the per-batch overhead dominates, and the
    # sharded fork-join pays it once per shard per window.
    regimes = {
        "overhead": dict(per_edge_s=2e-3, overhead_s=0.05,
                         window_s=3600.0, **overhead_load),
        "per-edge": dict(per_edge_s=5e-3, overhead_s=0.0,
                         window_s=86400.0 * 5, speedup=1e4, num_streams=4),
    }
    crossover = {}
    for regime, kw in regimes.items():
        run_kw = dict(window_s=kw["window_s"], speedup=kw["speedup"],
                      num_streams=kw["num_streams"])
        rs = ServingEngine(
            [DeterministicBackend(kw["per_edge_s"], kw["overhead_s"])
             for _ in range(shards)],
            graph.num_nodes, placement=base).run(graph, **run_kw)
        rp = ServingEngine(
            [DeterministicBackend(kw["per_edge_s"], kw["overhead_s"])],
            graph.num_nodes, topology="pool",
            pool_servers=shards).run(graph, **run_kw)
        crossover[regime] = (rs, rp)
        for topo, rep in (("sharded", rs), ("pool", rp)):
            rows.append({
                "placement": "hash" if topo == "sharded" else "-",
                "topology": topo, "regime": regime,
                "max_util_pct": 100 * max(s.utilization
                                          for s in rep.shard_stats),
                "p95_ms": rep.p95_response_s * 1e3,
                "p99_ms": rep.p99_response_s * 1e3,
                "repl_x": rep.replication_factor,
                "stable": rep.stable,
            })

    table = render_table(
        rows, precision=3,
        title=f"Placement x topology — {shards} shards/replicas "
              f"({'smoke' if smoke else 'full'})")

    # Acceptance: load-aware rebalancing flattens the hot shard.
    assert util_rebal < util_hash
    # Acceptance: the shared queue wins the tail when overhead dominates...
    rs, rp = crossover["overhead"]
    assert rs.stable and rp.stable
    assert rp.p99_response_s < rs.p99_response_s
    # ...and loses it when per-edge work dominates (fork-join parallelism).
    rs, rp = crossover["per-edge"]
    assert rs.p99_response_s < rp.p99_response_s
    # Replication factors are comparable by one definition: pool == 1,
    # replicate pays one count per extra copy.
    assert crossover["overhead"][1].replication_factor == \
        pytest.approx(1.0)
    assert rep_repl.replication_factor > rep_hash.replication_factor

    table += (f"\ncrossover: pool p99 "
              f"{crossover['overhead'][1].p99_response_s * 1e3:.1f} ms < "
              f"sharded {crossover['overhead'][0].p99_response_s * 1e3:.1f}"
              f" ms (overhead regime); sharded "
              f"{crossover['per-edge'][0].p99_response_s * 1e3:.1f} ms < "
              f"pool {crossover['per-edge'][1].p99_response_s * 1e3:.1f} ms"
              f" (per-edge regime)")
    with capsys.disabled():
        print(table)
    save_result("placement_topology", table)


# --------------------------------------------------------------------------- #
def test_memsync_staleness_overhead(capsys, smoke):
    """Sweep the cross-shard memory sync policies (ISSUE 3).

    ``none`` tolerates stale vertex-memory reads for free; ``invalidate``
    buys exact reads with read-blocking pull round-trips; ``push`` buys
    them with eager row forwarding alongside the edge mail.  The table
    shows the trade an operator prices: ``sync_rows`` overhead (and its
    latency once cross-die hops cost time) vs ``stale_reads`` /
    ``max_version_lag`` tolerated.
    """
    if smoke:
        graph = wikipedia_like(num_edges=800, num_users=100, num_items=20)
        shards, streams = 4, 2
    else:
        graph = wikipedia_like(num_edges=4000, num_users=400, num_items=60)
        shards, streams = 8, 4
    # Alternate shards over two dies so pulled rows pay a round-trip and
    # pushed rows a hop, exactly like cross-die edge mail.
    die_of = [s % 2 for s in range(shards)]
    rows, reps = [], {}
    for policy in MEMSYNC_POLICIES:
        engine = ServingEngine(
            [LinearCostBackend(per_edge_s=1e-3) for _ in range(shards)],
            graph.num_nodes, die_of=die_of, mail_hop_s=2e-4,
            memsync=policy)
        rep = engine.run(graph, window_s=3600.0, speedup=2.0,
                         num_streams=streams)
        reps[policy] = rep
        rows.append({
            "memsync": policy,
            "sync_rows": rep.sync_edges,
            "stale_reads": rep.stale_reads,
            "max_lag": rep.max_version_lag,
            "xshard_edges": rep.cross_shard_edges,
            "busy_s": sum(s.busy_s for s in rep.shard_stats),
            "p95_ms": rep.p95_response_s * 1e3,
            "p99_ms": rep.p99_response_s * 1e3,
            "stable": rep.stable,
        })
    table = render_table(
        rows, precision=3,
        title=f"Memory sync — staleness vs overhead ({shards} shards, "
              f"{streams} streams, {'smoke' if smoke else 'full'})")

    none, inval, push = (reps[p] for p in MEMSYNC_POLICIES)
    # The baseline tolerates measurable staleness and moves no rows...
    assert none.sync_edges == 0
    assert none.stale_reads > 0 and none.max_version_lag > 0
    # ...the sync policies tolerate none and pay for it in row traffic.
    for rep in (inval, push):
        assert rep.stale_reads == 0 and rep.max_version_lag == 0
        assert rep.sync_edges > 0
    assert push.sync_edges >= inval.sync_edges
    # Sync traffic is priced: exactness costs latency, never saves it.
    assert none.p99_response_s <= inval.p99_response_s
    assert none.p99_response_s <= push.p99_response_s

    table += (f"\nexactness bill: push moves {push.sync_edges} rows, "
              f"invalidate {inval.sync_edges}; none tolerates "
              f"{none.stale_reads} stale reads (max version lag "
              f"{none.max_version_lag})")
    with capsys.disabled():
        print(table)
    save_result("memsync_policies", table)


# --------------------------------------------------------------------------- #
def skewed_head_tail_graph(n_edges, n_hot=4, n_cold=400, hot_frac=0.6,
                           seed=7):
    """Hot head + long cold tail: ``n_hot`` vertices carry ``hot_frac`` of
    the edges among themselves, 15% bridge head->tail, and the rest trickle
    across ``n_cold`` cold vertices — the traffic shape where the pure
    topologies each lose one regime and the hybrid placement keeps both."""
    rng = np.random.default_rng(seed)
    kind = rng.random(n_edges)
    src = np.empty(n_edges, dtype=np.int64)
    dst = np.empty(n_edges, dtype=np.int64)
    hh = kind < hot_frac
    hc = (kind >= hot_frac) & (kind < hot_frac + 0.15)
    cc = ~hh & ~hc
    src[hh] = rng.integers(0, n_hot, hh.sum())
    dst[hh] = rng.integers(0, n_hot, hh.sum())
    src[hc] = rng.integers(0, n_hot, hc.sum())
    dst[hc] = rng.integers(n_hot, n_hot + n_cold, hc.sum())
    src[cc] = rng.integers(n_hot, n_hot + n_cold, cc.sum())
    dst[cc] = rng.integers(n_hot, n_hot + n_cold, cc.sum())
    same = dst == src
    dst[same] = (dst[same] + 1) % (n_hot + n_cold)
    t = np.sort(rng.uniform(0, 1e4, n_edges))
    return TemporalGraph(src=src, dst=dst, t=t, num_nodes=n_hot + n_cold)


def test_ingest_topology_matrix(capsys, smoke):
    """Three-way table (ISSUE 4): topology x ingest on the unified core.

    Acceptance, all asserted below:

    * pipelined (double-buffered) ingest strictly lowers p95 response vs
      serial on the batching-delay-dominated workload, for every topology
      — serial pays the flush deadline in front of service, pipelined
      flushes the moment the fleet goes hungry;
    * the hybrid topology beats both pure topologies (p95 and p99) on the
      skewed hot-head/cold-tail workload — the hot bulk keeps fork-join
      parallelism on dedicated shards while the cold tail drains through
      the shared-queue pool instead of scattering per-window overhead and
      mail duplication across every shard;
    * ``--ingest serial`` byte-identity to the pre-event-core engine is
      pinned by the golden-report CLI tests (tests/golden/); here we
      assert run-to-run byte determinism of the serial reports.
    """
    if smoke:
        n_edges, n_cold = 600, 200
    else:
        n_edges, n_cold = 2400, 400
    graph = skewed_head_tail_graph(n_edges, n_cold=n_cold)
    heat = VertexHeat.from_graph(graph)
    per_edge_s, overhead_s = 4e-3, 8e-3
    hot_shards, pool_replicas, fleet = 2, 2, 4    # equal station budget

    def build(topology):
        if topology == "sharded":
            return ServingEngine(
                [DeterministicBackend(per_edge_s, overhead_s)
                 for _ in range(fleet)], graph.num_nodes)
        if topology == "pool":
            return ServingEngine(
                [DeterministicBackend(per_edge_s, overhead_s)],
                graph.num_nodes, topology="pool", pool_servers=fleet)
        placement = HotColdHybrid(hot_top_k=4).place(heat, hot_shards + 1)
        return ServingEngine(
            [DeterministicBackend(per_edge_s, overhead_s)
             for _ in range(hot_shards + 1)],
            graph.num_nodes, placement=placement, topology="hybrid",
            pool_servers=pool_replicas)

    def build_batched(topology, deadline_s):
        engine = build(topology)
        engine.batcher = DynamicBatcher(max_delay_s=deadline_s)
        return engine

    rows, reps = [], {}
    # --- workload A: batching-delay-dominated (deadline flush, light load)
    deadline_s = 2.0
    for topology in ("sharded", "pool", "hybrid"):
        for ingest in ("serial", "pipelined"):
            rep = build_batched(topology, deadline_s).run(
                graph, window_s=300.0, speedup=10.0, num_streams=2,
                ingest=ingest)
            reps[("batch-delay", topology, ingest)] = rep
            rows.append({
                "workload": "batch-delay", "topology": topology,
                "ingest": ingest,
                "p95_ms": rep.p95_response_s * 1e3,
                "p99_ms": rep.p99_response_s * 1e3,
                "max_util_pct": 100 * max(s.utilization
                                          for s in rep.shard_stats),
                "stable": rep.stable,
            })
    # --- workload B: skewed head/tail (passthrough ingest trade-off table)
    for topology in ("sharded", "pool", "hybrid"):
        for ingest in ("serial", "pipelined"):
            rep = build(topology).run(graph, window_s=300.0, speedup=40.0,
                                      num_streams=4, ingest=ingest)
            reps[("skewed", topology, ingest)] = rep
            rows.append({
                "workload": "skewed", "topology": topology,
                "ingest": ingest,
                "p95_ms": rep.p95_response_s * 1e3,
                "p99_ms": rep.p99_response_s * 1e3,
                "max_util_pct": 100 * max(s.utilization
                                          for s in rep.shard_stats),
                "stable": rep.stable,
            })

    table = render_table(
        rows, precision=3,
        title=f"Ingest x topology — unified event core "
              f"({'smoke' if smoke else 'full'})")

    # Acceptance: pipelined ingest strictly lowers p95 where batching
    # delay dominates, for every topology; no windows are lost to it.
    for topology in ("sharded", "pool", "hybrid"):
        serial = reps[("batch-delay", topology, "serial")]
        pipelined = reps[("batch-delay", topology, "pipelined")]
        assert pipelined.p95_response_s < serial.p95_response_s
        assert serial.p95_response_s > deadline_s      # pays the deadline
        assert pipelined.p95_response_s < deadline_s   # hides it
        assert pipelined.windows == serial.windows

    # Acceptance: hybrid beats both pure topologies on the skewed workload.
    sharded = reps[("skewed", "sharded", "serial")]
    pool = reps[("skewed", "pool", "serial")]
    hybrid = reps[("skewed", "hybrid", "serial")]
    assert sharded.stable and pool.stable and hybrid.stable
    assert hybrid.p95_response_s < sharded.p95_response_s
    assert hybrid.p95_response_s < pool.p95_response_s
    assert hybrid.p99_response_s < sharded.p99_response_s
    assert hybrid.p99_response_s < pool.p99_response_s

    # Serial reports stay byte-deterministic run to run (the golden CLI
    # tests additionally pin them byte-identical to the PR 3 engine).
    again = build(  # fresh engine, same arguments
        "hybrid").run(graph, window_s=300.0, speedup=40.0, num_streams=4)
    assert again.to_json() == hybrid.to_json()

    table += (f"\npipelined hides the {deadline_s:.0f} s deadline: e.g. "
              f"sharded p95 "
              f"{reps[('batch-delay', 'sharded', 'serial')].p95_response_s:.2f}"
              f" s -> "
              f"{reps[('batch-delay', 'sharded', 'pipelined')].p95_response_s:.3f}"
              f" s; skewed workload: hybrid p99 "
              f"{hybrid.p99_response_s * 1e3:.1f} ms < sharded "
              f"{sharded.p99_response_s * 1e3:.1f} ms and pool "
              f"{pool.p99_response_s * 1e3:.1f} ms")
    with capsys.disabled():
        print(table)
    save_result("ingest_topology", table)


# --------------------------------------------------------------------------- #
def test_online_rebalance_drift(capsys, smoke):
    """Online rebalancing acceptance (ISSUE 5): on the drifting-hot-set
    workload, mid-run migration strictly beats static hash *and* the
    two-pass LoadAwareRebalance on p95, with the handoff priced.

    The phase rotation is what separates the three policies: hash eats
    every phase's hot shard, the two-pass profile averages the rotation
    away (aggregate heat is symmetric, so it finds nothing actionable),
    and the online rebalancer migrates the current hot set off the melting
    shard within a couple of measurement windows.
    """
    shards = 4
    if smoke:
        n_edges, speedup = 1200, 4000.0
    else:
        n_edges, speedup = 2400, 2000.0
    graph = drifting_hot_set_graph(n_edges, shards)
    heat = VertexHeat.from_graph(graph)
    per_edge_s = 6e-3
    window_s, streams = 250.0, 2
    # Alternate shards over two dies so handoff rows (like sync rows) pay
    # real hops — the online win must survive its own migration bill.
    die_of = [s % 2 for s in range(shards)]
    mail_hop_s = 1e-4

    def build(placement=None, rebalancer=None):
        return ServingEngine(
            [DeterministicBackend(per_edge_s) for _ in range(shards)],
            graph.num_nodes, placement=placement, rebalancer=rebalancer,
            die_of=die_of, mail_hop_s=mail_hop_s)

    def run(engine):
        return engine.run(graph, window_s=window_s, speedup=speedup,
                          num_streams=streams)

    rep_hash = run(build())
    util_hash = max(s.utilization for s in rep_hash.shard_stats)

    # Two-pass: profile the whole run, redeploy, replay — the charitable
    # threshold (below the measured max) guarantees it at least tries.
    two_pass = make_policy("rebalance", util_threshold=0.9 * util_hash)
    placement = two_pass.place(heat, shards, profile=rep_hash.shard_stats)
    rep_two = run(build(placement=placement))

    rebalancer = OnlineRebalancer(window_s=0.5, util_threshold=0.75,
                                  max_migrations_per_window=8,
                                  cooldown_windows=1)
    rep_online = run(build(rebalancer=rebalancer))

    rows = []
    for name, rep in (("hash", rep_hash), ("two-pass", rep_two),
                      ("online", rep_online)):
        rows.append({
            "policy": name,
            "p95_ms": rep.p95_response_s * 1e3,
            "p99_ms": rep.p99_response_s * 1e3,
            "max_util_pct": 100 * max(s.utilization
                                      for s in rep.shard_stats),
            "migrations": rep.migrations,
            "handoff_rows": rep.handoff_rows,
            "stable": rep.stable,
        })
    table = render_table(
        rows, precision=3,
        title=f"Online rebalancing — drifting hot set ({shards} shards, "
              f"{'smoke' if smoke else 'full'})")

    # Acceptance: online strictly beats static hash AND two-pass on p95.
    assert rep_online.p95_response_s < rep_hash.p95_response_s
    assert rep_online.p95_response_s < rep_two.p95_response_s
    # The improvement is real work, and its handoff bill is on the table:
    # migrations happened and their state rows are priced (nonzero).
    assert rep_online.migrations > 0
    assert rep_online.handoff_rows > 0
    assert rep_online.rebalance == "online"
    # The baselines moved nothing mid-run.
    assert rep_hash.migrations == 0 and rep_two.migrations == 0
    # Conservation across migrations: every offered window is accounted.
    assert rep_online.windows + rep_online.dropped_windows \
        == rep_hash.windows + rep_hash.dropped_windows

    table += (f"\ndrift verdict: online p95 "
              f"{rep_online.p95_response_s * 1e3:.1f} ms < two-pass "
              f"{rep_two.p95_response_s * 1e3:.1f} ms and hash "
              f"{rep_hash.p95_response_s * 1e3:.1f} ms, for "
              f"{rep_online.migrations} migrations / "
              f"{rep_online.handoff_rows} handoff rows")
    with capsys.disabled():
        print(table)
    save_result("online_rebalance_drift", table)


# --------------------------------------------------------------------------- #
def test_failover_recovery(capsys, smoke):
    """Failure-injection acceptance (ISSUE 7): replication factor vs
    recovery latency.

    One shard fail-stops mid-run and recovers later; the sweep varies how
    much of the victim's vertex set carries a full replica on a survivor.
    Replicated vertices *promote* for free at failure time, unreplicated
    ones are *rebuilt* by memsync replay — rows priced through
    ``mail_hop_s`` onto the surviving owners' service times, right when
    the fleet is already absorbing the dead shard's load.  The headline
    assertion: full replication strictly beats the cold rebuild on p99
    *during the outage window*, and the recovery bill (priced rows) falls
    monotonically as the replication factor rises.
    """
    shards, victim = 4, 1
    if smoke:
        n_edges, speedup = 1200, 4000.0
    else:
        n_edges, speedup = 2400, 2000.0
    graph = drifting_hot_set_graph(n_edges, shards)
    # Keep the fleet in a stable regime (max util well under 0.5): the
    # contrast being measured is the priced rebuild bill landing in the
    # outage tail, and saturation queueing would drown it.
    per_edge_s = 1e-3
    window_s, streams = 250.0, 2
    # Every shard on its own die: each recovery row pays a real hop.
    die_of = list(range(shards))
    mail_hop_s = 2e-3

    # Place the outage inside the arrival span: fail at 25%, recover at
    # 75% of the stream (event-loop time is stream time / speedup).
    arrivals = make_stream_arrivals(graph, window_s, num_streams=streams,
                                    speedup=speedup)
    t_end = arrivals[-1].t
    plan = FailurePlan(fail_at=0.25 * t_end, shard=victim,
                       recover_at=0.75 * t_end)

    assignment = hash_assignment(graph.num_nodes, shards)
    owned = np.flatnonzero(assignment == victim)
    survivors = [s for s in range(shards) if s != victim]

    def run(frac):
        k = int(round(frac * len(owned)))
        replicas = {int(v): (survivors[i % len(survivors)],)
                    for i, v in enumerate(owned[:k])}
        placement = Placement(assignment=assignment.copy(),
                              num_shards=shards, replicas=replicas,
                              policy="replicate" if replicas else "hash")
        engine = ServingEngine(
            [DeterministicBackend(per_edge_s) for _ in range(shards)],
            graph.num_nodes, placement=placement, memsync="push",
            die_of=die_of, mail_hop_s=mail_hop_s, failures=plan)
        return engine.run(graph, window_s=window_s, speedup=speedup,
                          num_streams=streams)

    fracs = (0.0, 0.5, 1.0)
    reports = {frac: run(frac) for frac in fracs}

    rows = []
    for frac in fracs:
        rep = reports[frac]
        rows.append({
            "replicated_frac": frac,
            "promoted": rep.promoted_vertices,
            "rebuilt": rep.rebuilt_vertices,
            "recovery_rows": rep.recovery_rows,
            "outage_p99_ms": rep.outage_p99_response_s * 1e3,
            "p99_ms": rep.p99_response_s * 1e3,
            "outage_windows": rep.outage_windows,
        })
    table = render_table(
        rows, precision=3,
        title=f"Failover — replication factor vs recovery latency "
              f"({shards} shards, shard {victim} dies, "
              f"{'smoke' if smoke else 'full'})")

    cold, full = reports[0.0], reports[1.0]
    # The failover happened, in every lane, over a real outage window.
    for rep in reports.values():
        assert rep.chaos == "dead"
        assert rep.failures == 1 and rep.recoveries == 1
        assert rep.outage_windows > 0
        assert rep.windows + rep.dropped_windows \
            == cold.windows + cold.dropped_windows
    # Replication converts rebuilds into free promotions...
    assert cold.promoted_vertices == 0
    assert cold.rebuilt_vertices == len(owned)
    assert full.promoted_vertices == len(owned)
    assert full.rebuilt_vertices == 0
    # ...so the priced recovery bill falls monotonically with the factor.
    bills = [reports[f].recovery_rows for f in fracs]
    assert bills[0] > bills[1] > bills[2]
    # Headline: replicated failover strictly beats the cold rebuild on
    # p99 during the outage window.
    assert full.outage_p99_response_s < cold.outage_p99_response_s

    table += (f"\nfailover verdict: replicated outage p99 "
              f"{full.outage_p99_response_s * 1e3:.1f} ms < cold rebuild "
              f"{cold.outage_p99_response_s * 1e3:.1f} ms "
              f"({cold.recovery_rows} priced recovery rows -> "
              f"{full.recovery_rows})")
    with capsys.disabled():
        print(table)
    save_result("failover_recovery", table)
    save_json("BENCH_failover", {
        "shards": shards, "victim": victim,
        "mail_hop_s": mail_hop_s,
        "sweep": [
            {"replicated_frac": frac,
             "promoted": int(reports[frac].promoted_vertices),
             "rebuilt": int(reports[frac].rebuilt_vertices),
             "recovery_rows": int(reports[frac].recovery_rows),
             "outage_p99_ms": reports[frac].outage_p99_response_s * 1e3,
             "p99_ms": reports[frac].p99_response_s * 1e3}
            for frac in fracs],
        "outage_p99_ratio_cold_over_replicated":
            cold.outage_p99_response_s / full.outage_p99_response_s,
        "workload": {"n_edges": n_edges, "speedup": speedup,
                     "streams": streams, "window_s": window_s,
                     "per_edge_s": per_edge_s,
                     "mode": "smoke" if smoke else "full"},
    })


# --------------------------------------------------------------------------- #
def test_event_core_speedup(capsys, smoke):
    """Before/after event-core throughput: heap loop vs vectorized loop.

    Acceptance (ISSUE 6): on a cohort-friendly workload (deadline batching
    coalesces ~100 arrivals per flush) the struct-of-array scheduler with
    cohort dispatch processes events at >= 5x the reference per-event heap
    loop, while producing a byte-identical serving report.  Timing covers
    the event loop only (``engine.last_loop_wall_s``): setup and report
    assembly are identical in both lanes and would dilute the comparison.
    The measurement is a same-run *ratio*, so it is machine-independent;
    the absolute events/sec land in ``results/BENCH_events_per_sec.json``
    for the CI perf-trajectory check.
    """
    n_edges, reps = (3000, 3) if smoke else (12000, 5)
    n_windows = n_edges // 2          # ~2 edges per stream window
    rng = np.random.default_rng(11)
    t = np.sort(rng.uniform(0, 1e4, n_edges))
    graph = TemporalGraph(src=rng.integers(0, 200, n_edges),
                          dst=rng.integers(0, 200, n_edges), t=t,
                          edge_feat=np.zeros((n_edges, 0)), num_nodes=200)
    window_s = 1e4 / n_windows
    streams = 8

    def one(scheduler_cls):
        # Fresh engine per rep: runs must be independent and identical.
        engine = ServingEngine([DeterministicBackend(1e-6, 0.0)],
                               graph.num_nodes, topology="pool",
                               pool_servers=2,
                               batcher=DynamicBatcher(max_delay_s=2.0))
        rep = engine.run(graph, window_s, speedup=50.0,
                         num_streams=streams, scheduler_cls=scheduler_cls)
        return rep, engine.last_loop_wall_s, engine.last_scheduler

    def lane(scheduler_cls):
        rep = sched = None
        best = float("inf")
        for _ in range(reps):        # min-of-reps absorbs scheduler jitter
            rep, wall, sched = one(scheduler_cls)
            best = min(best, wall)
        return rep, best, sched

    heap_rep, heap_wall, heap_sched = lane(HeapEventScheduler)
    vec_rep, vec_wall, vec_sched = lane(None)

    events = heap_sched.events_processed
    heap_eps = events / heap_wall
    vec_eps = vec_sched.events_processed / vec_wall
    ratio = vec_eps / heap_eps
    cohort_frac = vec_sched.cohort_events / vec_sched.events_processed

    rows = [
        {"lane": "heap (before)", "events": events,
         "handler_calls": events, "wall_ms": heap_wall * 1e3,
         "events_per_sec": heap_eps},
        {"lane": "vectorized (after)", "events": vec_sched.events_processed,
         "handler_calls": (vec_sched.events_processed
                           - vec_sched.cohort_events
                           + vec_sched.cohort_calls),
         "wall_ms": vec_wall * 1e3, "events_per_sec": vec_eps},
        {"lane": "speedup", "events": "", "handler_calls": "",
         "wall_ms": "", "events_per_sec": ratio},
    ]
    table = render_table(
        rows, precision=3,
        title=f"Event core — heap vs vectorized scheduler "
              f"({'smoke' if smoke else 'full'})")
    table += (f"\nevent core verdict: {ratio:.1f}x events/sec, "
              f"{100 * cohort_frac:.1f}% of events delivered in "
              f"{vec_sched.cohort_calls} cohorts, reports byte-identical: "
              f"{'yes' if heap_rep.to_json() == vec_rep.to_json() else 'NO'}")

    # Same workload, same results: the refactor changed only the clock.
    assert heap_rep.to_json() == vec_rep.to_json()
    assert vec_sched.events_processed == events
    # Most arrivals ride the cohort path (the point of the refactor).
    assert cohort_frac > 0.9
    # The acceptance floor; the measured ratio is ~8x, so 5x has margin.
    assert ratio >= 5.0

    with capsys.disabled():
        print(table)
    save_result("event_core_speedup", table)
    save_json("BENCH_events_per_sec", {
        "events": int(events),
        "heap_events_per_sec": heap_eps,
        "vectorized_events_per_sec": vec_eps,
        "speedup_ratio": ratio,
        "cohort_fraction": cohort_frac,
        "workload": {"n_edges": n_edges, "n_windows": n_windows,
                     "streams": streams, "speedup": 50.0,
                     "max_delay_s": 2.0, "topology": "pool",
                     "pool_servers": 2, "reps": reps,
                     "mode": "smoke" if smoke else "full"},
    })


# --------------------------------------------------------------------------- #
def test_trace_invariants(capsys, smoke):
    """Trace-checker gate (ISSUE 8): full serve-sim runs replay clean.

    Drives ``serve-sim --check-trace`` (the repro.analysis.tracecheck
    dynamic half) over the two behavior-rich lanes — online rebalancing
    under drift, and dead-shard failure injection with recovery — and
    asserts both replays produce zero invariant findings: causality,
    exactly-once service, busy-interval disjointness, mail-at-flush,
    ownership chain, and window conservation.
    """
    from repro.cli import main as cli_main

    edges = 400 if smoke else 1600
    base = ["serve-sim", "--edges", str(edges), "--shards", "2",
            "--streams", "2", "--speedup", "40", "--memory-dim", "16",
            "--check-trace"]
    lanes = {
        "rebalance-online": base + ["--rebalance-online",
                                    "--rebalance-threshold", "0.05"],
        "chaos-failover": base + ["--fail-at", "10000",
                                  "--recover-at", "30000"],
    }
    rows = []
    for name, argv in lanes.items():
        lines = []
        rc = cli_main(argv, out=lines.append)
        text = "\n".join(lines)
        assert rc == 0, f"{name}: exit {rc}\n{text}"
        verdict = [ln for ln in lines if ln.startswith("trace check:")]
        assert verdict and "clean" in verdict[0], f"{name}:\n{text}"
        # "trace check: clean (N events, M checks)"
        inner = verdict[0].split("(", 1)[1].rstrip(")")
        n_events, n_checks = (int(p.split()[0])
                              for p in inner.split(","))
        assert n_events > 0 and n_checks >= 6
        rows.append({"lane": name, "events": n_events,
                     "checks": n_checks, "verdict": "clean"})
    table = render_table(
        rows, precision=3,
        title=f"Trace invariants — serve-sim --check-trace "
              f"({'smoke' if smoke else 'full'})")
    with capsys.disabled():
        print(table)
    save_result("trace_invariants", table)


# --------------------------------------------------------------------------- #
def test_measured_backend_scaling(capsys, smoke):
    """Measured worker-pool acceptance (ISSUE 9): real kernels scale.

    Runs the same compute-bound trace through ``--backend measured`` at
    ``workers=1`` (every shard's kernels serialized onto one lane) and
    ``workers=4`` (one lane per shard) and asserts the event-time
    throughput gain of the parallel lanes is at least 2x.

    The asserted ratio is computed entirely from the ``workers=1``
    run — makespan over the best single lane's event-time makespan,
    ``max`` of per-shard committed busy seconds, i.e. what 4 lanes
    yield on the *same* measured duration sequence via
    ``WorkerPool.commit`` arithmetic.  That keeps the metric
    machine-independent: with one worker exactly one kernel executes
    at a time, so every measured duration is contention-free, whereas
    the realized workers=4 makespan (also reported) folds in how many
    spare cores the host happens to have — four concurrent kernel
    processes on a busy 1-2 core CI box timeshare mid-kernel and
    inflate their own wall-clock measurements, legitimately so.
    ``speedup=1e8`` compresses the arrival span to microseconds so the
    workload is kernel-bound — at low speedup the arrival process
    dominates the makespan and lane counts cannot matter.

    Also emits the modeled-vs-measured service-time table (the cost
    model's prediction against the real numpy kernels) and the
    ``BENCH_measured_backend.json`` artifact CI diffs against its
    baseline.
    """
    from conftest import np_model
    graph = wikipedia_like(num_edges=1200 if smoke else 4000,
                           num_users=400, num_items=60)
    model = np_model(graph, 2)
    n_windows = 20 if smoke else 40
    window_s = float(graph.t[-1] - graph.t[0]) / n_windows
    shards = 4
    speedup = 1e8

    def lane(workers):
        engine = ServingEngine.from_registry(
            "measured", model, graph, num_shards=shards, workers=workers)
        rep = engine.run(graph, window_s=window_s, speedup=speedup)
        return rep, rep.makespan_s

    rep1, makespan1 = lane(1)
    rep4, makespan4 = lane(4)
    # Event-time makespan 4 lanes produce from the workers=1 run's own
    # contention-free durations: each shard's committed service lands on
    # its own lane, so the slowest lane is max per-shard busy.
    lane_makespan = max(s.busy_s for s in rep1.shard_stats)
    ratio = makespan1 / lane_makespan
    realized = makespan1 / makespan4

    def row(label, rep, makespan):
        jobs = sum(s.jobs for s in rep.shard_stats)
        return {"lane": label, "jobs": jobs,
                "measured_mean_ms": rep.measured["mean_s"] * 1e3,
                "cv2": rep.measured["cv2"],
                "makespan_ms": makespan * 1e3,
                "events_per_sec": jobs / makespan if makespan else 0.0}

    def ratio_row(label, value):
        return {"lane": label, "jobs": "", "measured_mean_ms": "",
                "cv2": "", "makespan_ms": "", "events_per_sec": value}

    rows = [row("workers=1 (serialized)", rep1, makespan1),
            row("workers=4 (parallel lanes)", rep4, makespan4),
            ratio_row("event-time speedup (asserted)", ratio),
            ratio_row("realized (host-dependent)", realized)]
    table = render_table(
        rows, precision=3,
        title=f"Measured backend — worker-pool scaling "
              f"({'smoke' if smoke else 'full'})")
    from repro.profiling import format_table, modeled_vs_measured
    table += ("\nmodeled vs measured service time (workers=4 lane):\n"
              + format_table(modeled_vs_measured(rep4.measured),
                             precision=3))

    # Same workload either way: lane counts move clocks (and therefore
    # queue depths), never which jobs run where.  Full structure
    # identity at light load is pinned by tests/unit/test_measured.py.
    assert [(s.shard, s.jobs, s.edges) for s in rep1.shard_stats] \
        == [(s.shard, s.jobs, s.edges) for s in rep4.shard_stats]
    assert rep1.measured["samples"] == rep4.measured["samples"]
    # The acceptance floor: 4 lanes over 4 roughly balanced shards give
    # ~3x event-time throughput; 2x leaves imbalance headroom.
    assert ratio >= 2.0

    with capsys.disabled():
        print(table)
    save_result("measured_backend", table)
    save_json("BENCH_measured_backend", {
        "speedup_ratio": ratio,
        "realized_ratio_workers4": realized,
        "makespan_workers1_s": makespan1,
        "makespan_workers4_s": makespan4,
        "measured_mean_s": rep1.measured["mean_s"],
        "measured_cv2": rep1.measured["cv2"],
        "modeled_mean_s": rep1.measured["modeled_mean_s"],
        "samples": rep1.measured["samples"],
        "workload": {"n_edges": len(graph.src), "n_windows": n_windows,
                     "shards": shards, "speedup": speedup,
                     "pruning_budget": 2,
                     "mode": "smoke" if smoke else "full"},
    })


# --------------------------------------------------------------------------- #
def diurnal_graph(cycles, per_cycle, cycle_span=1e4, day_frac=0.3,
                  day_share=0.8, num_nodes=200, seed=17):
    """Diurnal arrivals: ``day_share`` of each cycle's edges crowd into
    the first ``day_frac`` of its span (the daily peak), the rest trickle
    through the long night.  Arrival times are evenly spaced within each
    phase so the day-window service time is a deterministic plateau — the
    bench measures the controller's reaction to the phase transitions,
    not sampling noise in the offered load."""
    rng = np.random.default_rng(seed)
    chunks = []
    for c in range(cycles):
        base = c * cycle_span
        day_span = day_frac * cycle_span
        n_day = int(day_share * per_cycle)
        n_night = per_cycle - n_day
        chunks.append(base + np.linspace(0.0, day_span, n_day,
                                         endpoint=False))
        chunks.append(base + day_span
                      + np.linspace(0.0, cycle_span - day_span, n_night,
                                    endpoint=False))
    t = np.sort(np.concatenate(chunks))
    n = len(t)
    src = rng.integers(0, num_nodes, n)
    dst = rng.integers(0, num_nodes, n)
    same = dst == src
    dst[same] = (dst[same] + 1) % num_nodes
    return TemporalGraph(src=src, dst=dst, t=t,
                         edge_feat=np.zeros((n, 0)), num_nodes=num_nodes)


def test_autoscale_diurnal(capsys, smoke):
    """Elastic-capacity acceptance (ISSUE 10): on a diurnal workload the
    autoscaler meets the p95 SLO with strictly fewer server-seconds than
    static peak provisioning.

    Three lanes over the same day/night trace: *static min* (the initial
    fleet, frozen — cheap but blows the SLO at every daily peak),
    *static peak* (the max fleet, frozen — meets the SLO by paying for
    the peak all night long), and *autoscaled* (grows into the peak when
    windowed p95 breaches, drains back down when the night's p95 falls
    into the low band).  ``server_seconds`` is the piecewise-constant
    integral of fleet size over the run, so the asserted ratio —
    static-peak server-seconds over autoscaled — is pure event-time
    arithmetic, machine-independent, and lands in
    ``results/BENCH_autoscale.json`` for the CI perf-trajectory check
    against ``benchmarks/baselines/autoscale_server_seconds.json``.
    """
    cycles, per_cycle = (2, 2400) if smoke else (4, 2400)
    graph = diurnal_graph(cycles, per_cycle)
    window_s, speedup = 6.25, 25.0
    per_edge_s = 0.125
    slo_p95_s = 1.5
    min_servers, initial, peak = 1, 1, 4

    def run(pool_servers, auto=None):
        engine = ServingEngine([DeterministicBackend(per_edge_s)],
                               graph.num_nodes, topology="pool",
                               pool_servers=pool_servers, autoscaler=auto)
        return engine.run(graph, window_s=window_s, speedup=speedup)

    rep_min = run(initial)
    rep_peak = run(peak)
    cap = CapacityConfig(micro_batch=1, replicas=initial,
                         max_replicas=peak, min_replicas=min_servers)
    auto = AutoScaler(cap, slo_p95_s=slo_p95_s, scale_window_s=0.5,
                      low_band_frac=0.2, cooldown_windows=0)
    rep_auto = run(initial, auto=auto)

    scaling = rep_auto.scaling
    auto_ss = scaling["server_seconds"]
    peak_ss = peak * rep_peak.makespan_s
    min_ss = initial * rep_min.makespan_s
    ratio = peak_ss / auto_ss

    def row(lane, rep, servers, ss):
        return {"lane": lane, "servers": servers,
                "p95_ms": rep.p95_response_s * 1e3,
                "p99_ms": rep.p99_response_s * 1e3,
                "server_seconds": ss,
                "slo": "met" if rep.p95_response_s <= slo_p95_s
                       else "VIOLATED"}

    rows = [
        row("static min", rep_min, f"{initial}", min_ss),
        row("static peak", rep_peak, f"{peak}", peak_ss),
        row("autoscaled", rep_auto,
            f"{initial}->{scaling['peak_servers']}", auto_ss),
        {"lane": "peak/auto server-seconds", "servers": "",
         "p95_ms": "", "p99_ms": "", "server_seconds": ratio, "slo": ""},
    ]
    table = render_table(
        rows, precision=3,
        title=f"Elastic capacity — diurnal autoscaling vs static "
              f"provisioning ({cycles} cycles, SLO p95 "
              f"{slo_p95_s:.1f} s, {'smoke' if smoke else 'full'})")
    table += (f"\nautoscale verdict: SLO met at "
              f"{auto_ss:.0f} server-seconds vs static peak "
              f"{peak_ss:.0f} ({ratio:.2f}x cheaper), "
              f"{scaling['scale_ups']} up / {scaling['scale_downs']} down")

    # The diurnal pattern was actually exercised: the fleet grew into
    # every peak and drained at night.
    assert scaling["scale_ups"] >= cycles
    assert scaling["scale_downs"] >= 1
    assert scaling["peak_servers"] == peak
    # Frozen at the initial fleet the daily peaks blow the SLO — the
    # capacity problem is real.
    assert rep_min.p95_response_s > slo_p95_s
    # Static peak meets the SLO, and so does the autoscaler...
    assert rep_peak.p95_response_s <= slo_p95_s
    assert rep_auto.p95_response_s <= slo_p95_s
    # ...the headline: at strictly fewer server-seconds than the peak.
    assert auto_ss < peak_ss

    with capsys.disabled():
        print(table)
    save_result("autoscale_diurnal", table)
    save_json("BENCH_autoscale", {
        "speedup_ratio": ratio,
        "auto_server_seconds": auto_ss,
        "static_peak_server_seconds": peak_ss,
        "static_min_server_seconds": min_ss,
        "auto_p95_s": rep_auto.p95_response_s,
        "static_min_p95_s": rep_min.p95_response_s,
        "static_peak_p95_s": rep_peak.p95_response_s,
        "slo_p95_s": slo_p95_s,
        "scale_ups": int(scaling["scale_ups"]),
        "scale_downs": int(scaling["scale_downs"]),
        "mean_servers": scaling["mean_servers"],
        "workload": {"cycles": cycles, "per_cycle": per_cycle,
                     "window_s": window_s, "speedup": speedup,
                     "per_edge_s": per_edge_s,
                     "min_servers": min_servers, "initial": initial,
                     "max_servers": peak,
                     "mode": "smoke" if smoke else "full"},
    })
