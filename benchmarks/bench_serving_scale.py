"""Extension experiment: serving scale — shards x streams x load.

The paper serves one stream on one idle device; the ROADMAP north star is
heavy multi-tenant traffic.  This bench sweeps the sharded serving engine
(`repro.serving`) over shard counts, concurrent streams, and stream-time
compression, and reports the numbers an operator sizes a fleet with:
per-shard utilization, end-to-end window response percentiles, cross-shard
replication overhead, and stability.

Shape expectations: per-shard busy time falls as shards grow (state is
partitioned, at the price of cross-shard edge replication); more streams
multiply load and response percentiles never improve; the engine with one
shard reproduces the single-server `replay_under_load` numbers exactly.

Run standalone (``pytest benchmarks/bench_serving_scale.py``) or with
``--smoke`` for a seconds-scale reduced sweep — the tier-1 suite invokes
the smoke path to keep this harness from rotting.
"""

import numpy as np
import pytest

from repro.datasets import wikipedia_like
from repro.models import ModelConfig, TGNN
from repro.perf import CPU_32T
from repro.pipeline import ModeledGPPBackend, replay_under_load
from repro.profiling import count_ops
from repro.reporting import render_table, save_result
from repro.serving import DynamicBatcher, ServingEngine

pytestmark = pytest.mark.smoke


def run_sweep(graph, model, shards_list, streams_list, speedups,
              backend="zcu104", window_s=900.0, start=0,
              deadline_s=0.0, batch_edges=None):
    """Sweep the engine and return (rows, reports-by-key)."""
    rows, reports = [], {}
    for n_shards in shards_list:
        for n_streams in streams_list:
            for speedup in speedups:
                engine = ServingEngine.from_registry(
                    backend, model, graph, num_shards=n_shards,
                    backend_kwargs={"functional": False}
                    if backend in ("cpu-32t", "gpu") else None,
                    batcher=DynamicBatcher(max_edges=batch_edges,
                                           max_delay_s=deadline_s))
                rep = engine.run(graph, window_s=window_s, start=start,
                                 speedup=speedup, num_streams=n_streams)
                reports[(n_shards, n_streams, speedup)] = rep
                util = [s.utilization for s in rep.shard_stats]
                busy = [s.busy_s for s in rep.shard_stats]
                rows.append({
                    "shards": n_shards, "streams": n_streams,
                    "load_x": speedup,
                    "windows": rep.windows,
                    "max_util_pct": 100 * max(util),
                    "max_busy_s": max(busy),
                    "p95_ms": rep.p95_response_s * 1e3,
                    "p99_ms": rep.p99_response_s * 1e3,
                    "xshard_pct": 100 * rep.cross_shard_edges
                    / max(rep.ingested_edges, 1),
                    "stable": rep.stable,
                })
    return rows, reports


def test_serving_scale(request, capsys, smoke):
    if smoke:
        graph = wikipedia_like(num_edges=800, num_users=100, num_items=20)
        cfg = ModelConfig(memory_dim=8, time_dim=6, embed_dim=8,
                          edge_dim=graph.edge_dim, num_neighbors=4,
                          simplified_attention=True, lut_time_encoder=True,
                          lut_bins=8, pruning_budget=2)
        model = TGNN(cfg, rng=np.random.default_rng(0))
        model.calibrate(graph)
        model.prepare_inference()
        shards_list, streams_list, speedups = [1, 2], [1, 2], [2.0]
        window_s, start = 3600.0, 200
    else:
        graph = request.getfixturevalue("wiki")
        model = request.getfixturevalue("wiki_np_models")["NP(M)"]
        shards_list, streams_list = [1, 2, 4, 8], [1, 2, 4]
        speedups = [1.0, 2.0, 30.0]
        window_s, start = 900.0, int(graph.num_edges * 0.5)

    backend = "cpu-32t"   # modeled timing: deterministic and fast
    rows, reports = run_sweep(graph, model, shards_list, streams_list,
                              speedups, backend=backend, window_s=window_s,
                              start=start)
    table = render_table(
        rows, precision=3,
        title=f"Serving scale — shards x streams x load ({backend}, "
              f"{'smoke' if smoke else 'full'})")

    # Single-shard engine == single-server queueing replay (bit-exact).
    base_key = (1, 1, speedups[0])
    ref_backend = ModeledGPPBackend(CPU_32T, count_ops(model.cfg), model,
                                    graph, functional=False)
    qs = replay_under_load(ref_backend, graph, window_s=window_s,
                           start=start, speedup=speedups[0])
    rep1 = reports[base_key]
    assert rep1.shard_stats[0].utilization == pytest.approx(qs.utilization)
    assert rep1.p95_response_s == pytest.approx(qs.p95_response_s)
    table += (f"\n1-shard check: engine p95 "
              f"{rep1.p95_response_s * 1e3:.3f} ms == replay_under_load "
              f"{qs.p95_response_s * 1e3:.3f} ms")

    # Scaling shape: sharding splits work, streams multiply it.
    hot = speedups[-1]
    for n_streams in streams_list:
        busy_1 = max(s.busy_s for s in
                     reports[(shards_list[0], n_streams, hot)].shard_stats)
        busy_n = max(s.busy_s for s in
                     reports[(shards_list[-1], n_streams, hot)].shard_stats)
        assert busy_n < busy_1          # per-shard work strictly falls
    for n_shards in shards_list:
        w1 = reports[(n_shards, streams_list[0], hot)].windows
        wn = reports[(n_shards, streams_list[-1], hot)].windows
        assert wn == w1 * streams_list[-1] // streams_list[0]

    with capsys.disabled():
        print(table)
    save_result("serving_scale", table)
