"""Figure 5 (left two columns): latency & throughput vs batch size.

Paper artifact: per dataset, latency and throughput curves over batch sizes
for the CPU (32T) and GPU baselines running TGN-attn, and our accelerator on
U200 / ZCU104 running NP(L/M/S).

Reproduction targets (shape): FPGA latency below GPU below CPU at every
batch size; throughput saturation with batch size; NP(S) fastest of the NP
family; U200 above ZCU104 by roughly the resource ratio.
"""

import numpy as np
import pytest

from repro.hw import FPGAAccelerator, U200_DESIGN, ZCU104_DESIGN
from repro.models import ModelConfig
from repro.perf import CPU_32T, GPU
from repro.profiling import count_ops
from repro.reporting import render_table, save_result

BATCHES = [100, 200, 500, 1000, 2000, 4000]


def _fpga_curve(model, hw, graph):
    acc = FPGAAccelerator(model, hw)
    lat, thpt = [], []
    for n in BATCHES:
        rep = acc.run_stream(graph, batch_size=n, start=0,
                             end=min(2 * n, graph.num_edges),
                             rt=model.new_runtime(graph))
        lat.append(rep.batch_latencies_s[0])
        thpt.append(n / rep.batch_latencies_s[0])
    return lat, thpt


@pytest.mark.parametrize("dataset", ["wikipedia", "reddit", "gdelt"])
def test_fig5_latency_throughput_sweep(benchmark, capsys, datasets, dataset,
                                       wiki_np_models):
    graph = datasets[dataset]
    base_counts = count_ops(ModelConfig(edge_dim=graph.edge_dim,
                                        node_dim=graph.node_dim))

    # Baselines (TGN-attn on GPP cost models).
    cpu_lat = [CPU_32T.latency_s(base_counts, n) for n in BATCHES]
    gpu_lat = [GPU.latency_s(base_counts, n) for n in BATCHES]

    # Ours: NP(L/M/S) on both FPGAs.  ZCU104 runs Wikipedia only in the
    # paper (external-memory limit); we follow the same protocol.
    from conftest import np_model
    curves = {}
    for name, budget in (("NP(L)", 6), ("NP(M)", 4), ("NP(S)", 2)):
        model = np_model(graph, budget)
        curves[("u200", name)] = _fpga_curve(model, U200_DESIGN, graph)
        if dataset == "wikipedia":
            curves[("zcu104", name)] = _fpga_curve(model, ZCU104_DESIGN,
                                                   graph)

    rows = []
    for i, n in enumerate(BATCHES):
        row = {"batch": n,
               "cpu_ms": cpu_lat[i] * 1e3, "gpu_ms": gpu_lat[i] * 1e3}
        for (board, name), (lat, thpt) in curves.items():
            row[f"{board}_{name}_ms"] = lat[i] * 1e3
        rows.append(row)
    table = render_table(rows, precision=2,
                         title=f"Figure 5 — latency vs batch ({dataset}) [ms]")

    trows = []
    for i, n in enumerate(BATCHES):
        row = {"batch": n,
               "cpu_kEs": n / cpu_lat[i] / 1e3,
               "gpu_kEs": n / gpu_lat[i] / 1e3}
        for (board, name), (lat, thpt) in curves.items():
            row[f"{board}_{name}_kEs"] = thpt[i] / 1e3
        trows.append(row)
    table += "\n" + render_table(
        trows, precision=1,
        title=f"Figure 5 — throughput vs batch ({dataset}) [kE/s]")
    with capsys.disabled():
        print(table)
    save_result(f"fig5_sweep_{dataset}", table)

    # --- shape assertions ---------------------------------------------------
    for i in range(len(BATCHES)):
        u200_np_l = curves[("u200", "NP(L)")][0][i]
        assert u200_np_l < gpu_lat[i] < cpu_lat[i], BATCHES[i]
    # Throughput saturates (non-decreasing then flat-ish).
    u200_thpt = curves[("u200", "NP(M)")][1]
    assert u200_thpt[-1] > u200_thpt[0]
    # NP(S) at least as fast as NP(L) at large batch.
    assert curves[("u200", "NP(S)")][1][-1] \
        >= 0.95 * curves[("u200", "NP(L)")][1][-1]
    # Paper headline: U200 speedup vs GPU at large batch > ~4.6x for NP(L+).
    speedup_vs_gpu = (BATCHES[-1] / curves[("u200", "NP(L)")][0][-1]) \
        / (BATCHES[-1] / gpu_lat[-1])
    assert speedup_vs_gpu > 2.0

    # Timed kernel: one U200 NP(M) batch simulation at batch 1000.
    model = wiki_np_models["NP(M)"] if dataset == "wikipedia" else \
        np_model(graph, 4)
    acc = FPGAAccelerator(model, U200_DESIGN)

    def step():
        acc.run_stream(graph, batch_size=1000, end=1000,
                       rt=model.new_runtime(graph))

    benchmark.pedantic(step, rounds=3, iterations=1, warmup_rounds=1)
