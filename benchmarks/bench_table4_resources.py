"""Table IV reproduction: design configurations and resource utilization.

Prints the analytic resource estimate for both published design points next
to the paper's post-place-&-route numbers, plus per-module detail and
platform-budget feasibility (Table III budgets).
"""

import pytest

from repro.hw import U200_DESIGN, ZCU104_DESIGN, estimate_resources
from repro.models import ModelConfig
from repro.profiling.paper_reference import TABLE4
from repro.reporting import render_table, save_result

MODEL = ModelConfig(simplified_attention=True, lut_time_encoder=True,
                    pruning_budget=4)

DESIGNS = {"u200": U200_DESIGN, "zcu104": ZCU104_DESIGN}


def test_table4_resources(benchmark, capsys):
    est = {name: benchmark.pedantic(estimate_resources, args=(MODEL, hw),
                                    rounds=1, iterations=1)
           if name == "u200" else estimate_resources(MODEL, hw)
           for name, hw in DESIGNS.items()}

    rows = []
    for name, hw in DESIGNS.items():
        e, p = est[name], TABLE4[name]
        rows.append({
            "board": name,
            "Ncu": hw.n_cu, "Sg^2": f"{hw.sg}^2", "SFAM": hw.s_fam,
            "SFTM": f"{hw.s_ftm[0]}x{hw.s_ftm[1]}",
            "LUT_est": e.lut, "LUT_ppr": p["lut"],
            "DSP_est": e.dsp, "DSP_ppr": p["dsp"],
            "BRAM_est": e.bram, "BRAM_ppr": p["bram"],
            "URAM_est": e.uram, "URAM_ppr": p["uram"],
            "MHz": hw.freq_mhz, "fits": e.fits,
        })
    table = render_table(rows, precision=0,
                         title="Table IV — design configs + resources "
                               "(ours vs paper '_ppr')")
    detail = est["u200"].detail
    detail_rows = [{"component": k, **{sk: sv for sk, sv in v.items()}}
                   for k, v in detail.items()]
    for name in ("u200", "zcu104"):
        util = est[name].utilization(DESIGNS[name])
        table += (f"\n{name} utilization: "
                  + ", ".join(f"{k}={v * 100:.0f}%" for k, v in util.items()))
    with capsys.disabled():
        print(table)
        print(render_table(detail_rows, title="U200 component detail"))
    save_result("table4_resources", table)

    # Fidelity assertions (generous: the published accounting is partially
    # unspecified; see EXPERIMENTS.md for the discussion).
    for name in DESIGNS:
        e, p = est[name], TABLE4[name]
        assert e.fits
        assert abs(e.lut - p["lut"]) / p["lut"] < 0.25
        assert abs(e.dsp - p["dsp"]) / p["dsp"] < 0.50
        if p["uram"]:
            assert abs(e.uram - p["uram"]) / p["uram"] < 0.25
        else:
            assert e.uram == 0
