"""Ablation benches for the design choices DESIGN.md calls out (E11).

Not paper figures, but the co-design's load-bearing decisions:

* **LUT bin count** — encoding fidelity (vs the cosine teacher encoder) and
  on-chip storage vs number of equal-frequency bins; 128 bins (the paper's
  choice) sits at the fidelity knee.
* **Prefetching** — §IV-C claims attention-released prefetch hides neighbor
  fetch latency behind the MUU; disabling it must cost throughput.
* **Updater scan width** — the commit pointer scans 3 lines/cycle in the
  paper; narrower scans stall the write-back path.
* **Pruning policy** — attention-score pruning vs random and vs
  most-recent-k pruning: the learned policy should match or beat both on
  attention-mass retention.
* **Processing batch size Nb** — throughput saturation and the latency cost
  of oversizing.
"""

import numpy as np
import pytest

from repro.datasets import encoder_input_deltas
from repro.hw import FPGAAccelerator, U200_DESIGN, ZCU104_DESIGN, UpdaterCache
from repro.models import CosineTimeEncoder, LUTTimeEncoder, ModelConfig, TGNN
from repro.models.attention import _masked_softmax_np
from repro.models.pruning import top_k_mask
from repro.reporting import render_table, save_result


def test_ablation_lut_bins(benchmark, capsys, wiki):
    """Encoding error and storage vs bin count (paper picks 128)."""
    deltas = encoder_input_deltas(wiki)
    ref = CosineTimeEncoder(100, rng=np.random.default_rng(0))
    probe = np.random.default_rng(1).choice(deltas, size=4000)
    exact = ref.encode_numpy(probe)
    rows = []
    for bins in (8, 16, 32, 64, 128, 256):
        enc = LUTTimeEncoder(100, n_bins=bins, rng=np.random.default_rng(2))
        enc.calibrate(deltas, reference=ref)
        approx = enc.encode_numpy(probe)
        err = float(np.mean(np.abs(approx - exact)))
        rows.append({"bins": bins, "mean_abs_err": err,
                     "storage_words": enc.storage_words([300, 100])})
    table = render_table(rows, precision=4,
                         title="Ablation — LUT time-encoder bin count")
    with capsys.disabled():
        print(table)
    save_result("ablation_lut_bins", table)
    errs = [r["mean_abs_err"] for r in rows]
    assert all(a >= b - 1e-6 for a, b in zip(errs, errs[1:]))  # monotone
    # Fidelity improves with bins but saturates: the cosine encoder's
    # highest-frequency dimensions oscillate faster than any practical bin
    # width, so their error is irreducible (the *learned* entries absorb
    # this during distillation — fidelity to the teacher encoder is only a
    # warm-start criterion).
    assert errs[4] < 0.75 * errs[0]

    benchmark(lambda: LUTTimeEncoder(100, n_bins=128).calibrate(deltas))


def test_ablation_prefetch(benchmark, capsys, wiki, wiki_np_models):
    """§IV-C prefetch on/off on both boards."""
    model = wiki_np_models["NP(M)"]
    rows = []
    for board, hw in (("u200", U200_DESIGN), ("zcu104", ZCU104_DESIGN)):
        for prefetch in (True, False):
            acc = FPGAAccelerator(model, hw.with_(prefetch=prefetch))
            rep = acc.run_stream(wiki, 1000, end=2000,
                                 rt=model.new_runtime(wiki))
            rows.append({"board": board, "prefetch": prefetch,
                         "thpt_kEs": rep.throughput_eps / 1e3,
                         "mean_lat_ms": rep.mean_latency_s * 1e3})
    table = render_table(rows, precision=2,
                         title="Ablation — neighbor prefetching (§IV-C)")
    with capsys.disabled():
        print(table)
    save_result("ablation_prefetch", table)
    by = {(r["board"], r["prefetch"]): r for r in rows}
    for board in ("u200", "zcu104"):
        assert by[(board, True)]["thpt_kEs"] \
            >= by[(board, False)]["thpt_kEs"]

    benchmark.pedantic(
        lambda: FPGAAccelerator(model, ZCU104_DESIGN).run_stream(
            wiki, 1000, end=1000, rt=model.new_runtime(wiki)),
        rounds=3, iterations=1, warmup_rounds=1)


def test_ablation_updater_scan_width(benchmark, capsys):
    """Commit-pointer scan width (paper: 3 lines/cycle)."""
    rng = np.random.default_rng(0)
    ids = rng.integers(0, 500, size=20_000)   # hot-vertex heavy stream
    rows = []
    for scan in (1, 2, 3, 4, 8):
        cache = UpdaterCache(lines=64, scan_width=scan)
        rep = cache.process(ids)
        rows.append({"scan_width": scan, "cycles": rep.cycles,
                     "stalled": rep.stalled_cycles,
                     "invalidated": rep.invalidated})
    table = render_table(rows, title="Ablation — Updater commit scan width")
    with capsys.disabled():
        print(table)
    save_result("ablation_updater_scan", table)
    cycles = [r["cycles"] for r in rows]
    assert all(a >= b for a, b in zip(cycles, cycles[1:]))
    # Diminishing returns: 3 -> 8 helps far less than 1 -> 3.
    assert (cycles[0] - cycles[2]) >= (cycles[2] - cycles[4])

    benchmark(lambda: UpdaterCache(lines=64, scan_width=3).process(ids))


def test_ablation_pruning_policy(benchmark, capsys, wiki):
    """Attention-score pruning vs random-k vs most-recent-k.

    Metric: retained teacher-attention mass — the fraction of the vanilla
    softmax weight covered by the kept neighbors (higher = the values the
    teacher cares about survive pruning).
    """
    cfg = ModelConfig(memory_dim=16, time_dim=12, embed_dim=16,
                      num_neighbors=10, simplified_attention=True)
    # A trained-ish student: its logits at least order neighbors by recency;
    # we train quickly against a teacher for realistic logits.
    from repro.training import (DistillationConfig, DistillationTrainer,
                                TrainConfig, Trainer)
    teacher_cfg = cfg.with_(simplified_attention=False)
    teacher = TGNN(teacher_cfg, rng=np.random.default_rng(0))
    Trainer(teacher, wiki, TrainConfig(epochs=1, batch_size=100,
                                       seed=0)).train(1000)
    student = TGNN(cfg, rng=np.random.default_rng(1))
    dt = DistillationTrainer(teacher, student, wiki,
                             DistillationConfig(epochs=2, batch_size=100,
                                                kd_weight=4.0, seed=0))
    dt.train(1000)

    # Collect teacher attention and student logits over fresh batches.
    from repro.autograd import no_grad
    from repro.graph import iter_fixed_size
    rt_t = teacher.new_runtime(wiki)
    rt_s = student.new_runtime(wiki)
    masses = {"attention": [], "random": [], "most_recent": []}
    rng = np.random.default_rng(7)
    budget = 4
    with no_grad():
        for batch in iter_fixed_size(wiki, 100, end=2000):
            res_t = teacher.process_batch(batch, rt_t, wiki)
            res_s = student.process_batch(batch, rt_s, wiki)
            if batch.eid[0] < 1000:
                continue    # warm-up period
            alpha = _masked_softmax_np(res_t.attention.logits.data,
                                       res_t.attention.mask)
            mask = res_t.attention.mask
            ok = mask.sum(axis=1) > budget
            if not ok.any():
                continue
            alpha, mask = alpha[ok], mask[ok]
            slog = res_s.attention.logits.data[ok]
            keep_attn = top_k_mask(slog, mask, budget)
            keep_rand = top_k_mask(rng.random(slog.shape), mask, budget)
            recency = np.arange(mask.shape[1], dtype=float)[None, :]
            keep_recent = top_k_mask(np.broadcast_to(recency, mask.shape),
                                     mask, budget)
            masses["attention"].append((alpha * keep_attn).sum(axis=1).mean())
            masses["random"].append((alpha * keep_rand).sum(axis=1).mean())
            masses["most_recent"].append(
                (alpha * keep_recent).sum(axis=1).mean())
    rows = [{"policy": k, "retained_teacher_mass": float(np.mean(v))}
            for k, v in masses.items()]
    table = render_table(rows, precision=4,
                         title=f"Ablation — pruning policy (budget {budget} "
                               f"of {cfg.num_neighbors})")
    with capsys.disabled():
        print(table)
    save_result("ablation_pruning_policy", table)
    by = {r["policy"]: r["retained_teacher_mass"] for r in rows}
    assert by["attention"] > by["random"]
    assert by["attention"] >= by["most_recent"] - 0.05

    benchmark(lambda: top_k_mask(np.random.default_rng(0).random((500, 10)),
                                 np.ones((500, 10), dtype=bool), budget))


def test_ablation_processing_batch_nb(benchmark, capsys, wiki,
                                      wiki_np_models):
    """Pipeline-batch size Nb: throughput saturation vs latency cost."""
    model = wiki_np_models["NP(M)"]
    rows = []
    for nb in (8, 16, 32, 64, 128):
        hw = U200_DESIGN.with_(nb=nb)
        acc = FPGAAccelerator(model, hw)
        rep = acc.run_stream(wiki, 1000, end=2000,
                             rt=model.new_runtime(wiki))
        rows.append({"nb": nb, "thpt_kEs": rep.throughput_eps / 1e3,
                     "mean_lat_ms": rep.mean_latency_s * 1e3})
    table = render_table(rows, precision=2,
                         title="Ablation — processing batch size Nb (U200)")
    with capsys.disabled():
        print(table)
    save_result("ablation_nb", table)
    thpts = [r["thpt_kEs"] for r in rows]
    assert thpts[2] > thpts[0] * 0.9       # small Nb wastes pipeline
    assert max(thpts) / min(thpts) > 1.05  # the knob matters

    benchmark.pedantic(
        lambda: FPGAAccelerator(model, U200_DESIGN.with_(nb=64)).run_stream(
            wiki, 1000, end=1000, rt=model.new_runtime(wiki)),
        rounds=3, iterations=1, warmup_rounds=1)
