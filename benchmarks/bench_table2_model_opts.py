"""Table II reproduction: the accumulated model-optimization ladder.

Per dataset (Wikipedia / Reddit / GDELT analogues) and per variant
(baseline, +SAT, +LUT, +NP(L/M/S)) we report:

* analytic kMEM / kMAC(GRU, GNN, total) at the paper's dimensions, printed
  next to the published values;
* **measured** single-thread throughput of the NumPy deployment path at the
  paper's dimensions, with the baseline-relative speedup;
* AP from an actual knowledge-distillation run at reduced training scale
  (the accuracy protocol is identical to the paper's; absolute AP differs
  because the streams are synthetic — the target is the *small delta*).

The timed kernel is the ladder's inference sweep.
"""

import numpy as np
import pytest

from repro.models import ModelConfig, TGNN, variant_ladder
from repro.pipeline import SoftwareBackend, run_engine
from repro.profiling import table2_ladder
from repro.profiling.paper_reference import TABLE2
from repro.reporting import render_table, save_result
from repro.training import (DistillationConfig, DistillationTrainer,
                            TrainConfig, Trainer)

TRAIN_DIMS = dict(memory_dim=16, time_dim=12, embed_dim=16, num_neighbors=5,
                  lut_bins=32)
TRAIN_BUDGETS = {"+NP(L)": 3, "+NP(M)": 2, "+NP(S)": 1}  # scaled to k=5


def _train_ap_column(graph, seed=0):
    """AP per ladder row via teacher training + student distillation."""
    _, (tr, va, te) = graph.split(0.70, 0.10)
    base_cfg = ModelConfig(edge_dim=graph.edge_dim, node_dim=graph.node_dim,
                           **TRAIN_DIMS)
    teacher = TGNN(base_cfg, rng=np.random.default_rng(seed))
    trainer = Trainer(teacher, graph,
                      TrainConfig(epochs=3, batch_size=100, seed=seed))
    trainer.train(tr)
    teacher_ap = trainer.evaluate(va, te).ap
    aps = {"baseline": teacher_ap}

    def distill(cfg, tag):
        student = TGNN(cfg, rng=np.random.default_rng(seed + 1))
        student.calibrate(graph)
        dt = DistillationTrainer(teacher, student, graph,
                                 DistillationConfig(epochs=3, batch_size=100,
                                                    seed=seed))
        dt.train(tr)
        aps[tag] = dt.as_trainer().evaluate(va, te).ap

    sat_cfg = base_cfg.with_(simplified_attention=True)
    lut_cfg = sat_cfg.with_(lut_time_encoder=True)
    distill(sat_cfg, "+SAT")
    distill(lut_cfg, "+LUT")
    for tag, budget in TRAIN_BUDGETS.items():
        distill(lut_cfg.with_(pruning_budget=budget), tag)
    return aps


def _measured_throughput(graph, end=2000):
    """Single-thread kE/s at the paper's dimensions per ladder variant."""
    base = ModelConfig(edge_dim=graph.edge_dim, node_dim=graph.node_dim)
    out = {}
    for cfg in variant_ladder(base):
        model = TGNN(cfg, rng=np.random.default_rng(0))
        model.calibrate(graph)
        backend = SoftwareBackend(model, graph)
        run_engine(backend, graph, 200, end=400)          # warm-up
        rep = run_engine(backend, graph, 200, start=400, end=end)
        out[cfg.name] = rep.throughput_eps / 1e3
    return out


@pytest.mark.parametrize("dataset", ["wikipedia", "reddit", "gdelt"])
def test_table2_ladder(benchmark, capsys, datasets, dataset):
    graph = datasets[dataset]
    base = ModelConfig(edge_dim=graph.edge_dim, node_dim=graph.node_dim)

    analytic = table2_ladder(base)
    thpt = _measured_throughput(graph)
    aps = _train_ap_column(graph)
    paper = {r["model"]: r for r in TABLE2[dataset]}

    rows = []
    for a in analytic:
        name = a["model"]
        p = paper[name]
        rows.append({
            "model": name,
            "kMEM": a["kMEM"], "kMEM_ppr": p["kMEM"],
            "GRU": a["kMAC_GRU"], "GRU_ppr": p["kMAC_GRU"],
            "GNN": a["kMAC_GNN"], "GNN_ppr": p["kMAC_GNN"],
            "tot%": a["kMAC_pct"], "tot%_ppr": p["kMAC_pct"],
            "AP": aps[name], "dAP": aps[name] - aps["baseline"],
            "dAP_ppr": p["ap_delta"],
            "kE/s": thpt[name],
            "x": thpt[name] / thpt["baseline"],
            "x_ppr": p["speedup"],
        })
    table = render_table(rows, precision=3,
                         title=f"Table II — {dataset} "
                               f"(ours vs paper '_ppr' columns)")
    with capsys.disabled():
        print(table)
    save_result(f"table2_{dataset}", table)

    # --- shape assertions --------------------------------------------------
    speedups = [r["x"] for r in rows]
    assert speedups[0] == 1.0
    assert speedups[-1] == max(speedups)          # NP(S) fastest
    assert speedups[-1] > 1.5                     # real measured gain
    # Students may exceed the teacher at toy scale (the simplified attention
    # regularises); the claim to check is that no variant LOSES much AP.
    assert min(r["dAP"] for r in rows[1:]) > -0.12
    assert rows[3]["kMEM"] < rows[0]["kMEM"]      # NP reduces MEMs

    # --- timed kernel: one ladder inference pass ---------------------------
    model = TGNN(base.with_(simplified_attention=True, lut_time_encoder=True,
                            pruning_budget=2), rng=np.random.default_rng(0))
    model.calibrate(graph)
    model.prepare_inference()
    rt = model.new_runtime(graph)
    batches = [graph.slice(i, i + 200) for i in range(0, 1000, 200)]

    def step():
        for b in batches:
            model.infer_batch(b, rt, graph)

    benchmark.pedantic(step, rounds=3, iterations=1, warmup_rounds=1)
