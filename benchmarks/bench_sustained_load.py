"""Extension experiment: response time under sustained streaming load.

The paper's Fig. 5 latencies assume an idle accelerator per batch.  A
deployed system also queues: if a window closes while the device is busy,
its response time includes waiting.  This bench replays the Wikipedia
analogue's real 15-minute arrival process against the three systems at
increasing load multipliers (stream-time compression) and reports
utilization and response-time percentiles — the measurements an SLO needs.

Shape expectations: all systems are stable at 1x; as load multiplies, the
slowest system (CPU model) saturates first and its waiting time diverges;
the U200 sustains orders of magnitude more compression.
"""

import numpy as np
import pytest

from repro.hw import FPGAAccelerator, U200_DESIGN, ZCU104_DESIGN
from repro.models import ModelConfig
from repro.perf import CPU_32T, GPU
from repro.pipeline import (FIFTEEN_MINUTES, ModeledGPPBackend,
                            SimulatedFPGABackend, replay_under_load)
from repro.profiling import count_ops
from repro.reporting import render_table, save_result

SPEEDUPS = [1.0, 100.0, 3000.0, 30000.0]


def test_sustained_load(benchmark, capsys, wiki, wiki_np_models):
    model = wiki_np_models["NP(M)"]
    start = int(wiki.num_edges * 0.5)
    counts_base = count_ops(ModelConfig())

    def backends():
        return {
            "u200": SimulatedFPGABackend(
                FPGAAccelerator(model, U200_DESIGN), wiki),
            "zcu104": SimulatedFPGABackend(
                FPGAAccelerator(model, ZCU104_DESIGN), wiki),
            "gpu": ModeledGPPBackend(GPU, counts_base, model, wiki,
                                     functional=False),
            "cpu": ModeledGPPBackend(CPU_32T, counts_base, model, wiki,
                                     functional=False),
        }

    rows = []
    stats_by = {}
    for speedup in SPEEDUPS:
        for name, be in backends().items():
            s = replay_under_load(be, wiki, window_s=FIFTEEN_MINUTES,
                                  start=start, speedup=speedup)
            stats_by[(name, speedup)] = s
            rows.append({"load_x": speedup, "backend": name,
                         "util_pct": 100 * s.utilization,
                         "mean_wait_ms": s.mean_wait_s * 1e3,
                         "p95_resp_ms": s.p95_response_s * 1e3,
                         "stable": s.stable})
    table = render_table(rows, precision=3,
                         title="Sustained load — response time vs load "
                               "multiplier (Wikipedia, NP(M))")
    with capsys.disabled():
        print(table)
    save_result("sustained_load", table)

    # Shape assertions.
    for name in ("u200", "zcu104", "gpu", "cpu"):
        assert stats_by[(name, 1.0)].stable
        assert stats_by[(name, 1.0)].mean_wait_s < 1e-6
    # Utilization ordering at high load mirrors the latency ordering.
    hot = SPEEDUPS[-1]
    assert stats_by[("u200", hot)].utilization \
        < stats_by[("gpu", hot)].utilization \
        < stats_by[("cpu", hot)].utilization
    # CPU saturates (or nearly) at the hottest load while U200 stays cold.
    assert stats_by[("cpu", hot)].utilization > 0.5
    assert stats_by[("u200", hot)].utilization < 0.2

    benchmark.pedantic(
        lambda: replay_under_load(
            SimulatedFPGABackend(FPGAAccelerator(model, U200_DESIGN), wiki),
            wiki, window_s=FIFTEEN_MINUTES, start=start, speedup=100.0),
        rounds=3, iterations=1, warmup_rounds=1)
