"""Table I reproduction: per-part complexity + execution-time case study.

Paper artifact: kMEM / kMAC per dynamic node embedding for the four
pipeline parts (sample / memory / GNN / update) on Wikipedia and Reddit,
plus execution times on 1-thread CPU, 32-thread CPU, and GPU.

We print (a) our closed-form counts next to the paper's, (b) our *measured*
single-thread per-part times from the NumPy deployment path, and (c) the
calibrated 32T/GPU cost-model times.  The timed kernel under
pytest-benchmark is the full baseline inference step.
"""

import numpy as np
import pytest

from repro.models import ModelConfig, TGNN
from repro.perf import CPU_32T, GPU
from repro.pipeline import SoftwareBackend, run_engine
from repro.profiling import count_ops, table1_breakdown
from repro.profiling.paper_reference import TABLE1
from repro.reporting import render_table, save_result


def _baseline_model(graph):
    cfg = ModelConfig(edge_dim=graph.edge_dim, node_dim=graph.node_dim)
    m = TGNN(cfg, rng=np.random.default_rng(0))
    return m


@pytest.mark.parametrize("dataset", ["wikipedia", "reddit"])
def test_table1_breakdown(benchmark, capsys, datasets, dataset):
    graph = datasets[dataset]
    model = _baseline_model(graph)
    cfg = model.cfg

    # --- measured per-part single-thread times ---------------------------- #
    backend = SoftwareBackend(model, graph)
    run_engine(backend, graph, batch_size=200, end=600)      # warm-up
    backend.timings.clear()
    report = run_engine(backend, graph, batch_size=200, start=600, end=2600)
    n_emb = 2 * report.n_edges
    measured_ns = {part: backend.timings.get(part, 0.0) / n_emb * 1e9
                   for part in ("sample", "memory", "gnn", "update")}
    measured_ns["total"] = sum(measured_ns.values())

    # --- modeled 32T / GPU per-part times --------------------------------- #
    counts = count_ops(cfg)
    t32 = CPU_32T.part_times_s(counts, {"sample": 9e-9, "update": 21e-9})
    tgpu = GPU.part_times_s(counts, {"sample": 8e-9, "update": 17e-9})

    rows = []
    for row in table1_breakdown(cfg):
        part = row["part"]
        ref = TABLE1[dataset].get(part, {})
        rows.append({
            "part": part,
            "kMEM": row["kMEM"], "kMEM_paper": ref.get("kMEM", float("nan")),
            "kMAC": row["kMAC"], "kMAC_paper": ref.get("kMAC", float("nan")),
            "t_1T_meas_ns": measured_ns.get(
                part, sum(measured_ns[p] for p in
                          ("sample", "memory", "gnn", "update"))
                if part == "total" else 0.0),
            "t_1T_paper_ns": ref.get("t_1cpu", float("nan")),
            "t_32T_model_ns": (t32.get(part, 0.0)
                               or sum(t32.values()) * (part == "total")) * 1e9,
            "t_gpu_model_ns": (tgpu.get(part, 0.0)
                               or sum(tgpu.values()) * (part == "total")) * 1e9,
        })
    table = render_table(rows, precision=2,
                         title=f"Table I — {dataset} (ours vs paper)")
    with capsys.disabled():
        print(table)
    save_result(f"table1_{dataset}", table)

    # Shape assertions mirroring the paper's observations.
    macs = {r["part"]: r["kMAC"] for r in rows}
    mems = {r["part"]: r["kMEM"] for r in rows}
    assert macs["gnn"] / macs["total"] > 0.80          # GNN dominates compute
    assert mems["memory"] / mems["total"] > 0.80       # memory part dominates MEM
    assert measured_ns["gnn"] > measured_ns["sample"]  # 1T: compute-bound

    # --- timed kernel ------------------------------------------------------ #
    rt = model.new_runtime(graph)
    batches = [graph.slice(i, i + 200) for i in range(0, 1000, 200)]

    def step():
        for b in batches:
            model.infer_batch(b, rt, graph)

    benchmark.pedantic(step, rounds=3, iterations=1, warmup_rounds=1)
