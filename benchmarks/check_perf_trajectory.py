#!/usr/bin/env python
"""CI guard for the event-core perf trajectory.

Compares the ``BENCH_events_per_sec.json`` artifact emitted by
``bench_serving_scale.py::test_event_core_speedup`` against the committed
baseline in ``benchmarks/baselines/events_per_sec.json`` and fails when
the vectorized-vs-heap speedup ratio regresses by more than the allowed
tolerance.  The ratio — not absolute events/sec — is compared because
both lanes run on the same machine in the same process, so the ratio is
hardware-independent while absolute throughput is not.

The same guard covers ``BENCH_measured_backend.json`` from
``test_measured_backend_scaling`` against
``benchmarks/baselines/measured_events_per_sec.json`` — there the ratio
is the measured worker pool's event-time throughput at ``workers=4`` vs
``workers=1``, equally hardware-independent (lane arithmetic over
measured durations, not wall-clock overlap), and
``BENCH_autoscale.json`` from ``test_autoscale_diurnal`` against
``benchmarks/baselines/autoscale_server_seconds.json`` — there the
ratio is static-peak server-seconds over autoscaled server-seconds on
the deterministic diurnal workload, pure event-time arithmetic and so
exactly reproducible.

Other ``BENCH_*`` artifacts (e.g. ``BENCH_failover.json`` from the
failure-injection sweep) carry no ``speedup_ratio``; pointing the guard
at one is a clean no-op rather than a KeyError, so CI can glob the
results directory without special-casing which artifact is which.

Usage::

    python benchmarks/check_perf_trajectory.py \
        results/BENCH_events_per_sec.json \
        benchmarks/baselines/events_per_sec.json
"""

from __future__ import annotations

import json
import sys

TOLERANCE = 0.20   # fail below (1 - TOLERANCE) x baseline ratio


def main(argv: list[str]) -> int:
    if len(argv) != 3:
        print(__doc__)
        return 2
    current_path, baseline_path = argv[1], argv[2]
    with open(current_path) as fh:
        current = json.load(fh)
    with open(baseline_path) as fh:
        baseline = json.load(fh)

    if "speedup_ratio" not in current:
        print(f"skip: {current_path} carries no speedup_ratio "
              f"(not a perf-trajectory artifact); nothing to compare.")
        return 0

    cur = float(current["speedup_ratio"])
    base = float(baseline["speedup_ratio"])
    floor = (1.0 - TOLERANCE) * base
    print(f"event-core speedup ratio: current {cur:.2f}x, "
          f"baseline {base:.2f}x, floor {floor:.2f}x "
          f"(tolerance {TOLERANCE:.0%})")
    if cur < floor:
        print(f"FAIL: event core regressed more than {TOLERANCE:.0%} "
              f"below the committed baseline "
              f"({cur:.2f}x < {floor:.2f}x). If the regression is "
              f"intentional, update benchmarks/baselines/"
              f"events_per_sec.json in the same change.")
        return 1
    if cur > base * (1.0 + TOLERANCE):
        # Not a failure — but invite a baseline bump so the guard stays
        # tight around reality.
        print(f"note: current ratio {cur:.2f}x is well above baseline; "
              f"consider raising the committed baseline.")
    print("OK: event-core perf trajectory holds.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
