"""Figure 7 reproduction: the accuracy-latency frontier at batch size 200.

Paper artifact: AP vs latency on Wikipedia for
  * TGN-attn on CPU (32T) and GPU            (accurate, slow);
  * APAN on CPU and GPU                      (fast, less accurate);
  * ours NP(L/M/S) on ZCU104 and U200        (accurate AND fast).

Accuracy comes from real training runs at reduced scale (identical protocol
for every system: same stream, same splits, same negative sampling).
Latency comes from the calibrated GPP cost models for the baselines and the
cycle simulator for ours.

Reproduction targets (shape): ours dominates APAN in accuracy at comparable
or better latency; U200 points sit left of (faster than) the GPU points;
TGN baseline is the accuracy ceiling and the latency worst case.
"""

import numpy as np
import pytest

from repro.hw import FPGAAccelerator, U200_DESIGN, ZCU104_DESIGN
from repro.models import APAN, ModelConfig, TGNN
from repro.perf import CPU_32T, GPU
from repro.profiling import count_ops, count_ops_apan
from repro.reporting import render_table, save_result
from repro.training import (DistillationConfig, DistillationTrainer,
                            TrainConfig, Trainer, average_precision)

BATCH = 200
TRAIN_DIMS = dict(memory_dim=16, time_dim=12, embed_dim=16, num_neighbors=5,
                  lut_bins=32)
BUDGETS = {"NP(L)": 3, "NP(M)": 2, "NP(S)": 1}   # scaled to k=5


def _train_all(graph):
    """Train TGN teacher, APAN, and the three distilled NP students."""
    _, (tr, va, te) = graph.split(0.70, 0.10)
    cfg = ModelConfig(edge_dim=graph.edge_dim, node_dim=graph.node_dim,
                      **TRAIN_DIMS)
    teacher = TGNN(cfg, rng=np.random.default_rng(0))
    trainer = Trainer(teacher, graph, TrainConfig(epochs=3, batch_size=100,
                                                  seed=0))
    trainer.train(tr)
    aps = {"TGN": trainer.evaluate(va, te).ap}

    # APAN under the identical protocol.
    apan = APAN(cfg, mailbox_size=TRAIN_DIMS["num_neighbors"],
                rng=np.random.default_rng(1))
    apan_ap = _train_apan(apan, graph, tr, va, te)
    aps["APAN"] = apan_ap

    lut_cfg = cfg.with_(simplified_attention=True, lut_time_encoder=True)
    for tag, budget in BUDGETS.items():
        student = TGNN(lut_cfg.with_(pruning_budget=budget),
                       rng=np.random.default_rng(2))
        student.calibrate(graph)
        dt = DistillationTrainer(teacher, student, graph,
                                 DistillationConfig(epochs=3, batch_size=100,
                                                    seed=0),
                                 warm_start=True)
        dt.train(tr)
        aps[tag] = dt.as_trainer().evaluate(va, te).ap
    return aps


def _train_apan(apan, graph, tr, va, te):
    """Self-supervised APAN training + streaming AP evaluation."""
    from repro.autograd import Tensor, no_grad
    from repro.autograd import functional as F
    from repro.autograd.optim import Adam, clip_grad_norm
    from repro.graph import iter_fixed_size
    from repro.models import LinkPredictor

    rng = np.random.default_rng(3)
    pred = LinkPredictor(apan.cfg.embed_dim, rng=rng)
    opt = Adam(list(apan.parameters()) + list(pred.parameters()), lr=1e-3)
    for _ in range(3):
        rt = apan.new_runtime(graph)
        for batch in iter_fixed_size(graph, 100, end=tr):
            n = len(batch)
            neg_ids = rng.integers(0, graph.num_nodes, n)
            # Negatives go through the SAME query path, pre-update.
            neg = apan.embed_nodes(neg_ids, batch.t, rt, graph)
            emb = apan.process_batch(batch, rt, graph)
            src = emb[np.arange(0, 2 * n, 2)]
            dst = emb[np.arange(1, 2 * n, 2)]
            logits = Tensor.concat([pred(src, dst), pred(src, neg)], axis=0)
            labels = np.concatenate([np.ones(n), np.zeros(n)])
            loss = F.bce_with_logits(logits, labels)
            opt.zero_grad()
            loss.backward()
            clip_grad_norm(opt.parameters, 5.0)
            opt.step()
    # Evaluation.
    rt = apan.new_runtime(graph)
    labels_all, scores_all = [], []
    ev = np.random.default_rng(12345)
    with no_grad():
        for batch in iter_fixed_size(graph, 100, end=te):
            n = len(batch)
            neg_ids = ev.integers(0, graph.num_nodes, n)
            neg = apan.embed_nodes(neg_ids, batch.t, rt, graph).data
            emb = apan.process_batch(batch, rt, graph).data
            if batch.eid[0] < va:
                continue
            src = emb[np.arange(0, 2 * n, 2)]
            dst = emb[np.arange(1, 2 * n, 2)]
            pos_s = pred.score_numpy(src, dst)
            neg_s = pred.score_numpy(src, neg)
            scores_all.append(np.concatenate([pos_s, neg_s]))
            labels_all.append(np.concatenate([np.ones(n), np.zeros(n)]))
    return average_precision(np.concatenate(labels_all),
                             np.concatenate(scores_all))


def test_fig7_accuracy_latency_frontier(benchmark, capsys, wiki,
                                        wiki_np_models):
    aps = _train_all(wiki)

    # Latencies at batch 200 (paper-dimension op counts for the baselines,
    # cycle simulation for ours).
    base_counts = count_ops(ModelConfig())
    apan_counts = count_ops_apan(ModelConfig())
    points = [
        {"system": "TGN", "platform": "cpu-32t", "ap": aps["TGN"],
         "latency_ms": CPU_32T.latency_s(base_counts, BATCH) * 1e3},
        {"system": "TGN", "platform": "gpu", "ap": aps["TGN"],
         "latency_ms": GPU.latency_s(base_counts, BATCH) * 1e3},
        {"system": "APAN", "platform": "cpu-32t", "ap": aps["APAN"],
         "latency_ms": CPU_32T.latency_s(apan_counts, BATCH,
                                         light_runtime=True) * 1e3},
        {"system": "APAN", "platform": "gpu", "ap": aps["APAN"],
         "latency_ms": GPU.latency_s(apan_counts, BATCH,
                                     light_runtime=True) * 1e3},
    ]
    for tag in BUDGETS:
        model = wiki_np_models[tag]
        for board, hw in (("u200", U200_DESIGN), ("zcu104", ZCU104_DESIGN)):
            lat = FPGAAccelerator(model, hw).latency_single_batch(
                wiki, BATCH, warmup_edges=1000)
            points.append({"system": f"ours-{tag}", "platform": board,
                           "ap": aps[tag], "latency_ms": lat * 1e3})

    points.sort(key=lambda p: p["latency_ms"])
    table = render_table(points, precision=4,
                         title="Figure 7 — accuracy vs latency "
                               "(Wikipedia analogue, batch 200)")
    with capsys.disabled():
        print(table)
    save_result("fig7_accuracy_latency", table)

    by = {(p["system"], p["platform"]): p for p in points}

    # --- shape assertions ---------------------------------------------------
    # APAN trades accuracy for latency against TGN on the same platform.
    assert by[("APAN", "gpu")]["latency_ms"] < by[("TGN", "gpu")]["latency_ms"]
    assert aps["APAN"] < aps["TGN"]
    # Ours beats APAN's accuracy...
    for tag in BUDGETS:
        assert aps[tag] > aps["APAN"]
    # ...and the U200 points are faster than the GPU baselines.
    for tag in BUDGETS:
        assert by[(f"ours-{tag}", "u200")]["latency_ms"] \
            < by[("TGN", "gpu")]["latency_ms"]
    # ZCU104 sits in the GPU's latency neighbourhood (paper: "similar").
    assert by[("ours-NP(S)", "zcu104")]["latency_ms"] \
        < 4 * by[("TGN", "gpu")]["latency_ms"]
    # Ours loses little accuracy vs the TGN ceiling.
    assert min(aps[tag] for tag in BUDGETS) > aps["TGN"] - 0.12

    benchmark.pedantic(
        lambda: FPGAAccelerator(wiki_np_models["NP(M)"], U200_DESIGN)
        .latency_single_batch(wiki, BATCH),
        rounds=3, iterations=1, warmup_rounds=1)
