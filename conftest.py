"""Repo-wide pytest configuration: the tier-1 / tier-2 split.

Tier-1 (``pytest -x -q``, the CI gate) must stay seconds-fast, so slow
*statistical* tests — distributional validation of the queue simulator
against closed-form M/M/1 / M/M/c results, large-sample percentile checks —
are marked ``tier2`` and deselected by default.  Run them explicitly with::

    pytest -m tier2

Any ``-m`` expression that mentions ``tier2`` disables the auto-deselect,
so ``pytest -m "tier2 or smoke"`` behaves as written.
"""

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "tier2: slow statistical test, excluded from tier-1; run with "
        "`pytest -m tier2`")


def pytest_collection_modifyitems(config, items):
    if "tier2" in (config.getoption("markexpr", default="") or ""):
        return
    skip = pytest.mark.skip(
        reason="tier2 statistical test; run `pytest -m tier2`")
    for item in items:
        if "tier2" in item.keywords:
            item.add_marker(skip)
