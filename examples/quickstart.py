"""Quickstart: co-designed temporal GNN inference in ~60 lines.

Builds a synthetic interaction stream, instantiates the paper's co-designed
model (simplified attention + LUT time encoder + neighbor pruning), runs it
through (a) the measured single-thread software engine and (b) the simulated
U200 accelerator, and prints the complexity/performance summary.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.datasets import wikipedia_like
from repro.hw import FPGAAccelerator, U200_DESIGN, estimate_resources
from repro.models import ModelConfig, TGNN
from repro.pipeline import SoftwareBackend, run_engine
from repro.profiling import count_ops


def main() -> None:
    # 1. A Wikipedia-like interaction stream (users x pages, 172-d edge
    #    features, 30 days, power-law inter-event gaps).
    graph = wikipedia_like(num_edges=4000, num_users=400, num_items=60)
    print(f"stream: {graph}")

    # 2. The co-designed model: NP(M) = simplified attention (Eq. 16)
    #    + LUT time encoder (128 equal-frequency bins) + pruning budget 4.
    cfg = ModelConfig(simplified_attention=True, lut_time_encoder=True,
                      pruning_budget=4, name="NP(M)")
    model = TGNN(cfg, rng=np.random.default_rng(0))
    model.calibrate(graph)          # fit LUT bin edges from stream Δt stats
    model.prepare_inference()       # pre-multiply LUT x weight matrices

    baseline = count_ops(ModelConfig())
    ours = count_ops(cfg)
    print(f"\ncomplexity per embedding: "
          f"{baseline.total_macs / 1e3:.1f} kMAC -> "
          f"{ours.total_macs / 1e3:.1f} kMAC "
          f"({100 * (1 - ours.total_macs / baseline.total_macs):.0f}% less), "
          f"{baseline.total_mems / 1e3:.1f} kMEM -> "
          f"{ours.total_mems / 1e3:.1f} kMEM")

    # 3. Software deployment path (measured, single thread).
    backend = SoftwareBackend(model, graph)
    report = run_engine(backend, graph, batch_size=200, end=2000)
    print(f"\nsoftware (1 thread, measured): "
          f"{report.throughput_eps / 1e3:.1f} kE/s, "
          f"mean batch latency {report.mean_latency_s * 1e3:.2f} ms")
    emb = backend.rt.state.memory
    print(f"vertex memory table: shape {emb.shape}, "
          f"{np.count_nonzero(np.any(emb != 0, axis=1))} vertices touched")

    # 4. Simulated U200 accelerator (identical embeddings, modeled timing).
    acc = FPGAAccelerator(model, U200_DESIGN)
    hw_report = acc.run_stream(graph, batch_size=200, end=2000)
    print(f"\nU200 accelerator (simulated): "
          f"{hw_report.throughput_eps / 1e3:.1f} kE/s, "
          f"mean batch latency {hw_report.mean_latency_s * 1e3:.2f} ms, "
          f"{hw_report.updater_invalidated} redundant updates eliminated")

    est = estimate_resources(cfg, U200_DESIGN)
    print(f"U200 resources: {est.dsp} DSP, {est.bram} BRAM, "
          f"{est.uram} URAM, {est.lut / 1e3:.0f}k LUT (fits: {est.fits})")


if __name__ == "__main__":
    main()
