"""Knowledge-distillation workflow: from TGN-attn teacher to deployable student.

Walks the full §III pipeline on a Reddit-like stream:

1. train the vanilla TGN-attn teacher by temporal self-supervision;
2. distill the ladder of simplified students (+SAT, +LUT, +NP) with the
   Eq. (17) soft cross-entropy on attention logits;
3. report the mini Table II: complexity, accuracy retention, measured
   single-thread speedup, and teacher-student attention agreement.

Run:  python examples/distillation_workflow.py
"""

import numpy as np

from repro.datasets import reddit_like
from repro.models import ModelConfig, TGNN
from repro.pipeline import SoftwareBackend, run_engine
from repro.profiling import count_ops
from repro.reporting import render_table
from repro.training import (DistillationConfig, DistillationTrainer,
                            TrainConfig, Trainer)


def main() -> None:
    graph = reddit_like(num_edges=3000, num_users=300, num_items=40)
    _, (train_end, val_end, test_end) = graph.split(0.70, 0.10)

    dims = dict(memory_dim=24, time_dim=16, embed_dim=24,
                edge_dim=graph.edge_dim, num_neighbors=6, lut_bins=64)
    teacher_cfg = ModelConfig(**dims)

    # --- 1. teacher -------------------------------------------------------- #
    teacher = TGNN(teacher_cfg, rng=np.random.default_rng(0))
    trainer = Trainer(teacher, graph, TrainConfig(epochs=4, batch_size=100,
                                                  seed=0))
    trainer.train(train_end, log=True)
    teacher_eval = trainer.evaluate(val_end, test_end)
    print(f"\nteacher AP = {teacher_eval.ap:.4f}  "
          f"AUC = {teacher_eval.auc:.4f}")

    # --- 2. distill the ladder ---------------------------------------------- #
    ladder = [
        ("+SAT", teacher_cfg.with_(simplified_attention=True)),
        ("+LUT", teacher_cfg.with_(simplified_attention=True,
                                   lut_time_encoder=True)),
        ("+NP", teacher_cfg.with_(simplified_attention=True,
                                  lut_time_encoder=True, pruning_budget=2)),
    ]
    rows = [{"model": "teacher",
             "kMAC": count_ops(teacher_cfg).total_macs / 1e3,
             "AP": teacher_eval.ap, "dAP": 0.0, "agree": 1.0,
             "kE/s_1T": _measured_throughput(teacher, graph),
             "speedup": 1.0}]
    base_thpt = rows[0]["kE/s_1T"]
    for name, cfg in ladder:
        student = TGNN(cfg, rng=np.random.default_rng(1))
        student.calibrate(graph)
        dt = DistillationTrainer(
            teacher, student, graph,
            DistillationConfig(epochs=4, batch_size=100, kd_weight=2.0,
                               seed=0),
            warm_start=True)
        hist = dt.train(train_end, log=True)
        ev = dt.as_trainer().evaluate(val_end, test_end)
        thpt = _measured_throughput(student, graph)
        rows.append({"model": name,
                     "kMAC": count_ops(cfg).total_macs / 1e3,
                     "AP": ev.ap, "dAP": ev.ap - teacher_eval.ap,
                     "agree": hist[-1]["top1_agreement"],
                     "kE/s_1T": thpt, "speedup": thpt / base_thpt})

    # --- 3. report ----------------------------------------------------------- #
    print(render_table(rows, precision=3,
                       title="Distillation ladder (Reddit-like stream)"))
    worst = min(r["dAP"] for r in rows[1:])
    print(f"\nworst accuracy delta vs teacher: {worst:+.4f} "
          f"(paper reports <= -0.0033 at full scale)")
    print(f"best measured single-thread speedup: "
          f"{max(r['speedup'] for r in rows):.2f}x")


def _measured_throughput(model: TGNN, graph) -> float:
    model.prepare_inference()
    backend = SoftwareBackend(model, graph)
    run_engine(backend, graph, 200, end=400)
    rep = run_engine(backend, graph, 200, start=400, end=2400)
    return rep.throughput_eps / 1e3


if __name__ == "__main__":
    main()
