"""Design-space exploration with the §V performance model + resource estimator.

Given a target FPGA (Table III budget) and a co-designed model, sweep the
accelerator design knobs — CU count, MUU array size Sg, FAM/FTM parallelism,
processing batch Nb — evaluate each point analytically (no simulation in the
inner loop: the performance model is closed-form), discard configurations
that don't fit the board, and print the throughput/DSP Pareto frontier.
The chosen point is then cross-checked against the cycle simulator.

This is the workflow a deployment engineer would actually run before
synthesis — the reason the paper builds a predictive model at all.

Run:  python examples/design_space_exploration.py
"""

import itertools

import numpy as np

from repro.datasets import wikipedia_like
from repro.hw import (FPGAAccelerator, HardwareConfig, U200,
                      estimate_resources)
from repro.models import ModelConfig, TGNN
from repro.perf import PerformanceModel
from repro.reporting import render_table

MODEL = ModelConfig(simplified_attention=True, lut_time_encoder=True,
                    pruning_budget=4, name="NP(M)")

SWEEP = {
    "n_cu": [1, 2, 3],
    "sg": [4, 8, 16],
    "s_fam": [8, 16, 32],
    "s_ftm": [(4, 4), (8, 8), (16, 8)],
    "nb": [16, 32, 64],
}


def enumerate_designs():
    for n_cu, sg, s_fam, s_ftm, nb in itertools.product(*SWEEP.values()):
        if nb % n_cu != 0:
            continue
        yield HardwareConfig(platform=U200, n_cu=n_cu, sg=sg, s_fam=s_fam,
                             s_ftm=s_ftm, nb=nb, freq_mhz=250.0,
                             updater_lines=128)


def pareto(points, x_key, y_key):
    """Non-dominated set: minimal x (DSP), maximal y (throughput)."""
    frontier = []
    for p in sorted(points, key=lambda p: (p[x_key], -p[y_key])):
        if not frontier or p[y_key] > frontier[-1][y_key]:
            frontier.append(p)
    return frontier


def main() -> None:
    points = []
    n_evaluated = n_feasible = 0
    for hw in enumerate_designs():
        n_evaluated += 1
        est = estimate_resources(MODEL, hw)
        if not est.fits:
            continue
        n_feasible += 1
        pred = PerformanceModel(MODEL, hw).predict(1000)
        points.append({
            "n_cu": hw.n_cu, "sg": hw.sg, "s_fam": hw.s_fam,
            "s_ftm": f"{hw.s_ftm[0]}x{hw.s_ftm[1]}", "nb": hw.nb,
            "dsp": est.dsp, "lut_k": est.lut // 1000,
            "thpt_kEs": pred.throughput_eps / 1e3,
            "lat_ms": pred.latency_s * 1e3,
            "_hw": hw,
        })
    print(f"evaluated {n_evaluated} designs, {n_feasible} fit the U200 "
          f"budget ({U200.total_dsps} DSPs, {U200.total_luts} LUTs)")

    frontier = pareto(points, "dsp", "thpt_kEs")
    print(render_table(frontier,
                       columns=["n_cu", "sg", "s_fam", "s_ftm", "nb", "dsp",
                                "lut_k", "thpt_kEs", "lat_ms"],
                       precision=2,
                       title="throughput/DSP Pareto frontier "
                             "(U200, NP(M), batch 1000)"))

    # Cross-check the frontier's best-throughput point on the simulator.
    best = max(frontier, key=lambda p: p["thpt_kEs"])
    graph = wikipedia_like(num_edges=3000, num_users=300, num_items=50)
    model = TGNN(MODEL, rng=np.random.default_rng(0))
    model.calibrate(graph)
    acc = FPGAAccelerator(model, best["_hw"])
    rep = acc.run_stream(graph, batch_size=1000, end=3000)
    err = abs(best["thpt_kEs"] - rep.throughput_eps / 1e3) / \
        (rep.throughput_eps / 1e3)
    print(f"\nselected design: Ncu={best['n_cu']} Sg={best['sg']} "
          f"SFAM={best['s_fam']} SFTM={best['s_ftm']} Nb={best['nb']}")
    print(f"model predicted {best['thpt_kEs']:.1f} kE/s; simulator measured "
          f"{rep.throughput_eps / 1e3:.1f} kE/s (gap {err * 100:.1f}%)")


if __name__ == "__main__":
    main()
