"""Fraud detection on a streaming transaction graph (the paper's §I example).

"A fraud detection application would like to frequently examine all users
involved in newly appearing transactions."  This example builds exactly that
deployment:

1. generate a transaction stream with **injected anomalies** — transactions
   that violate the stream's community structure (a user suddenly hitting a
   merchant no one like them uses);
2. train the co-designed TGNN + link predictor on the clean prefix via
   self-supervision;
3. replay the rest of the stream in 15-minute windows through the simulated
   U200 accelerator, scoring every new transaction with the link predictor;
4. flag the lowest-scoring transactions and report anomaly-detection quality
   (precision@k / AUC) together with the per-window inference latency.

Run:  python examples/fraud_detection.py
"""

import numpy as np

from repro.datasets import StreamSpec, generate_stream
from repro.graph import TemporalGraph, iter_time_windows
from repro.hw import FPGAAccelerator, U200_DESIGN
from repro.models import ModelConfig, TGNN
from repro.pipeline import SimulatedFPGABackend
from repro.training import TrainConfig, Trainer, roc_auc

RNG = np.random.default_rng(7)
ANOMALY_RATE = 0.05


def build_stream_with_anomalies():
    """Community-structured transactions + out-of-pattern injections."""
    spec = StreamSpec(name="payments", num_users=300, num_items=60,
                      num_edges=4000, edge_dim=32, node_dim=0,
                      num_communities=6, p_in_community=0.95, p_repeat=0.5,
                      seed=11)
    g = generate_stream(spec)
    # Inject anomalies: rewire a fraction of destinations to merchants from
    # *other* communities with features from the wrong prototype.
    n = g.num_edges
    is_anomaly = RNG.random(n) < ANOMALY_RATE
    dst = g.dst.copy()
    edge_feat = g.edge_feat.copy()
    item_ids = np.arange(spec.num_users, spec.num_users + spec.num_items)
    for i in np.nonzero(is_anomaly)[0]:
        dst[i] = RNG.choice(item_ids)
        edge_feat[i] = RNG.normal(0.0, 1.0, size=spec.edge_dim)  # off-pattern
    return TemporalGraph(g.src, dst, g.t, edge_feat=edge_feat,
                         node_feat=None, num_nodes=g.num_nodes), is_anomaly


def main() -> None:
    graph, is_anomaly = build_stream_with_anomalies()
    _, (train_end, _, _) = graph.split(0.6, 0.1)
    print(f"stream: {graph}; {is_anomaly.sum()} injected anomalies "
          f"({100 * ANOMALY_RATE:.0f}%)")

    # --- train the co-designed model on the historical prefix ------------- #
    cfg = ModelConfig(memory_dim=32, time_dim=16, embed_dim=32, edge_dim=32,
                      num_neighbors=6, simplified_attention=True,
                      lut_time_encoder=True, lut_bins=64, pruning_budget=3)
    model = TGNN(cfg, rng=np.random.default_rng(0))
    model.calibrate(graph)
    trainer = Trainer(model, graph, TrainConfig(epochs=4, batch_size=100,
                                                seed=0))
    trainer.train(train_end)
    print(f"training done: final loss {trainer.history[-1]['loss']:.4f}")

    # --- deploy: replay live traffic in 15-minute windows ------------------ #
    model.prepare_inference()
    acc = FPGAAccelerator(model, U200_DESIGN)
    backend = SimulatedFPGABackend(acc, graph)
    # Warm deployment state over the training prefix (timing discarded).
    for b in iter_time_windows(graph, 3600.0, end=train_end):
        model.infer_batch(b, backend.rt, graph)

    scores, labels, latencies = [], [], []
    for window in iter_time_windows(graph, 900.0, start=train_end):
        # Score BEFORE the window's edges update state (pre-update query).
        n = len(window)
        res = model.infer_batch(window, backend.rt, graph)
        src = res.embeddings.data[np.arange(0, 2 * n, 2)]
        dst = res.embeddings.data[np.arange(1, 2 * n, 2)]
        link_logit = trainer.predictor.score_numpy(src, dst)
        scores.append(link_logit)
        labels.append(is_anomaly[window.eid])
        # Timing of the same window on the accelerator.
        latencies.append(
            acc.run_stream(graph, batch_size=n, rt=model.new_runtime(graph),
                           batches=[window]).batch_latencies_s[0])

    scores = np.concatenate(scores)
    labels = np.concatenate(labels).astype(float)

    # Low link probability == suspicious.
    auc = roc_auc(labels, -scores)
    k = max(int(labels.sum()), 1)
    flagged = np.argsort(scores)[:k]
    precision_at_k = labels[flagged].mean()
    base_rate = labels.mean()
    print(f"\nanomaly detection over {len(labels)} live transactions:")
    print(f"  AUC(low-score => fraud)  : {auc:.3f}")
    print(f"  precision@{k:<4d}          : {precision_at_k:.3f} "
          f"(base rate {base_rate:.3f}, "
          f"lift {precision_at_k / base_rate:.1f}x)")
    print(f"  per-window latency (U200): mean "
          f"{np.mean(latencies) * 1e6:.1f} us, "
          f"p95 {np.percentile(latencies, 95) * 1e6:.1f} us")

    assert auc > 0.6, "anomaly signal should be clearly above chance"


if __name__ == "__main__":
    main()
