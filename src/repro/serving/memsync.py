"""Versioned cross-shard memory synchronization: exact (not stale) reads.

PR 1's mailbox makes neighbor *tables* exact on every holder, but a shard's
vertex-memory rows for non-held endpoints are stale mirrors: the GRU inputs
and the attention's neighbor-memory gathers silently read values that
diverge from the unsharded runtime.  The source paper never meets this bug
— its co-design keeps the whole Vertex Memory Table coherent on one device
— but streaming accelerators that scale out do: FlowGNN forwards state
through multi-queue streams and DGNN-Booster forwards on-chip state between
pipeline stages.  This module is the distributed-software analogue: a
write-versioned memory cache with pluggable coherence policies, priced
through the same mailbox that already carries cross-shard edges.

Vocabulary
----------
owner write
    A vertex's state rows (memory, mailbox, timestamps) change exactly once
    per batch the vertex appears in; the primary owner always participates
    (it holds the vertex, so the mailbox delivers every incident edge), so
    each such event bumps the vertex's version counter by one.
mirror
    Any non-holder shard that has received the vertex's rows keeps a cached
    copy — a mirror — stamped with the version it received.  A mirror whose
    stamp lags the owner's version is *stale*.
holder
    Owner or replica (see :class:`~repro.serving.placement.Placement`).
    Holders receive every incident edge and therefore observe every write
    event; their rows are never version-stale.

Policies
--------
``none``
    Today's behavior, kept as the explicit baseline: mirrors are never
    refreshed.  The cache still *counts* — ``stale_reads`` and
    ``max_version_lag`` quantify the staleness the deployment tolerates.
``invalidate``
    Write-invalidate: an owner write implicitly invalidates remote mirrors
    (the version stamp lags; invalidation notices piggyback on the edge
    mail and are not counted as row traffic).  A shard reading an invalid
    row pulls the fresh row from the owner — one mailbox round-trip (the
    row transfer counts once in ``sync_counts``; the latency is priced at
    two hops, request + response).
``push``
    Write-update: owner writes eagerly forward the updated rows to every
    mirror holder that receives mail in the same job — the rows ride
    alongside the existing edge mail (one hop each).  Mirrors that sat out
    the job fall back to a pull on their next read, so reads are exact
    under both sync policies; the policies differ in traffic volume and in
    where the latency lands (eager one-hop deliveries vs read-blocking
    round-trips).

Version counters measure *event currency*, not value fidelity: under
``none`` a mirror locally rewritten from a partial edge view is still
tainted (its inputs were stale), so local writes never mark a mirror
current — only a sync delivery does.  Under ``invalidate``/``push`` every
row is repaired before use, which is why the two-phase replay below is
bit-exact.

Exactness
---------
:class:`ShardedRuntime` is the functional replay that closes the gap: it
drives :meth:`~repro.models.tgn.TGNN.update_memory` and
:meth:`~repro.models.tgn.TGNN.embed` as two phases per batch, synchronizing
endpoint rows before the memory stage and neighbor-memory rows between the
stages (DGNN-Booster's inter-stage forwarding, in software).  With
``memsync='push'`` (or ``'invalidate'``) every row a shard reads equals the
unsharded value bit-for-bit, so held vertices' memory tables and embeddings
are bit-identical to the unsharded :class:`~repro.models.tgn.ModelRuntime`
— the acceptance test of this subsystem.  The serving engine does not run
this functional protocol (backends are opaque timing models); it reuses the
same :class:`VersionedMemoryCache` at endpoint granularity to *price* the
sync traffic (``ServingReport.sync_edges`` / ``stale_reads`` /
``max_version_lag``, cross-die transfers charged via ``mail_hop_s``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graph.temporal_graph import EdgeBatch
from .placement import Placement
from .router import CrossShardMailbox, ShardRouter

__all__ = ["MEMSYNC_POLICIES", "ReadOutcome", "VersionedMemoryCache",
           "ShardedRuntime"]

MEMSYNC_POLICIES = ("none", "invalidate", "push")

_EMPTY = np.empty(0, dtype=np.int64)


@dataclass(frozen=True)
class ReadOutcome:
    """What one shard's read-set cost under the cache's policy."""

    pulled: np.ndarray = field(default_factory=lambda: _EMPTY)
    stale_reads: int = 0        # reads served from a stale mirror (none)
    max_lag: int = 0            # largest version lag among those reads


class VersionedMemoryCache:
    """Per-vertex version counters + per-shard mirror stamps.

    Pure accounting: callers drive :meth:`note_reads` /
    :meth:`note_writes` in stream order and act on the returned pull/push
    vertex sets (the engine prices them; :class:`ShardedRuntime` actually
    copies the rows).  The matrices are ``(num_shards, num_nodes)`` — fine
    at simulation scale; a deployment would keep per-shard sparse maps.
    """

    def __init__(self, placement: Placement, policy: str = "none"):
        if policy not in MEMSYNC_POLICIES:
            raise ValueError(f"memsync policy must be one of "
                             f"{MEMSYNC_POLICIES}, got {policy!r}")
        self.policy = policy
        self.placement = placement
        self.assignment = placement.assignment
        self.num_shards = placement.num_shards
        self._holder = placement.holder_matrix()
        n = placement.num_nodes
        # Owner-side truth: one bump per batch the vertex appears in.
        self.version = np.zeros(n, dtype=np.int64)
        # Version each shard's copy of each row reflects.
        self.mirror_version = np.zeros((self.num_shards, n), dtype=np.int64)
        # True once a shard holds a cached copy of a non-held row.
        self._mirror = np.zeros((self.num_shards, n), dtype=bool)
        # Running totals (the engine re-aggregates per served sub-job so it
        # can exclude dropped windows; these count everything observed).
        self.pulled_rows = 0
        self.pushed_rows = 0
        self.stale_reads = 0
        self.max_version_lag = 0

    @property
    def sync_rows(self) -> int:
        """Total rows transferred between shards (pulls + pushes)."""
        return self.pulled_rows + self.pushed_rows

    # ------------------------------------------------------------------ #
    def note_reads(self, shard: int, vertices: np.ndarray) -> ReadOutcome:
        """Account one shard's read-set; returns the rows it must pull.

        Under ``none`` stale reads are only counted; under ``invalidate``
        and ``push`` every stale row is pulled from its owner and the
        mirror stamped current — the caller is responsible for actually
        transferring the returned ``pulled`` rows before using them.
        """
        v = np.unique(np.asarray(vertices, dtype=np.int64))
        v = v[~self._holder[shard, v]]       # holders are never stale
        if not len(v):
            return ReadOutcome()
        lag = self.version[v] - self.mirror_version[shard, v]
        stale = v[lag > 0]
        if self.policy == "none":
            max_lag = int(lag.max(initial=0))
            self.stale_reads += len(stale)
            self.max_version_lag = max(self.max_version_lag, max_lag)
            return ReadOutcome(stale_reads=len(stale),
                               max_lag=max_lag if len(stale) else 0)
        self.mirror_version[shard, stale] = self.version[stale]
        self._mirror[shard, stale] = True
        self.pulled_rows += len(stale)
        return ReadOutcome(pulled=stale)

    def note_writes(self, vertices: np.ndarray,
                    present_shards) -> dict[int, np.ndarray]:
        """Account one batch's owner writes; returns push deliveries.

        ``vertices`` is the batch's (unique) endpoint set; every one of
        them is written exactly once by the batch.  Holders observe the
        event and stay current.  Under ``push`` the updated rows are
        forwarded to mirror holders among ``present_shards`` (the shards
        receiving this job's mail) — the returned ``{shard: vertices}``
        deliveries the caller must apply.  Absent mirrors simply lag and
        repair through the pull fallback on their next read.
        """
        v = np.unique(np.asarray(vertices, dtype=np.int64))
        if not len(v):
            return {}
        self.version[v] += 1
        held = self._holder[:, v]                        # (S, |v|)
        self.mirror_version[:, v] = np.where(
            held, self.version[v][None, :], self.mirror_version[:, v])
        pushes: dict[int, np.ndarray] = {}
        if self.policy == "push":
            for shard in present_shards:
                tgt = v[self._mirror[shard, v] & ~self._holder[shard, v]
                        & (self.mirror_version[shard, v] < self.version[v])]
                if len(tgt):
                    self.mirror_version[shard, tgt] = self.version[tgt]
                    self.pushed_rows += len(tgt)
                    pushes[shard] = tgt
        return pushes

    def transfer_ownership(self, vertices, from_shards, to_shard: int
                           ) -> None:
        """Move ownership of ``vertices`` from ``from_shards`` to
        ``to_shard`` (an online migration's coherence side).

        The handoff delivers the vertices' *current* rows to the new
        owner, so its copy is stamped with the current version — a
        migrated-in vertex is never spuriously stale, and subsequent owner
        writes keep bumping the same counter (version history survives the
        ownership change; the exactness tests rely on this).  The old
        owner keeps its physical copy, which is exact at handoff time, so
        it is registered as an up-to-date *mirror*: under ``push`` it
        keeps receiving updates while present, under ``invalidate``/
        ``none`` it simply ages like any other mirror.

        The caller flips the routing side separately
        (:meth:`~repro.serving.router.ShardRouter.migrate`) and prices the
        transferred rows; this method only maintains coherence metadata.
        """
        v = np.asarray(vertices, dtype=np.int64)
        f = np.broadcast_to(np.asarray(from_shards, dtype=np.int64),
                            v.shape)
        if not 0 <= int(to_shard) < self.num_shards:
            raise ValueError("to_shard out of range")
        # Old-owner bookkeeping first so a degenerate from == to transfer
        # resolves to "still the holder", not a holder-mirror hybrid.
        self._holder[f, v] = False
        self._mirror[f, v] = True
        self.mirror_version[f, v] = self.version[v]
        self._holder[to_shard, v] = True
        self._mirror[to_shard, v] = False
        self.mirror_version[to_shard, v] = self.version[v]


# --------------------------------------------------------------------------- #
class ShardedRuntime:
    """Functional sharded TGNN replay with versioned memory sync.

    One :class:`~repro.models.tgn.ModelRuntime` per shard, a router
    splitting each chronological batch, and the two-phase per-batch drive
    that makes cross-shard reads exact:

    1. *endpoint sync* — each involved shard pulls the stale rows of its
       sub-batch's endpoints (the rows the GRU and mail refresh read);
    2. *memory stage* — :meth:`~repro.models.tgn.TGNN.update_memory` per
       shard (every shard computes the same update for a shared endpoint,
       because the update depends only on the synced pre-batch rows);
    3. *owner writes* — versions bump once per batch vertex; under
       ``push`` the owners' fresh rows are delivered to present mirrors;
    4. *neighbor sync* — each shard pulls the stale memory rows of the
       temporal neighbors its attention will gather (the inter-stage state
       forwarding of DGNN-Booster, in software);
    5. *embedding stage* — :meth:`~repro.models.tgn.TGNN.embed` per shard.

    With ``policy='push'`` or ``'invalidate'`` the held vertices' memory
    tables and embeddings are bit-identical to an unsharded replay;
    ``'none'`` reproduces the stale-mirror divergence this module exists
    to close (and measures it).

    :meth:`migrate` is the online-rebalancing hook: ownership moves
    between batches with the full state handoff (memory rows +
    neighbor-table slices + version-counter transfer), and the exactness
    guarantee above survives the move — the acceptance suite in
    ``tests/unit/test_rebalance.py``.
    """

    def __init__(self, model, graph, num_shards: int | None = None,
                 placement: Placement | None = None, policy: str = "push"):
        if placement is not None:
            self.router = ShardRouter.from_placement(placement)
        else:
            if num_shards is None:
                raise ValueError("pass num_shards or placement")
            self.router = ShardRouter(num_shards, graph.num_nodes)
        self.model = model
        self.graph = graph
        self.cache = VersionedMemoryCache(self.router.placement,
                                          policy=policy)
        self.mailbox = CrossShardMailbox(self.router.num_shards)
        self.runtimes = [model.new_runtime(graph)
                         for _ in range(self.router.num_shards)]

    @property
    def policy(self) -> str:
        return self.cache.policy

    # ------------------------------------------------------------------ #
    def _transfer(self, vertices: np.ndarray, to_shard: int) -> None:
        """Copy full state rows from each vertex's owner to ``to_shard``."""
        if not len(vertices):
            return
        owners = self.router.assignment[vertices]
        self.mailbox.record_sync(owners, to_shard)
        dst = self.runtimes[to_shard].state
        for owner in np.unique(owners):
            rows = vertices[owners == owner]
            src = self.runtimes[owner].state
            dst.memory[rows] = src.memory[rows]
            dst.mailbox[rows] = src.mailbox[rows]
            dst.mail_time[rows] = src.mail_time[rows]
            dst.last_update[rows] = src.last_update[rows]

    def migrate(self, vertices, to_shard: int) -> int:
        """Move ownership of ``vertices`` to ``to_shard`` between batches,
        with the full state handoff an online migration performs.

        Three transfers make the new owner exact (and keep every
        subsequent replay bit-identical to the unsharded runtime under the
        sync policies):

        1. *memory rows* — memory, mailbox, mail-time, and last-update
           rows copied from the old owner, whose rows are exact because it
           held the vertex;
        2. *neighbor-table slice* — the vertex's FIFO ring (neighbors,
           edge ids, times, head, count) copied verbatim, so the new
           owner's gathered neighbor lists equal the unsharded table's;
        3. *coherence metadata* — :meth:`VersionedMemoryCache.\
transfer_ownership` stamps the new owner current and downgrades the old
           owner to an up-to-date mirror, so version counters stay exact
           across the ownership change.

        The handoff is priced like sync traffic: ``HANDOFF_ROWS_PER_VERTEX``
        rows per vertex recorded in the mailbox's ``sync_counts``.
        Replicated vertices are refused (the router enforces it).  Returns
        the number of vertices actually moved (those not already owned by
        ``to_shard``).
        """
        from .rebalance import HANDOFF_ROWS_PER_VERTEX
        v = np.unique(np.asarray(vertices, dtype=np.int64))
        # Validate everything before touching any state: the copy loop
        # below mutates the destination runtime and records sync traffic,
        # so a late refusal would leave a half-applied migration behind.
        if not 0 <= int(to_shard) < self.router.num_shards:
            raise ValueError("to_shard out of range")
        if len(v) and (v.min() < 0 or v.max() >= self.router.num_nodes):
            raise ValueError("vertex out of range")
        for x in v:
            if self.router.placement.replicas.get(int(x)):
                raise ValueError(
                    f"cannot migrate replicated vertex {int(x)}")
        owners = self.router.assignment[v]
        v = v[owners != int(to_shard)]
        owners = owners[owners != int(to_shard)]
        if not len(v):
            return 0
        dst_state = self.runtimes[to_shard].state
        dst_table = self.runtimes[to_shard].sampler.table
        for owner in np.unique(owners):
            rows = v[owners == owner]
            src_state = self.runtimes[owner].state
            src_table = self.runtimes[owner].sampler.table
            dst_state.memory[rows] = src_state.memory[rows]
            dst_state.mailbox[rows] = src_state.mailbox[rows]
            dst_state.mail_time[rows] = src_state.mail_time[rows]
            dst_state.last_update[rows] = src_state.last_update[rows]
            dst_table._nbrs[rows] = src_table._nbrs[rows]
            dst_table._eids[rows] = src_table._eids[rows]
            dst_table._times[rows] = src_table._times[rows]
            dst_table._head[rows] = src_table._head[rows]
            dst_table._count[rows] = src_table._count[rows]
            self.mailbox.record_sync(
                np.repeat(owner, len(rows) * HANDOFF_ROWS_PER_VERTEX),
                to_shard)
        self.router.migrate(v, to_shard)
        self.cache.transfer_ownership(v, owners, to_shard)
        return len(v)

    def process_batch(self, batch: EdgeBatch) -> dict[int, "BatchResult"]:
        """Process one chronological batch across all shards.

        Returns ``{shard: BatchResult}`` for every shard with incident
        edges.  Only the rows of *held* query vertices are exact under the
        sync policies; non-held rows are computed against that shard's
        partial neighbor table (exactly as in deployment, where a shard
        answers queries only for the vertices it holds).
        """
        subs = self.router.split(batch, self.mailbox, cache=self.cache)
        # Endpoint sync happened inside split (phase 1): apply the pulls
        # before any shard's memory stage reads the rows.
        for sb in subs:
            self._transfer(sb.sync_pull, sb.shard)
        updates = {sb.shard: self.model.update_memory(
            sb.batch, self.runtimes[sb.shard]) for sb in subs}
        # Owner writes are exact now; deliver the push rows (phase 3).
        for sb in subs:
            self._transfer(sb.sync_push, sb.shard)
        # Neighbor sync (phase 4): the attention gathers the pre-insertion
        # FIFO neighbors and reads their *memory* rows, which other shards
        # may have rewritten this very batch.  The gather is reused by the
        # embedding stage (the table only changes at insert time, inside
        # ``embed``).
        k = self.model.cfg.num_neighbors
        gathers = {}
        for sb in subs:
            g = self.runtimes[sb.shard].sampler.gather(sb.batch.nodes, k)
            gathers[sb.shard] = g
            out = self.cache.note_reads(sb.shard, np.unique(g.nbrs[g.mask]))
            self._transfer(out.pulled, sb.shard)
        return {sb.shard: self.model.embed(
            sb.batch, self.runtimes[sb.shard], self.graph,
            updates[sb.shard], gathered=gathers[sb.shard]) for sb in subs}

    def held_vertices(self, shard: int) -> np.ndarray:
        """Vertex ids shard ``shard`` holds (owned or replicated)."""
        return np.flatnonzero(self.router._member[shard])
