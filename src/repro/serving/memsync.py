"""Versioned cross-shard memory synchronization: exact (not stale) reads.

PR 1's mailbox makes neighbor *tables* exact on every holder, but a shard's
vertex-memory rows for non-held endpoints are stale mirrors: the GRU inputs
and the attention's neighbor-memory gathers silently read values that
diverge from the unsharded runtime.  The source paper never meets this bug
— its co-design keeps the whole Vertex Memory Table coherent on one device
— but streaming accelerators that scale out do: FlowGNN forwards state
through multi-queue streams and DGNN-Booster forwards on-chip state between
pipeline stages.  This module is the distributed-software analogue: a
write-versioned memory cache with pluggable coherence policies, priced
through the same mailbox that already carries cross-shard edges.

Vocabulary
----------
owner write
    A vertex's state rows (memory, mailbox, timestamps) change exactly once
    per batch the vertex appears in; the primary owner always participates
    (it holds the vertex, so the mailbox delivers every incident edge), so
    each such event bumps the vertex's version counter by one.
mirror
    Any non-holder shard that has received the vertex's rows keeps a cached
    copy — a mirror — stamped with the version it received.  A mirror whose
    stamp lags the owner's version is *stale*.
holder
    Owner or replica (see :class:`~repro.serving.placement.Placement`).
    Holders receive every incident edge and therefore observe every write
    event; their rows are never version-stale.

Policies
--------
``none``
    Today's behavior, kept as the explicit baseline: mirrors are never
    refreshed.  The cache still *counts* — ``stale_reads`` and
    ``max_version_lag`` quantify the staleness the deployment tolerates.
``invalidate``
    Write-invalidate: an owner write implicitly invalidates remote mirrors
    (the version stamp lags; invalidation notices piggyback on the edge
    mail and are not counted as row traffic).  A shard reading an invalid
    row pulls the fresh row from the owner — one mailbox round-trip (the
    row transfer counts once in ``sync_counts``; the latency is priced at
    two hops, request + response).
``push``
    Write-update: owner writes eagerly forward the updated rows to every
    mirror holder that receives mail in the same job — the rows ride
    alongside the existing edge mail (one hop each).  Mirrors that sat out
    the job fall back to a pull on their next read, so reads are exact
    under both sync policies; the policies differ in traffic volume and in
    where the latency lands (eager one-hop deliveries vs read-blocking
    round-trips).

Version counters measure *event currency*, not value fidelity: under
``none`` a mirror locally rewritten from a partial edge view is still
tainted (its inputs were stale), so local writes never mark a mirror
current — only a sync delivery does.  Under ``invalidate``/``push`` every
row is repaired before use, which is why the two-phase replay below is
bit-exact.

Exactness
---------
:class:`ShardedRuntime` is the functional replay that closes the gap: it
drives :meth:`~repro.models.tgn.TGNN.update_memory` and
:meth:`~repro.models.tgn.TGNN.embed` as two phases per batch, synchronizing
endpoint rows before the memory stage and neighbor-memory rows between the
stages (DGNN-Booster's inter-stage forwarding, in software).  With
``memsync='push'`` (or ``'invalidate'``) every row a shard reads equals the
unsharded value bit-for-bit, so held vertices' memory tables and embeddings
are bit-identical to the unsharded :class:`~repro.models.tgn.ModelRuntime`
— the acceptance test of this subsystem.  The serving engine does not run
this functional protocol (backends are opaque timing models); it reuses the
same :class:`VersionedMemoryCache` at endpoint granularity to *price* the
sync traffic (``ServingReport.sync_edges`` / ``stale_reads`` /
``max_version_lag``, cross-die transfers charged via ``mail_hop_s``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graph.temporal_graph import EdgeBatch
from .placement import Placement
from .router import CrossShardMailbox, ShardRouter

__all__ = ["MEMSYNC_POLICIES", "ReadOutcome", "VersionedMemoryCache",
           "ShardedRuntime"]

MEMSYNC_POLICIES = ("none", "invalidate", "push")

_EMPTY = np.empty(0, dtype=np.int64)


@dataclass(frozen=True)
class ReadOutcome:
    """What one shard's read-set cost under the cache's policy."""

    pulled: np.ndarray = field(default_factory=lambda: _EMPTY)
    stale_reads: int = 0        # reads served from a stale mirror (none)
    max_lag: int = 0            # largest version lag among those reads


class VersionedMemoryCache:
    """Per-vertex version counters + per-shard mirror stamps.

    Pure accounting: callers drive :meth:`note_reads` /
    :meth:`note_writes` in stream order and act on the returned pull/push
    vertex sets (the engine prices them; :class:`ShardedRuntime` actually
    copies the rows).  The matrices are ``(num_shards, num_nodes)`` — fine
    at simulation scale; a deployment would keep per-shard sparse maps.
    """

    def __init__(self, placement: Placement, policy: str = "none"):
        if policy not in MEMSYNC_POLICIES:
            raise ValueError(f"memsync policy must be one of "
                             f"{MEMSYNC_POLICIES}, got {policy!r}")
        self.policy = policy
        self.placement = placement
        self.assignment = placement.assignment
        self.num_shards = placement.num_shards
        self._holder = placement.holder_matrix()
        n = placement.num_nodes
        # Owner-side truth: one bump per batch the vertex appears in.
        self.version = np.zeros(n, dtype=np.int64)
        # Version each shard's copy of each row reflects.
        self.mirror_version = np.zeros((self.num_shards, n), dtype=np.int64)
        # True once a shard holds a cached copy of a non-held row.
        self._mirror = np.zeros((self.num_shards, n), dtype=bool)
        # Running totals (the engine re-aggregates per served sub-job so it
        # can exclude dropped windows; these count everything observed).
        self.pulled_rows = 0
        self.pushed_rows = 0
        self.stale_reads = 0
        self.max_version_lag = 0

    @property
    def sync_rows(self) -> int:
        """Total rows transferred between shards (pulls + pushes)."""
        return self.pulled_rows + self.pushed_rows

    # ------------------------------------------------------------------ #
    def note_reads(self, shard: int, vertices: np.ndarray) -> ReadOutcome:
        """Account one shard's read-set; returns the rows it must pull.

        Under ``none`` stale reads are only counted; under ``invalidate``
        and ``push`` every stale row is pulled from its owner and the
        mirror stamped current — the caller is responsible for actually
        transferring the returned ``pulled`` rows before using them.
        """
        v = np.unique(np.asarray(vertices, dtype=np.int64))
        v = v[~self._holder[shard, v]]       # holders are never stale
        if not len(v):
            return ReadOutcome()
        lag = self.version[v] - self.mirror_version[shard, v]
        stale = v[lag > 0]
        if self.policy == "none":
            max_lag = int(lag.max(initial=0))
            self.stale_reads += len(stale)
            self.max_version_lag = max(self.max_version_lag, max_lag)
            return ReadOutcome(stale_reads=len(stale),
                               max_lag=max_lag if len(stale) else 0)
        self.mirror_version[shard, stale] = self.version[stale]
        self._mirror[shard, stale] = True
        self.pulled_rows += len(stale)
        return ReadOutcome(pulled=stale)

    def note_writes(self, vertices: np.ndarray,
                    present_shards) -> dict[int, np.ndarray]:
        """Account one batch's owner writes; returns push deliveries.

        ``vertices`` is the batch's (unique) endpoint set; every one of
        them is written exactly once by the batch.  Holders observe the
        event and stay current.  Under ``push`` the updated rows are
        forwarded to mirror holders among ``present_shards`` (the shards
        receiving this job's mail) — the returned ``{shard: vertices}``
        deliveries the caller must apply.  Absent mirrors simply lag and
        repair through the pull fallback on their next read.
        """
        v = np.unique(np.asarray(vertices, dtype=np.int64))
        if not len(v):
            return {}
        self.version[v] += 1
        held = self._holder[:, v]                        # (S, |v|)
        self.mirror_version[:, v] = np.where(
            held, self.version[v][None, :], self.mirror_version[:, v])
        pushes: dict[int, np.ndarray] = {}
        if self.policy == "push":
            for shard in present_shards:
                tgt = v[self._mirror[shard, v] & ~self._holder[shard, v]
                        & (self.mirror_version[shard, v] < self.version[v])]
                if len(tgt):
                    self.mirror_version[shard, tgt] = self.version[tgt]
                    self.pushed_rows += len(tgt)
                    pushes[shard] = tgt
        return pushes

    def transfer_ownership(self, vertices, from_shards, to_shard: int,
                           keep_holder=False) -> None:
        """Move ownership of ``vertices`` from ``from_shards`` to
        ``to_shard`` (an online migration's coherence side — the same
        call serves elastic shard splits/merges, where the autoscaler
        is the migration's author).

        The handoff delivers the vertices' *current* rows to the new
        owner, so its copy is stamped with the current version — a
        migrated-in vertex is never spuriously stale, and subsequent owner
        writes keep bumping the same counter (version history survives the
        ownership change; the exactness tests rely on this).  The old
        owner keeps its physical copy, which is exact at handoff time, so
        it is registered as an up-to-date *mirror*: under ``push`` it
        keeps receiving updates while present, under ``invalidate``/
        ``none`` it simply ages like any other mirror.

        ``keep_holder`` (scalar or per-vertex bool array) marks old owners
        that *demote into the vertex's replica set* instead — a replicated
        vertex's migration (:meth:`~repro.serving.router.ShardRouter.\
migrate`) keeps the old owner as a full holder, which continues to
        observe every write event, so it must stay on the holder side of
        the coherence split rather than become an aging mirror.

        The caller flips the routing side separately
        (:meth:`~repro.serving.router.ShardRouter.migrate`) and prices the
        transferred rows; this method only maintains coherence metadata.
        """
        v = np.asarray(vertices, dtype=np.int64)
        f = np.broadcast_to(np.asarray(from_shards, dtype=np.int64),
                            v.shape)
        keep = np.broadcast_to(np.asarray(keep_holder, dtype=bool), v.shape)
        if not 0 <= int(to_shard) < self.num_shards:
            raise ValueError("to_shard out of range")
        # Old-owner bookkeeping first so a degenerate from == to transfer
        # resolves to "still the holder", not a holder-mirror hybrid.
        drop = ~keep
        self._holder[f[drop], v[drop]] = False
        self._mirror[f[drop], v[drop]] = True
        self.mirror_version[f[drop], v[drop]] = self.version[v[drop]]
        self._holder[to_shard, v] = True
        self._mirror[to_shard, v] = False
        self.mirror_version[to_shard, v] = self.version[v]

    def fail_over(self, dead: int, rebuilt, new_owners) -> None:
        """Coherence side of a dead-replica failover.

        Unlike a migration's demote-to-mirror, the dead shard's copies are
        *lost*: it leaves the holder set everywhere and keeps no mirrors.
        Promoted vertices need no state action — their new owner was a
        replica, hence already a current holder.  Each ``rebuilt[i]``
        vertex's rows were delivered to ``new_owners[i]`` by the caller's
        memsync replay, so the new owner is stamped a current holder
        (version history survives, exactly as in ownership transfer).
        """
        dead = int(dead)
        if not 0 <= dead < self.num_shards:
            raise ValueError("dead shard out of range")
        self._holder[dead, :] = False
        self._mirror[dead, :] = False
        self.mirror_version[dead, :] = 0
        v = np.asarray(rebuilt, dtype=np.int64)
        if len(v):
            o = np.broadcast_to(np.asarray(new_owners, dtype=np.int64),
                                v.shape)
            self._holder[o, v] = True
            self._mirror[o, v] = False
            self.mirror_version[o, v] = self.version[v]


# --------------------------------------------------------------------------- #
class ShardedRuntime:
    """Functional sharded TGNN replay with versioned memory sync.

    One :class:`~repro.models.tgn.ModelRuntime` per shard, a router
    splitting each chronological batch, and the two-phase per-batch drive
    that makes cross-shard reads exact:

    1. *endpoint sync* — each involved shard pulls the stale rows of its
       sub-batch's endpoints (the rows the GRU and mail refresh read);
    2. *memory stage* — :meth:`~repro.models.tgn.TGNN.update_memory` per
       shard (every shard computes the same update for a shared endpoint,
       because the update depends only on the synced pre-batch rows);
    3. *owner writes* — versions bump once per batch vertex; under
       ``push`` the owners' fresh rows are delivered to present mirrors;
    4. *neighbor sync* — each shard pulls the stale memory rows of the
       temporal neighbors its attention will gather (the inter-stage state
       forwarding of DGNN-Booster, in software);
    5. *embedding stage* — :meth:`~repro.models.tgn.TGNN.embed` per shard.

    With ``policy='push'`` or ``'invalidate'`` the held vertices' memory
    tables and embeddings are bit-identical to an unsharded replay;
    ``'none'`` reproduces the stale-mirror divergence this module exists
    to close (and measures it).

    :meth:`migrate` is the online-rebalancing hook: ownership moves
    between batches with the full state handoff (memory rows +
    neighbor-table slices + version-counter transfer), and the exactness
    guarantee above survives the move — the acceptance suite in
    ``tests/unit/test_rebalance.py``.  :meth:`fail_shard` /
    :meth:`recover_shard` are the failure-injection hooks: a dead shard's
    state is scrubbed, replicated vertices promote an exact replica,
    unreplicated ones are rebuilt from peers + the durable edge log, and
    recovery fails the snapshot back — with the same bit-identity
    guarantee once recovered (``tests/unit/test_failover.py``).
    """

    def __init__(self, model, graph, num_shards: int | None = None,
                 placement: Placement | None = None, policy: str = "push"):
        if placement is not None:
            self.router = ShardRouter.from_placement(placement)
        else:
            if num_shards is None:
                raise ValueError("pass num_shards or placement")
            self.router = ShardRouter(num_shards, graph.num_nodes)
        self.model = model
        self.graph = graph
        self.cache = VersionedMemoryCache(self.router.placement,
                                          policy=policy)
        self.mailbox = CrossShardMailbox(self.router.num_shards)
        self.runtimes = [model.new_runtime(graph)
                         for _ in range(self.router.num_shards)]
        # Failure-injection bookkeeping: the stream position already
        # replayed (the durable edge-log horizon ring rebuilds replay to)
        # and, per failed shard, the ownership snapshot recovery restores.
        self._eid_horizon = 0
        self._failed: dict[int, np.ndarray] = {}

    @property
    def policy(self) -> str:
        return self.cache.policy

    # ------------------------------------------------------------------ #
    def _transfer(self, vertices: np.ndarray, to_shard: int) -> None:
        """Copy full state rows from each vertex's owner to ``to_shard``."""
        if not len(vertices):
            return
        owners = self.router.assignment[vertices]
        self.mailbox.record_sync(owners, to_shard)
        dst = self.runtimes[to_shard].state
        for owner in np.unique(owners):
            rows = vertices[owners == owner]
            src = self.runtimes[owner].state
            dst.memory[rows] = src.memory[rows]
            dst.mailbox[rows] = src.mailbox[rows]
            dst.mail_time[rows] = src.mail_time[rows]
            dst.last_update[rows] = src.last_update[rows]

    def migrate(self, vertices, to_shard: int) -> int:
        """Move ownership of ``vertices`` to ``to_shard`` between batches,
        with the full state handoff an online migration performs.

        Three transfers make the new owner exact (and keep every
        subsequent replay bit-identical to the unsharded runtime under the
        sync policies):

        1. *memory rows* — memory, mailbox, mail-time, and last-update
           rows copied from the old owner, whose rows are exact because it
           held the vertex;
        2. *neighbor-table slice* — the vertex's FIFO ring (neighbors,
           edge ids, times, head, count) copied verbatim, so the new
           owner's gathered neighbor lists equal the unsharded table's;
        3. *coherence metadata* — :meth:`VersionedMemoryCache.\
transfer_ownership` stamps the new owner current and downgrades the old
           owner to an up-to-date mirror, so version counters stay exact
           across the ownership change.

        The handoff is priced like sync traffic: ``HANDOFF_ROWS_PER_VERTEX``
        rows per vertex recorded in the mailbox's ``sync_counts``.
        Replicated vertices migrate too: the old owner demotes into the
        replica set (it keeps receiving every incident edge, so it stays a
        holder — ``keep_holder`` on the coherence side).  Returns the
        number of vertices actually moved (those not already owned by
        ``to_shard``).
        """
        from .rebalance import HANDOFF_ROWS_PER_VERTEX
        v = np.unique(np.asarray(vertices, dtype=np.int64))
        # Validate everything before touching any state: the copy loop
        # below mutates the destination runtime and records sync traffic,
        # so a late refusal would leave a half-applied migration behind.
        if not 0 <= int(to_shard) < self.router.num_shards:
            raise ValueError("to_shard out of range")
        if len(v) and (v.min() < 0 or v.max() >= self.router.num_nodes):
            raise ValueError("vertex out of range")
        owners = self.router.assignment[v]
        v = v[owners != int(to_shard)]
        owners = owners[owners != int(to_shard)]
        if not len(v):
            return 0
        # Replication status *before* the routing flip decides which old
        # owners stay holders (they demote into the replica set).
        keep = np.array([bool(self.router.placement.replicas.get(int(x)))
                         for x in v])
        dst_state = self.runtimes[to_shard].state
        dst_table = self.runtimes[to_shard].sampler.table
        for owner in np.unique(owners):
            rows = v[owners == owner]
            src_state = self.runtimes[owner].state
            src_table = self.runtimes[owner].sampler.table
            dst_state.memory[rows] = src_state.memory[rows]
            dst_state.mailbox[rows] = src_state.mailbox[rows]
            dst_state.mail_time[rows] = src_state.mail_time[rows]
            dst_state.last_update[rows] = src_state.last_update[rows]
            dst_table._nbrs[rows] = src_table._nbrs[rows]
            dst_table._eids[rows] = src_table._eids[rows]
            dst_table._times[rows] = src_table._times[rows]
            dst_table._head[rows] = src_table._head[rows]
            dst_table._count[rows] = src_table._count[rows]
            self.mailbox.record_sync(
                np.repeat(owner, len(rows) * HANDOFF_ROWS_PER_VERTEX),
                to_shard)
        self.router.migrate(v, to_shard)
        self.cache.transfer_ownership(v, owners, to_shard, keep_holder=keep)
        return len(v)

    # ------------------------------------------------------------------ #
    def _current_peer(self, vertex: int, dead: int) -> int | None:
        """Lowest surviving shard holding a *current* copy of ``vertex``.

        Holders are always current; mirrors qualify when their stamp
        matches the owner version — under ``push`` every shard that
        participated in the vertex's last batch does, because it pulled
        the pre-batch rows and computed (or received) the same update.
        """
        current = (self.cache.mirror_version[:, vertex]
                   == self.cache.version[vertex]) \
            & (self.cache._holder[:, vertex] | self.cache._mirror[:, vertex])
        current[dead] = False
        hit = np.flatnonzero(current)
        return int(hit[0]) if len(hit) else None

    def _replay_rings(self, vertices: np.ndarray) -> None:
        """Rebuild lost FIFO rings by replaying the durable edge log.

        A vertex's ring is a pure function of its incident-edge history in
        stream order (:meth:`~repro.graph.neighbor_table.NeighborTable.\
insert_edges` groups per vertex, keeps the newest ``mr``, and advances
        the head by the total insertion count), so replaying edges
        ``[0, eid_horizon)`` into a reset row reproduces the lost
        holder's row **bit-for-bit** — same slots, same head, same count —
        not merely the same logical neighbor set.
        """
        if not len(vertices):
            return
        h = self._eid_horizon
        src = self.graph.src[:h]
        dst = self.graph.dst[:h]
        eid = np.arange(h, dtype=np.int64)
        t = self.graph.t[:h]
        # The interleaved endpoint stream insert_edges would have built:
        # element 2i is (src -> dst), 2i+1 its (dst -> src) twin.
        vs = np.empty(2 * h, dtype=np.int64)
        ps = np.empty(2 * h, dtype=np.int64)
        es = np.empty(2 * h, dtype=np.int64)
        ts = np.empty(2 * h, dtype=np.float64)
        vs[0::2], vs[1::2] = src, dst
        ps[0::2], ps[1::2] = dst, src
        es[0::2], es[1::2] = eid, eid
        ts[0::2], ts[1::2] = t, t
        owners = self.router.assignment[vertices]
        for owner in np.unique(owners):
            rows = vertices[owners == owner]
            table = self.runtimes[owner].sampler.table
            table._nbrs[rows] = 0
            table._eids[rows] = 0
            table._times[rows] = -np.inf
            table._head[rows] = 0
            table._count[rows] = 0
            sel = np.isin(vs, rows)
            if sel.any():
                table._insert(vs[sel], ps[sel], es[sel], ts[sel])

    def fail_shard(self, shard: int) -> dict[str, int]:
        """Fail-stop ``shard`` — its state is lost — and evacuate exactly.

        Ownership moves via :meth:`~repro.serving.router.ShardRouter.\
fail_over`: replicated vertices *promote* a surviving replica (a full
        holder, so its memory rows and FIFO ring are already exact and no
        state moves), unreplicated vertices get a surviving owner and are
        *rebuilt* — the vertex-state row copied from the lowest surviving
        shard with a current copy (see :meth:`_current_peer`), the FIFO
        ring replayed bit-exactly from the durable edge log (see
        :meth:`_replay_rings`), ``HANDOFF_ROWS_PER_VERTEX`` rows per
        vertex recorded in the mailbox like any other transfer.  Vertices
        with a write history but no surviving current copy are counted
        ``cold``: their ring is rebuilt but their memory rows restart from
        zero — genuinely lost data, which the exactness suite pins to zero
        for the coverage it certifies.

        The dead runtime is scrubbed and the ownership snapshot kept so
        :meth:`recover_shard` can fail back.  Returns ``{"promoted",
        "rebuilt", "cold", "rows"}`` counts.
        """
        from .rebalance import HANDOFF_ROWS_PER_VERTEX
        shard = int(shard)
        if shard in self._failed:
            raise ValueError(f"shard {shard} is already failed")
        owned_before = np.flatnonzero(self.router.assignment == shard)
        promoted, rebuilt = self.router.fail_over(shard)
        rows = 0
        cold = 0
        for x in rebuilt.tolist():
            new_owner = int(self.router.assignment[x])
            dst = self.runtimes[new_owner].state
            peer = self._current_peer(x, shard)
            if peer is None:
                # No surviving current copy: fresh-vertex rows are exactly
                # this (version 0); written vertices are honestly cold.
                if self.cache.version[x] > 0:
                    cold += 1
                dst.memory[x] = 0.0
                dst.mailbox[x] = 0.0
                dst.mail_time[x] = -np.inf
                dst.last_update[x] = 0.0
            else:
                src = self.runtimes[peer].state
                dst.memory[x] = src.memory[x]
                dst.mailbox[x] = src.mailbox[x]
                dst.mail_time[x] = src.mail_time[x]
                dst.last_update[x] = src.last_update[x]
                self.mailbox.record_sync(
                    np.repeat(peer, HANDOFF_ROWS_PER_VERTEX), new_owner)
                rows += HANDOFF_ROWS_PER_VERTEX
        self._replay_rings(rebuilt)
        self.cache.fail_over(shard, rebuilt, self.router.assignment[rebuilt])
        # The whole premise: the dead shard's state is gone.
        self.runtimes[shard].reset()
        self._failed[shard] = owned_before
        return {"promoted": len(promoted), "rebuilt": len(rebuilt),
                "cold": cold, "rows": rows}

    def recover_shard(self, shard: int) -> int:
        """Fail the snapshot back: the recovered shard re-owns everything
        it owned at failure time through the ordinary exact migration path
        (state rows + ring slices copied from the interim owners, priced
        as handoff rows).  Promoted replicas demote back into the replica
        set; interim owners of rebuilt vertices give them up.  Returns the
        number of vertices failed back.
        """
        shard = int(shard)
        owned = self._failed.pop(shard, None)
        if owned is None:
            raise ValueError(f"shard {shard} is not failed")
        return self.migrate(owned, shard)

    def process_batch(self, batch: EdgeBatch) -> dict[int, "BatchResult"]:
        """Process one chronological batch across all shards.

        Returns ``{shard: BatchResult}`` for every shard with incident
        edges.  Only the rows of *held* query vertices are exact under the
        sync policies; non-held rows are computed against that shard's
        partial neighbor table (exactly as in deployment, where a shard
        answers queries only for the vertices it holds).
        """
        if len(batch.eid):
            self._eid_horizon = max(self._eid_horizon,
                                    int(batch.eid.max()) + 1)
        subs = self.router.split(batch, self.mailbox, cache=self.cache)
        # Endpoint sync happened inside split (phase 1): apply the pulls
        # before any shard's memory stage reads the rows.
        for sb in subs:
            self._transfer(sb.sync_pull, sb.shard)
        updates = {sb.shard: self.model.update_memory(
            sb.batch, self.runtimes[sb.shard]) for sb in subs}
        # Owner writes are exact now; deliver the push rows (phase 3).
        for sb in subs:
            self._transfer(sb.sync_push, sb.shard)
        # Neighbor sync (phase 4): the attention gathers the pre-insertion
        # FIFO neighbors and reads their *memory* rows, which other shards
        # may have rewritten this very batch.  The gather is reused by the
        # embedding stage (the table only changes at insert time, inside
        # ``embed``).
        k = self.model.cfg.num_neighbors
        gathers = {}
        for sb in subs:
            g = self.runtimes[sb.shard].sampler.gather(sb.batch.nodes, k)
            gathers[sb.shard] = g
            out = self.cache.note_reads(sb.shard, np.unique(g.nbrs[g.mask]))
            self._transfer(out.pulled, sb.shard)
        return {sb.shard: self.model.embed(
            sb.batch, self.runtimes[sb.shard], self.graph,
            updates[sb.shard], gathered=gathers[sb.shard]) for sb in subs}

    def held_vertices(self, shard: int) -> np.ndarray:
        """Vertex ids shard ``shard`` holds (owned or replicated)."""
        return np.flatnonzero(self.router._member[shard])
