"""Online rebalancing: mid-run vertex migration with priced state handoff.

:class:`~repro.serving.placement.LoadAwareRebalance` is *two-pass*:
profile a whole run, compute a better placement, redeploy, replay.  Under
live traffic that reacts a full run too late — hot sets drift mid-stream
(FlowGNN and DGNN-Booster both treat load shifts as a runtime concern, not
a compile-time one), and by the time the profile is in, the shard it would
have unloaded has already melted.  The unified event core makes the online
alternative natural: a placement change is just another event actors can
react to.

:class:`OnlineRebalancer` is that actor.  It observes every released job
(the router calls :meth:`observe` at the release instant), accumulates
per-vertex heat and per-shard busy time over a rolling window, and when a
window closes it decides migrations and schedules them as
:class:`~repro.serving.events.MigrationEvent`\\ s at the current instant.
When an event fires the rebalancer applies it:

* the :class:`~repro.serving.router.ShardRouter` reassigns the vertex —
  jobs routed from now on follow the new ownership, while sub-jobs already
  submitted complete under the old one (a real handoff drains in-flight
  work the same way);
* the :class:`~repro.serving.memsync.VersionedMemoryCache` transfers
  ownership: the new owner receives the current rows (stamped with the
  current version, so it is never spuriously stale) and the old owner
  becomes an up-to-date mirror — version counters stay exact across the
  change, which is what keeps post-migration ``--memsync push`` replays
  bit-identical to the unsharded runtime;
* the state handoff — the vertex's memory row plus its neighbor-table
  slice, :data:`HANDOFF_ROWS_PER_VERTEX` rows — is priced through the same
  ``mail_hop_s`` die-crossing machinery as
  :class:`~repro.serving.events.SyncEvent` traffic (the engine charges the
  hops to the destination shard's next sub-job).

The elastic :class:`~repro.serving.autoscale.AutoScaler` drives shard
splits and merges through this exact apply path — a scale decision is a
:class:`~repro.serving.events.ScaleEvent` followed by ordinary
:class:`~repro.serving.events.MigrationEvent`\\ s, so ownership,
coherence, and handoff pricing behave identically whether the fleet is
fixed or elastic.

Decision modes
--------------
*Sharded* (``pool_shard=None``): overload-driven.  A shard whose
window utilization exceeds ``util_threshold`` (or whose queue is deeper
than ``depth_threshold``, when set) donates its hottest window vertices to
the coolest shard, greedily, until the modeled utilization falls below the
threshold or the per-window migration cap is hit.

*Hybrid* (``pool_shard`` = the pool pseudo-shard): drift-driven.  A pool
vertex whose window heat reaches ``promote_heat`` migrates pool -> the
least-loaded dedicated shard (``"heat-up"``); a dedicated-shard vertex
whose window heat falls to ``demote_heat`` or below migrates back to the
pool (``"cool-down"``).  ``promote_heat > demote_heat`` is enforced — the
dead band is the hysteresis that stops boundary vertices from oscillating.

Convergence guards (the chaos suite pins both): at most
``max_migrations_per_window`` migrations per window, and a migrated vertex
is frozen for ``cooldown_windows`` windows — a pathological trace whose
hot set flips every window cannot ping-pong vertices back and forth.

Under a stationary workload the rebalancer is a no-op: no shard crosses
the threshold, no vertex crosses the band, zero migrations — so every
queueing statistic of a rebalancer-enabled run is identical to the plain
engine's (asserted in ``test_rebalance`` and, at tier-2 scale, in
``test_queueing_theory``).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .events import _MIGRATE, EventScheduler, MigrationEvent, ServerGroup

__all__ = ["OnlineRebalancer", "HANDOFF_ROWS_PER_VERTEX"]

# State rows handed off per migrated vertex: its vertex-memory row (memory
# + mailbox + timestamps travel as one row, exactly as memsync prices a
# pull/push) plus its neighbor-table slice (the mr-slot FIFO ring moves as
# one packed row).  The serving engine prices this count; the functional
# ShardedRuntime actually copies both and records the same count.
HANDOFF_ROWS_PER_VERTEX = 2


class OnlineRebalancer:
    """Watches shard load over a rolling window; migrates vertices mid-run.

    Construct once with the policy knobs; the engine calls :meth:`bind` at
    the start of every run (resetting all per-run state) and
    :meth:`observe` for every released job.  Decisions are scheduled as
    :class:`~repro.serving.events.MigrationEvent`\\ s and applied by this
    actor when they fire; ``on_migrate`` (wired by the engine) prices the
    handoff.

    Parameters
    ----------
    window_s:
        Rolling measurement window, in event-loop seconds.  Heat and busy
        counters reset every window; decisions happen at window close.
    util_threshold:
        Sharded mode: donate off shards whose window utilization exceeds
        this.
    max_migrations_per_window:
        Hard cap on migrations per window (both modes) — the convergence
        bound the chaos tests assert.
    cooldown_windows:
        A migrated vertex may not migrate again for this many windows —
        the anti-ping-pong guard.
    hysteresis:
        Sharded mode: minimum donor-minus-recipient utilization gap before
        any move happens (moving between near-equal shards just churns
        state).
    depth_threshold:
        Optional sharded-mode trigger: a shard whose live queue depth
        exceeds this at window close counts as overloaded even if its
        utilization has not caught up yet (queues build before busy-time
        averages move).  ``None`` disables it.
    promote_heat / demote_heat:
        Hybrid mode band: a pool vertex with ``>= promote_heat`` incident
        edges in the window is promoted; a dedicated-shard vertex with
        ``<= demote_heat`` is demoted.  ``promote_heat > demote_heat``
        is required (the dead band is the hysteresis).

    Every migration prices :data:`HANDOFF_ROWS_PER_VERTEX` rows — the
    same count the functional :meth:`~repro.serving.memsync.\
ShardedRuntime.migrate` records, so the timing report and the functional
    model never disagree on the handoff bill.
    """

    def __init__(self, window_s: float, util_threshold: float = 0.75,
                 max_migrations_per_window: int = 8,
                 cooldown_windows: int = 2, hysteresis: float = 0.05,
                 depth_threshold: int | None = None,
                 promote_heat: int = 8, demote_heat: int = 1):
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        if util_threshold <= 0:
            raise ValueError("util_threshold must be positive")
        if max_migrations_per_window <= 0:
            raise ValueError("max_migrations_per_window must be positive")
        if cooldown_windows < 0:
            raise ValueError("cooldown_windows must be non-negative")
        if hysteresis < 0:
            raise ValueError("hysteresis must be non-negative")
        if depth_threshold is not None and depth_threshold <= 0:
            raise ValueError("depth_threshold must be positive")
        if promote_heat <= demote_heat:
            raise ValueError("promote_heat must exceed demote_heat "
                             "(the gap is the hysteresis band)")
        self.window_s = float(window_s)
        self.util_threshold = float(util_threshold)
        self.max_migrations_per_window = int(max_migrations_per_window)
        self.cooldown_windows = int(cooldown_windows)
        self.hysteresis = float(hysteresis)
        self.depth_threshold = depth_threshold
        self.promote_heat = int(promote_heat)
        self.demote_heat = int(demote_heat)
        self._bound = False

    # ------------------------------------------------------------------ #
    def bind(self, sched: EventScheduler, groups: Sequence[ServerGroup],
             router, cache=None, pool_shard: int | None = None,
             on_migrate: Callable[[MigrationEvent], None] | None = None
             ) -> None:
        """Attach to one run, resetting all per-run state.

        ``pool_shard`` switches hybrid drift mode on (it names the pool
        pseudo-shard); ``cache`` is the run's memsync cache (ownership is
        transferred through it so version counters survive the move);
        ``on_migrate`` is the engine's pricing hook.
        """
        if pool_shard is not None \
                and not 0 <= pool_shard < router.num_shards:
            raise ValueError("pool_shard out of range")
        self._sched = sched
        self._groups = list(groups)
        self._router = router
        self._cache = cache
        self._pool_shard = pool_shard
        self._on_migrate = on_migrate
        n = router.num_nodes
        self._heat = np.zeros(n, dtype=np.int64)
        self._window_start: float | None = None
        self._busy_mark = np.zeros(len(self._groups))
        self._window_index = 0
        self._frozen_until: dict[int, int] = {}
        self.migration_log: list[MigrationEvent] = []
        self.migrations_per_window: list[int] = []
        self.handoff_rows = 0
        self._bound = True

    @property
    def migrations(self) -> int:
        return len(self.migration_log)

    @property
    def migrated_vertices(self) -> int:
        """Distinct vertices that moved at least once this run."""
        return len({ev.vertex for ev in self.migration_log})

    # ------------------------------------------------------------------ #
    def observe(self, t: float, batch) -> None:
        """Account one released job's edges; evaluate at window close."""
        if not self._bound:
            raise RuntimeError("bind() the rebalancer to a run first")
        if self._window_start is None:
            self._window_start = t
            self._busy_mark = np.array([g.busy_s for g in self._groups])
        np.add.at(self._heat, batch.src, 1)
        np.add.at(self._heat, batch.dst, 1)
        if t - self._window_start >= self.window_s:
            self._evaluate(t)
            self._window_index += 1
            self._window_start = t
            self._heat[:] = 0
            self._busy_mark = np.array([g.busy_s for g in self._groups])

    # ------------------------------------------------------------------ #
    def _movable(self, v: int) -> bool:
        """Not inside its post-migration cooldown.  Replicated vertices
        move too: :meth:`~repro.serving.router.ShardRouter.migrate`
        demotes the old owner into the replica set, so copies are never
        orphaned."""
        return self._frozen_until.get(int(v), -1) <= self._window_index

    def _emit(self, t: float, v: int, to_shard: int, reason: str) -> None:
        ev = MigrationEvent(t=t, vertex=int(v),
                            from_shard=int(self._router.assignment[v]),
                            to_shard=int(to_shard),
                            rows=HANDOFF_ROWS_PER_VERTEX,
                            reason=reason)
        # Freeze at decision time so one window never double-moves a
        # vertex; the cooldown counts from the *next* window.
        self._frozen_until[int(v)] = self._window_index + 1 \
            + self.cooldown_windows
        self._sched.schedule(t, _MIGRATE, ev, self._apply)
        self.migration_log.append(ev)

    def _apply(self, ev: MigrationEvent) -> None:
        """Fire: reassign ownership and hand the state off, priced."""
        owner = int(self._router.assignment[ev.vertex])
        if owner != ev.from_shard:
            raise RuntimeError(
                f"migration of vertex {ev.vertex} expected owner "
                f"{ev.from_shard} but found {owner}: ownership changed "
                f"between decision and application")
        # Replication status before the flip: a replicated vertex's old
        # owner demotes into the replica set and must stay a holder.
        keep = bool(self._router.placement.replicas.get(int(ev.vertex)))
        self._router.migrate([ev.vertex], ev.to_shard)
        if self._cache is not None:
            self._cache.transfer_ownership([ev.vertex], [ev.from_shard],
                                           ev.to_shard, keep_holder=keep)
        self.handoff_rows += ev.rows
        if self._on_migrate is not None:
            self._on_migrate(ev)

    # ------------------------------------------------------------------ #
    def _evaluate(self, t: float) -> None:
        span = t - self._window_start
        if span <= 0:
            self.migrations_per_window.append(0)
            return
        busy = np.array([g.busy_s for g in self._groups]) - self._busy_mark
        servers = np.array([g.num_servers for g in self._groups])
        util = busy / (span * servers)
        before = len(self.migration_log)
        if self._pool_shard is None:
            self._evaluate_overload(t, util)
        else:
            self._evaluate_drift(t, util)
        self.migrations_per_window.append(len(self.migration_log) - before)

    def _evaluate_overload(self, t: float, util: np.ndarray) -> None:
        """Sharded mode: donate the hottest window vertices off the
        hottest overloaded shard onto the coolest shard."""
        if len(self._groups) < 2:
            return          # a lone shard has nowhere to donate: no-op
        depth = np.array([g.queue_depth for g in self._groups])
        util_hot = util > self.util_threshold
        depth_hot = np.zeros(len(util), dtype=bool) \
            if self.depth_threshold is None \
            else depth > self.depth_threshold
        hot = util_hot | depth_hot
        if not hot.any():
            return
        donor = int(np.argmax(np.where(hot, util, -np.inf)))
        others = [s for s in range(len(util)) if s != donor]
        recipient = min(others, key=lambda s: (util[s], depth[s], s))
        # A donor flagged only by its queue depth carries direct evidence
        # of overload that the busy-time average has not caught up with
        # (service committed before the window opened does not move
        # ``util``), so depth evidence bypasses the utilization gates.
        by_depth = bool(depth_hot[donor]) and not util_hot[donor]
        if not by_depth \
                and util[donor] - util[recipient] <= self.hysteresis:
            return
        on_donor = self._router.assignment == donor
        heat = np.where(on_donor, self._heat, 0)
        donor_heat = int(heat.sum())
        if donor_heat <= 0:
            return
        # Hottest-first, vertex id breaking ties — deterministic.
        order = np.lexsort((np.arange(len(heat)), -heat))
        est_donor, est_recipient = float(util[donor]), float(util[recipient])
        moved = 0
        for v in order:
            if moved >= self.max_migrations_per_window:
                break
            if heat[v] <= 0:
                break                       # only measured-hot vertices move
            if not self._movable(v):
                continue
            # Model the move by heat share; never leave the recipient
            # worse than the donor started (the termination rule
            # LoadAwareRebalance uses, applied online).  Queue-depth
            # evidence skips the model: its utilization inputs are the
            # very numbers that failed to flag the overload.
            delta = float(util[donor]) * heat[v] / donor_heat
            if not by_depth and est_recipient + delta >= float(util[donor]):
                continue
            self._emit(t, v, recipient, "overload")
            est_donor -= delta
            est_recipient += delta
            moved += 1
            if not by_depth and est_donor <= self.util_threshold:
                break

    def _evaluate_drift(self, t: float, util: np.ndarray) -> None:
        """Hybrid mode: promote heating pool vertices onto dedicated
        shards, demote cooled dedicated-shard vertices into the pool."""
        pool = self._pool_shard
        assignment = self._router.assignment
        budget = self.max_migrations_per_window
        # Cool-downs first: they free dedicated-shard capacity that the
        # promotions below immediately want.
        on_hot = np.flatnonzero(assignment != pool)
        cooled = on_hot[self._heat[on_hot] <= self.demote_heat]
        for v in cooled:
            if budget <= 0:
                return
            if not self._movable(v):
                continue
            self._emit(t, v, pool, "cool-down")
            budget -= 1
        hot_shards = [s for s in range(len(self._groups)) if s != pool]
        # Least-loaded-first target selection, tracked across this
        # window's promotions so a burst spreads instead of stacking.
        load = {s: float(util[s]) for s in hot_shards}
        in_pool = np.flatnonzero(assignment == pool)
        heated = in_pool[self._heat[in_pool] >= self.promote_heat]
        order = np.lexsort((heated, -self._heat[heated]))
        pool_heat = max(int(self._heat[in_pool].sum()), 1)
        for v in heated[order]:
            if budget <= 0:
                return
            if not self._movable(v):
                continue
            target = min(hot_shards, key=lambda s: (load[s], s))
            self._emit(t, v, target, "heat-up")
            load[target] += float(util[pool]) * self._heat[v] / pool_heat
            budget -= 1
