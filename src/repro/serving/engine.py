"""Sharded / pooled / hybrid multi-stream serving on one event loop.

This is the production-deployment composition the single-device replay in
``pipeline/`` cannot express: many concurrent edge streams hit an ingest
tier, a :class:`~repro.serving.batcher.DynamicBatcher` coalesces their
windows under a latency deadline, and the released jobs are served by one
of three **topologies** — all driven by the single discrete-event
scheduler in :mod:`repro.serving.events`, so ingest, routing, shard
compute, and cross-shard traffic advance on one clock and can overlap:

``sharded`` (default)
    A :class:`~repro.serving.router.ShardRouter` splits each job across
    partitioned shards (the partition comes from a
    :class:`~repro.serving.placement.Placement`); every shard — owning its
    own backend and :class:`~repro.models.tgn.ModelRuntime` — serves its
    sub-batches through a dedicated FIFO queue.  A window's response time
    is fork-join: it completes when the *last* involved shard finishes.

``pool``
    K stateless replicas behind **one shared queue** (a K-server
    :class:`~repro.serving.events.ServerGroup`).  Jobs are not split: any
    free replica serves the whole job against the shared state store, so
    nothing is forwarded, every edge is processed once, and no replica
    idles while another has a backlog.  The price is that a job gets no
    intra-job parallelism — the classic pooling-vs-partitioning trade the
    benchmark sweeps.

``hybrid``
    Both regimes in one loop: the measured-traffic hot head
    (:class:`~repro.serving.placement.HotColdHybrid`) lives on dedicated
    shards, and the cold tail drains through a shared-queue pool — the
    pool is the placement's last pseudo-shard, served by a K-server group.
    Cross-regime edges ride the same mailbox (and the same ``mail_hop_s``
    die pricing) as shard-to-shard mail, at the event times they occur.

**Ingest modes** (``run(..., ingest=...)``): ``"serial"`` releases jobs
exactly like the historical offline batcher — batching delay serializes in
front of queueing and service, and reports are byte-identical to the
pre-event-core engine (the golden-test contract).  ``"pipelined"``
double-buffers the ingest tier: while the fleet serves window *n* the
batcher accumulates window *n+1*, and the moment the fleet goes hungry the
buffer flushes — batching delay is paid only where it hides behind
in-flight compute.

Workload model: each stream replays the graph's own window arrival
process, phase-shifted by a fraction of a window, so ``num_streams = S``
multiplies the recorded load S-fold — the multi-tenant analogue of the
``speedup`` stream-time compression.  With one stream, one shard, and a
passthrough batcher the engine reproduces
:func:`repro.pipeline.replay_under_load` exactly (asserted by the
equivalence tests).
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from typing import Sequence

import numpy as np

from ..graph.batching import iter_time_windows
from ..graph.temporal_graph import TemporalGraph
from .batcher import CoalescedJob, DynamicBatcher, StreamArrival
from .events import (INGEST_MODES, _MIGRATE, BatcherActor, EventScheduler,
                     FailureEvent, FailurePlan, MigrationEvent, RecoveryEvent,
                     RouterActor, ServerGroup, SimulationResult, Submission)
from .measured import MeasuredServerGroup, WorkerPool
from .memsync import MEMSYNC_POLICIES, VersionedMemoryCache
from .placement import HotColdHybrid, Placement, VertexHeat
from .rebalance import HANDOFF_ROWS_PER_VERTEX
from .registry import DEFAULT_REGISTRY, BackendRegistry
from .router import CrossShardMailbox, ShardRouter

__all__ = ["ShardStats", "ServingReport", "ServingEngine",
           "FailureInjector", "make_stream_arrivals"]

TOPOLOGIES = ("sharded", "pool", "hybrid")


def _null_floats(obj):
    """Recursively replace floats with ``None`` (bools/ints untouched).

    The projection behind :meth:`ServingReport.to_structure_json`: it
    keeps every count, name, and flag while erasing the values that a
    measured run cannot reproduce bit-for-bit.
    """
    if isinstance(obj, bool):
        return obj
    if isinstance(obj, float):
        return None
    if isinstance(obj, dict):
        return {key: _null_floats(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_null_floats(value) for value in obj]
    return obj


@dataclass(frozen=True)
class ShardStats:
    """Per-shard queueing and traffic statistics.

    In pool topology there is a single entry describing the shared queue;
    ``servers`` is the replica count (always 1 for partitioned shards).
    In hybrid topology the last entry is the cold-tail pool.
    """

    shard: int
    backend: str
    jobs: int
    edges: int                  # edges processed (local + mail)
    local_edges: int
    mail_in_edges: int          # edges forwarded in from other shards
    busy_s: float
    utilization: float
    offered_load: float
    mean_wait_s: float
    mean_response_s: float
    p95_response_s: float
    p99_response_s: float
    max_queue_depth: int
    dropped_jobs: int
    servers: int = 1

    @property
    def stable(self) -> bool:
        return self.offered_load < 1.0


@dataclass(frozen=True)
class ServingReport:
    """End-to-end outcome of a multi-stream replay (any topology)."""

    num_shards: int
    num_streams: int
    speedup: float
    window_s: float
    windows: int                # window arrivals served end-to-end
    dropped_windows: int        # arrivals lost to a full shard queue
    mean_response_s: float      # arrival -> last involved shard finished
    p95_response_s: float
    p99_response_s: float
    makespan_s: float
    ingested_edges: int         # edges offered by the streams
    processed_edges: int        # edge *applications* actually serviced: one
                                # count per shard that applied the edge
                                # (local + every mailbox delivery); drops
                                # are excluded
    cross_shard_edges: int      # mailbox deliveries actually serviced
    cross_die_mail_edges: int   # mailbox traffic that crossed a die
    shard_stats: tuple[ShardStats, ...]
    topology: str = "sharded"
    placement: str = "hash"     # placement policy name ("none" for pool)
    replicated_vertices: int = 0  # vertices held by more than one shard
    memsync: str = "none"       # cross-shard memory sync policy
    sync_edges: int = 0         # memory rows transferred between shards
    stale_reads: int = 0        # reads served from a stale mirror (none)
    max_version_lag: int = 0    # worst version lag among those reads
    pool_servers: int = 1       # replicas behind the shared queue (pool)
    ingest: str = "serial"      # ingest tier mode (serial | pipelined)
    rebalance: str = "off"      # online rebalancing (off | online)
    migrations: int = 0         # MigrationEvents applied during the run
    migrated_vertices: int = 0  # distinct vertices that changed owner
    handoff_rows: int = 0       # state rows handed off by migrations
    chaos: str = "off"          # failure injection (off|slow|dead|mixed)
    failures: int = 0           # FailureEvents applied during the run
    recoveries: int = 0         # RecoveryEvents applied during the run
    promoted_vertices: int = 0  # dead-shard vertices promoted to a replica
    rebuilt_vertices: int = 0   # dead-shard vertices rebuilt from peers
    recovery_rows: int = 0      # state rows moved by failover + fail-back
    outage_windows: int = 0     # served windows that arrived in an outage
    outage_p99_response_s: float = 0.0  # p99 over those windows
    measured: dict | None = None  # measured-backend block (mean/cv²/
                                  # per-shard split); None on modeled runs
    scaling: dict | None = None   # autoscale block (scale events, fleet
                                  # peak/mean, server-seconds); None when
                                  # the fleet was static

    @property
    def stable(self) -> bool:
        return all(s.stable for s in self.shard_stats)

    @property
    def served_edges(self) -> int:
        """Distinct stream edges serviced (cross-shard copies counted once)."""
        return self.processed_edges - self.cross_shard_edges

    @property
    def throughput_eps(self) -> float:
        return self.served_edges / self.makespan_s \
            if self.makespan_s > 0 else 0.0

    @property
    def replication_factor(self) -> float:
        """Mean state-update applications per served edge.

        Definition (tested; keeps pool and replicated-sharded runs
        comparable): ``processed_edges / served_edges``, where every shard
        that applies an edge contributes **one count** — the source owner's
        local application plus one per mailbox delivery.  Hence a vertex
        replicated onto ``r`` extra shards adds ``r`` counts for each of
        its incident edges (once per replica), a plain cross-shard edge
        counts 2, an intra-shard edge counts 1, and a pool run — where one
        replica serves each job against the shared store — reports exactly
        1.0.  ``0.0`` when nothing was served.
        """
        return self.processed_edges / self.served_edges \
            if self.served_edges else 0.0

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """Plain-python dict (derived metrics included) for JSON reports."""
        d = asdict(self)
        d["shard_stats"] = [dict(asdict(s), stable=bool(s.stable))
                            for s in self.shard_stats]
        d.update(stable=bool(self.stable),
                 served_edges=int(self.served_edges),
                 throughput_eps=float(self.throughput_eps),
                 replication_factor=float(self.replication_factor))
        if d["ingest"] == "serial":
            # Serial reports keep the pre-event-core schema byte-for-byte
            # (the golden-test contract); only pipelined runs add the key.
            del d["ingest"]
        if d["rebalance"] == "off":
            # Likewise: only online-rebalanced runs add the migration keys,
            # so pre-existing goldens stay byte-identical.
            for key in ("rebalance", "migrations", "migrated_vertices",
                        "handoff_rows"):
                del d[key]
        if d["chaos"] == "off":
            # Same contract for failure injection: chaos-free runs keep
            # the historical schema byte-for-byte.
            for key in ("chaos", "failures", "recoveries",
                        "promoted_vertices", "rebuilt_vertices",
                        "recovery_rows", "outage_windows",
                        "outage_p99_response_s"):
                del d[key]
        if d["measured"] is None:
            # Modeled runs keep the historical schema byte-for-byte; only
            # measured-backend runs add the block.
            del d["measured"]
        if d["scaling"] is None:
            # Static-fleet runs keep the historical schema byte-for-byte;
            # only autoscaled runs add the block.
            del d["scaling"]
        return d

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, fixed separators — byte-stable for
        identical runs (the golden-determinism contract)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    def to_structure_json(self) -> str:
        """Canonical JSON with every float nulled out.

        Measured-backend runs are deterministic in *structure* (which
        windows were served, how work was split, every counter) but not
        in timing values — those are real wall-clock measurements.  This
        projection is the byte-comparable form: two runs of the same
        workload agree on it exactly, whatever the host was doing.
        """
        return json.dumps(_null_floats(self.to_dict()), sort_keys=True,
                          indent=2)


def make_stream_arrivals(graph: TemporalGraph, window_s: float,
                         num_streams: int = 1, start: int = 0,
                         end: int | None = None,
                         speedup: float = 1.0) -> list[StreamArrival]:
    """Arrival process of ``num_streams`` tenants replaying ``graph``.

    A window becomes servable when its last edge has arrived, so the
    arrival instant is the final edge timestamp (stream-time compressed by
    ``speedup``), matching :func:`repro.pipeline.replay_under_load`.
    Stream ``i`` is phase-shifted by ``i/num_streams`` of a window to model
    unsynchronized tenants.
    """
    if window_s <= 0 or speedup <= 0:
        raise ValueError("window_s and speedup must be positive")
    if num_streams <= 0:
        raise ValueError("num_streams must be positive")
    base: list[tuple[float, object]] = []
    for batch in iter_time_windows(graph, window_s, start=start, end=end):
        base.append((float(batch.t[-1]), batch))
    if not base:
        raise ValueError("no windows in the requested range")
    t0 = base[0][0]
    arrivals: list[StreamArrival] = []
    for i in range(num_streams):
        phase = (i / num_streams) * window_s / speedup
        for t_close, batch in base:
            arrivals.append(StreamArrival(t=(t_close - t0) / speedup + phase,
                                          stream=i, batch=batch))
    # Same-instant arrivals from different streams must order
    # deterministically, not by sort stability over insertion order.
    arrivals.sort(key=lambda a: (a.t, a.stream))
    return arrivals


class FailureInjector:
    """Chaos-schedule driver: applies :class:`FailurePlan`\\ s on the loop.

    Bound per run like the rebalancer.  Each plan schedules a
    :class:`FailureEvent` (and, when ``recover_at`` is set, a
    :class:`RecoveryEvent`) at ``_MIGRATE`` priority — the failure decided
    at ``t`` applies before the next same-instant flush routes.

    A **slow** failure sets the shard's service-time factor; recovery
    resets it.  A **dead** failure fail-stops the :class:`ServerGroup`
    (queued jobs drop, in-service jobs complete) and evacuates ownership:
    replicated vertices promote their lowest surviving replica for free —
    the replica already holds the full state — while unreplicated
    vertices are rebuilt by memsync replay from peers, billed
    ``HANDOFF_ROWS_PER_VERTEX`` rows each from a deterministic source
    (the lowest surviving shard with a current copy per the run's
    coherence cache, else the lowest survivor) through the engine's
    ``mail_hop_s`` pricing.  Recovery **fails back**: the ownership
    snapshot migrates home through the same priced path, demoting
    promoted replicas back into their sets.  Every ownership change is
    recorded as a :class:`MigrationEvent` (``"promote"`` / ``"rebuild"``
    / ``"fail-back"``) so the trace replays a complete, exactly-once
    ownership history across the failover.
    """

    def __init__(self, plans):
        if isinstance(plans, FailurePlan):
            plans = [plans]
        self.plans = tuple(plans)
        if not self.plans:
            raise ValueError("need at least one FailurePlan")
        for p in self.plans:
            if not isinstance(p, FailurePlan):
                raise TypeError(f"plans must be FailurePlan, got {type(p)}")

    @property
    def chaos(self) -> str:
        """Report tag: the single mode in play, or ``"mixed"``."""
        modes = {p.mode for p in self.plans}
        return modes.pop() if len(modes) == 1 else "mixed"

    def bind(self, sched, groups: Sequence[ServerGroup], router: ShardRouter,
             cache: VersionedMemoryCache | None = None,
             on_rows=None) -> None:
        """Attach to one run, resetting counters and scheduling the plans.

        ``on_rows(rows, from_shard, to_shard)`` is the engine's pricing
        hook for recovery transfers; ``cache`` (when present) tracks the
        coherence side of dead failovers and picks rebuild sources.
        """
        for p in self.plans:
            if p.shard >= len(groups):
                raise ValueError(f"failure shard {p.shard} out of range "
                                 f"for {len(groups)} shards")
            if p.mode == "dead" and len(groups) < 2:
                raise ValueError("a dead-replica failure needs a survivor")
        self._sched = sched
        self._groups = list(groups)
        self._router = router
        self._cache = cache
        self._on_rows = on_rows
        self.failures = 0
        self.recoveries = 0
        self.promoted_vertices = 0
        self.rebuilt_vertices = 0
        self.recovery_rows = 0
        self._closed_outages: list[tuple[float, float]] = []
        self._open_outage: dict[int, float] = {}
        self._owned_at_failure: dict[int, np.ndarray] = {}
        for p in self.plans:
            sched.schedule(p.fail_at, _MIGRATE,
                           FailureEvent(p.fail_at, p.shard, p.mode,
                                        p.degradation),
                           self._on_fail)
            if p.recover_at is not None:
                sched.schedule(p.recover_at, _MIGRATE,
                               RecoveryEvent(p.recover_at, p.shard, p.mode),
                               self._on_recover)

    def outage_intervals(self) -> list[tuple[float, float]]:
        """Outage windows ``[fail, recover)``; unrecovered ones run open."""
        return self._closed_outages + [(t0, float("inf"))
                                       for t0 in self._open_outage.values()]

    # ------------------------------------------------------------------ #
    def _price(self, rows: int, from_shard: int, to_shard: int) -> None:
        self.recovery_rows += rows
        if self._on_rows is not None:
            self._on_rows(rows, from_shard, to_shard)

    def _rebuild_source(self, vertex: int, dead: int) -> int:
        """Surviving peer the rebuild is modeled to read from: the lowest
        shard with a current copy per the coherence cache, else the
        lowest survivor (the durable-log replay still costs a transfer).
        """
        if self._cache is not None:
            cache = self._cache
            current = (cache.mirror_version[:, vertex]
                       == cache.version[vertex]) \
                & (cache._holder[:, vertex] | cache._mirror[:, vertex])
            current[dead] = False
            hit = np.flatnonzero(current)
            if len(hit):
                return int(hit[0])
        return min(s for s in range(len(self._groups)) if s != dead)

    def _on_fail(self, ev: FailureEvent) -> None:
        self.failures += 1
        self._open_outage[ev.shard] = ev.t
        group = self._groups[ev.shard]
        if ev.mode == "slow":
            group.service_factor = ev.degradation
            return
        group.fail()
        router = self._router
        self._owned_at_failure[ev.shard] = \
            np.flatnonzero(router.assignment == ev.shard)
        promoted, rebuilt = router.fail_over(ev.shard)
        self.promoted_vertices += len(promoted)
        self.rebuilt_vertices += len(rebuilt)
        sources = [self._rebuild_source(int(x), ev.shard)
                   for x in rebuilt]
        if self._cache is not None:
            self._cache.fail_over(ev.shard, rebuilt,
                                  router.assignment[rebuilt])
        for x, src in zip(rebuilt.tolist(), sources):
            self._price(HANDOFF_ROWS_PER_VERTEX, src,
                        int(router.assignment[x]))
        if self._sched.trace is not None:
            for x in promoted.tolist():
                self._sched.record(MigrationEvent(
                    ev.t, int(x), ev.shard, int(router.assignment[x]),
                    0, "promote"))
            for x in rebuilt.tolist():
                self._sched.record(MigrationEvent(
                    ev.t, int(x), ev.shard, int(router.assignment[x]),
                    HANDOFF_ROWS_PER_VERTEX, "rebuild"))

    def _on_recover(self, ev: RecoveryEvent) -> None:
        self.recoveries += 1
        t0 = self._open_outage.pop(ev.shard, None)
        if t0 is not None:
            self._closed_outages.append((t0, ev.t))
        group = self._groups[ev.shard]
        group.restore()
        if ev.mode == "slow":
            return
        router = self._router
        owned = self._owned_at_failure.pop(ev.shard, np.empty(0, np.int64))
        move = owned[router.assignment[owned] != ev.shard]
        if not len(move):
            return
        owners = router.assignment[move].copy()
        # Pre-flip replication status: promoted vertices keep their interim
        # owner as a holder (it demotes back into the replica set).
        keep = np.array([bool(router.placement.replicas.get(int(x)))
                         for x in move])
        router.migrate(move, ev.shard)
        if self._cache is not None:
            self._cache.transfer_ownership(move, owners, ev.shard,
                                           keep_holder=keep)
        for x, frm in zip(move.tolist(), owners.tolist()):
            self._price(HANDOFF_ROWS_PER_VERTEX, int(frm), ev.shard)
            if self._sched.trace is not None:
                self._sched.record(MigrationEvent(
                    ev.t, int(x), int(frm), ev.shard,
                    HANDOFF_ROWS_PER_VERTEX, "fail-back"))


class ServingEngine:
    """Shard-parallel, pooled, or hybrid serving in front of backends.

    Parameters
    ----------
    backends:
        Sharded topology: one backend per shard (engine protocol, each with
        its own runtime).  Pool topology: the timing replica — replicas are
        stateless, so one backend prices every job against the shared
        state store (``pool_servers`` sets the replica count).  Hybrid
        topology: one backend per dedicated hot shard plus a final timing
        backend for the cold-tail pool (``placement.num_shards`` entries).
    num_nodes:
        Vertex count, for the router's partition.
    batcher:
        Cross-stream coalescing policy; default is passthrough.
    router:
        Vertex partition; default hash-partitions over ``len(backends)``.
        Mutually exclusive with ``placement``.
    placement:
        A :class:`~repro.serving.placement.Placement` from a placement
        policy; the router is built from it.  Required for hybrid (use
        :class:`~repro.serving.placement.HotColdHybrid`, whose last
        pseudo-shard is the pool; ``from_registry`` builds it from the
        graph's measured heat).
    die_of:
        Optional shard -> die assignment (see
        :func:`repro.hw.plan_shard_dies` /
        :func:`repro.hw.plan_shard_dies_traffic_aware`).  With
        ``mail_hop_s`` it prices cross-die mailbox traffic into the
        receiving shard's service time.  In hybrid topology the last entry
        is the pool's die.
    mail_hop_s:
        Seconds added per forwarded edge that crosses a die boundary.
    topology:
        ``"sharded"`` (default), ``"pool"``, or ``"hybrid"``.
    pool_servers:
        Replica count behind the shared queue (pool and hybrid topologies;
        defaults to ``len(backends)`` for pool and to the dedicated-shard
        count for hybrid).
    memsync:
        Cross-shard memory sync policy (sharded and hybrid topologies):
        ``"none"`` (default, stale mirrors — staleness is still measured),
        ``"invalidate"`` (pull fresh rows on stale reads, priced as
        mailbox round-trips) or ``"push"`` (owner writes forward rows
        alongside the edge mail).  See :mod:`repro.serving.memsync`.
        Pricing only: sync traffic inflates service times through
        ``mail_hop_s`` and surfaces in the report (``sync_edges`` /
        ``stale_reads`` / ``max_version_lag``); the *functional* exactness
        protocol lives in :class:`~repro.serving.memsync.ShardedRuntime`.
    rebalancer:
        An :class:`~repro.serving.rebalance.OnlineRebalancer` to run on
        the event loop (sharded and hybrid topologies): it watches
        per-shard window utilization / queue depth on released jobs and
        migrates vertex ownership mid-run via
        :class:`~repro.serving.events.MigrationEvent`.  Handoff rows are
        priced through ``mail_hop_s`` like sync traffic (charged to the
        destination shard's next sub-job) and the report gains
        ``rebalance`` / ``migrations`` / ``migrated_vertices`` /
        ``handoff_rows``.  In hybrid topology the rebalancer runs in
        drift mode: heating pool vertices are promoted onto dedicated
        shards, cooled dedicated-shard vertices demoted back to the pool.
    failures:
        A :class:`~repro.serving.events.FailurePlan` (or sequence of them)
        to inject during each run (sharded and hybrid topologies): the
        :class:`FailureInjector` schedules the failure/recovery events,
        applies them to the shard's :class:`ServerGroup` and — for dead
        failures — runs replica promotion / peer rebuild / fail-back
        through the router and memsync cache, pricing recovery rows via
        ``mail_hop_s``.  The report gains ``chaos`` / ``failures`` /
        ``recoveries`` / ``promoted_vertices`` / ``rebuilt_vertices`` /
        ``recovery_rows`` / ``outage_windows`` / ``outage_p99_response_s``
        (keys omitted when off).  Mutually exclusive with ``rebalancer``:
        a failover would invalidate the rebalancer's in-flight
        decision-to-application ownership check.
    autoscaler:
        An :class:`~repro.serving.autoscale.AutoScaler` to run on the
        event loop: it watches windowed p95 response latency against an
        SLO band and resizes the fleet mid-run via
        :class:`~repro.serving.events.ScaleEvent`.  Pool topology grows
        and shrinks the replica group in place (cold starts priced by
        delayed first availability); sharded topology splits/merges
        ownership across a ``capacity.max_replicas``-slot fleet through
        :class:`~repro.serving.events.MigrationEvent` handoffs, priced
        through ``mail_hop_s`` exactly like rebalancer migrations (build
        the layout with
        :func:`~repro.serving.placement.padded_hash_placement`).  The
        report gains a ``scaling`` block (key omitted when off).
        Mutually exclusive with ``rebalancer`` and ``failures`` — both
        mutate ownership or fleet health underneath the scaler's
        decision-to-application consistency checks — and with measured
        backends (a worker lane cannot be created mid-run).
    workers:
        Worker-pool width for **measured** backends (any backend with
        ``measured = True``, e.g. the registry's ``"measured"``): the
        engine builds a :class:`~repro.serving.measured.WorkerPool` of
        this many process lanes, runs each shard's real kernels on lane
        ``shard % workers``, and reconciles measured durations into
        event time (see :mod:`repro.serving.measured`).  ``0`` (default)
        computes in-process with one virtual lane per shard.  Only legal
        with measured backends, which require ``topology="sharded"``.
    """

    def __init__(self, backends: Sequence, num_nodes: int,
                 batcher: DynamicBatcher | None = None,
                 router: ShardRouter | None = None,
                 placement: Placement | None = None,
                 die_of: Sequence[int] | None = None,
                 mail_hop_s: float = 0.0,
                 topology: str = "sharded",
                 pool_servers: int | None = None,
                 memsync: str = "none",
                 rebalancer=None,
                 failures=None,
                 autoscaler=None,
                 workers: int = 0):
        if not backends:
            raise ValueError("need at least one backend")
        measured_flags = [bool(getattr(b, "measured", False))
                          for b in backends]
        self._measured = any(measured_flags)
        if self._measured:
            if not all(measured_flags):
                raise ValueError(
                    "measured and modeled backends cannot mix in one "
                    "fleet: the worker pool owns every shard's runtime")
            if topology != "sharded":
                raise ValueError(
                    "measured backends require topology='sharded': pool "
                    "and hybrid replicas share one stateful backend "
                    "across concurrent servers, which a worker lane "
                    "cannot reproduce")
        if workers < 0:
            raise ValueError("workers must be non-negative")
        if workers and not self._measured:
            raise ValueError(
                "workers only applies to measured backends; modeled "
                "backends price batches without executing them")
        self.workers = int(workers)
        if topology not in TOPOLOGIES:
            raise ValueError(f"topology must be one of {TOPOLOGIES}")
        if memsync not in MEMSYNC_POLICIES:
            raise ValueError(f"memsync must be one of {MEMSYNC_POLICIES}")
        if topology == "pool" and memsync != "none":
            raise ValueError("pool topology shares one state store: "
                             "memsync does not apply")
        if router is not None and placement is not None:
            raise ValueError("pass either router or placement, not both")
        if pool_servers is not None:
            if topology == "sharded":
                raise ValueError(
                    "pool_servers requires topology='pool' or 'hybrid'")
            if pool_servers <= 0:
                raise ValueError("pool_servers must be positive")
        if rebalancer is not None and failures is not None:
            raise ValueError(
                "failure injection and online rebalancing cannot run "
                "together: a failover changes ownership underneath the "
                "rebalancer's decision-to-application consistency check")
        if autoscaler is not None:
            if rebalancer is not None:
                raise ValueError(
                    "autoscaling and online rebalancing cannot run "
                    "together: both migrate ownership from windowed "
                    "measurements and would race each other's "
                    "decision-to-application consistency checks")
            if failures is not None:
                raise ValueError(
                    "autoscaling and failure injection cannot run "
                    "together: a failover changes ownership and fleet "
                    "health underneath the scaler's decisions")
            if self._measured:
                raise ValueError(
                    "autoscaling requires modeled backends: a measured "
                    "worker lane cannot be created mid-run")
            if topology == "hybrid":
                raise ValueError(
                    "autoscaling does not apply to the hybrid topology: "
                    "the pool pseudo-shard and the dedicated shards "
                    "would need separate controllers")
            if topology == "pool" \
                    and (pool_servers or len(backends)) \
                    != autoscaler.capacity.replicas:
                raise ValueError(
                    f"pool_servers ({pool_servers or len(backends)}) must "
                    f"equal capacity.replicas "
                    f"({autoscaler.capacity.replicas}): the capacity "
                    f"config is the controller's source of truth for the "
                    f"initial fleet")
            if topology == "sharded" \
                    and len(backends) != autoscaler.capacity.max_replicas:
                raise ValueError(
                    f"sharded autoscaling needs one backend per fleet "
                    f"slot: capacity.max_replicas is "
                    f"{autoscaler.capacity.max_replicas}, got "
                    f"{len(backends)} backends (use padded_hash_placement "
                    f"to size the router to match)")
        if topology == "pool":
            if rebalancer is not None:
                raise ValueError(
                    "pool topology has no partition to rebalance: "
                    "rebalancer does not apply")
            if failures is not None:
                raise ValueError(
                    "pool topology has one shared queue and state store: "
                    "per-shard failure injection does not apply")
            if len(backends) != 1:
                raise ValueError(
                    "pool topology takes exactly one timing backend "
                    "(replicas are identical and stateless); set "
                    "pool_servers=K for the replica count")
            if router is not None or placement is not None \
                    or die_of is not None or mail_hop_s:
                raise ValueError(
                    "pool topology has no partition: router, placement, "
                    "die_of, and mail_hop_s do not apply")
        if topology == "hybrid":
            if placement is None and router is None:
                raise ValueError(
                    "hybrid topology needs a placement whose last "
                    "pseudo-shard is the pool (see HotColdHybrid)")
            if len(backends) < 2:
                raise ValueError(
                    "hybrid topology needs at least one dedicated hot "
                    "shard backend plus the pool timing backend")
        self.backends = list(backends)
        self.num_shards = len(self.backends)
        self.batcher = batcher or DynamicBatcher()
        self.topology = topology
        if topology == "hybrid":
            self.pool_servers = int(pool_servers or self.num_shards - 1)
        else:
            self.pool_servers = int(pool_servers or len(self.backends))
        if placement is not None:
            router = ShardRouter.from_placement(placement)
        self.router = router or ShardRouter(self.num_shards, num_nodes)
        if topology in ("sharded", "hybrid") \
                and self.router.num_shards != self.num_shards:
            raise ValueError("router shard count must match backend count")
        if die_of is not None and len(die_of) != self.router.num_shards:
            raise ValueError("die_of must assign every shard")
        self.die_of = None if die_of is None else np.asarray(die_of,
                                                             dtype=np.int64)
        self.mail_hop_s = float(mail_hop_s)
        self.memsync = memsync
        self.rebalancer = rebalancer
        self.autoscaler = autoscaler
        self.failure_injector = None if failures is None \
            else FailureInjector(failures)
        # Populated by each run: typed trace (or None), the scheduler
        # instance (counters), the event-loop wall-clock seconds, and the
        # offered-arrival count (the conservation check's denominator).
        self.last_event_trace = None
        self.last_scheduler = None
        self.last_loop_wall_s = 0.0
        self.last_num_arrivals = 0

    @classmethod
    def from_registry(cls, backend: str | Sequence[str], model,
                      graph: TemporalGraph, num_shards: int | None = None,
                      registry: BackendRegistry = DEFAULT_REGISTRY,
                      backend_kwargs: dict | None = None,
                      hot_top_k: int = 16,
                      **engine_kwargs) -> "ServingEngine":
        """Build an engine with backends constructed by name.

        Sharded topology: ``backend`` is either one name replicated
        ``num_shards`` times or an explicit per-shard list (heterogeneous
        shards are legal: e.g. hot shards on ``u200``, cold shards on
        ``cpu-32t``).  Pool topology (``topology="pool"``): replicas are
        identical and stateless, so one timing backend is built and
        ``num_shards`` becomes the replica count behind the shared queue.
        Hybrid topology (``topology="hybrid"``): ``num_shards`` dedicated
        hot shards plus a cold-tail pool — the ``hot_top_k`` hottest
        vertices by measured heat go to the dedicated shards
        (:class:`~repro.serving.placement.HotColdHybrid`) and
        ``pool_servers`` (default ``num_shards``) replicas drain the rest.
        """
        if num_shards is not None and num_shards <= 0:
            raise ValueError("num_shards must be positive")
        kwargs = backend_kwargs or {}
        topology = engine_kwargs.get("topology")
        if topology == "pool":
            if not isinstance(backend, str):
                raise ValueError("pool topology takes one backend name "
                                 "(replicas are identical)")
            engine_kwargs.setdefault("pool_servers", num_shards or 1)
            backends = [registry.create(backend, model, graph, **kwargs)]
            return cls(backends, graph.num_nodes, **engine_kwargs)
        if topology == "hybrid":
            if not isinstance(backend, str):
                raise ValueError("hybrid topology takes one backend name "
                                 "(applied to hot shards and the pool)")
            hot_shards = num_shards or 1
            engine_kwargs.setdefault("pool_servers", hot_shards)
            backends = registry.create_many(backend, hot_shards + 1,
                                            model, graph, **kwargs)
            heat = VertexHeat.from_graph(graph)
            placement = HotColdHybrid(hot_top_k=hot_top_k).place(
                heat, hot_shards + 1)
            return cls(backends, graph.num_nodes, placement=placement,
                       **engine_kwargs)
        if isinstance(backend, str):
            backends = registry.create_many(backend, num_shards or 1,
                                            model, graph, **kwargs)
        else:
            names = list(backend)
            if num_shards is not None and len(names) != num_shards:
                raise ValueError("backend list length must equal num_shards")
            backends = [registry.create(n, model, graph, **kwargs)
                        for n in names]
        return cls(backends, graph.num_nodes, **engine_kwargs)

    # ------------------------------------------------------------------ #
    def _cross_die_mail(self, shard: int, mail_from: np.ndarray) -> int:
        if self.die_of is None or not len(mail_from):
            return 0
        return int((self.die_of[mail_from] != self.die_of[shard]).sum())

    def _cross_die_sync(self, sb) -> int:
        """Die-crossing hop count of a sub-job's sync traffic.

        A pulled row is a read-blocking round-trip (two hops: request +
        response); a pushed row rides in with the mail (one hop).  Rows
        exchanged between shards on the same die are free, exactly like
        edge mail.
        """
        if self.die_of is None:
            return 0
        hops = 0
        for rows, cost in ((sb.sync_pull, 2), (sb.sync_push, 1)):
            if len(rows):
                owners = self.router.assignment[rows]
                hops += cost * int((self.die_of[owners]
                                    != self.die_of[sb.shard]).sum())
        return hops

    def run(self, graph: TemporalGraph, window_s: float, start: int = 0,
            end: int | None = None, speedup: float = 1.0,
            num_streams: int = 1,
            queue_capacity: int | None = None,
            ingest: str = "serial",
            scheduler_cls: type | None = None,
            trace: bool = False) -> ServingReport:
        """Replay the multi-stream arrival process through the topology.

        ``ingest="serial"`` serializes batching in front of service (the
        byte-stable historical behavior); ``"pipelined"`` double-buffers
        the ingest tier so the batching delay overlaps in-flight compute.

        Backends are stateful (engine protocol: functional vertex state may
        advance per batch), so a second ``run`` on the same engine continues
        from the first run's warm state — deliberate for warm-deployment
        studies, but for independent, comparable replays build a fresh
        engine (``from_registry`` constructs fresh backends each call).
        The same applies to online rebalancing: migrations mutate the live
        placement, so a second run starts from the drifted partition (the
        rebalancer's own counters do reset per run).

        ``scheduler_cls`` selects the event-loop implementation (default
        :class:`EventScheduler`; pass :class:`HeapEventScheduler` for the
        reference per-event loop — the bench and ``serve-sim --profile``
        use it as the before/after comparison lane).

        ``trace=True`` records the full typed-event trace (costs memory)
        and exposes it as ``last_event_trace`` — the input of
        :mod:`repro.analysis.tracecheck` and the invariant suites.
        """
        if ingest not in INGEST_MODES:
            raise ValueError(f"ingest must be one of {INGEST_MODES}")
        arrivals = make_stream_arrivals(graph, window_s,
                                        num_streams=num_streams, start=start,
                                        end=end, speedup=speedup)
        return self._run_events(arrivals, window_s, speedup, num_streams,
                                queue_capacity, ingest, trace=trace,
                                scheduler_cls=scheduler_cls)

    # ------------------------------------------------------------------ #
    def _make_groups(self, sched: EventScheduler,
                     queue_capacity: int | None,
                     pool: WorkerPool | None = None) -> list[ServerGroup]:
        """One server group per backend: dedicated shards are 1-server
        groups; the pool (whole fleet, or the hybrid cold tail) is one
        K-server group.  Measured backends get a
        :class:`~repro.serving.measured.MeasuredServerGroup` wired to the
        worker ``pool`` instead of a modeled service closure."""
        if self.topology == "pool":
            server_counts = [self.pool_servers]
        elif self.topology == "hybrid":
            server_counts = [1] * (self.num_shards - 1) + [self.pool_servers]
        else:
            server_counts = [1] * self.num_shards
        groups: list[ServerGroup] = []

        def sub_batch(payload):
            return payload[1].batch

        def hop_service(payload):
            _, _, hops, sync_hops = payload
            return self.mail_hop_s * (hops + sync_hops)

        for gid, (n_srv, backend) in enumerate(zip(server_counts,
                                                   self.backends)):
            if self._measured:
                assert pool is not None
                groups.append(MeasuredServerGroup(
                    gid, n_srv, backend, pool, sched,
                    queue_capacity=queue_capacity,
                    prepare=sub_batch, extra_service=hop_service))
                continue
            if self.topology == "pool":
                def service(job, _backend=backend):
                    return _backend.process_batch(job.batch)
            else:
                def service(payload, _backend=backend):
                    _, sb, hops, sync_hops = payload
                    return _backend.process_batch(sb.batch) \
                        + self.mail_hop_s * (hops + sync_hops)
            groups.append(ServerGroup(gid, n_srv, service, sched,
                                      queue_capacity=queue_capacity))
        return groups

    def _run_events(self, arrivals: list[StreamArrival], window_s: float,
                    speedup: float, num_streams: int,
                    queue_capacity: int | None, ingest: str,
                    trace: bool = False,
                    scheduler_cls: type | None = None) -> ServingReport:
        pool = None
        if self._measured:
            # Worker lanes live exactly as long as the loop: state is
            # pinned per shard at start, and shutdown joins the processes
            # even when the run raises.
            pool = WorkerPool(self.workers)
            pool.start(dict(enumerate(self.backends)))
        try:
            return self._run_loop(arrivals, window_s, speedup, num_streams,
                                  queue_capacity, ingest, trace,
                                  scheduler_cls, pool)
        finally:
            if pool is not None:
                pool.shutdown()

    def _run_loop(self, arrivals: list[StreamArrival], window_s: float,
                  speedup: float, num_streams: int,
                  queue_capacity: int | None, ingest: str, trace: bool,
                  scheduler_cls: type | None,
                  pool: WorkerPool | None) -> ServingReport:
        sched = (scheduler_cls or EventScheduler)(trace=trace)
        groups = self._make_groups(sched, queue_capacity, pool)
        pooled = self.topology == "pool"
        cache = None if pooled else \
            VersionedMemoryCache(self.router.placement, policy=self.memsync)

        jobs: list[CoalescedJob] = []
        per_shard: list[list[tuple[float, tuple]]] = \
            [[] for _ in groups]

        # Migration handoff pricing: rows crossing a die cost one hop each
        # (the handoff rides the mail channel, like a push); the hops are
        # charged to the destination shard's *next* sub-job, the same way
        # sync traffic inflates the service time of the job carrying it.
        rebal = self.rebalancer
        auto = self.autoscaler
        pending_handoff_hops = [0] * len(groups)

        def price_handoff(ev):
            if self.die_of is not None \
                    and self.die_of[ev.from_shard] \
                    != self.die_of[ev.to_shard]:
                pending_handoff_hops[ev.to_shard] += ev.rows

        if rebal is not None:
            rebal.bind(sched, groups, router=self.router, cache=cache,
                       pool_shard=(self.num_shards - 1
                                   if self.topology == "hybrid" else None),
                       on_migrate=price_handoff)
        if auto is not None:
            # Split/merge handoffs ride the same channel and pricing as
            # rebalancer migrations; the groups' commit hook is the
            # controller's latency feed.
            auto.bind(sched, groups,
                      router=None if pooled else self.router,
                      cache=cache, on_migrate=price_handoff)
            for g in groups:
                g.on_serviced = auto.record_response

        # Recovery transfers (peer rebuilds, fail-backs) ride the same
        # channel and pricing as migration handoffs.
        chaos = self.failure_injector
        if chaos is not None:
            def price_recovery(rows, from_shard, to_shard):
                if self.die_of is not None \
                        and self.die_of[from_shard] != self.die_of[to_shard]:
                    pending_handoff_hops[to_shard] += rows

            chaos.bind(sched, groups, router=self.router, cache=cache,
                       on_rows=price_recovery)

        def route(job: CoalescedJob) -> list[Submission]:
            ji = len(jobs)
            jobs.append(job)
            if pooled:
                if auto is not None:
                    # Decisions scheduled here fire as ScaleEvents *after*
                    # this job's submission lands: in-flight work drains on
                    # the old fleet, the next dispatch sees the new one.
                    auto.observe(job.t_release, job.batch)
                per_shard[0].append((job.t_release, job))
                return [Submission(0, job)]
            if auto is not None:
                # Same decision-after-routing discipline as the rebalancer
                # below: the split/merge migrations land before the next
                # release routes.
                auto.observe(job.t_release, job.batch)
            if rebal is not None:
                # Decisions scheduled here fire as MigrationEvents *after*
                # this job's submissions land: in-flight work drains under
                # the old ownership, the next release routes under the new.
                rebal.observe(job.t_release, job.batch)
            subs = []
            for sb in self.router.split(job.batch, cache=cache):
                hops = self._cross_die_mail(sb.shard, sb.mail_from)
                sync_hops = self._cross_die_sync(sb)
                if pending_handoff_hops[sb.shard]:
                    sync_hops += pending_handoff_hops[sb.shard]
                    pending_handoff_hops[sb.shard] = 0
                payload = (ji, sb, hops, sync_hops)
                per_shard[sb.shard].append((job.t_release, payload))
                mail = sync = ()
                if sched.trace is not None:
                    if sb.mail_edges:
                        src = np.bincount(sb.mail_from)
                        mail = tuple((int(f), sb.shard, int(n))
                                     for f, n in enumerate(src) if n)
                    sync = tuple(
                        (int(o), sb.shard, int(n), kind)
                        for rows, kind in ((sb.sync_pull, "pull"),
                                           (sb.sync_push, "push"))
                        if len(rows)
                        for o, n in enumerate(np.bincount(
                            self.router.assignment[rows])) if n)
                subs.append(Submission(sb.shard, payload, mail, sync))
            return subs

        router_actor = RouterActor(sched, groups, route)
        batcher = BatcherActor(self.batcher, sched, router_actor,
                               ingest=ingest,
                               fleet=groups if ingest == "pipelined" else ())
        if ingest == "pipelined":
            for g in groups:
                g.on_hungry = batcher.on_hungry
        batcher.start(arrivals)
        t0 = time.perf_counter()
        sched.run()
        loop_wall = time.perf_counter() - t0
        # Exposed for the invariant tests: the full typed-event trace of
        # the run (None unless trace=True — tracing costs memory).  The
        # scheduler itself is exposed for its counters (events_processed,
        # cohort_calls), and the loop wall-clock isolates the event core
        # from setup and report assembly — the bench and --profile read
        # them.
        self.last_event_trace = sched.trace
        self.last_scheduler = sched
        self.last_loop_wall_s = loop_wall
        self.last_num_arrivals = len(arrivals)
        shard_results = [g.finalize() for g in groups]

        if pooled:
            return self._pool_report(arrivals, jobs, shard_results[0],
                                     window_s, speedup, num_streams, ingest,
                                     auto=auto)
        return self._sharded_report(arrivals, jobs, per_shard, shard_results,
                                    window_s, speedup, num_streams, ingest,
                                    rebal, chaos,
                                    measured=self._measured_block(groups),
                                    auto=auto)

    # ------------------------------------------------------------------ #
    def _measured_block(self, groups: Sequence[ServerGroup]) -> dict | None:
        """Summarize measured service-time samples for the report.

        ``None`` on modeled runs (the key is then omitted from the
        report, keeping pre-measured goldens byte-identical).  Values are
        wall-clock statistics and therefore *not* run-reproducible; the
        block's structure is (see :meth:`ServingReport.to_structure_json`).
        """
        if not self._measured:
            return None

        def stats(samples: np.ndarray) -> tuple[float, float]:
            mean = float(samples.mean()) if len(samples) else 0.0
            cv2 = float(samples.var() / mean ** 2) \
                if len(samples) and mean > 0 else 0.0
            return mean, cv2

        def modeled_mean(samples: np.ndarray) -> float | None:
            with_model = samples[~np.isnan(samples)]
            return float(with_model.mean()) if len(with_model) else None

        per_shard = []
        all_measured: list[np.ndarray] = []
        all_modeled: list[np.ndarray] = []
        stage_seconds: dict[str, float] = {}
        for group in groups:
            if not isinstance(group, MeasuredServerGroup):
                continue
            m = np.asarray([s[0] for s in group.samples])
            mod = np.asarray([s[1] for s in group.samples])
            all_measured.append(m)
            all_modeled.append(mod)
            mean, cv2 = stats(m)
            per_shard.append({"shard": group.gid, "samples": len(m),
                              "mean_s": mean, "cv2": cv2,
                              "modeled_mean_s": modeled_mean(mod)})
            for stage in sorted(group.stage_seconds):
                stage_seconds[stage] = stage_seconds.get(stage, 0.0) \
                    + group.stage_seconds[stage]
        pooled_m = np.concatenate(all_measured) if all_measured \
            else np.empty(0)
        pooled_mod = np.concatenate(all_modeled) if all_modeled \
            else np.empty(0)
        mean, cv2 = stats(pooled_m)
        return {"workers": self.workers, "samples": len(pooled_m),
                "mean_s": mean, "cv2": cv2,
                "modeled_mean_s": modeled_mean(pooled_mod),
                "stage_seconds": stage_seconds,
                "per_shard": per_shard}

    # ------------------------------------------------------------------ #
    def _sharded_report(self, arrivals: list[StreamArrival],
                        jobs: list[CoalescedJob],
                        per_shard: list[list[tuple[float, tuple]]],
                        shard_results: list[SimulationResult],
                        window_s: float, speedup: float, num_streams: int,
                        ingest: str, rebal=None, chaos=None,
                        measured: dict | None = None,
                        auto=None) -> ServingReport:
        mailbox = CrossShardMailbox(self.num_shards)

        # Resolve drops globally first: a window is dropped if *any*
        # shard's queue rejected its sub-job, and a dropped window's
        # surviving sub-jobs must not inflate the traffic report even
        # though their shards did serve them.
        finish_of_job = np.full(len(jobs), -np.inf)
        job_dropped = np.zeros(len(jobs), dtype=bool)
        for shard, res in enumerate(shard_results):
            for di in res.dropped_indices:
                job_dropped[per_shard[shard][di][1][0]] = True

        # Traffic is accounted per served sub-job of a non-dropped window —
        # edges rejected by a full queue were never processed, and partial
        # windows are reported dropped, so neither may count.
        shard_traffic = np.zeros((self.num_shards, 2), dtype=np.int64)
        cross_die_mail = 0
        sync_edges = 0
        stale_reads = 0
        max_version_lag = 0
        for shard, res in enumerate(shard_results):
            for sj in res.served:
                ji, sb, hops, _ = per_shard[shard][sj.index][1]
                finish_of_job[ji] = max(finish_of_job[ji], sj.t_finish)
                if job_dropped[ji]:
                    continue
                shard_traffic[shard, 0] += sb.local_edges
                shard_traffic[shard, 1] += sb.mail_edges
                cross_die_mail += hops
                if sb.mail_edges:
                    mailbox.record(sb.mail_from, shard)
                for rows in (sb.sync_pull, sb.sync_push):
                    if len(rows):
                        mailbox.record_sync(self.router.assignment[rows],
                                            shard)
                        sync_edges += len(rows)
                stale_reads += sb.stale_reads
                max_version_lag = max(max_version_lag, sb.version_lag)

        # Window-level accounting: a window responds when its job's last
        # shard finishes; it is dropped if any shard's queue rejected it.
        # Windows arriving inside an outage interval feed the chaos tail
        # metrics separately — the recovery bill lands there.
        finite = finish_of_job[np.isfinite(finish_of_job)]
        run_end = float(finite.max()) if len(finite) else float(arrivals[0].t)
        # An unrecovered failure leaves its outage open (hi == inf) — exact
        # internally, but Infinity is not strict JSON, so anything derived
        # for the report clamps open windows to the run's end.  Membership
        # below is unchanged by the clamp: every served arrival precedes
        # its own finish, hence run_end.
        outages = [(lo, min(hi, run_end))
                   for lo, hi in (chaos.outage_intervals()
                                  if chaos is not None else [])]
        responses: list[float] = []
        outage_resp: list[float] = []
        dropped_windows = 0
        for ji, job in enumerate(jobs):
            if job_dropped[ji] or not np.isfinite(finish_of_job[ji]):
                dropped_windows += len(job.sources)
                continue
            for a in job.sources:
                responses.append(finish_of_job[ji] - a.t)
                if outages and any(lo <= a.t < hi for lo, hi in outages):
                    outage_resp.append(responses[-1])

        hybrid = self.topology == "hybrid"
        stats = tuple(
            ShardStats(shard=s,
                       backend=getattr(self.backends[s], "name",
                                       type(self.backends[s]).__name__),
                       jobs=r.jobs,
                       edges=int(shard_traffic[s].sum()),
                       local_edges=int(shard_traffic[s, 0]),
                       mail_in_edges=int(shard_traffic[s, 1]),
                       busy_s=r.busy_s,
                       utilization=r.utilization,
                       offered_load=r.offered_load,
                       mean_wait_s=r.mean_wait_s,
                       mean_response_s=r.mean_response_s,
                       p95_response_s=r.p95_response_s,
                       p99_response_s=r.p99_response_s,
                       max_queue_depth=r.max_queue_depth,
                       dropped_jobs=r.dropped,
                       servers=r.num_servers)
            for s, r in enumerate(shard_results))

        resp = np.asarray(responses)
        # One sort feeds every percentile (order statistics are
        # permutation-invariant, bit-for-bit); the mean stays on the
        # unsorted array — summation order changes its last bits.
        resp_sorted = np.sort(resp)
        makespan = run_end - float(arrivals[0].t) if len(finite) else 0.0
        ingested = sum(len(a) for a in arrivals)
        placement = self.router.placement
        return ServingReport(
            num_shards=self.num_shards, num_streams=num_streams,
            speedup=speedup, window_s=window_s,
            windows=len(responses), dropped_windows=dropped_windows,
            mean_response_s=float(resp.mean()) if len(resp) else 0.0,
            p95_response_s=float(np.percentile(resp_sorted, 95))
            if len(resp) else 0.0,
            p99_response_s=float(np.percentile(resp_sorted, 99))
            if len(resp) else 0.0,
            makespan_s=makespan,
            ingested_edges=ingested,
            processed_edges=int(shard_traffic.sum()),
            cross_shard_edges=mailbox.total_edges,
            cross_die_mail_edges=cross_die_mail,
            shard_stats=stats,
            topology=self.topology,
            placement=placement.policy,
            replicated_vertices=placement.replicated_vertices,
            memsync=self.memsync,
            sync_edges=sync_edges,
            stale_reads=stale_reads,
            max_version_lag=max_version_lag,
            pool_servers=self.pool_servers if hybrid else 1,
            ingest=ingest,
            rebalance="off" if rebal is None else "online",
            migrations=0 if rebal is None else rebal.migrations,
            migrated_vertices=0 if rebal is None else rebal.migrated_vertices,
            handoff_rows=0 if rebal is None else rebal.handoff_rows,
            chaos="off" if chaos is None else chaos.chaos,
            failures=0 if chaos is None else chaos.failures,
            recoveries=0 if chaos is None else chaos.recoveries,
            promoted_vertices=0 if chaos is None else chaos.promoted_vertices,
            rebuilt_vertices=0 if chaos is None else chaos.rebuilt_vertices,
            recovery_rows=0 if chaos is None else chaos.recovery_rows,
            outage_windows=len(outage_resp),
            outage_p99_response_s=float(
                np.percentile(np.sort(np.asarray(outage_resp)), 99))
            if outage_resp else 0.0,
            measured=measured,
            scaling=None if auto is None
            else auto.report_block(float(arrivals[0].t), makespan))

    # ------------------------------------------------------------------ #
    def _pool_report(self, arrivals: list[StreamArrival],
                     jobs: list[CoalescedJob], res: SimulationResult,
                     window_s: float, speedup: float, num_streams: int,
                     ingest: str, auto=None) -> ServingReport:
        """K stateless replicas behind one shared FIFO queue.

        Jobs are never split: any free replica serves the whole job, so no
        mailbox traffic exists and each edge is processed exactly once
        (``replication_factor == 1``).  Service times come from the single
        timing backend processing the stream in admission order — the
        shared-state-store semantics replicas would see in deployment.
        """
        backend = self.backends[0]
        responses: list[float] = []
        edges_served = 0
        for sj in res.served:
            job = jobs[sj.index]
            edges_served += len(job.batch)
            for a in job.sources:
                responses.append(sj.t_finish - a.t)
        dropped_windows = sum(len(jobs[di].sources)
                              for di in res.dropped_indices)

        stats = (ShardStats(
            shard=0,
            backend=getattr(backend, "name", type(backend).__name__),
            jobs=res.jobs, edges=edges_served, local_edges=edges_served,
            mail_in_edges=0, busy_s=res.busy_s,
            utilization=res.utilization, offered_load=res.offered_load,
            mean_wait_s=res.mean_wait_s,
            mean_response_s=res.mean_response_s,
            p95_response_s=res.p95_response_s,
            p99_response_s=res.p99_response_s,
            max_queue_depth=res.max_queue_depth,
            dropped_jobs=res.dropped,
            servers=self.pool_servers),)

        resp = np.asarray(responses)
        resp_sorted = np.sort(resp)   # shared by the percentiles, as above
        # Same convention as the sharded path: first *stream* arrival (not
        # first job release) to last service completion.
        makespan = float(max(sj.t_finish for sj in res.served)
                         - arrivals[0].t) if res.served else 0.0
        return ServingReport(
            num_shards=1, num_streams=num_streams,
            speedup=speedup, window_s=window_s,
            windows=len(responses), dropped_windows=dropped_windows,
            mean_response_s=float(resp.mean()) if len(resp) else 0.0,
            p95_response_s=float(np.percentile(resp_sorted, 95))
            if len(resp) else 0.0,
            p99_response_s=float(np.percentile(resp_sorted, 99))
            if len(resp) else 0.0,
            makespan_s=makespan,
            ingested_edges=sum(len(a) for a in arrivals),
            processed_edges=edges_served,
            cross_shard_edges=0,
            cross_die_mail_edges=0,
            shard_stats=stats,
            topology="pool",
            placement="none",
            replicated_vertices=0,
            pool_servers=self.pool_servers,
            ingest=ingest,
            scaling=None if auto is None
            else auto.report_block(float(arrivals[0].t), makespan))
