"""Sharded multi-stream serving engine.

This is the production-deployment composition the single-device replay in
``pipeline/`` cannot express: many concurrent edge streams hit an ingest
tier, a :class:`~repro.serving.batcher.DynamicBatcher` coalesces their
windows under a latency deadline, a
:class:`~repro.serving.router.ShardRouter` splits each released batch
across hash-partitioned shards, and every shard — owning its own backend
and :class:`~repro.models.tgn.ModelRuntime` — serves its sub-batches
through a FIFO queue simulated by
:func:`~repro.serving.simulator.simulate_queue`.  A window's response time
is fork-join: it completes when the *last* involved shard finishes.

Workload model: each stream replays the graph's own window arrival
process, phase-shifted by a fraction of a window, so ``num_streams = S``
multiplies the recorded load S-fold — the multi-tenant analogue of the
``speedup`` stream-time compression.  With one stream, one shard, and a
passthrough batcher the engine reproduces
:func:`repro.pipeline.replay_under_load` exactly (asserted by the
equivalence tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..graph.batching import iter_time_windows
from ..graph.temporal_graph import TemporalGraph
from .batcher import CoalescedJob, DynamicBatcher, StreamArrival
from .registry import DEFAULT_REGISTRY, BackendRegistry
from .router import CrossShardMailbox, ShardRouter
from .simulator import SimulationResult, simulate_queue

__all__ = ["ShardStats", "ServingReport", "ServingEngine",
           "make_stream_arrivals"]


@dataclass(frozen=True)
class ShardStats:
    """Per-shard queueing and traffic statistics."""

    shard: int
    backend: str
    jobs: int
    edges: int                  # edges processed (local + mail)
    local_edges: int
    mail_in_edges: int          # edges forwarded in from other shards
    busy_s: float
    utilization: float
    offered_load: float
    mean_wait_s: float
    mean_response_s: float
    p95_response_s: float
    p99_response_s: float
    max_queue_depth: int
    dropped_jobs: int

    @property
    def stable(self) -> bool:
        return self.offered_load < 1.0


@dataclass(frozen=True)
class ServingReport:
    """End-to-end outcome of a sharded multi-stream replay."""

    num_shards: int
    num_streams: int
    speedup: float
    window_s: float
    windows: int                # window arrivals served end-to-end
    dropped_windows: int        # arrivals lost to a full shard queue
    mean_response_s: float      # arrival -> last involved shard finished
    p95_response_s: float
    p99_response_s: float
    makespan_s: float
    ingested_edges: int         # edges offered by the streams
    processed_edges: int        # edges actually serviced (incl. cross-shard
                                # duplication); drops are excluded
    cross_shard_edges: int      # mailbox traffic actually serviced
    cross_die_mail_edges: int   # mailbox traffic that crossed a die
    shard_stats: tuple[ShardStats, ...]

    @property
    def stable(self) -> bool:
        return all(s.stable for s in self.shard_stats)

    @property
    def served_edges(self) -> int:
        """Distinct stream edges serviced (cross-shard copies counted once)."""
        return self.processed_edges - self.cross_shard_edges

    @property
    def throughput_eps(self) -> float:
        return self.served_edges / self.makespan_s \
            if self.makespan_s > 0 else 0.0

    @property
    def replication_factor(self) -> float:
        """Processed / served edges — the cost of cross-shard edges."""
        return self.processed_edges / self.served_edges \
            if self.served_edges else 0.0


def make_stream_arrivals(graph: TemporalGraph, window_s: float,
                         num_streams: int = 1, start: int = 0,
                         end: int | None = None,
                         speedup: float = 1.0) -> list[StreamArrival]:
    """Arrival process of ``num_streams`` tenants replaying ``graph``.

    A window becomes servable when its last edge has arrived, so the
    arrival instant is the final edge timestamp (stream-time compressed by
    ``speedup``), matching :func:`repro.pipeline.replay_under_load`.
    Stream ``i`` is phase-shifted by ``i/num_streams`` of a window to model
    unsynchronized tenants.
    """
    if window_s <= 0 or speedup <= 0:
        raise ValueError("window_s and speedup must be positive")
    if num_streams <= 0:
        raise ValueError("num_streams must be positive")
    base: list[tuple[float, object]] = []
    for batch in iter_time_windows(graph, window_s, start=start, end=end):
        base.append((float(batch.t[-1]), batch))
    if not base:
        raise ValueError("no windows in the requested range")
    t0 = base[0][0]
    arrivals: list[StreamArrival] = []
    for i in range(num_streams):
        phase = (i / num_streams) * window_s / speedup
        for t_close, batch in base:
            arrivals.append(StreamArrival(t=(t_close - t0) / speedup + phase,
                                          stream=i, batch=batch))
    arrivals.sort(key=lambda a: a.t)
    return arrivals


class ServingEngine:
    """Shard-parallel serving in front of per-shard engine backends.

    Parameters
    ----------
    backends:
        One backend per shard (engine protocol, each with its own runtime).
    num_nodes:
        Vertex count, for the router's hash partition.
    batcher:
        Cross-stream coalescing policy; default is passthrough.
    router:
        Vertex partition; default hash-partitions over ``len(backends)``.
    die_of:
        Optional shard -> die assignment (see
        :func:`repro.hw.plan_shard_dies`).  With ``mail_hop_s`` it prices
        cross-die mailbox traffic into the receiving shard's service time.
    mail_hop_s:
        Seconds added per forwarded edge that crosses a die boundary.
    """

    def __init__(self, backends: Sequence, num_nodes: int,
                 batcher: DynamicBatcher | None = None,
                 router: ShardRouter | None = None,
                 die_of: Sequence[int] | None = None,
                 mail_hop_s: float = 0.0):
        if not backends:
            raise ValueError("need at least one backend")
        self.backends = list(backends)
        self.num_shards = len(self.backends)
        self.batcher = batcher or DynamicBatcher()
        self.router = router or ShardRouter(self.num_shards, num_nodes)
        if self.router.num_shards != self.num_shards:
            raise ValueError("router shard count must match backend count")
        if die_of is not None and len(die_of) != self.num_shards:
            raise ValueError("die_of must assign every shard")
        self.die_of = None if die_of is None else np.asarray(die_of,
                                                             dtype=np.int64)
        self.mail_hop_s = float(mail_hop_s)

    @classmethod
    def from_registry(cls, backend: str | Sequence[str], model,
                      graph: TemporalGraph, num_shards: int | None = None,
                      registry: BackendRegistry = DEFAULT_REGISTRY,
                      backend_kwargs: dict | None = None,
                      **engine_kwargs) -> "ServingEngine":
        """Build an engine with per-shard backends constructed by name.

        ``backend`` is either one name replicated ``num_shards`` times or an
        explicit per-shard list (heterogeneous shards are legal: e.g. hot
        shards on ``u200``, cold shards on ``cpu-32t``).
        """
        if num_shards is not None and num_shards <= 0:
            raise ValueError("num_shards must be positive")
        if isinstance(backend, str):
            names = [backend] * (num_shards or 1)
        else:
            names = list(backend)
            if num_shards is not None and len(names) != num_shards:
                raise ValueError("backend list length must equal num_shards")
        kwargs = backend_kwargs or {}
        backends = [registry.create(n, model, graph, **kwargs)
                    for n in names]
        return cls(backends, graph.num_nodes, **engine_kwargs)

    # ------------------------------------------------------------------ #
    def _cross_die_mail(self, shard: int, mail_from: np.ndarray) -> int:
        if self.die_of is None or not len(mail_from):
            return 0
        return int((self.die_of[mail_from] != self.die_of[shard]).sum())

    def run(self, graph: TemporalGraph, window_s: float, start: int = 0,
            end: int | None = None, speedup: float = 1.0,
            num_streams: int = 1,
            queue_capacity: int | None = None) -> ServingReport:
        """Replay the multi-stream arrival process through the shards.

        Backends are stateful (engine protocol: functional vertex state may
        advance per batch), so a second ``run`` on the same engine continues
        from the first run's warm state — deliberate for warm-deployment
        studies, but for independent, comparable replays build a fresh
        engine (``from_registry`` constructs fresh backends each call).
        """
        arrivals = make_stream_arrivals(graph, window_s,
                                        num_streams=num_streams, start=start,
                                        end=end, speedup=speedup)
        jobs = self.batcher.coalesce(arrivals)
        mailbox = CrossShardMailbox(self.num_shards)

        # Split every released job across shards.  The cross-die mail count
        # is computed once per sub-batch here and reused both for the
        # service-time penalty and (if the sub-job is actually served) the
        # traffic report.
        per_shard: list[list[tuple[float, tuple]]] = \
            [[] for _ in range(self.num_shards)]
        for ji, job in enumerate(jobs):
            for sb in self.router.split(job.batch):
                hops = self._cross_die_mail(sb.shard, sb.mail_from)
                per_shard[sb.shard].append((job.t_release, (ji, sb, hops)))

        # Each shard is a dedicated single server over its own FIFO: shard
        # state must advance in stream order, so jobs cannot be re-balanced.
        # Traffic is accounted per *served* sub-job — edges rejected by a
        # full queue were never processed and must not inflate the report.
        finish_of_job = np.full(len(jobs), -np.inf)
        job_dropped = np.zeros(len(jobs), dtype=bool)
        shard_traffic = np.zeros((self.num_shards, 2), dtype=np.int64)
        cross_die_mail = 0
        shard_results: list[SimulationResult] = []
        for shard, backend in enumerate(self.backends):
            def service(payload, _backend=backend):
                _, sb, hops = payload
                return _backend.process_batch(sb.batch) \
                    + self.mail_hop_s * hops

            res = simulate_queue(per_shard[shard], service, num_servers=1,
                                 queue_capacity=queue_capacity)
            shard_results.append(res)
            for sj in res.served:
                ji, sb, hops = per_shard[shard][sj.index][1]
                finish_of_job[ji] = max(finish_of_job[ji], sj.t_finish)
                shard_traffic[shard, 0] += sb.local_edges
                shard_traffic[shard, 1] += sb.mail_edges
                cross_die_mail += hops
                if sb.mail_edges:
                    mailbox.record(sb.mail_from, shard)
            for di in res.dropped_indices:
                job_dropped[per_shard[shard][di][1][0]] = True

        # Window-level accounting: a window responds when its job's last
        # shard finishes; it is dropped if any shard's queue rejected it.
        responses: list[float] = []
        dropped_windows = 0
        for ji, job in enumerate(jobs):
            if job_dropped[ji] or not np.isfinite(finish_of_job[ji]):
                dropped_windows += len(job.sources)
                continue
            for a in job.sources:
                responses.append(finish_of_job[ji] - a.t)

        stats = tuple(
            ShardStats(shard=s,
                       backend=getattr(self.backends[s], "name",
                                       type(self.backends[s]).__name__),
                       jobs=r.jobs,
                       edges=int(shard_traffic[s].sum()),
                       local_edges=int(shard_traffic[s, 0]),
                       mail_in_edges=int(shard_traffic[s, 1]),
                       busy_s=r.busy_s,
                       utilization=r.utilization,
                       offered_load=r.offered_load,
                       mean_wait_s=r.mean_wait_s,
                       mean_response_s=r.mean_response_s,
                       p95_response_s=r.p95_response_s,
                       p99_response_s=r.p99_response_s,
                       max_queue_depth=r.max_queue_depth,
                       dropped_jobs=r.dropped)
            for s, r in enumerate(shard_results))

        resp = np.asarray(responses)
        finite = finish_of_job[np.isfinite(finish_of_job)]
        makespan = float(finite.max() - arrivals[0].t) if len(finite) else 0.0
        ingested = sum(len(a) for a in arrivals)
        return ServingReport(
            num_shards=self.num_shards, num_streams=num_streams,
            speedup=speedup, window_s=window_s,
            windows=len(responses), dropped_windows=dropped_windows,
            mean_response_s=float(resp.mean()) if len(resp) else 0.0,
            p95_response_s=float(np.percentile(resp, 95)) if len(resp) else 0.0,
            p99_response_s=float(np.percentile(resp, 99)) if len(resp) else 0.0,
            makespan_s=makespan,
            ingested_edges=ingested,
            processed_edges=int(shard_traffic.sum()),
            cross_shard_edges=mailbox.total_edges,
            cross_die_mail_edges=cross_die_mail,
            shard_stats=stats)
