"""Measured backends: real TGNN kernels on the event core.

Every other backend *prices* a batch — it returns a modeled service time
and the event loop advances by that number.  The measured path closes
the model/reality seam: :class:`MeasuredServerGroup` dispatches each
admitted batch to a persistent worker pool running the real numpy
``update_memory``/``embed`` kernels (:meth:`repro.models.tgn.TGNN.
infer_batch`), measures the kernel wall-clock, and reconciles that
duration back into deterministic event time.

The reconciliation contract
---------------------------
Wall clocks and event clocks never mix.  A dispatch at event time ``t``
hands the batch to its shard's worker lane and schedules one *reconcile*
event at ``(t, _END)`` — the highest same-instant priority, so it fires
immediately after the handler that dispatched (by which point every
same-instant shard has dispatched too, and the workers genuinely overlap
on the wall clock).  The reconcile then commits completions **in
dispatch order**: each batch occupies its lane for exactly its measured
duration, starting at ``max(t_dispatch, lane_free)``, and the service
end lands at ``start + measured_s`` on the ordinary event heap.  Event
time therefore stays exact — same-run traces replay through
``repro.analysis.tracecheck`` clean — while the *numbers* flowing
through the queueing model are measured, not modeled.

The worker pool
---------------
``workers=N`` builds ``N`` single-process ``concurrent.futures``
executors (lanes); shard ``s`` is pinned to lane ``s % N``, so each
shard's batches execute in FIFO order against that worker's persistent
:class:`~repro.models.tgn.ModelRuntime` — the stateful-stream contract
backends rely on.  ``workers=0`` is the in-process fallback: kernels run
inline in the parent (one virtual lane per shard, so no artificial
serialization) — bit-compatible in structure, no subprocess cost.

``timed_kernel`` is the one place in the serving stack allowed to read
the wall clock (the ``wall-clock-in-events`` lint rule carves it out by
name); every measured duration in this module flows through it.
"""

from __future__ import annotations

import heapq
import math
import time
from concurrent.futures import Future, ProcessPoolExecutor
from contextlib import contextmanager
from typing import Any, Callable, Iterator

from .events import _END, EventScheduler, ServerGroup, ServiceBeginEvent

__all__ = ["KernelTimer", "MeasuredBackend", "MeasuredServerGroup",
           "WorkerPool", "timed_kernel"]


# --------------------------------------------------------------------------- #
class KernelTimer:
    """Duration cell filled in when its :func:`timed_kernel` block exits."""

    __slots__ = ("seconds",)

    def __init__(self) -> None:
        self.seconds = 0.0


@contextmanager
def timed_kernel() -> Iterator[KernelTimer]:
    """Measure the wall-clock duration of a kernel execution block.

    The single legal wall-clock site of the measured path: the
    ``wall-clock-in-events`` repro-lint rule bans ``time.perf_counter``
    everywhere else in this module, so every measured service time is
    guaranteed to come from here — a timed block around real compute,
    never a clock read inside an event handler's control flow.
    """
    timer = KernelTimer()
    t0 = time.perf_counter()
    try:
        yield timer
    finally:
        timer.seconds = time.perf_counter() - t0


# --------------------------------------------------------------------------- #
# Worker-process side.  One process per lane; state is pinned per shard
# at pool start and persists across batches (the stateful-stream
# contract: each shard's runtime sees its sub-batches in FIFO order).

_WORKER_SHARDS: dict[int, tuple[Any, Any, Any]] = {}


def _worker_init(shard: int, model: Any, graph: Any) -> int:
    """Pin ``(model, fresh runtime, graph)`` for ``shard`` in this worker."""
    _WORKER_SHARDS[shard] = (model, model.new_runtime(graph), graph)
    return shard


def _worker_compute(shard: int, batch: Any) -> tuple[float, dict[str, float]]:
    """Run the real kernels for one batch; return (seconds, stage split)."""
    model, rt, graph = _WORKER_SHARDS[shard]
    stages: dict[str, float] = {}
    with timed_kernel() as timer:
        model.infer_batch(batch, rt, graph, timings=stages)
    return timer.seconds, stages


def _noop(_event: Any) -> None:
    """Handler for trace-only scheduled events (the scheduler records the
    typed payload when it fires; nothing reacts to it)."""


# --------------------------------------------------------------------------- #
class MeasuredBackend:
    """Engine-protocol backend that *executes* the kernels it prices.

    ``process_batch`` runs :meth:`~repro.models.tgn.TGNN.infer_batch`
    in-process and returns the measured wall-clock seconds — protocol
    compatible with every modeled backend, but nondeterministic in the
    *values* (the structure of a run stays deterministic; see the module
    docstring).  ``measured = True`` is the marker the serving engine
    keys on to build a :class:`MeasuredServerGroup` instead of a modeled
    :class:`~repro.serving.events.ServerGroup`.

    ``modeled`` is an optional stateless pricing companion (the registry
    wires in a non-functional ``cpu-32t`` cost model): it never runs in
    workers, only in the parent, to produce the modeled-vs-measured
    comparison in the report's ``measured`` block.
    """

    name = "measured"
    measured = True

    def __init__(self, model: Any, graph: Any, modeled: Any = None):
        self.model = model
        self.graph = graph
        self.modeled = modeled
        self._runtime = model.new_runtime(graph)

    def compute(self, batch: Any) -> tuple[float, dict[str, float]]:
        """In-process kernel execution (the ``workers=0`` fallback)."""
        stages: dict[str, float] = {}
        with timed_kernel() as timer:
            self.model.infer_batch(batch, self._runtime, self.graph,
                                   timings=stages)
        return timer.seconds, stages

    def process_batch(self, batch: Any) -> float:
        """Engine protocol: measured seconds for this batch."""
        return self.compute(batch)[0]


# --------------------------------------------------------------------------- #
class WorkerPool:
    """``N`` parallel compute lanes with a deterministic event-time model.

    Two coupled roles:

    * **Wall clock** — ``workers=N`` owns ``N`` single-process
      ``ProcessPoolExecutor`` lanes.  Shard ``s`` always dispatches to
      lane ``s % N``, so one OS process serves each lane and a shard's
      batches execute sequentially against that process's persistent
      runtime.  On a multicore host, distinct lanes genuinely overlap.
    * **Event time** — each lane carries a ``lane_free`` horizon.
      :meth:`commit` serializes measured durations onto it:
      ``start = max(ready_t, lane_free)``, ``finish = start + dur``.
      The horizon is plain event-time arithmetic on measured inputs, so
      ``workers=1`` models one worker shared by all shards (every
      kernel queues behind the previous one) and ``workers>=shards``
      models fully parallel lanes — machine-independently.

    ``workers=0`` keeps no executors (dispatch returns ``None``; the
    caller computes inline) and gives every shard its own virtual lane.
    """

    def __init__(self, workers: int):
        if workers < 0:
            raise ValueError("workers must be non-negative")
        self.workers = int(workers)
        self._lanes: list[ProcessPoolExecutor] = []
        self._horizon: dict[int, float] = {}

    def lane_of(self, shard: int) -> int:
        return shard % self.workers if self.workers else shard

    def start(self, backends: dict[int, MeasuredBackend]) -> None:
        """Spin up the lanes and pin each shard's state in its worker."""
        if not self.workers:
            return
        self._lanes = [ProcessPoolExecutor(max_workers=1)
                       for _ in range(self.workers)]
        inits = [self._lanes[self.lane_of(shard)].submit(
            _worker_init, shard, backend.model, backend.graph)
            for shard, backend in sorted(backends.items())]
        for fut in inits:
            fut.result()    # surface pickling / worker-boot errors eagerly

    def dispatch(self, shard: int, batch: Any) -> Future | None:
        """Queue real compute on the shard's lane (``None`` in-process)."""
        if not self.workers:
            return None
        return self._lanes[self.lane_of(shard)].submit(
            _worker_compute, shard, batch)

    def commit(self, shard: int, ready_t: float,
               duration_s: float) -> tuple[float, float]:
        """Serialize a measured duration onto the shard's lane clock."""
        lane = self.lane_of(shard)
        start = max(ready_t, self._horizon.get(lane, ready_t))
        finish = start + duration_s
        self._horizon[lane] = finish
        return start, finish

    def shutdown(self) -> None:
        for ex in self._lanes:
            ex.shutdown(wait=True, cancel_futures=True)
        self._lanes = []
        self._horizon = {}


# --------------------------------------------------------------------------- #
class MeasuredServerGroup(ServerGroup):
    """A :class:`~repro.serving.events.ServerGroup` whose service times
    are measured from real kernel executions instead of modeled.

    Drop-in on the event loop: admission, FIFO dispatch, tie-breaking,
    failure injection (``service_factor`` / ``fail``), and finalization
    are all inherited.  Only the begin path changes — ``_begin`` pops
    the server and hands the batch to the worker pool, and the paired
    reconcile event commits the measured duration through the inherited
    :meth:`~repro.serving.events.ServerGroup._commit` (same trace rows,
    same end-event scheduling, same statistics).

    ``prepare(payload)`` extracts the :class:`EdgeBatch` to execute;
    ``extra_service(payload)`` prices non-compute seconds (mailbox /
    sync hop costs) into the committed service exactly like the modeled
    closure does.  ``samples`` collects ``(measured_s, modeled_s)``
    pairs in commit order and ``stage_seconds`` the per-stage kernel
    split — the report's ``measured`` block reads both.
    """

    def __init__(self, gid: int, num_servers: int, backend: MeasuredBackend,
                 pool: WorkerPool, sched: EventScheduler,
                 queue_capacity: int | None = None,
                 on_hungry: Callable[[float], None] | None = None,
                 prepare: Callable[[Any], Any] | None = None,
                 extra_service: Callable[[Any], float] | None = None):
        def _never_priced(_payload: Any) -> float:
            raise RuntimeError(
                "MeasuredServerGroup does not draw modeled service times")

        super().__init__(gid, num_servers, _never_priced, sched,
                         queue_capacity=queue_capacity, on_hungry=on_hungry)
        self.backend = backend
        self.pool = pool
        self._prepare = prepare if prepare is not None \
            else (lambda payload: payload)
        self._extra = extra_service if extra_service is not None \
            else (lambda _payload: 0.0)
        self._pending: list[tuple] = []
        self._reconcile_scheduled = False
        self.samples: list[tuple[float, float]] = []
        self.stage_seconds: dict[str, float] = {}

    # ------------------------------------------------------------------ #
    def _begin(self, t: float, i: int) -> None:
        """Dispatch the batch to its worker lane; defer the commit.

        Every same-instant sibling dispatch lands before the first
        reconcile fires (the reconcile is scheduled at the current
        instant's ``_END`` priority), so all shards' futures are in
        flight before anyone blocks on a result — that wall-clock
        overlap *is* the parallelism being measured.
        """
        t_arrive, payload = self._arrivals[i]
        free_t, srv = heapq.heappop(self._idle)
        t_begin = max(free_t, t_arrive)
        batch = self._prepare(payload)
        future = self.pool.dispatch(self.gid, batch)
        self._pending.append((i, srv, t_arrive, t_begin, batch, payload,
                              future))
        if not self._reconcile_scheduled:
            self._reconcile_scheduled = True
            self._sched.schedule(self._sched.now, _END, None,
                                 self._reconcile)

    def _reconcile(self, _event: Any) -> None:
        """Commit measured completions in dispatch order, event-exactly."""
        self._reconcile_scheduled = False
        pending, self._pending = self._pending, []
        for i, srv, t_arrive, t_begin, batch, payload, future in pending:
            if future is None:
                measured_s, stages = self.backend.compute(batch)
            else:
                measured_s, stages = future.result()
            service = measured_s
            if self.service_factor != 1.0:
                service *= self.service_factor
            service += self._extra(payload)
            begin, _finish = self.pool.commit(self.gid, t_begin, service)
            modeled = self.backend.modeled
            modeled_s = float(modeled.process_batch(batch)) \
                if modeled is not None else math.nan
            self.samples.append((service, modeled_s))
            for stage in sorted(stages):
                self.stage_seconds[stage] = \
                    self.stage_seconds.get(stage, 0.0) + stages[stage]
            self._commit(i, srv, t_arrive, begin, service)

    def _record_begin(self, begin: float, srv: int, i: int) -> None:
        ev = ServiceBeginEvent(begin, self.gid, srv, i)
        if begin > self._sched.now:
            # Lane contention pushed the start past the commit instant;
            # recording now would break trace causality, so the begin row
            # is scheduled to land at its own instant (the scheduler
            # auto-records scheduled typed events when they fire).
            self._sched.schedule(begin, _END, ev, _noop)
        else:
            self._sched.record(ev)
