"""Discrete-event serving core: one scheduler, typed events, pluggable actors.

Every serving composition in this package — single queue, partitioned
shards, shared-queue pool, and the hybrid hot/cold topology — runs on the
same event loop.  The paper's accelerator overlaps sampling, memory
update, and attention in a hardware dataflow pipeline; this module is the
deployment-level analogue: ingest (batching), routing, shard compute,
mailbox, and memory-sync traffic all advance on **one clock**, so stages
can overlap instead of being modeled as independent batch simulations
that cannot interact mid-run.

Scheduler design (struct-of-array runs + cohort dispatch)
---------------------------------------------------------
The loop spends most of its time delivering *arrivals* — a replay with S
streams and W windows schedules ``S x W`` of them up front — so
:class:`EventScheduler` stores that bulk as **struct-of-array event
runs**: one contiguous, pre-sorted numpy timestamp array per
:meth:`EventScheduler.schedule_run` call, with the priority, the token
range, and the payload index held as parallel (mostly implicit) columns
and a single consumption pointer instead of one heap entry per event.
Dynamically created events (service ends, dispatches, deadline flushes,
migrations) still live on a conventional ``(t, priority, seq)`` heap; the
loop always fires whichever source holds the globally smallest key, so
the documented equal-timestamp priority order and schedule-order
tie-breaking are preserved exactly.

When a run holds the smallest key, the scheduler delivers a **cohort**:
the maximal prefix of the run whose every ``(t, priority, seq)`` key
precedes the dynamic heap head (and every other run head).  The cohort
handler — an actor that opted in, like :class:`BatcherActor` — consumes
as many of those events as it can prove need no interleaving (pure
buffering), and *returns the consumed count*: any event whose admission
could trigger a same-instant reaction (a passthrough deadline, a size
flush, a drain flush) is left unconsumed, and the next loop iteration
delivers it alone with exact heap semantics.  Actors that have not opted
in — :class:`~repro.serving.rebalance.OnlineRebalancer` among them — use
:meth:`EventScheduler.schedule` and keep per-event dispatch unchanged.
:class:`HeapEventScheduler` is the pre-vectorization implementation,
kept verbatim as the behavioral oracle: the scheduler-equivalence
property tests require bit-identical outcomes between the two, and the
serving bench / ``serve-sim --profile`` use it as the "before" lane.

Cancellation follows the same split: heap tokens are cancellable (the
pop discards them), run tokens are **not** — a run is one consumption
pointer over a contiguous block, so :meth:`EventScheduler.cancel` raises
on a run token rather than silently letting the event fire.  Both
schedulers clear the dead-set when they drain, so cancellations that
never meet a pop (issued after the event already fired) cannot leak.
Cancel behavior on the heap path is property-tested for parity between
the two implementations.

Event types
-----------
:class:`ArrivalEvent`       a stream window reaches the ingest tier
:class:`FlushEvent`         the batcher releases its pending buffer
:class:`ServiceBeginEvent`  a server starts a job (trace)
:class:`ServiceEndEvent`    a server finishes a job (frees the server)
:class:`MailEvent`          cross-shard edge mail, at delivery time (trace)
:class:`SyncEvent`          memory rows pulled/pushed between shards (trace)
:class:`MigrationEvent`     a vertex changes owner mid-run (scheduled)
:class:`FailureEvent`       a shard degrades or dies mid-run (scheduled)
:class:`RecoveryEvent`      a failed shard comes back (scheduled)
:class:`ScaleEvent`         the fleet grows or shrinks by one server
                            (scheduled)

At equal timestamps events fire in a fixed priority order (service ends,
then dispatches, then migrations, then flushes, then arrivals) so that
e.g. a deadline flush scheduled at ``t`` releases *before* an arrival at
``t`` is admitted — exactly the tie-breaking the offline
:meth:`DynamicBatcher.coalesce` reference implements, which is what makes
``ingest="serial"`` replays byte-identical to the pre-event-core engine.

MigrationEvent lifecycle
------------------------
Online rebalancing makes a placement change *just another event*.  The
:class:`~repro.serving.rebalance.OnlineRebalancer` watches per-shard
utilization and queue depth over a rolling window of released jobs; when a
shard runs hot (or, in the hybrid topology, a vertex's measured heat
crosses the promote/demote band) it **schedules** a
:class:`MigrationEvent` at the current instant with the ``_MIGRATE``
priority.  When the event fires, the rebalancer applies it: the
:class:`~repro.serving.router.ShardRouter` reassigns the vertex (the next
flush routes under the new ownership — in-flight sub-jobs complete under
the old one, exactly like a real handoff), the
:class:`~repro.serving.memsync.VersionedMemoryCache` transfers ownership
so version counters stay exact across the change, and the state handoff
(``rows`` memory rows + neighbor-table slices) is priced through the same
``mail_hop_s`` die-crossing machinery as :class:`SyncEvent` traffic.  The
event lands in the trace like every other kind, so the invariant tests can
replay the full ownership history.

Failure / recovery lifecycle
----------------------------
Failures are events too.  A :class:`FailurePlan` names an instant, a
shard, and a mode; the engine's chaos driver
(:class:`~repro.serving.engine.FailureInjector`) schedules the matching
:class:`FailureEvent` / :class:`RecoveryEvent` pair at ``_MIGRATE``
priority — like a migration, a failure decided at ``t`` applies before
the next job released at ``t`` is routed.  A **slow** failure sets the
:class:`ServerGroup`'s ``service_factor``; every service time committed
while it is active is multiplied, and recovery resets it.  A **dead**
failure is fail-stop: the group stops accepting (queued jobs drop, jobs
already in service complete — their service time was committed at
begin), and ownership is evacuated at the failure instant.  Vertices
with surviving replicas *promote* the lowest-id replica to owner — a
replica is a full holder, so promotion moves zero state; unreplicated
vertices are reassigned across the survivors and *rebuilt* by memsync
replay from peers, with ``HANDOFF_ROWS_PER_VERTEX`` rows per vertex
priced through ``mail_hop_s`` like every other transfer.  Recovery fails
the snapshot back through the ordinary exact migration path, which
demotes promoted replicas back into their replica sets.  Each ownership
change lands in the trace as a :class:`MigrationEvent` (reasons
``"promote"`` / ``"rebuild"`` / ``"fail-back"``), so the exactly-once
ownership-chain invariant covers failovers for free.

ScaleEvent lifecycle (elastic capacity)
---------------------------------------
Where a migration moves load across a *fixed* fleet, a
:class:`ScaleEvent` resizes the fleet itself.  The
:class:`~repro.serving.autoscale.AutoScaler` watches windowed p95
response latency against an SLO band and **schedules** a
:class:`ScaleEvent` at the current instant with the ``_MIGRATE``
priority — like a migration, a capacity change decided at ``t`` applies
before the next job released at ``t`` routes.  In the pool topology the
event calls :meth:`ServerGroup.scale_up` (a new replica joins the idle
heap *cold*: it is born free at ``t + cold_start_s``, so the existing
``max(freed_at, t_arrive)`` dispatch rule prices the warm-up without a
special case) or :meth:`ServerGroup.scale_down` (an idle replica is
retired outright; a busy one *drains* — it finishes its committed job
and leaves the fleet at its service end).  In the sharded topology a
scale-up activates an empty shard and splits the hottest shard's
vertices into it through ordinary :class:`MigrationEvent` handoffs
(reason ``"split"``), and a scale-down merges the highest shard's
vertices onto the coolest survivor (reason ``"merge"``) — the same
priced, memsync-exact ownership machinery the rebalancer and the
failure injector use, so the exactly-once ownership chain covers
elastic capacity for free.  Fleet-size history replays through
``tracecheck``'s ``fleet-size`` check the way migrations replay
through ``ownership-chain``.

Actors
------
:class:`ServerGroup`
    A FIFO service station with ``num_servers`` identical servers sharing
    one queue: a dedicated shard is a 1-server group, a replica pool is a
    K-server group.  Its :meth:`finalize` produces the same
    :class:`SimulationResult` (same formulas, same tie-breaking, same
    ``service_fn`` call order) as the historical standalone queue loop —
    :func:`repro.serving.simulate_queue` is now a thin façade over one
    group, and the equivalence is property-tested against a reference
    implementation in ``tests/unit/test_events.py``.
:class:`BatcherActor`
    :class:`~repro.serving.batcher.DynamicBatcher` run *online*: the same
    size/deadline triggers, plus — under ``ingest="pipelined"`` — a
    double-buffered drain trigger: while the fleet serves window *n* the
    buffer accumulates window *n+1* for free, and the moment the fleet
    goes hungry (an idle server with nothing queued) the buffer flushes
    immediately.  Batching delay is paid only when it can hide behind
    in-flight compute; on an idle fleet it is skipped entirely.
:class:`RouterActor`
    The fork point: a released job is routed to one or more server groups
    (split across shards, handed whole to the pool, or both in the hybrid
    topology), recording mail and sync traffic at the event times it
    actually occurs.

The mailbox (:class:`~repro.serving.router.CrossShardMailbox`) and memsync
cache (:class:`~repro.serving.memsync.VersionedMemoryCache`) plug into the
routing callback — they are driven in flush order, which the scheduler
guarantees is release order.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from ..graph.batching import merge_batches
from ..graph.temporal_graph import EdgeBatch
from .batcher import CoalescedJob, DynamicBatcher, StreamArrival

__all__ = [
    "ArrivalEvent", "FlushEvent", "ServiceBeginEvent", "ServiceEndEvent",
    "MailEvent", "SyncEvent", "MigrationEvent", "FailureEvent",
    "RecoveryEvent", "ScaleEvent", "FailurePlan", "EventScheduler",
    "HeapEventScheduler", "ServedJob", "SimulationResult", "ServerGroup",
    "BatcherActor", "RouterActor", "Submission", "INGEST_MODES",
]

INGEST_MODES = ("serial", "pipelined")

# Priority of event kinds at equal timestamps (lower fires first).
# Migrations land between dispatches and flushes: a placement change
# decided at ``t`` applies before the next job released at ``t`` is
# routed, but never retracts a submission already made.
_END, _DISPATCH, _MIGRATE, _FLUSH, _ARRIVAL = range(5)


# --------------------------------------------------------------------------- #
# Typed events.  Heap-scheduled events drive handlers; trace-only events
# (begin / mail / sync) document *when* something happened for the
# conservation and ordering invariant tests.

@dataclass(frozen=True)
class ArrivalEvent:
    """A stream window reaches the ingest tier at time ``t``."""

    t: float
    arrival: Any


@dataclass(frozen=True)
class FlushEvent:
    """The batcher released its pending buffer (cause: ``deadline`` /
    ``size`` / ``drain`` / ``eos``)."""

    t: float
    cause: str
    windows: int


@dataclass(frozen=True)
class ServiceBeginEvent:
    """Server ``server`` of group ``group`` begins job ``index``."""

    t: float
    group: int
    server: int
    index: int


@dataclass(frozen=True)
class ServiceEndEvent:
    """Server ``server`` of group ``group`` finishes job ``index``."""

    t: float
    group: int
    server: int
    index: int


@dataclass(frozen=True)
class MailEvent:
    """``edges`` forwarded from ``from_shard`` to ``to_shard`` at ``t``."""

    t: float
    from_shard: int
    to_shard: int
    edges: int


@dataclass(frozen=True)
class SyncEvent:
    """``rows`` memory rows moved ``owner -> shard`` (kind: pull/push)."""

    t: float
    owner: int
    shard: int
    rows: int
    kind: str


@dataclass(frozen=True)
class MigrationEvent:
    """Vertex ``vertex`` changes owner ``from_shard -> to_shard`` at ``t``.

    ``rows`` is the priced state handoff (memory row + neighbor-table
    slice); ``reason`` names the trigger: ``"overload"`` (donor shard above
    the utilization threshold), ``"heat-up"`` (hybrid pool vertex promoted
    to a dedicated shard) or ``"cool-down"`` (hybrid hot-shard vertex
    demoted to the pool).  Unlike the trace-only mail/sync kinds this event
    is *scheduled*: its handler applies the ownership change, so the trace
    position is exactly the instant routing semantics changed.
    """

    t: float
    vertex: int
    from_shard: int
    to_shard: int
    rows: int
    reason: str


@dataclass(frozen=True)
class FailureEvent:
    """Shard ``shard`` fails at ``t``.

    Two modes.  ``"slow"``: the shard keeps serving but every service time
    is multiplied by ``degradation`` (a brown-out — thermal throttling, a
    noisy neighbor) until recovery.  ``"dead"``: the shard stops accepting
    sub-jobs, its queue drains to drops, and its vertex state is *lost* —
    the handler evacuates ownership at this instant (replica promotion /
    memsync rebuild, recorded as ``"promote"`` / ``"rebuild"``
    :class:`MigrationEvent` trace rows), so no job released after ``t``
    is ever routed to the dead shard.  Scheduled at ``_MIGRATE`` priority:
    the failure applies before the next same-instant flush routes.
    """

    t: float
    shard: int
    mode: str
    degradation: float


@dataclass(frozen=True)
class RecoveryEvent:
    """Shard ``shard`` recovers at ``t`` from a ``mode`` failure.

    A slow shard simply returns to full speed.  A dead shard resumes
    accepting and **fails back**: every vertex it owned at failure time
    migrates home through the ordinary exact handoff path (priced rows,
    ``"fail-back"`` :class:`MigrationEvent` trace entries), which restores
    promoted replicas into their replica sets.
    """

    t: float
    shard: int
    mode: str


@dataclass(frozen=True)
class ScaleEvent:
    """The serving fleet grows (``kind="up"``) or shrinks (``"down"``) by
    exactly one server at ``t``.

    ``shard`` names the affected station: the pool group in pool
    topology, or the shard being activated (split) / drained (merge) in
    sharded topology.  ``servers_before`` / ``servers_after`` are the
    *active-fleet* sizes around the change — always one apart, which is
    what ``tracecheck``'s ``fleet-size`` replay asserts.  ``rows`` is
    the priced state handoff the change triggered (the split/merge
    migration rows; 0 for a stateless pool replica) and ``reason`` names
    the controller trigger (``"slo-breach"`` above the SLO band,
    ``"slo-slack"`` below it).  Like :class:`MigrationEvent` this event
    is *scheduled*: its handler applies the capacity change, so the
    trace position is exactly the instant the fleet size changed.
    """

    t: float
    kind: str
    shard: int
    servers_before: int
    servers_after: int
    rows: int
    reason: str


@dataclass(frozen=True)
class FailurePlan:
    """One scheduled failure (and optional recovery) for the chaos driver.

    ``fail_at``/``recover_at`` are event-loop instants; ``recover_at=None``
    leaves the shard failed for the rest of the run.  ``degradation`` is
    the slow-mode service-time multiplier and must exceed 1 (a factor of 1
    would be byte-invisible, which is what ``mode="slow"`` exists to not
    be).
    """

    fail_at: float
    shard: int
    mode: str = "dead"
    recover_at: float | None = None
    degradation: float = 4.0

    def __post_init__(self):
        if self.mode not in ("slow", "dead"):
            raise ValueError(f"unknown failure mode {self.mode!r}; "
                             "expected 'slow' or 'dead'")
        if self.shard < 0:
            raise ValueError("shard must be non-negative")
        if not math.isfinite(self.fail_at):
            raise ValueError("fail_at must be finite")
        if self.recover_at is not None and self.recover_at <= self.fail_at:
            raise ValueError("recover_at must be after fail_at")
        if self.mode == "slow" and self.degradation <= 1.0:
            raise ValueError("slow-mode degradation must exceed 1.0")


# --------------------------------------------------------------------------- #
class HeapEventScheduler:
    """Heap-driven event loop with deterministic same-time ordering.

    Entries order by ``(t, priority, seq)`` — seq is the monotonically
    increasing schedule order, so equal ``(t, priority)`` events fire in
    the order they were scheduled and runs are exactly reproducible.  The
    loop asserts global timestamp monotonicity: an event firing before
    ``now`` is a scheduler bug, not a recoverable condition.

    This is the pre-vectorization implementation, retained verbatim as the
    behavioral oracle for :class:`EventScheduler` (see the module
    docstring): the equivalence property tests replay identical workloads
    through both and require bit-identical outcomes, and the serving bench
    and ``serve-sim --profile`` use it as the "before" measurement lane.
    """

    def __init__(self, trace: bool = False):
        self._heap: list = []
        self._seq = 0
        self._dead: set[int] = set()
        self.now = -math.inf
        self.events_processed = 0
        self.trace: list | None = [] if trace else None

    def schedule(self, t: float, priority: int, event,
                 handler: Callable) -> int:
        """Queue ``handler(event)`` at ``(t, priority)``; returns a token."""
        if t < self.now:
            raise RuntimeError(
                f"cannot schedule an event at t={t} before now={self.now}")
        token = self._seq
        self._seq += 1
        heapq.heappush(self._heap, (t, priority, token, event, handler))
        return token

    def cancel(self, token: int) -> None:
        """Mark a scheduled event dead; it is skipped when popped."""
        self._dead.add(token)

    def record(self, event) -> None:
        """Append a trace-only event (begin / flush / mail / sync)."""
        if self.trace is not None:
            self.trace.append(event)

    def run(self) -> None:
        heap = self._heap
        while heap:
            t, _prio, token, event, handler = heapq.heappop(heap)
            if token in self._dead:
                self._dead.discard(token)
                continue
            if t < self.now:
                raise RuntimeError(
                    f"event fired out of timestamp order: t={t} < "
                    f"now={self.now}")
            self.now = t
            self.events_processed += 1
            if event is not None and self.trace is not None:
                self.trace.append(event)
            handler(event)
        # Drained.  Tokens cancelled *after* their event fired never meet
        # the pop-time discard above; without this they would pin the
        # dead-set for the scheduler's whole lifetime.
        self._dead.clear()


class _EventRun:
    """Struct-of-array storage for one :meth:`EventScheduler.schedule_run`.

    Parallel columns of the run's events: ``ts`` holds the sorted
    timestamps; the priority is constant across the run; the token of
    element ``i`` is ``base + i`` (drawn from the scheduler's global seq
    counter, so heap keys and run keys interleave deterministically); the
    payload index equals the element position.  ``pos`` is the consumption
    pointer — everything before it has fired.
    """

    __slots__ = ("ts", "priority", "base", "payloads", "handler", "pos", "n")

    def __init__(self, ts: np.ndarray, priority: int, base: int,
                 payloads: Sequence, handler: Callable):
        self.ts = ts
        self.priority = priority
        self.base = base
        self.payloads = payloads
        self.handler = handler
        self.pos = 0
        self.n = len(ts)


class EventScheduler:
    """Vectorized event loop: struct-of-array runs + a dynamic heap overlay.

    Bulk, pre-sorted event sequences (the arrival trace) are stored as
    :class:`_EventRun` blocks via :meth:`schedule_run`; dynamically created
    events use :meth:`schedule` and live on the same ``(t, priority, seq)``
    heap as :class:`HeapEventScheduler`.  Both sources draw tokens from one
    global ``seq`` counter, so every key is unique and the loop can always
    decide which source fires next by comparing ``(t, priority, seq)``.

    When a run holds the globally smallest key, its handler is offered the
    maximal *cohort*: the prefix of unconsumed elements whose every key
    precedes the heap head and every other run head.  The handler returns
    how many it consumed (at least the head element, which is trivially
    heap-equivalent); elements whose admission could schedule an event
    that lands inside the offered prefix must be left unconsumed.  Firing
    order is therefore bit-identical to the heap scheduler — the cohort is
    an optimization of *delivery*, not of ordering — which the equivalence
    property tests assert directly.
    """

    def __init__(self, trace: bool = False):
        self._heap: list = []
        self._runs: list[_EventRun] = []
        self._seq = 0
        self._dead: set[int] = set()
        self.now = -math.inf
        self.events_processed = 0
        self.cohort_calls = 0
        self.cohort_events = 0
        self.trace: list | None = [] if trace else None

    def schedule(self, t: float, priority: int, event,
                 handler: Callable) -> int:
        """Queue ``handler(event)`` at ``(t, priority)``; returns a token."""
        if t < self.now:
            raise RuntimeError(
                f"cannot schedule an event at t={t} before now={self.now}")
        token = self._seq
        self._seq += 1
        heapq.heappush(self._heap, (t, priority, token, event, handler))
        return token

    def schedule_run(self, ts: np.ndarray, priority: int, payloads: Sequence,
                     handler: Callable) -> None:
        """Queue a pre-sorted bulk of events as one struct-of-array run.

        ``handler(t0, payloads, start, stop)`` is called with the cohort
        bounds and must return the number of elements consumed, in
        ``[1, stop - start]``.  Runs are the untraced bulk path: they
        carry raw payloads, not typed events, so nothing lands in
        ``trace`` — callers that need typed trace events schedule
        per-event instead.
        """
        ts = np.ascontiguousarray(ts, dtype=np.float64)
        if len(ts) != len(payloads):
            raise ValueError("schedule_run needs one payload per timestamp")
        if len(ts) == 0:
            return
        if np.any(ts[1:] < ts[:-1]):
            raise ValueError("run timestamps must be sorted")
        if ts[0] < self.now:
            raise RuntimeError(
                f"cannot schedule an event at t={ts[0]} before now={self.now}")
        base = self._seq
        self._seq += len(ts)
        self._runs.append(_EventRun(ts, int(priority), base, payloads,
                                    handler))

    def cancel(self, token: int) -> None:
        """Mark a heap-scheduled event dead; it is skipped when popped.

        Run-scheduled tokens cannot be cancelled: a run is a single
        consumption pointer over a contiguous block, so honoring a
        cancellation would put a per-element liveness check on the hot
        path.  Cancelling one raises instead of silently firing the event
        anyway (the bug this guard replaces).
        """
        for r in self._runs:
            if r.base <= token < r.base + r.n:
                raise ValueError(
                    f"token {token} belongs to a run scheduled via "
                    "schedule_run; run events cannot be cancelled")
        self._dead.add(token)

    def record(self, event) -> None:
        """Append a trace-only event (begin / flush / mail / sync)."""
        if self.trace is not None:
            self.trace.append(event)

    # ------------------------------------------------------------------ #
    @staticmethod
    def _run_cut(run: _EventRun, key: tuple) -> int:
        """Index of the first run element whose key does not precede ``key``."""
        t, prio, seq = key
        lo = int(np.searchsorted(run.ts, t, side="left"))
        if prio < run.priority:
            return lo
        hi = int(np.searchsorted(run.ts, t, side="right"))
        if prio > run.priority:
            return hi
        return min(hi, max(lo, seq - run.base))

    def run(self) -> None:
        heap = self._heap
        dead = self._dead
        runs = self._runs
        while True:
            best: _EventRun | None = None
            best_key: tuple = ()
            for r in runs:
                if r.pos < r.n:
                    key = (r.ts[r.pos], r.priority, r.base + r.pos)
                    if best is None or key < best_key:
                        best, best_key = r, key
            if heap and (best is None or heap[0][:3] < best_key):
                t, _prio, token, event, handler = heapq.heappop(heap)
                if token in dead:
                    dead.discard(token)
                    continue
                if t < self.now:
                    raise RuntimeError(
                        f"event fired out of timestamp order: t={t} < "
                        f"now={self.now}")
                self.now = t
                self.events_processed += 1
                if event is not None and self.trace is not None:
                    self.trace.append(event)
                handler(event)
                continue
            if best is None:
                # Drained (the heap is empty too, or we would not be
                # here).  Clear cancellations that never met a pop —
                # tokens cancelled after firing, or heap-path parity with
                # HeapEventScheduler — so they do not leak forever.
                dead.clear()
                return
            pos = best.pos
            t0 = float(best.ts[pos])
            if t0 < self.now:
                raise RuntimeError(
                    f"event fired out of timestamp order: t={t0} < "
                    f"now={self.now}")
            stop = best.n
            if heap:
                stop = min(stop, self._run_cut(best, heap[0][:3]))
            for other in runs:
                if other is not best and other.pos < other.n:
                    stop = min(stop, self._run_cut(
                        best, (other.ts[other.pos], other.priority,
                               other.base + other.pos)))
            # The head element was chosen as the global minimum, so
            # delivering it alone is always valid even when the cut lands
            # at or before ``pos`` (equal-key ties are impossible: seq
            # values are globally unique).
            stop = max(stop, pos + 1)
            consumed = int(best.handler(t0, best.payloads, pos, stop))
            if not 1 <= consumed <= stop - pos:
                raise RuntimeError(
                    f"cohort handler consumed {consumed} of "
                    f"[1, {stop - pos}] offered events")
            best.pos = pos + consumed
            self.now = float(best.ts[best.pos - 1])
            self.events_processed += consumed
            self.cohort_calls += 1
            self.cohort_events += consumed


# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ServedJob:
    """One admitted job's timeline through the queue."""

    index: int          # position in the arrival sequence
    t_arrive: float
    t_begin: float
    t_finish: float
    service_s: float
    server: int

    @property
    def wait_s(self) -> float:
        return self.t_begin - self.t_arrive

    @property
    def response_s(self) -> float:
        return self.t_finish - self.t_arrive


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of a queue simulation, with aggregate statistics."""

    served: tuple[ServedJob, ...]
    dropped_indices: tuple[int, ...]
    num_servers: int
    busy_s: float
    makespan_s: float       # first arrival -> last service completion
    utilization: float      # busy / (num_servers * makespan), in [0, 1]
    offered_load: float     # arrival rate * mean service / num_servers
    max_queue_depth: int    # waiting jobs only (in-service excluded)

    @property
    def jobs(self) -> int:
        return len(self.served)

    @property
    def dropped(self) -> int:
        return len(self.dropped_indices)

    @property
    def stable(self) -> bool:
        """A sustainable deployment keeps offered load below 1."""
        return self.offered_load < 1.0

    # ------------------------------------------------------------------ #
    def waits(self) -> np.ndarray:
        return np.array([j.wait_s for j in self.served])

    def responses(self) -> np.ndarray:
        return np.array([j.response_s for j in self.served])

    def _sorted_responses(self) -> np.ndarray:
        """Response latencies sorted ascending, computed once and cached.

        Percentiles are order statistics, so every quantile shares this
        one sort (``np.percentile`` on the sorted array selects the same
        interpolated values bit-for-bit as on the raw array).  Means stay
        on the *unsorted* array: summation order changes the last bits.
        """
        cached = self.__dict__.get("_responses_sorted")
        if cached is None:
            cached = np.sort(self.responses())
            object.__setattr__(self, "_responses_sorted", cached)
        return cached

    @property
    def mean_wait_s(self) -> float:
        return float(self.waits().mean()) if self.served else 0.0

    @property
    def mean_response_s(self) -> float:
        return float(self.responses().mean()) if self.served else 0.0

    @property
    def p50_response_s(self) -> float:
        return float(np.percentile(self._sorted_responses(), 50)) \
            if self.served else 0.0

    @property
    def p95_response_s(self) -> float:
        return float(np.percentile(self._sorted_responses(), 95)) \
            if self.served else 0.0

    @property
    def p99_response_s(self) -> float:
        return float(np.percentile(self._sorted_responses(), 99)) \
            if self.served else 0.0


# --------------------------------------------------------------------------- #
class ServerGroup:
    """A FIFO station of ``num_servers`` identical servers on the loop.

    A dedicated shard is a 1-server group; a replica pool is a K-server
    group.  ``service_fn`` is called once per *admitted* job at service
    begin — FIFO dispatch makes begin order equal admission order, so
    stateful backends see the stream exactly as the historical offline
    queue loop presented it (the byte-identity contract).

    Tie-breaking matches the historical loop bit-for-bit: when several
    servers are idle (or free at the same instant) the job goes to the one
    with the earliest ``(freed_at, server_id)``.  Same-time service ends
    all land *before* the dispatch that assigns the freed servers, so the
    winner is chosen over the full set, not by end-event order.
    """

    def __init__(self, gid: int, num_servers: int, service_fn: Callable,
                 sched: EventScheduler, queue_capacity: int | None = None,
                 on_hungry: Callable[[float], None] | None = None):
        if num_servers <= 0:
            raise ValueError("num_servers must be positive")
        if queue_capacity is not None and queue_capacity < 0:
            raise ValueError("queue_capacity must be non-negative")
        self.gid = int(gid)
        self.num_servers = int(num_servers)
        self._service_fn = service_fn
        self._sched = sched
        self._capacity = queue_capacity
        # Idle servers as (freed_at, server_id); servers are born free at
        # t=0 like the historical loop's ``free`` heap.
        self._idle: list[tuple[float, int]] = [(0.0, s)
                                               for s in range(num_servers)]
        self._waiting: deque[int] = deque()
        self._arrivals: list[tuple[float, Any]] = []
        self._served: dict[int, ServedJob] = {}
        self._dropped: list[int] = []
        self._busy = 0.0
        self._max_depth = 0
        self._dispatch_pending = False
        self.on_hungry = on_hungry
        # Failure-injection state (see FailureEvent): a slow failure sets
        # the service-time multiplier, a dead failure clears ``accepting``.
        self.service_factor = 1.0
        self.accepting = True
        # Elastic-capacity state (see ScaleEvent): server ids are never
        # reused across a scale-down/up cycle, so trace rows stay
        # unambiguous; ``_draining`` holds busy servers retired by
        # scale_down — they finish their committed job and leave at the
        # service end instead of rejoining the idle heap.  ``on_serviced``
        # (when set) receives ``(t_finish, response_s)`` per committed job
        # — the autoscaler's latency feed.
        self._next_server = int(num_servers)
        self._draining: set[int] = set()
        self._retired: set[int] = set()
        self.on_serviced: Callable[[float, float], None] | None = None

    # ------------------------------------------------------------------ #
    @property
    def hungry(self) -> bool:
        """An idle server with nothing queued: batching gains nothing."""
        return bool(self._idle) and not self._waiting

    @property
    def busy_s(self) -> float:
        """Cumulative service seconds committed so far (live, mid-run)."""
        return self._busy

    @property
    def queue_depth(self) -> int:
        """Jobs currently waiting (in-service excluded), live, mid-run."""
        return len(self._waiting)

    def submit(self, t: float, payload) -> None:
        """Admit (or drop) a job arriving at the current event time."""
        i = len(self._arrivals)
        self._arrivals.append((t, payload))
        if not self.accepting:
            # Dead shard: the offer is recorded (conservation — served +
            # dropped must still equal offered) but the job is dropped.
            self._dropped.append(i)
            return
        if self._idle and not self._waiting:
            self._begin(t, i)
            return
        # A full buffer only rejects jobs that would have to wait: with an
        # idle server the job starts immediately and never occupies a slot
        # (``queue_capacity=0`` is a bufferless loss system, not a server
        # that drops everything).
        if self._capacity is not None and len(self._waiting) >= self._capacity:
            self._dropped.append(i)
            return
        self._waiting.append(i)
        self._max_depth = max(self._max_depth, len(self._waiting))

    # ------------------------------------------------------------------ #
    def _begin(self, t: float, i: int) -> None:
        t_arrive, payload = self._arrivals[i]
        service = float(self._service_fn(payload))
        if service < 0:
            raise ValueError("service_fn returned a negative service time")
        if self.service_factor != 1.0:
            service *= self.service_factor
        free_t, srv = heapq.heappop(self._idle)
        begin = max(free_t, t_arrive)
        self._commit(i, srv, t_arrive, begin, service)

    def _commit(self, i: int, srv: int, t_arrive: float, begin: float,
                service: float) -> None:
        """Commit one job's service interval: statistics, trace rows, and
        the end event.  The single service-accounting path — subclasses
        that *measure* service times (``repro.serving.measured``) reuse it
        so traced runs stay invariant-checkable regardless of where the
        duration came from."""
        finish = begin + service
        self._busy += service
        self._served[i] = ServedJob(index=i, t_arrive=t_arrive,
                                    t_begin=begin, t_finish=finish,
                                    service_s=service, server=srv)
        if self.on_serviced is not None:
            self.on_serviced(finish, finish - t_arrive)
        if self._sched.trace is not None:
            self._record_begin(begin, srv, i)
            self._sched.schedule(finish, _END,
                                 ServiceEndEvent(finish, self.gid, srv, i),
                                 self._on_end)
        else:
            # Untraced fast path: nobody observes the typed end event, so
            # a bare (finish, server) tuple avoids two dataclass
            # allocations per job on the hot loop.
            self._sched.schedule(finish, _END, (finish, srv),
                                 self._on_end_fast)

    def _record_begin(self, begin: float, srv: int, i: int) -> None:
        # Hook point: the measured subclass defers lane-delayed begins so
        # the trace stays causally ordered.
        self._sched.record(ServiceBeginEvent(begin, self.gid, srv, i))

    def _on_end(self, ev: ServiceEndEvent) -> None:
        self._end(ev.t, ev.server)

    def _on_end_fast(self, ev: tuple) -> None:
        self._end(ev[0], ev[1])

    def _end(self, t: float, server: int) -> None:
        if server in self._draining:
            # Retired by scale_down while busy: the job it was committed
            # to is done, so it leaves the fleet instead of re-idling.
            # num_servers already dropped at the scale instant.
            self._draining.discard(server)
            self._retired.add(server)
            if self.on_hungry is not None and self.hungry:
                self.on_hungry(t)
            return
        heapq.heappush(self._idle, (t, server))
        if self._waiting:
            # Defer the hand-off so every same-instant end lands in the
            # idle heap first — the waiting job then picks the earliest
            # ``(freed_at, server_id)``, the historical tie-break.
            if not self._dispatch_pending:
                self._dispatch_pending = True
                self._sched.schedule(t, _DISPATCH, None, self._dispatch)
        elif self.on_hungry is not None:
            self.on_hungry(t)

    def _dispatch(self, _event) -> None:
        self._dispatch_pending = False
        now = self._sched.now
        while self._idle and self._waiting:
            self._begin(now, self._waiting.popleft())
        if self.on_hungry is not None and self.hungry:
            self.on_hungry(now)

    # ------------------------------------------------------------------ #
    def fail(self) -> int:
        """Dead-replica failure: stop accepting and drop the queue.

        Jobs already in service complete — their service time was
        committed at begin, exactly like a real fail-stop draining
        in-flight work — while waiting jobs are dropped and counted like
        capacity rejections, so window conservation (served + dropped ==
        offered) holds across the outage.  Returns the number of queued
        jobs dropped.
        """
        self.accepting = False
        n = len(self._waiting)
        while self._waiting:
            self._dropped.append(self._waiting.popleft())
        return n

    def restore(self) -> None:
        """Recover from any failure: accept again, at full service speed."""
        self.accepting = True
        self.service_factor = 1.0

    # ------------------------------------------------------------------ #
    def scale_up(self, t: float, cold_start_s: float = 0.0) -> int:
        """Add one server at ``t``; returns its (never-reused) id.

        The newcomer joins the idle heap free at ``t + cold_start_s``, so
        the ordinary ``max(freed_at, t_arrive)`` dispatch rule prices the
        cold start: a job handed to it before the warm-up completes simply
        begins when the warm-up does.  If jobs are waiting, a dispatch is
        scheduled at the scale instant — the capacity becomes usable
        immediately, the warm-up only delays the begin.
        """
        if cold_start_s < 0:
            raise ValueError("cold_start_s must be non-negative")
        server = self._next_server
        self._next_server += 1
        self.num_servers += 1
        heapq.heappush(self._idle, (t + cold_start_s, server))
        if self._waiting and not self._dispatch_pending:
            self._dispatch_pending = True
            self._sched.schedule(t, _DISPATCH, None, self._dispatch)
        return server

    def scale_down(self, t: float) -> int:
        """Retire one server at ``t``; returns the retired server's id.

        Prefers an *idle* server — the one with the latest
        ``(freed_at, server_id)``, which retires a still-warming
        scale-up before a long-warm veteran.  With every server busy the
        highest-id non-draining one **drains**: it finishes the job it
        committed to (the service interval was priced at begin, exactly
        like a dead shard's in-flight work) and leaves the fleet at its
        service end.  ``num_servers`` drops immediately either way — the
        capacity decision applies at the scale instant; :meth:`finalize`
        therefore reports utilization against the *final* fleet size,
        which the autoscaler's server-seconds integral replaces for
        elastic runs.
        """
        if self.num_servers <= 1:
            raise ValueError("cannot scale below one server")
        if self._idle:
            # max() over a list of unique tuples is deterministic; the
            # heap property only pins index 0, so re-heapify after the
            # positional removal.
            victim = max(self._idle)
            self._idle.remove(victim)
            heapq.heapify(self._idle)
            self._retired.add(victim[1])
            self.num_servers -= 1
            return victim[1]
        # Every live server is busy (idle is empty): drain the highest id.
        server = max(s for s in range(self._next_server)
                     if s not in self._retired and s not in self._draining)
        self._draining.add(server)
        self.num_servers -= 1
        return server

    # ------------------------------------------------------------------ #
    def finalize(self) -> SimulationResult:
        """Aggregate statistics — identical formulas to the historical
        standalone queue loop (the byte-identity contract)."""
        arr = self._arrivals
        served = tuple(self._served[i] for i in sorted(self._served))
        dropped = tuple(self._dropped)
        if not served:
            return SimulationResult(served=(), dropped_indices=dropped,
                                    num_servers=self.num_servers, busy_s=0.0,
                                    makespan_s=0.0, utilization=0.0,
                                    offered_load=0.0,
                                    max_queue_depth=self._max_depth)
        t_first = arr[0][0]
        makespan = max(max(j.t_finish for j in served) - t_first, 0.0)
        utilization = self._busy / (self.num_servers * makespan) \
            if makespan > 0 else (1.0 if self._busy > 0 else 0.0)
        n = len(arr)
        span = arr[-1][0] - t_first
        mean_service = self._busy / len(served)
        if n <= 1:
            # One job is not an arrival process; it cannot overload.
            offered = 0.0
        elif span <= 0:
            offered = float("inf")
        else:
            offered = ((n - 1) / span) * mean_service / self.num_servers
        return SimulationResult(served=served, dropped_indices=dropped,
                                num_servers=self.num_servers,
                                busy_s=self._busy, makespan_s=makespan,
                                utilization=utilization,
                                offered_load=offered,
                                max_queue_depth=self._max_depth)


# --------------------------------------------------------------------------- #
class BatcherActor:
    """:class:`DynamicBatcher` run online on the event loop.

    ``ingest="serial"`` reproduces :meth:`DynamicBatcher.coalesce` exactly
    (same triggers, same release instants — property-tested), so replays
    that predate the event core are byte-identical.  ``"pipelined"`` adds
    the double-buffered drain trigger: the buffer flushes the moment every
    fleet group is hungry (idle server, empty queue), so batching delay is
    only ever paid while it hides behind in-flight compute.
    """

    def __init__(self, batcher: DynamicBatcher, sched: EventScheduler,
                 sink: Callable[[CoalescedJob], None],
                 ingest: str = "serial",
                 fleet: Sequence[ServerGroup] = ()):
        if ingest not in INGEST_MODES:
            raise ValueError(f"ingest must be one of {INGEST_MODES}")
        self.max_edges = batcher.max_edges
        self.max_delay_s = batcher.max_delay_s
        self.ingest = ingest
        self._sched = sched
        self._sink = sink
        self._fleet = tuple(fleet)
        self.pending: list[StreamArrival] = []
        self.pending_edges = 0
        self._run_ts: np.ndarray | None = None
        self._run_cum: np.ndarray | None = None
        # Bulk path only: all batch fields concatenated once in admission
        # order (struct-of-array), plus the arrival index of the first
        # pending element.  Serial admission keeps ``pending`` a contiguous
        # span of the arrival sequence, so a flush merges by slicing these
        # arrays instead of re-concatenating per-arrival batches.
        self._cat: tuple[np.ndarray, ...] | None = None
        self._span_lo = 0
        self._deadline_token: int | None = None
        self._expected = 0
        self._admitted = 0
        self.flushes = 0
        self.drain_flushes = 0

    # ------------------------------------------------------------------ #
    def start(self, arrivals: Sequence[StreamArrival]) -> None:
        """Schedule the whole arrival trace onto the loop.

        On a cohort-capable scheduler with tracing off, the trace is
        scheduled as one struct-of-array run (the vectorized bulk path);
        otherwise every arrival becomes a typed :class:`ArrivalEvent` so
        traces keep their documented shape.
        """
        arrivals = list(arrivals)
        ts = np.fromiter((a.t for a in arrivals), count=len(arrivals),
                         dtype=np.float64)
        if len(ts) > 1 and bool(np.any(ts[:-1] > ts[1:])):
            raise ValueError("arrivals must be sorted by time")
        self._expected = len(arrivals)
        schedule_run = getattr(self._sched, "schedule_run", None)
        if schedule_run is not None and self._sched.trace is None \
                and len(arrivals) > 0:
            self._run_ts = ts
            # _run_cum[i] = total edges in arrivals[:i]; strictly
            # increasing because every window carries >= 1 edge.
            lens = np.fromiter((len(a) for a in arrivals),
                               count=len(arrivals), dtype=np.int64)
            self._run_cum = np.concatenate(
                (np.zeros(1, dtype=np.int64), np.cumsum(lens)))
            # Assemble the whole stream's batch fields once (one big
            # concatenate per field instead of one per flush); _flush
            # slices its pending span out of these.
            batches = [a.batch for a in arrivals]
            self._cat = (np.concatenate([b.src for b in batches]),
                         np.concatenate([b.dst for b in batches]),
                         np.concatenate([b.t for b in batches]),
                         np.concatenate([b.eid for b in batches]),
                         np.concatenate([b.edge_feat for b in batches]))
            schedule_run(self._run_ts, _ARRIVAL, arrivals, self._on_cohort)
            return
        for a in arrivals:
            self._sched.schedule(a.t, _ARRIVAL, ArrivalEvent(a.t, a),
                                 self._on_arrival)

    def _fleet_hungry(self) -> bool:
        return all(g.hungry for g in self._fleet)

    def on_hungry(self, t: float) -> None:
        """Fleet-drain notification (wired to groups under pipelined)."""
        if self.ingest == "pipelined" and self.pending \
                and self._fleet_hungry():
            self._flush(t, "drain")

    # ------------------------------------------------------------------ #
    def _on_arrival(self, ev: ArrivalEvent) -> None:
        self._admit(ev.arrival, ev.t)

    def _admit(self, a: StreamArrival, t: float) -> None:
        self._admitted += 1
        # Overflow guard: admitting this arrival would push the buffer past
        # the size cap, so release the buffered job first (only a single
        # oversized arrival can ever produce an oversized job).
        if self.max_edges is not None and self.pending \
                and self.pending_edges + len(a) > self.max_edges:
            self._flush(t, "size")
        first = not self.pending
        self.pending.append(a)
        self.pending_edges += len(a)
        if self.max_edges is not None and self.pending_edges >= self.max_edges:
            self._flush(t, "size")
            return
        if self.ingest == "pipelined" and self._fleet \
                and self._fleet_hungry():
            # Nothing in flight to hide the delay behind: release now.
            self._flush(t, "drain")
            return
        if self._admitted == self._expected \
                and not math.isfinite(self.max_delay_s):
            # End of stream with an unbounded deadline: the offline
            # reference releases the tail at the last arrival instant.
            self._flush(t, "eos")
            return
        if first and math.isfinite(self.max_delay_s):
            deadline = a.t + self.max_delay_s
            self._deadline_token = self._sched.schedule(
                deadline, _FLUSH, None, self._on_deadline)

    def _on_cohort(self, t: float, arrivals: Sequence[StreamArrival],
                   start: int, stop: int) -> int:
        """Bulk arrival admission; returns how many elements it consumed.

        Consuming more than the head element is valid only while admission
        is *pure buffering* — no flush fires and no event the batcher
        schedules lands inside the consumed span.  Arrivals that could
        react at the same instant (a passthrough deadline, a drain flush,
        a size trigger) fall back to :meth:`_admit` one at a time, which
        is exactly the reference heap delivery.
        """
        a0 = arrivals[start]
        pending_empty = not self.pending
        if (pending_empty and self.max_delay_s == 0.0) \
                or (self.ingest == "pipelined" and self._fleet
                    and self._fleet_hungry()):
            # Passthrough deadline or hungry-fleet drain: every admission
            # flushes immediately, so deliver with per-event semantics.
            # (Fleet hungriness is frozen during pure buffering — nothing
            # fires between cohort elements — so checking it once at the
            # cohort head is exact.)
            self._admit(a0, t)
            return 1
        cum = self._run_cum
        limit = stop
        if self.max_edges is not None:
            # Pure buffering holds the buffer strictly below the size cap;
            # the element whose admission reaches (or overflows) it
            # triggers a flush, so the cut stops just before it.  Element
            # k (global index) triggers iff pending_edges + cum[k+1] -
            # cum[start] >= max_edges.
            threshold = self.max_edges - (self.pending_edges
                                          - int(cum[start]))
            trigger = int(np.searchsorted(cum, threshold, side="left")) - 1
            if trigger <= start:
                self._admit(a0, t)   # head element flushes: go per-event
                return 1
            limit = min(limit, trigger)
        if pending_empty and math.isfinite(self.max_delay_s):
            # Admitting the head opens the buffer and schedules a deadline
            # flush at t + max_delay_s — an event the scheduler could not
            # see when it cut the cohort.  Arrivals at or past the
            # deadline instant wait behind the _FLUSH-priority release.
            deadline = a0.t + self.max_delay_s
            limit = min(limit, start + int(np.searchsorted(
                self._run_ts[start:stop], deadline, side="left")))
        consumed = limit - start
        self.pending.extend(arrivals[start:limit])
        self.pending_edges += int(cum[limit] - cum[start])
        self._admitted += consumed
        if self._admitted == self._expected \
                and not math.isfinite(self.max_delay_s):
            self._flush(float(self._run_ts[limit - 1]), "eos")
        elif pending_empty and math.isfinite(self.max_delay_s):
            self._deadline_token = self._sched.schedule(
                a0.t + self.max_delay_s, _FLUSH, None, self._on_deadline)
        return consumed

    def _on_deadline(self, _event) -> None:
        self._deadline_token = None
        if self.pending:
            self._flush(self._sched.now, "deadline")

    def _flush(self, t: float, cause: str) -> None:
        if self._deadline_token is not None:
            self._sched.cancel(self._deadline_token)
            self._deadline_token = None
        merged = self._merge_pending()
        job = CoalescedJob(t_release=t, batch=merged,
                           sources=tuple(self.pending))
        self.pending = []
        self.pending_edges = 0
        self.flushes += 1
        if cause == "drain":
            self.drain_flushes += 1
        self._sched.record(FlushEvent(t, cause, len(job.sources)))
        self._sink(job)

    def _merge_pending(self) -> EdgeBatch:
        """Chronological merge of the pending buffer.

        Bulk path: admission is sequential and a flush always drains the
        whole buffer, so ``pending == arrivals[lo : lo + len(pending)]``
        for the tracked span start ``lo`` — the concatenation of its batch
        fields is a slice of the precomputed per-field arrays, and only
        the stable time sort remains per flush.  Identical values to
        :func:`merge_batches` (same concatenation order, same sort), just
        without re-concatenating per-arrival arrays.  The per-event path
        (heap scheduler, or tracing on) keeps the reference call.
        """
        if self._cat is None:
            return merge_batches([a.batch for a in self.pending])
        lo = self._span_lo
        n_pend = len(self.pending)
        self._span_lo = lo + n_pend
        if n_pend == 1:
            # Mirror merge_batches' single-batch fast path (same views).
            return self.pending[0].batch
        e0 = int(self._run_cum[lo])
        e1 = int(self._run_cum[lo + n_pend])
        src, dst, ts, eid, ef = (f[e0:e1] for f in self._cat)
        order = np.argsort(ts, kind="stable")
        return EdgeBatch(src=src[order], dst=dst[order], t=ts[order],
                         eid=eid[order], edge_feat=ef[order])


# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Submission:
    """One routed slice of a released job, bound for a server group.

    ``mail`` and ``sync`` carry the traffic this slice moved between
    shards — ``(from_shard, to_shard, edges)`` and
    ``(owner, to_shard, rows, kind)`` — recorded as :class:`MailEvent` /
    :class:`SyncEvent` at the release instant when tracing is on.
    """

    group: int
    payload: Any
    mail: tuple = ()
    sync: tuple = ()


class RouterActor:
    """Fork point: routes a released job onto one or more server groups.

    ``route(job)`` returns the job's :class:`Submission` list — a split
    across dedicated shards, the whole job for a pool, or a mix of both in
    the hybrid topology.  Submissions land on their groups at the release
    instant, and the mail/sync traffic they carry is recorded at that same
    event time — cross-shard costs are priced when they occur, not
    post-hoc.
    """

    def __init__(self, sched: EventScheduler, groups: Sequence[ServerGroup],
                 route: Callable[[CoalescedJob], Sequence[Submission]]):
        self._sched = sched
        self._groups = list(groups)
        self._route = route

    def __call__(self, job: CoalescedJob) -> None:
        t = job.t_release
        for sub in self._route(job):
            if self._sched.trace is not None:
                for from_shard, to_shard, edges in sub.mail:
                    self._sched.record(MailEvent(t, from_shard, to_shard,
                                                 edges))
                for owner, shard, rows, kind in sub.sync:
                    self._sched.record(SyncEvent(t, owner, shard, rows,
                                                 kind))
            self._groups[sub.group].submit(t, sub.payload)
