"""Named construction of engine backends, pluggable per shard.

Every backend follows the engine protocol documented in
:mod:`repro.pipeline` (``process_batch(EdgeBatch) -> seconds``).  The
registry makes the *choice* of backend data, not code: the serving engine,
CLI, and benchmarks look backends up by name, and each shard gets its own
freshly-constructed instance (its own :class:`~repro.models.tgn.ModelRuntime`,
so shards never share mutable vertex state).  An elastic sharded fleet
is built the same way, sized ``max_replicas`` wide up front — inactive
tail shards own no vertices until a split grows into them.

Built-in names
--------------
``software``            measured single-thread NumPy inference
``u200`` / ``zcu104``   simulated FPGA accelerator on that platform
``cpu-32t`` / ``gpu``   calibrated GPP cost models (timing modeled; pass
                        ``functional=False`` to skip the functional state
                        advance when only timing matters)
``measured``            real kernels on the event core: service times are
                        wall-clock measurements of the numpy
                        ``update_memory``/``embed`` kernels, executed by
                        the serving engine's worker pool (see
                        :mod:`repro.serving.measured`); carries a
                        non-functional ``cpu-32t`` pricing companion for
                        the modeled-vs-measured report block (disable
                        with ``modeled=False``)
"""

from __future__ import annotations

from typing import Callable

__all__ = ["BackendRegistry", "DEFAULT_REGISTRY"]


class BackendRegistry:
    """Maps backend names to factories ``(model, graph, **kw) -> backend``."""

    def __init__(self):
        self._factories: dict[str, Callable] = {}

    def register(self, name: str, factory: Callable | None = None):
        """Register a factory; usable directly or as a decorator."""
        if factory is None:
            return lambda f: self.register(name, f)
        if name in self._factories:
            raise ValueError(f"backend {name!r} already registered")
        self._factories[name] = factory
        return factory

    def available(self) -> list[str]:
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        return name in self._factories

    def create(self, name: str, model, graph, **kwargs):
        """Construct a fresh backend instance by name."""
        if name not in self._factories:
            raise KeyError(f"unknown backend {name!r}; "
                           f"available: {', '.join(self.available())}")
        return self._factories[name](model, graph, **kwargs)

    def create_many(self, name: str, count: int, model, graph,
                    **kwargs) -> list:
        """``count`` fresh instances of one backend (a shard fleet).

        Each instance gets its own runtime/state — this is the sharded
        topology's constructor.  Pool topology needs only *one* instance
        (replicas are stateless; see ``ServingEngine.from_registry``).
        """
        if count <= 0:
            raise ValueError("count must be positive")
        return [self.create(name, model, graph, **kwargs)
                for _ in range(count)]


DEFAULT_REGISTRY = BackendRegistry()


@DEFAULT_REGISTRY.register("software")
def _software(model, graph, **_):
    from ..pipeline.engine import SoftwareBackend
    return SoftwareBackend(model, graph)


def _fpga_factory(design_name: str):
    def factory(model, graph, **_):
        from ..hw import U200_DESIGN, ZCU104_DESIGN, FPGAAccelerator
        from ..pipeline.engine import SimulatedFPGABackend
        design = {"u200": U200_DESIGN, "zcu104": ZCU104_DESIGN}[design_name]
        return SimulatedFPGABackend(FPGAAccelerator(model, design), graph)
    return factory


def _gpp_factory(model_name: str):
    def factory(model, graph, functional: bool = True, **_):
        from ..perf import CPU_32T, GPU
        from ..pipeline.engine import ModeledGPPBackend
        from ..profiling import count_ops
        cost = {"cpu-32t": CPU_32T, "gpu": GPU}[model_name]
        return ModeledGPPBackend(cost, count_ops(model.cfg), model, graph,
                                 functional=functional)
    return factory


for _name in ("u200", "zcu104"):
    DEFAULT_REGISTRY.register(_name, _fpga_factory(_name))
for _name in ("cpu-32t", "gpu"):
    DEFAULT_REGISTRY.register(_name, _gpp_factory(_name))


@DEFAULT_REGISTRY.register("measured")
def _measured(model, graph, modeled: bool = True, **_):
    from .measured import MeasuredBackend
    companion = DEFAULT_REGISTRY.create("cpu-32t", model, graph,
                                        functional=False) if modeled \
        else None
    return MeasuredBackend(model, graph, modeled=companion)
