"""Deadline-aware dynamic batching across concurrent streams.

The paper's deployment model maps each time window to exactly one batch on
one idle device.  With many tenants that assumption breaks: windows from
independent streams close at interleaved instants, and submitting each one
alone wastes the accelerator's batch parallelism.  The
:class:`DynamicBatcher` coalesces arrivals under a latency deadline — a
flush is triggered by *size* (enough edges buffered to fill the device) or
by *deadline* (the oldest buffered arrival has waited ``max_delay_s``),
whichever comes first.  ``max_delay_s = 0`` degenerates to the paper's
1:1 window-to-batch mapping, which is what the shard-equivalence tests pin
against the single-server replay.

This class is the *policy* (trigger configuration) plus the offline
reference implementation.  The serving engine runs the same policy online
as a :class:`~repro.serving.events.BatcherActor` on the discrete-event
scheduler — under serial ingest the actor's releases match
:meth:`coalesce` exactly (property-tested in ``test_events``), and under
pipelined ingest the actor adds the double-buffered fleet-drain trigger
that an offline pass cannot express (it depends on in-flight compute).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..graph.batching import merge_batches
from ..graph.temporal_graph import EdgeBatch

__all__ = ["StreamArrival", "CoalescedJob", "DynamicBatcher"]


@dataclass(frozen=True)
class StreamArrival:
    """One stream's window closing at stream-time ``t``."""

    t: float
    stream: int
    batch: EdgeBatch

    def __len__(self) -> int:
        return len(self.batch)


@dataclass(frozen=True)
class CoalescedJob:
    """A flushed batch: merged edges plus its constituent arrivals."""

    t_release: float
    batch: EdgeBatch
    sources: tuple[StreamArrival, ...]

    @property
    def n_edges(self) -> int:
        return len(self.batch)

    @property
    def batching_delay_s(self) -> float:
        """How long the oldest constituent waited for the flush."""
        return self.t_release - self.sources[0].t


class DynamicBatcher:
    """Size- or deadline-triggered coalescing of stream arrivals.

    Parameters
    ----------
    max_edges:
        Device batch capacity.  The buffer is flushed *before* admitting an
        arrival that would push it past this cap (and immediately once it
        reaches the cap), so a coalesced job never exceeds ``max_edges``
        unless a single arrival alone does — that oversized arrival becomes
        its own job.  ``None`` disables the size trigger.
    max_delay_s:
        Flush when the oldest buffered arrival is this old.  ``0`` releases
        every arrival immediately (passthrough).  The default ``None``
        resolves to passthrough when no size trigger is set, and to an
        unbounded deadline when one is — so ``DynamicBatcher(max_edges=N)``
        means size-only batching, not a 0-second deadline that would flush
        before the buffer ever reached N.
    """

    def __init__(self, max_edges: int | None = None,
                 max_delay_s: float | None = None):
        if max_edges is not None and max_edges <= 0:
            raise ValueError("max_edges must be positive")
        if max_delay_s is None:
            max_delay_s = math.inf if max_edges is not None else 0.0
        if max_delay_s < 0:
            raise ValueError("max_delay_s must be non-negative")
        self.max_edges = max_edges
        self.max_delay_s = float(max_delay_s)

    def coalesce(self, arrivals: list[StreamArrival]) -> list[CoalescedJob]:
        """Fold time-sorted arrivals into released jobs.

        Offline event simulation: between two arrivals the only event that
        can fire is the pending buffer's deadline, so it suffices to check
        the deadline before admitting each arrival and once at end of
        stream.
        """
        if any(arrivals[i].t > arrivals[i + 1].t
               for i in range(len(arrivals) - 1)):
            raise ValueError("arrivals must be sorted by time")
        jobs: list[CoalescedJob] = []
        pending: list[StreamArrival] = []
        pending_edges = 0

        def flush(t_release: float) -> None:
            nonlocal pending_edges
            merged = merge_batches([a.batch for a in pending])
            jobs.append(CoalescedJob(t_release=t_release, batch=merged,
                                     sources=tuple(pending)))
            pending.clear()
            pending_edges = 0

        for a in arrivals:
            if pending and a.t >= pending[0].t + self.max_delay_s:
                flush(pending[0].t + self.max_delay_s)
            # Overflow guard: admitting this arrival would push the buffer
            # past the size cap, so release the buffered job first.  Only a
            # single arrival larger than ``max_edges`` can therefore ever
            # produce an oversized job (it has nowhere else to go).
            if self.max_edges is not None and pending \
                    and pending_edges + len(a) > self.max_edges:
                flush(a.t)
            pending.append(a)
            pending_edges += len(a)
            if self.max_edges is not None and pending_edges >= self.max_edges:
                flush(a.t)
        if pending:
            deadline = pending[0].t + self.max_delay_s
            flush(deadline if math.isfinite(deadline) else pending[-1].t)
        return jobs
