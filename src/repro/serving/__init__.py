"""Sharded / pooled multi-stream serving layer in front of the engine backends.

The ``pipeline`` package answers "how fast is one batch on one idle
device"; this package answers the production question: how does a fleet of
shards behave when many streams hit it at once.  Components:

* :class:`ShardRouter` — partitions vertex state over N shards according to
  a :class:`Placement`, with cross-shard edges resolved through a
  :class:`CrossShardMailbox`;
* :class:`DynamicBatcher` — size- or deadline-triggered coalescing of
  arrivals across streams;
* :func:`simulate_queue` — event-driven multi-server FIFO queue simulation
  (validated against closed-form M/M/1 and M/M/c in the tier-2 queueing
  tests);
* :class:`BackendRegistry` — backends constructed by name, pluggable per
  shard;
* :class:`ServingEngine` — the composition, reporting per-shard
  utilization/wait/p95/p99/drops and end-to-end window response times, in
  either topology (``sharded`` fork-join shards, or ``pool`` — K stateless
  replicas behind one shared queue).

Placement-policy protocol
-------------------------
Where each vertex lives is a policy, not a constant.  A policy implements

    ``place(heat: VertexHeat, num_shards: int, profile=None) -> Placement``

where ``heat`` carries per-vertex source/destination edge counts and
``profile`` is optional measured feedback (per-shard ``ShardStats`` from a
profiling run).  The returned :class:`Placement` names a primary owner per
vertex plus optional replica shards; the router delivers every incident
edge to every holder, so replica state is exact.  Built-ins:

* :class:`StaticHashPlacement` (``"hash"``) — PR 1's multiplicative hash;
* :class:`LoadAwareRebalance` (``"rebalance"``) — profile-guided migration
  of the hottest vertices off shards above a utilization threshold;
* :class:`ReplicatedReadMostly` (``"replicate"``) — replicates high-fanout
  read-mostly vertices; the maintenance cost surfaces as
  ``ServingReport.replication_factor`` (one count per replica per incident
  edge).

Register new policies in :data:`PLACEMENT_POLICIES` (name -> class); the
``serve-sim`` CLI and ``bench_serving_scale`` sweep whatever is there.

Cross-shard memory sync
-----------------------
The mailbox keeps neighbor *tables* exact; vertex-*memory* coherence for
non-held endpoints is a policy (:mod:`repro.serving.memsync`):

* :class:`VersionedMemoryCache` — per-vertex version counters bumped on
  every owner write, with ``none`` / ``invalidate`` / ``push`` policies
  (:data:`MEMSYNC_POLICIES`);
* :class:`ShardedRuntime` — the functional two-phase sharded replay whose
  held-vertex memory tables and embeddings are bit-identical to the
  unsharded runtime under the sync policies;
* ``ServingEngine(..., memsync=...)`` prices the sync traffic into service
  times and reports ``sync_edges`` / ``stale_reads`` / ``max_version_lag``
  (``serve-sim --memsync {none,invalidate,push}`` sweeps it).
"""

from .batcher import CoalescedJob, DynamicBatcher, StreamArrival  # noqa: F401
from .engine import (ServingEngine, ServingReport, ShardStats,  # noqa: F401
                     make_stream_arrivals)
from .memsync import (MEMSYNC_POLICIES, ShardedRuntime,  # noqa: F401
                      VersionedMemoryCache)
from .placement import (PLACEMENT_POLICIES, LoadAwareRebalance,  # noqa: F401
                        Placement, PlacementPolicy, ReplicatedReadMostly,
                        StaticHashPlacement, VertexHeat, hash_assignment,
                        make_policy)
from .registry import DEFAULT_REGISTRY, BackendRegistry  # noqa: F401
from .router import CrossShardMailbox, ShardBatch, ShardRouter  # noqa: F401
from .simulator import (ServedJob, SimulationResult,  # noqa: F401
                        simulate_queue)

__all__ = [
    "ServingEngine", "ServingReport", "ShardStats", "make_stream_arrivals",
    "ShardRouter", "ShardBatch", "CrossShardMailbox",
    "DynamicBatcher", "CoalescedJob", "StreamArrival",
    "simulate_queue", "SimulationResult", "ServedJob",
    "BackendRegistry", "DEFAULT_REGISTRY",
    "Placement", "PlacementPolicy", "VertexHeat", "hash_assignment",
    "StaticHashPlacement", "LoadAwareRebalance", "ReplicatedReadMostly",
    "PLACEMENT_POLICIES", "make_policy",
    "MEMSYNC_POLICIES", "VersionedMemoryCache", "ShardedRuntime",
]
