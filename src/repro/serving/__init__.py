"""Serving-layer architecture: one discrete-event core, three topologies.

The ``pipeline`` package answers "how fast is one batch on one idle
device"; this package answers the production question: how does a fleet
behave when many streams hit it at once.  Since the unified-core refactor,
every composition runs on **one event scheduler**
(:mod:`repro.serving.events`) — ingest, routing, shard compute, mailbox,
and memory-sync traffic advance on a single clock, the software analogue
of the paper's dataflow pipeline overlapping sampling, memory update, and
attention on the FPGA.

Performance
-----------
The event core is vectorized: :class:`EventScheduler` holds the bulk
arrival trace as struct-of-array *runs* (contiguous numpy timestamp
arrays + one consumption pointer) and delivers maximal safe prefixes as
**cohorts** to opted-in actors, while dynamically created events (service
ends, dispatches, deadline flushes, migrations) ride a conventional
``(t, priority, seq)`` heap overlay.  Ordering is bit-identical to the
retained reference implementation :class:`HeapEventScheduler` — the
equivalence is property-tested, the ``serve-sim`` golden reports are
byte-identical under both, and ``bench_serving_scale`` asserts the
events/sec speedup of the vectorized loop over the heap loop every run
(the ratio is tracked across commits via the ``BENCH_events_per_sec``
perf-trajectory artifact).  Tracing (``trace=True``) disables the bulk
path so typed events keep their documented shape; untraced hot paths
skip trace-only dataclass construction entirely.  ``serve-sim
--profile`` prints the before/after breakdown via :mod:`repro.profiling`.

Actors on the scheduler
-----------------------
* :class:`BatcherActor` — the :class:`DynamicBatcher` policy run online:
  size/deadline flush triggers, plus the double-buffered drain trigger
  under pipelined ingest;
* :class:`RouterActor` — the fork point: a released job is split across
  dedicated shards (:class:`ShardRouter` + :class:`Placement`), handed
  whole to a replica pool, or both (hybrid); mail and sync traffic is
  recorded at the event time it occurs;
* :class:`ServerGroup` — a FIFO station of N identical servers: a
  dedicated shard is a 1-server group, a replica pool a K-server group;
  its statistics reproduce the historical standalone queue loop exactly;
* :class:`OnlineRebalancer` — the control plane: watches per-shard window
  utilization / queue depth on released jobs and migrates vertex
  ownership mid-run via :class:`MigrationEvent` (overload-driven between
  dedicated shards; heat-band drift between pool and shards in hybrid),
  with the state handoff priced through ``mail_hop_s`` like sync traffic;
* :class:`CrossShardMailbox` / :class:`VersionedMemoryCache` — the traffic
  and coherence components the router drives, in release order.

Typed events: ``ArrivalEvent``, ``FlushEvent``, ``ServiceBeginEvent``,
``ServiceEndEvent``, ``MailEvent``, ``SyncEvent``, ``MigrationEvent``,
``ScaleEvent``.  At
equal timestamps events fire in a fixed priority order (ends → dispatches
→ migrations → flushes → arrivals), so runs are exactly reproducible; the
scheduler enforces global timestamp monotonicity, and the conservation
invariants (every admitted job served exactly once, per-server busy
intervals never overlap — with and without mid-run migrations) are
property-tested over randomized traces.

Topology × ingest matrix (:class:`ServingEngine`)
-------------------------------------------------
=============  =======================================================
``sharded``    partitioned shards, dedicated FIFO queues, fork-join
               window completion; placement policies apply
``pool``       K stateless replicas behind one shared queue; no
               partition, no mail, ``replication_factor == 1``
``hybrid``     measured-traffic hot head on dedicated shards
               (:class:`HotColdHybrid`), cold tail drained by a
               shared-queue pool — both regimes in one event loop,
               cross-regime edges ride the ordinary mailbox
=============  =======================================================

Each topology runs under either ingest mode: ``serial`` (batching delay
serializes in front of service — byte-identical to the pre-event-core
engine, pinned by golden tests) or ``pipelined`` (double-buffered ingest —
the buffer flushes the moment the fleet goes hungry, so batching delay is
paid only while it hides behind in-flight compute).

The single-queue façade :func:`simulate_queue` (validated against
closed-form M/M/1, M/M/c, and the Kingman/Allen–Cunneen G/G/c
approximation in the tier-2 queueing tests) and
:func:`repro.pipeline.replay_under_load` are thin wrappers over the same
core — there is exactly one queue implementation in the repo.

Placement-policy protocol
-------------------------
Where each vertex lives is a policy, not a constant.  A policy implements

    ``place(heat: VertexHeat, num_shards: int, profile=None) -> Placement``

where ``heat`` carries per-vertex source/destination edge counts and
``profile`` is optional measured feedback (per-shard ``ShardStats`` from a
profiling run).  The returned :class:`Placement` names a primary owner per
vertex plus optional replica shards; the router delivers every incident
edge to every holder, so replica state is exact.  Built-ins:

* :class:`StaticHashPlacement` (``"hash"``) — static multiplicative hash;
* :class:`LoadAwareRebalance` (``"rebalance"``) — *two-pass* profile-guided
  migration (profile a run, migrate, redeploy);
* :class:`ReplicatedReadMostly` (``"replicate"``) — replicates high-fanout
  read-mostly vertices; cost surfaces as
  ``ServingReport.replication_factor``;
* :class:`HotColdHybrid` — hot head over dedicated shards, cold tail on
  the pool pseudo-shard (hybrid topology only; not in
  :data:`PLACEMENT_POLICIES`).

Register new policies in :data:`PLACEMENT_POLICIES` (name -> class); the
``serve-sim`` CLI and ``bench_serving_scale`` sweep whatever is there.

Rebalancing happens at two timescales.  A *placement policy* decides
before a run (``LoadAwareRebalance`` needs a whole profiling pass before
it can act).  The **online** path (:mod:`repro.serving.rebalance`) reacts
*during* a run: the :class:`OnlineRebalancer` emits
:class:`MigrationEvent`\\ s the router consumes mid-stream, the memsync
version counters survive the ownership change (post-migration ``push``
replays stay bit-identical to the unsharded runtime — the exactness suite
in ``test_rebalance``), and the handoff (memory rows + neighbor-table
slices) is priced like :class:`SyncEvent` traffic.  In the hybrid
topology the same actor tracks hot-set drift: vertices heating up migrate
pool → shard, cooled ones shard → pool.  ``serve-sim
--rebalance-online --rebalance-threshold --rebalance-window`` drives it.

Cross-shard memory sync
-----------------------
The mailbox keeps neighbor *tables* exact; vertex-*memory* coherence for
non-held endpoints is a policy (:mod:`repro.serving.memsync`):

* :class:`VersionedMemoryCache` — per-vertex version counters bumped on
  every owner write, with ``none`` / ``invalidate`` / ``push`` policies
  (:data:`MEMSYNC_POLICIES`);
* :class:`ShardedRuntime` — the functional two-phase sharded replay whose
  held-vertex memory tables and embeddings are bit-identical to the
  unsharded runtime under the sync policies;
* ``ServingEngine(..., memsync=...)`` prices the sync traffic into service
  times and reports ``sync_edges`` / ``stale_reads`` / ``max_version_lag``
  (``serve-sim --memsync {none,invalidate,push}`` sweeps it).

Measured backends
-----------------
Every backend above *prices* a batch; the ``measured`` backend
(:mod:`repro.serving.measured`) *executes* it.  A
:class:`MeasuredServerGroup` — a drop-in :class:`ServerGroup` subclass —
dispatches each admitted sub-batch's real numpy
``update_memory``/``embed`` kernels to a persistent
:class:`WorkerPool` (``workers=N`` process lanes, shard ``s`` pinned to
lane ``s % N`` so each shard's stream stays FIFO against one persistent
runtime; ``workers=0`` computes in-process) and reconciles the measured
wall-clock duration back into deterministic event time: completions are
committed in dispatch order at ``max(t_begin, lane_free) + measured_s``,
so the event core stays exact and traced runs replay through
``tracecheck`` clean while shards genuinely execute in parallel on the
wall clock.  The wall clock enters through exactly one audited door —
the :func:`timed_kernel` context manager, the only site the
``wall-clock-in-events`` lint rule permits — and the report gains a
``measured`` block (pooled and per-shard mean/cv², modeled-vs-measured
means, kernel stage split; omitted on modeled runs, so the goldens
stand).  Runs are deterministic in *structure* but not timing values;
:meth:`ServingReport.to_structure_json` is the byte-comparable
projection, and the measured service-time samples feed the tier-2
Kingman/Allen–Cunneen G/G/c checks with measured cv².  ``serve-sim
--backend measured --workers N`` drives it.

Failure injection and exact failover
------------------------------------
Chaos is a first-class schedule, not a test-only monkeypatch.  A
:class:`FailurePlan` names *when* a shard fails, *how* (``slow`` — its
service times are multiplied by a degradation factor; ``dead`` — the
shard stops accepting sub-jobs and its vertex state is lost), and
optionally when it recovers; the engine turns plans into
:class:`FailureEvent` / :class:`RecoveryEvent` entries on the same
scheduler (at migration priority, so a failure at time *t* lands after
service ends and dispatches at *t* but before flushes and arrivals).
:class:`FailureInjector` is the runtime: on a ``dead`` failure it drains
the shard's queue (dropped sub-jobs are *counted*, never silently lost —
conservation holds through the outage), promotes the dead shard's
replica mirrors to owners via :meth:`ShardRouter.fail_over`, and rebuilds
every unreplicated lost vertex by memsync replay from the
lowest-numbered current peer — each rebuilt vertex priced at
``HANDOFF_ROWS_PER_VERTEX`` rows through ``mail_hop_s``, exactly like a
planned migration.  Recovery migrates the held state back (``fail-back``
rows in the migration trace), so promote → rebuild → fail-back forms the
same exactly-once ownership chain the rebalancer's invariant suite
replays.  The functional mirror is
:meth:`ShardedRuntime.fail_shard` / :meth:`ShardedRuntime.recover_shard`:
under the ``push`` policy a failed-and-recovered run ends bit-identical
to the unsharded runtime (the exactness suite in ``test_failover``).
``serve-sim --fail-at --fail-shard --fail-mode --recover-at`` drives it;
a run with chaos off omits every chaos key from the JSON report, so the
golden reports of earlier revisions stay byte-identical.

Elastic capacity
----------------
Rebalancing and failover act on a *fixed* fleet; production serving
resizes the fleet against traffic.  The :class:`AutoScaler`
(:mod:`repro.serving.autoscale`) is the control plane: it observes the
windowed p95 response latency of completed jobs against an SLO band
(breach above ``slo_p95_s`` scales up; slack below ``low_band_frac *
slo_p95_s`` scales down — hysteresis plus a decision cooldown prevent
ping-pong) and schedules :class:`ScaleEvent`\\ s at migration priority on
the same event core.  :class:`CapacityConfig` gives the controller its
units, BatchConfig-style: ``micro_batch × replicas = global_capacity``
is validated at construction, together with the fleet bounds and the
cold-start price.  On the pool topology, replicas spin up cold
(:meth:`ServerGroup.scale_up` — the newcomer's first job begins no
earlier than ``t + cold_start_s``) and spin down on drain
(:meth:`ServerGroup.scale_down` — a busy victim finishes its committed
job before leaving; server ids are never reused).  On the sharded
topology, the fleet is a ``max_replicas``-slot station array laid out by
:func:`padded_hash_placement`; scale-up **splits** the hottest shard's
measured-hot vertices into the next inactive slot, scale-down **merges**
the highest active slot onto the coolest survivor — both as ordinary
:class:`MigrationEvent` chains (reasons ``"split"``/``"merge"``, rows
priced via ``mail_hop_s``) with :class:`VersionedMemoryCache` ownership
transfer, so post-split ``push`` replays stay bit-identical and the
tracecheck ownership replay stays exactly-once.  The report gains a
``scaling`` block (scale events, peak/mean fleet, the server-seconds
integral the diurnal bench compares against static peak provisioning;
omitted when off, so earlier goldens stand), tracecheck replays the
scale log as a ``fleet-size`` chain, and ``serve-sim --autoscale
--slo-p95 --scale-window --max-servers`` drives it.

Correctness tooling
-------------------
The exactness contracts above are conventions; :mod:`repro.analysis`
enforces them mechanically, before the golden diff can catch a break:

* **repro-lint** (static) — a stdlib-``ast`` linter whose ruleset *is*
  this package's style guide: ``unseeded-rng`` (all randomness flows from
  an explicit ``np.random.Generator`` / threaded seed; no global-state
  APIs, no buried literal seeds), ``wall-clock-in-events`` (handlers in
  ``events.py`` and ``measured.py`` take time from the scheduler, never
  the host clock — ``measured.timed_kernel`` is the one carved-out
  kernel-timing site),
  ``unordered-iteration`` (no set / ``.keys()`` iteration feeding
  scheduling or report assembly), ``float-sum-report`` (builtin ``sum()``
  only over integer summands on report paths; float reductions use
  ``math.fsum`` or a documented stable order), ``report-omit-when-off``
  (new defaulted :class:`ServingReport` fields must be deleted from
  ``to_dict()`` when off, or every pinned golden re-bakes), and
  ``scheduler-purity`` (actors touch the scheduler only via
  ``schedule``/``schedule_run``/``cancel``/``record``).  Intentional
  sites carry ``# repro-lint: ok=<rule> (reason)``.
* **tracecheck** (dynamic) — replays a ``trace=True`` run's typed-event
  trace and flags causality violations, non-exactly-once service or
  ownership, busy-interval overlap, off-flush mail, conservation breaks,
  and equal-``(t, priority)`` order divergence between the heap and
  vectorized lanes.  ``serve-sim --check-trace`` (exit 3 on findings)
  and the bench smoke's trace-invariants lane run it end-to-end.

Both halves block CI (the ``lint`` job runs ahead of tier-1, together
with the ruff/mypy baseline in pyproject.toml).
"""

from .autoscale import AutoScaler, CapacityConfig  # noqa: F401
from .batcher import CoalescedJob, DynamicBatcher, StreamArrival  # noqa: F401
from .engine import (FailureInjector, ServingEngine,  # noqa: F401
                     ServingReport, ShardStats, make_stream_arrivals)
from .events import (INGEST_MODES, ArrivalEvent, BatcherActor,  # noqa: F401
                     EventScheduler, FailureEvent, FailurePlan,
                     FlushEvent, HeapEventScheduler, MailEvent,
                     MigrationEvent, RecoveryEvent, RouterActor,
                     ScaleEvent, ServerGroup, ServiceBeginEvent,
                     ServiceEndEvent, Submission, SyncEvent)
from .measured import (KernelTimer, MeasuredBackend,  # noqa: F401
                       MeasuredServerGroup, WorkerPool, timed_kernel)
from .memsync import (MEMSYNC_POLICIES, ShardedRuntime,  # noqa: F401
                      VersionedMemoryCache)
from .rebalance import (HANDOFF_ROWS_PER_VERTEX,  # noqa: F401
                        OnlineRebalancer)
from .placement import (PLACEMENT_POLICIES, HotColdHybrid,  # noqa: F401
                        LoadAwareRebalance, Placement, PlacementPolicy,
                        ReplicatedReadMostly, StaticHashPlacement,
                        VertexHeat, hash_assignment, make_policy,
                        padded_hash_placement, replica_shards_from_traffic)
from .registry import DEFAULT_REGISTRY, BackendRegistry  # noqa: F401
from .router import CrossShardMailbox, ShardBatch, ShardRouter  # noqa: F401
from .simulator import (ServedJob, SimulationResult,  # noqa: F401
                        simulate_queue)

__all__ = [
    "ServingEngine", "ServingReport", "ShardStats", "make_stream_arrivals",
    "ShardRouter", "ShardBatch", "CrossShardMailbox",
    "DynamicBatcher", "CoalescedJob", "StreamArrival",
    "simulate_queue", "SimulationResult", "ServedJob",
    "EventScheduler", "HeapEventScheduler", "ServerGroup", "BatcherActor",
    "RouterActor", "Submission", "INGEST_MODES",
    "ArrivalEvent", "FlushEvent", "ServiceBeginEvent", "ServiceEndEvent",
    "MailEvent", "SyncEvent", "MigrationEvent", "ScaleEvent",
    "FailureEvent", "RecoveryEvent", "FailurePlan", "FailureInjector",
    "OnlineRebalancer", "HANDOFF_ROWS_PER_VERTEX",
    "AutoScaler", "CapacityConfig",
    "BackendRegistry", "DEFAULT_REGISTRY",
    "Placement", "PlacementPolicy", "VertexHeat", "hash_assignment",
    "padded_hash_placement",
    "StaticHashPlacement", "LoadAwareRebalance", "ReplicatedReadMostly",
    "HotColdHybrid", "PLACEMENT_POLICIES", "make_policy",
    "replica_shards_from_traffic",
    "MEMSYNC_POLICIES", "VersionedMemoryCache", "ShardedRuntime",
    "MeasuredBackend", "MeasuredServerGroup", "WorkerPool",
    "KernelTimer", "timed_kernel",
]
