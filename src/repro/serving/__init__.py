"""Sharded, multi-stream serving layer in front of the engine backends.

The ``pipeline`` package answers "how fast is one batch on one idle
device"; this package answers the production question: how does a fleet of
shards behave when many streams hit it at once.  Components:

* :class:`ShardRouter` — hash-partitions vertex state over N shards, with
  cross-shard edges resolved through a :class:`CrossShardMailbox`;
* :class:`DynamicBatcher` — size- or deadline-triggered coalescing of
  arrivals across streams;
* :func:`simulate_queue` — event-driven multi-server FIFO queue simulation
  (the generalized, bug-fixed replacement for the old single-server loop in
  ``pipeline/queueing.py``);
* :class:`BackendRegistry` — backends constructed by name, pluggable per
  shard;
* :class:`ServingEngine` — the composition, reporting per-shard
  utilization/wait/p95/p99/drops and end-to-end window response times.
"""

from .batcher import CoalescedJob, DynamicBatcher, StreamArrival  # noqa: F401
from .engine import (ServingEngine, ServingReport, ShardStats,  # noqa: F401
                     make_stream_arrivals)
from .registry import DEFAULT_REGISTRY, BackendRegistry  # noqa: F401
from .router import CrossShardMailbox, ShardBatch, ShardRouter  # noqa: F401
from .simulator import (ServedJob, SimulationResult,  # noqa: F401
                        simulate_queue)

__all__ = [
    "ServingEngine", "ServingReport", "ShardStats", "make_stream_arrivals",
    "ShardRouter", "ShardBatch", "CrossShardMailbox",
    "DynamicBatcher", "CoalescedJob", "StreamArrival",
    "simulate_queue", "SimulationResult", "ServedJob",
    "BackendRegistry", "DEFAULT_REGISTRY",
]
