"""SLO-driven elastic capacity: resize the serving fleet mid-run.

Rebalancing (:mod:`repro.serving.rebalance`) moves load across a *fixed*
fleet; production serving resizes the fleet itself.  This module is the
control plane for that: an :class:`AutoScaler` actor observes windowed
p95 response latency against an SLO band and schedules
:class:`~repro.serving.events.ScaleEvent`\\ s on the same discrete-event
scheduler every other actor runs on — a capacity change is just another
event, applied at ``_MIGRATE`` priority so a decision made at ``t``
takes effect before the next same-instant flush routes.

Two fleet shapes, one controller
--------------------------------
*Pool* (``bind(router=None)``): the K stateless replicas behind the
shared queue grow and shrink through
:meth:`~repro.serving.events.ServerGroup.scale_up` /
:meth:`~repro.serving.events.ServerGroup.scale_down`.  A new replica is
born *cold* — free only at ``t + cold_start_s`` — so the group's
ordinary ``max(freed_at, t_arrive)`` dispatch rule prices the warm-up;
a retired replica drains its committed job before leaving.

*Sharded* (``bind(router=...)``): the fleet is a fixed array of
``CapacityConfig.max_replicas`` one-server shard stations of which the
first ``fleet_size`` are *active* (stack discipline — the active set is
always ``[0, fleet_size)``).  A scale-up activates the next station and
**splits** the hottest active shard's measured-hot vertices into it; a
scale-down **merges** the highest active shard's vertices onto the
coolest survivor.  Both ride the existing
:class:`~repro.serving.events.MigrationEvent` machinery (reasons
``"split"`` / ``"merge"``, :data:`HANDOFF_ROWS_PER_VERTEX` rows per
vertex priced through ``mail_hop_s``), and ownership moves through
:meth:`VersionedMemoryCache.transfer_ownership` so version counters
stay exact across the change — post-split ``--memsync push`` replays
stay bit-identical to the unsharded runtime, exactly as they do across
a rebalancer migration.  A merged-away shard owns nothing, so the
router never sends it another sub-job.

Capacity accounting follows the BatchConfig idiom:
:class:`CapacityConfig` validates ``micro_batch x replicas =
global_capacity`` at construction, and the controller's fleet bounds
(``min_replicas`` / ``max_replicas``) and cold-start price live there
too.  The SLO band has hysteresis built in: scale up when window p95
exceeds ``slo_p95_s``, scale down only when it falls to
``low_band_frac * slo_p95_s`` or below — plus a post-decision cooldown,
the same anti-ping-pong guards the rebalancer uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from .events import (_MIGRATE, EventScheduler, MigrationEvent, ScaleEvent,
                     ServerGroup)
from .rebalance import HANDOFF_ROWS_PER_VERTEX

__all__ = ["AutoScaler", "CapacityConfig"]


@dataclass(frozen=True)
class CapacityConfig:
    """Fleet capacity in controller units, validated at construction.

    The BatchConfig identity: ``micro_batch x replicas ==
    global_capacity``.  ``micro_batch`` is the edges one server admits
    per dispatch (the batcher's size trigger, or 1 for passthrough);
    ``replicas`` is the *initial* fleet size, bounded by
    ``min_replicas``/``max_replicas`` for the life of the run.  Passing
    ``global_capacity`` explicitly asserts the identity (a mismatch is a
    configuration bug, caught here, not a runtime surprise); omitting it
    derives it.

    ``cold_start_s`` prices a pool replica's warm-up: a scaled-up server
    accepts work immediately but begins its first job no earlier than
    ``t_scale + cold_start_s``.
    """

    micro_batch: int
    replicas: int
    max_replicas: int
    min_replicas: int = 1
    cold_start_s: float = 0.0
    global_capacity: int | None = None

    def __post_init__(self):
        if self.micro_batch <= 0:
            raise ValueError("micro_batch must be positive")
        if self.min_replicas <= 0:
            raise ValueError("min_replicas must be positive")
        if not self.min_replicas <= self.replicas <= self.max_replicas:
            raise ValueError(
                f"replicas must satisfy min_replicas <= replicas <= "
                f"max_replicas, got {self.min_replicas} / {self.replicas} "
                f"/ {self.max_replicas}")
        if self.cold_start_s < 0:
            raise ValueError("cold_start_s must be non-negative")
        derived = self.micro_batch * self.replicas
        if self.global_capacity is None:
            object.__setattr__(self, "global_capacity", derived)
        elif self.global_capacity != derived:
            raise ValueError(
                f"global_capacity must equal micro_batch x replicas "
                f"({self.micro_batch} x {self.replicas} = {derived}), "
                f"got {self.global_capacity}")

    def capacity_at(self, replicas: int) -> int:
        """Global capacity of a fleet resized to ``replicas`` servers."""
        if not self.min_replicas <= replicas <= self.max_replicas:
            raise ValueError(f"replicas {replicas} outside "
                             f"[{self.min_replicas}, {self.max_replicas}]")
        return self.micro_batch * replicas


class AutoScaler:
    """Watches windowed p95 latency against an SLO; resizes the fleet.

    Construct once with the policy knobs; the engine calls :meth:`bind`
    at the start of every run (resetting all per-run state), wires
    :meth:`record_response` to every group's ``on_serviced`` hook, and
    calls :meth:`observe` for every released job.  Decisions are
    scheduled as :class:`~repro.serving.events.ScaleEvent`\\ s (plus
    ``"split"`` / ``"merge"``
    :class:`~repro.serving.events.MigrationEvent`\\ s in sharded mode)
    and applied by this actor when they fire; ``on_migrate`` (wired by
    the engine) prices the handoff rows.

    Parameters
    ----------
    capacity:
        The fleet's :class:`CapacityConfig` — initial size, bounds,
        cold-start price, micro-batch units.
    slo_p95_s:
        The SLO: window p95 response above this scales up (one server
        per decision).
    scale_window_s:
        Rolling measurement window in event-loop seconds.  Only
        responses *completed* inside the window feed the percentile —
        the controller never peeks at in-flight futures.
    low_band_frac:
        The band's lower edge as a fraction of ``slo_p95_s``: p95 at or
        below ``low_band_frac * slo_p95_s`` scales down.  The gap
        between the edges is the hysteresis dead band.
    cooldown_windows:
        After any scale decision, this many windows must close before
        the next decision — capacity changes need a window of settled
        measurements before they can be judged.
    """

    def __init__(self, capacity: CapacityConfig, slo_p95_s: float,
                 scale_window_s: float, low_band_frac: float = 0.5,
                 cooldown_windows: int = 1):
        if not isinstance(capacity, CapacityConfig):
            raise TypeError(f"capacity must be a CapacityConfig, "
                            f"got {type(capacity).__name__}")
        if slo_p95_s <= 0:
            raise ValueError("slo_p95_s must be positive")
        if scale_window_s <= 0:
            raise ValueError("scale_window_s must be positive")
        if not 0.0 <= low_band_frac < 1.0:
            raise ValueError("low_band_frac must be in [0, 1)")
        if cooldown_windows < 0:
            raise ValueError("cooldown_windows must be non-negative")
        self.capacity = capacity
        self.slo_p95_s = float(slo_p95_s)
        self.scale_window_s = float(scale_window_s)
        self.low_band_frac = float(low_band_frac)
        self.cooldown_windows = int(cooldown_windows)
        self._bound = False

    # ------------------------------------------------------------------ #
    def bind(self, sched: EventScheduler, groups: Sequence[ServerGroup],
             router=None, cache=None,
             on_migrate: Callable[[MigrationEvent], None] | None = None
             ) -> None:
        """Attach to one run, resetting all per-run state.

        ``router=None`` selects pool mode (one K-server group, resized
        in place); a router selects sharded mode (``max_replicas``
        one-server stations, resized by ownership splits/merges).
        ``cache`` is the run's memsync cache; ``on_migrate`` the
        engine's handoff-pricing hook.
        """
        groups = list(groups)
        if router is None:
            if len(groups) != 1:
                raise ValueError("pool-mode autoscaling takes exactly one "
                                 "K-server group")
            if groups[0].num_servers != self.capacity.replicas:
                raise ValueError(
                    f"pool group has {groups[0].num_servers} servers but "
                    f"capacity.replicas is {self.capacity.replicas}")
        else:
            if len(groups) != self.capacity.max_replicas:
                raise ValueError(
                    f"sharded autoscaling needs one station per fleet "
                    f"slot: {self.capacity.max_replicas} groups, got "
                    f"{len(groups)}")
            if router.placement.replicas:
                raise ValueError(
                    "sharded autoscaling requires an unreplicated "
                    "placement: a replica on a merged-away shard would "
                    "keep receiving its vertices' mail")
            if len(router.assignment) and \
                    int(router.assignment.max()) >= self.capacity.replicas:
                raise ValueError(
                    "initial assignment references a shard outside the "
                    "initial active set [0, capacity.replicas)")
        self._sched = sched
        self._groups = groups
        self._router = router
        self._cache = cache
        self._on_migrate = on_migrate
        self.initial_servers = self.capacity.replicas
        self.fleet_size = self.capacity.replicas
        self._pending: list[tuple[float, float]] = []   # (finish, response)
        self._window_start: float | None = None
        self._window_index = 0
        self._cooldown_until = 0
        self.scale_log: list[ScaleEvent] = []
        self.migration_log: list[MigrationEvent] = []
        self.handoff_rows = 0
        if router is not None:
            self._heat = np.zeros(router.num_nodes, dtype=np.int64)
            self._busy_mark = np.zeros(len(groups))
        self._bound = True

    @property
    def scale_ups(self) -> int:
        return len([ev for ev in self.scale_log if ev.kind == "up"])

    @property
    def scale_downs(self) -> int:
        return len([ev for ev in self.scale_log if ev.kind == "down"])

    # ------------------------------------------------------------------ #
    def record_response(self, t_finish: float, response_s: float) -> None:
        """Latency feed, wired to the groups' ``on_serviced`` hook.

        Samples are recorded at commit time but carry their finish
        instant; a window's percentile only sees responses that have
        actually completed by the window close.
        """
        self._pending.append((float(t_finish), float(response_s)))

    def observe(self, t: float, batch=None) -> None:
        """Account one released job; evaluate the band at window close."""
        if not self._bound:
            raise RuntimeError("bind() the autoscaler to a run first")
        if self._window_start is None:
            self._open_window(t)
        if self._router is not None and batch is not None:
            np.add.at(self._heat, batch.src, 1)
            np.add.at(self._heat, batch.dst, 1)
        if t - self._window_start >= self.scale_window_s:
            self._evaluate(t)
            self._window_index += 1
            self._open_window(t)

    def _open_window(self, t: float) -> None:
        self._window_start = t
        if self._router is not None:
            self._heat[:] = 0
            self._busy_mark = np.array([g.busy_s for g in self._groups])

    # ------------------------------------------------------------------ #
    def _evaluate(self, t: float) -> None:
        done = [r for f, r in self._pending if f <= t]
        self._pending = [(f, r) for f, r in self._pending if f > t]
        if not done:
            return          # nothing completed: no evidence either way
        if self._window_index < self._cooldown_until:
            return          # inside the post-decision cooldown
        p95 = float(np.percentile(np.sort(np.asarray(done)), 95))
        if p95 > self.slo_p95_s \
                and self.fleet_size < self.capacity.max_replicas:
            self._scale(t, "up", "slo-breach")
        elif p95 <= self.low_band_frac * self.slo_p95_s \
                and self.fleet_size > self.capacity.min_replicas:
            self._scale(t, "down", "slo-slack")

    def _window_util(self, t: float) -> np.ndarray:
        """Per-station utilization over the closing window."""
        span = max(t - self._window_start, 0.0)
        if span <= 0:
            return np.zeros(len(self._groups))
        busy = np.array([g.busy_s for g in self._groups]) - self._busy_mark
        return busy / span

    def _scale(self, t: float, kind: str, reason: str) -> None:
        moves: list[tuple[int, int, int]] = []      # (vertex, from, to)
        if self._router is None:
            shard = self._groups[0].gid
        elif kind == "up":
            shard = self.fleet_size                  # activate next slot
            moves = self._plan_split(t, shard)
        else:
            shard = self.fleet_size - 1              # drain highest slot
            moves = self._plan_merge(t, shard)
        rows = len(moves) * HANDOFF_ROWS_PER_VERTEX
        after = self.fleet_size + (1 if kind == "up" else -1)
        ev = ScaleEvent(t=t, kind=kind, shard=int(shard),
                        servers_before=self.fleet_size, servers_after=after,
                        rows=rows, reason=reason)
        # The ScaleEvent is scheduled first, the split/merge migrations
        # after it at the same (t, _MIGRATE) key: seq order guarantees
        # the fleet-size change lands before the ownership moves, and
        # all of it before the next same-instant flush routes.
        self._sched.schedule(t, _MIGRATE, ev, self._apply_scale)
        self.scale_log.append(ev)
        for v, frm, to in moves:
            mev = MigrationEvent(t=t, vertex=int(v), from_shard=int(frm),
                                 to_shard=int(to),
                                 rows=HANDOFF_ROWS_PER_VERTEX,
                                 reason="split" if kind == "up" else "merge")
            self._sched.schedule(t, _MIGRATE, mev, self._apply_migration)
            self.migration_log.append(mev)
        self._cooldown_until = self._window_index + 1 + self.cooldown_windows

    def _plan_split(self, t: float, target: int) -> list[tuple[int, int, int]]:
        """Donor = hottest active station by window utilization; move the
        hotter half of its measured-hot vertices onto the new station
        (heat descending, vertex id breaking ties — deterministic)."""
        util = self._window_util(t)[:self.fleet_size]
        donor = int(np.argmax(util))
        assignment = self._router.assignment
        owned = np.flatnonzero(assignment == donor)
        hot = owned[self._heat[owned] > 0]
        if len(hot):
            order = np.lexsort((hot, -self._heat[hot]))
            chosen = hot[order][:(len(hot) + 1) // 2]
        else:
            # No measured heat this window: split the ownership evenly by
            # id so the new station still takes half the future load.
            chosen = owned[:(len(owned) + 1) // 2]
        return [(int(v), donor, target) for v in chosen]

    def _plan_merge(self, t: float, drained: int) -> list[tuple[int, int, int]]:
        """Move everything the drained station owns onto the coolest
        surviving active station (utilization ascending, id breaking
        ties).  Owning nothing, the drained station never receives
        another sub-job from the router's split."""
        util = self._window_util(t)[:drained]
        target = int(np.argmin(util))
        owned = np.flatnonzero(self._router.assignment == drained)
        return [(int(v), drained, target) for v in owned]

    # ------------------------------------------------------------------ #
    def _apply_scale(self, ev: ScaleEvent) -> None:
        if ev.servers_before != self.fleet_size:
            raise RuntimeError(
                f"scale event expected a fleet of {ev.servers_before} but "
                f"found {self.fleet_size}: fleet size changed between "
                f"decision and application")
        self.fleet_size = ev.servers_after
        if self._router is None:
            if ev.kind == "up":
                self._groups[0].scale_up(ev.t, self.capacity.cold_start_s)
            else:
                self._groups[0].scale_down(ev.t)
        # Sharded stations are fixed one-server groups: activation and
        # drain are purely ownership matters, applied by the split/merge
        # MigrationEvents scheduled right behind this event.

    def _apply_migration(self, ev: MigrationEvent) -> None:
        """Identical contract to the rebalancer's apply: consume the
        current owner, transfer coherence ownership, price the rows."""
        owner = int(self._router.assignment[ev.vertex])
        if owner != ev.from_shard:
            raise RuntimeError(
                f"split/merge of vertex {ev.vertex} expected owner "
                f"{ev.from_shard} but found {owner}: ownership changed "
                f"between decision and application")
        self._router.migrate([ev.vertex], ev.to_shard)
        if self._cache is not None:
            self._cache.transfer_ownership([ev.vertex], [ev.from_shard],
                                           ev.to_shard)
        self.handoff_rows += ev.rows
        if self._on_migrate is not None:
            self._on_migrate(ev)

    # ------------------------------------------------------------------ #
    def report_block(self, t0: float, makespan_s: float) -> dict:
        """The ``ServingReport.scaling`` block for one finished run.

        ``server_seconds`` is the piecewise-constant integral of the
        active fleet size over ``[t0, t0 + makespan_s]`` replayed from
        the scale log (stable loop accumulation, in event order) — the
        quantity the diurnal bench compares against static peak
        provisioning (``peak_servers * makespan``).
        """
        end = t0 + makespan_s
        fleet = self.initial_servers
        peak = fleet
        prev_t = t0
        server_seconds = 0.0
        for ev in self.scale_log:
            cut = min(max(float(ev.t), t0), end)
            server_seconds += fleet * (cut - prev_t)
            prev_t = cut
            fleet = ev.servers_after
            peak = max(peak, fleet)
        server_seconds += fleet * max(end - prev_t, 0.0)
        mean = server_seconds / makespan_s if makespan_s > 0 \
            else float(fleet)
        return {"autoscale": "slo-p95",
                "slo_p95_s": self.slo_p95_s,
                "scale_window_s": self.scale_window_s,
                "low_band_frac": self.low_band_frac,
                "micro_batch": self.capacity.micro_batch,
                "global_capacity": self.capacity.global_capacity,
                "cold_start_s": self.capacity.cold_start_s,
                "min_servers": self.capacity.min_replicas,
                "max_servers": self.capacity.max_replicas,
                "initial_servers": self.initial_servers,
                "final_servers": self.fleet_size,
                "peak_servers": peak,
                "mean_servers": mean,
                "server_seconds": server_seconds,
                "scale_ups": self.scale_ups,
                "scale_downs": self.scale_downs,
                "handoff_rows": self.handoff_rows}
