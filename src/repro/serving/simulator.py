"""Event-driven multi-server FIFO queue simulation.

Generalizes — and bug-fixes — the single-server replay loop that used to
live inline in ``pipeline/queueing.py``:

* **Utilization** is busy time over ``num_servers * makespan`` where the
  makespan extends to the *last service completion*, not the last arrival.
  The old accounting dropped the trailing service, so a stable system could
  report utilization > 1, and a single-window stream divided by ~0.
* **Queue capacity** bounds the *waiting* jobs only; the job in service no
  longer counts against the ingest buffer (the old off-by-one made a
  capacity-``c`` queue drop at backlog ``c - 1``).
* **Stability** is judged by offered load (arrival rate × mean service /
  servers), which stays meaningful when the trace ends with a backlog and
  utilization saturates at 1.

Service times come from a caller-supplied ``service_fn`` invoked in
admission order, so backends that advance functional vertex state as a side
effect (the engine protocol documented in :mod:`repro.pipeline`) see the
stream in the same order a real deployment would.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

__all__ = ["ServedJob", "SimulationResult", "simulate_queue"]


@dataclass(frozen=True)
class ServedJob:
    """One admitted job's timeline through the queue."""

    index: int          # position in the arrival sequence
    t_arrive: float
    t_begin: float
    t_finish: float
    service_s: float
    server: int

    @property
    def wait_s(self) -> float:
        return self.t_begin - self.t_arrive

    @property
    def response_s(self) -> float:
        return self.t_finish - self.t_arrive


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of a queue simulation, with aggregate statistics."""

    served: tuple[ServedJob, ...]
    dropped_indices: tuple[int, ...]
    num_servers: int
    busy_s: float
    makespan_s: float       # first arrival -> last service completion
    utilization: float      # busy / (num_servers * makespan), in [0, 1]
    offered_load: float     # arrival rate * mean service / num_servers
    max_queue_depth: int    # waiting jobs only (in-service excluded)

    @property
    def jobs(self) -> int:
        return len(self.served)

    @property
    def dropped(self) -> int:
        return len(self.dropped_indices)

    @property
    def stable(self) -> bool:
        """A sustainable deployment keeps offered load below 1."""
        return self.offered_load < 1.0

    # ------------------------------------------------------------------ #
    def waits(self) -> np.ndarray:
        return np.array([j.wait_s for j in self.served])

    def responses(self) -> np.ndarray:
        return np.array([j.response_s for j in self.served])

    @property
    def mean_wait_s(self) -> float:
        return float(self.waits().mean()) if self.served else 0.0

    @property
    def mean_response_s(self) -> float:
        return float(self.responses().mean()) if self.served else 0.0

    @property
    def p95_response_s(self) -> float:
        return float(np.percentile(self.responses(), 95)) if self.served \
            else 0.0

    @property
    def p99_response_s(self) -> float:
        return float(np.percentile(self.responses(), 99)) if self.served \
            else 0.0


def simulate_queue(arrivals: Sequence[tuple[float, Any]],
                   service_fn: Callable[[Any], float],
                   num_servers: int = 1,
                   queue_capacity: int | None = None) -> SimulationResult:
    """Run ``arrivals`` through ``num_servers`` identical FIFO servers.

    Parameters
    ----------
    arrivals:
        ``(t_arrive, payload)`` pairs in non-decreasing time order.
    service_fn:
        Called once per *admitted* job, in admission order, returning the
        service time in seconds.  Dropped jobs are never serviced, so
        functional side effects match what a bounded ingest buffer admits.
    num_servers:
        Identical servers pulling from one FIFO queue (K accelerators, or
        the dies of a multi-die part treated as independent workers).
    queue_capacity:
        Maximum *waiting* jobs; an arrival finding the buffer full is
        dropped.  ``None`` means unbounded.
    """
    if num_servers <= 0:
        raise ValueError("num_servers must be positive")
    if queue_capacity is not None and queue_capacity < 0:
        raise ValueError("queue_capacity must be non-negative")
    arr = list(arrivals)
    if any(arr[i][0] > arr[i + 1][0] for i in range(len(arr) - 1)):
        raise ValueError("arrivals must be sorted by time")

    free: list[tuple[float, int]] = [(0.0, s) for s in range(num_servers)]
    waiting: list[float] = []       # begin times of queued (not started) jobs
    served: list[ServedJob] = []
    dropped: list[int] = []
    busy = 0.0
    max_depth = 0
    for i, (t_arrive, payload) in enumerate(arr):
        # Jobs whose service has begun by now have left the buffer.
        while waiting and waiting[0] <= t_arrive:
            heapq.heappop(waiting)
        # A full buffer only rejects jobs that would have to wait: with an
        # idle server the job starts immediately and never occupies a slot
        # (so ``queue_capacity=0`` models a bufferless loss system, not a
        # server that drops everything).
        if queue_capacity is not None and len(waiting) >= queue_capacity \
                and free[0][0] > t_arrive:
            dropped.append(i)
            continue
        service = float(service_fn(payload))
        if service < 0:
            raise ValueError("service_fn returned a negative service time")
        free_t, srv = heapq.heappop(free)
        begin = max(free_t, t_arrive)
        finish = begin + service
        heapq.heappush(free, (finish, srv))
        busy += service
        if begin > t_arrive:
            heapq.heappush(waiting, begin)
            max_depth = max(max_depth, len(waiting))
        served.append(ServedJob(index=i, t_arrive=t_arrive, t_begin=begin,
                                t_finish=finish, service_s=service,
                                server=srv))

    if not served:
        return SimulationResult(served=(), dropped_indices=tuple(dropped),
                                num_servers=num_servers, busy_s=0.0,
                                makespan_s=0.0, utilization=0.0,
                                offered_load=0.0, max_queue_depth=max_depth)

    t_first = arr[0][0]
    makespan = max(max(j.t_finish for j in served) - t_first, 0.0)
    utilization = busy / (num_servers * makespan) if makespan > 0 else \
        (1.0 if busy > 0 else 0.0)
    n = len(arr)
    span = arr[-1][0] - t_first
    mean_service = busy / len(served)
    if n <= 1:
        # One job is not an arrival process; it cannot overload anything.
        offered = 0.0
    elif span <= 0:
        offered = float("inf")
    else:
        offered = ((n - 1) / span) * mean_service / num_servers
    return SimulationResult(served=tuple(served),
                            dropped_indices=tuple(dropped),
                            num_servers=num_servers, busy_s=busy,
                            makespan_s=makespan, utilization=utilization,
                            offered_load=offered, max_queue_depth=max_depth)
