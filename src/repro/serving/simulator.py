"""Multi-server FIFO queue simulation — a façade over the event core.

Historically this module owned a standalone arrival-driven loop; the loop
now lives in :mod:`repro.serving.events` as a :class:`ServerGroup` actor on
the shared :class:`EventScheduler`, so one queue implementation serves the
single-queue replay, the sharded engine, the replica pool, and the hybrid
topology alike.  :func:`simulate_queue` keeps its exact historical
contract (same :class:`SimulationResult` fields, same tie-breaking, same
``service_fn`` call order — property-tested against a reference
implementation in ``tests/unit/test_events.py``):

* **Utilization** is busy time over ``num_servers * makespan`` where the
  makespan extends to the *last service completion*, not the last arrival.
* **Queue capacity** bounds the *waiting* jobs only; the job in service
  does not count against the ingest buffer.
* **Stability** is judged by offered load (arrival rate × mean service /
  servers), which stays meaningful when the trace ends with a backlog and
  utilization saturates at 1.

Service times come from a caller-supplied ``service_fn`` invoked in
admission order, so backends that advance functional vertex state as a side
effect (the engine protocol documented in :mod:`repro.pipeline`) see the
stream in the same order a real deployment would.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from .events import (_ARRIVAL, EventScheduler, ServedJob, ServerGroup,
                     SimulationResult)

__all__ = ["ServedJob", "SimulationResult", "simulate_queue"]


def simulate_queue(arrivals: Sequence[tuple[float, Any]],
                   service_fn: Callable[[Any], float],
                   num_servers: int = 1,
                   queue_capacity: int | None = None) -> SimulationResult:
    """Run ``arrivals`` through ``num_servers`` identical FIFO servers.

    Parameters
    ----------
    arrivals:
        ``(t_arrive, payload)`` pairs in non-decreasing time order.
    service_fn:
        Called once per *admitted* job, in admission order, returning the
        service time in seconds.  Dropped jobs are never serviced, so
        functional side effects match what a bounded ingest buffer admits.
    num_servers:
        Identical servers pulling from one FIFO queue (K accelerators, or
        the dies of a multi-die part treated as independent workers).
    queue_capacity:
        Maximum *waiting* jobs; an arrival finding the buffer full is
        dropped.  ``None`` means unbounded.
    """
    if num_servers <= 0:
        raise ValueError("num_servers must be positive")
    if queue_capacity is not None and queue_capacity < 0:
        raise ValueError("queue_capacity must be non-negative")
    arr = list(arrivals)
    if any(arr[i][0] > arr[i + 1][0] for i in range(len(arr) - 1)):
        raise ValueError("arrivals must be sorted by time")

    sched = EventScheduler()
    group = ServerGroup(0, num_servers, service_fn, sched,
                        queue_capacity=queue_capacity)
    for t, payload in arr:
        sched.schedule(t, _ARRIVAL, None, lambda _e, _t=t, _p=payload:
                       group.submit(_t, _p))
    sched.run()
    return group.finalize()
