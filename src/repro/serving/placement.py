"""Placement policies: who owns (and who mirrors) each vertex.

PR 1's :class:`~repro.serving.router.ShardRouter` hard-coded one topology —
a static multiplicative-hash partition of the vertex space.  That spreads
*vertex counts* evenly but says nothing about *load*: a handful of Zipf-hot
vertices can saturate one shard while its neighbors idle, and the paper's
one-stream-one-device evaluation never sees it.  This module turns the
partition into a policy space.

Vocabulary
----------
:class:`VertexHeat`
    The workload signal: per-vertex incident-edge counts over a stream
    range, split into source-side counts (the local work a vertex drags to
    its owner) and destination-side counts (the fan-in that generates
    mailbox forwards).
:class:`Placement`
    The decision: a primary owner per vertex plus optional replica shards.
    The router consumes this; every holder of a vertex receives every edge
    incident to it, so replica tables are exactly as fresh as owner tables
    (the same mailbox guarantee PR 1 gave owners).
:class:`PlacementPolicy`
    The protocol: ``place(heat, num_shards, profile=None) -> Placement``.
    ``profile`` is the measured per-shard feedback (a sequence with
    ``.utilization`` / ``.offered_load``, i.e. ``ShardStats``) for policies
    that react to a profiling run.

Policies
--------
:class:`StaticHashPlacement`
    PR 1's behavior, extracted: Fibonacci-hash the vertex id.  The baseline
    every other policy starts from.
:class:`LoadAwareRebalance`
    *Two-pass* profile-guided migration: shards whose measured utilization
    exceeds a threshold donate their hottest vertices to the coolest shards
    until the modeled utilization falls below the threshold (or no move
    helps).  The same donate-to-coolest rule also runs *online* — reacting
    mid-run instead of after a profiling pass — as
    :class:`~repro.serving.rebalance.OnlineRebalancer`.
:class:`ReplicatedReadMostly`
    Replicates the highest-fanout read-mostly vertices (destination-heavy
    in the interaction stream) onto extra shards.  Replica maintenance is
    priced honestly: each incident edge is delivered to every holder, so
    ``ServingReport.replication_factor`` counts one copy per replica.  The
    payoff is read locality/freshness — replica rows are exact, closing the
    stale-mirror gap for the replicated (hot) vertices — plus failover
    headroom: a replica is a promotable full copy
    (:meth:`~repro.serving.router.ShardRouter.fail_over`).  Replica shards
    are chosen from a measured traffic matrix when one is supplied
    (:func:`replica_shards_from_traffic`), and :meth:`refresh`
    de-replicates vertices that cooled out of the hot set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

__all__ = [
    "VertexHeat", "Placement", "PlacementPolicy",
    "StaticHashPlacement", "LoadAwareRebalance", "ReplicatedReadMostly",
    "HotColdHybrid",
    "PLACEMENT_POLICIES", "make_policy", "hash_assignment",
    "padded_hash_placement", "replica_shards_from_traffic",
]

# 64-bit golden-ratio multiplier (Fibonacci hashing): cheap, deterministic,
# and spreads consecutive ids across shards.  (Moved here from router.py —
# the hash *is* the static placement policy.)
_HASH_MULT = np.uint64(0x9E3779B97F4A7C15)


def hash_assignment(num_nodes: int, num_shards: int) -> np.ndarray:
    """PR 1's static partition: multiplicative hash of the vertex id."""
    if num_shards <= 0:
        raise ValueError("num_shards must be positive")
    ids = np.arange(num_nodes, dtype=np.uint64)
    with np.errstate(over="ignore"):
        hashed = (ids * _HASH_MULT) >> np.uint64(32)
    return (hashed % np.uint64(num_shards)).astype(np.int64)


def padded_hash_placement(num_nodes: int, active_shards: int,
                          num_shards: int) -> "Placement":
    """An elastic fleet's initial layout: hash over the active prefix.

    Vertices are hash-partitioned across the first ``active_shards``
    stations, but the placement declares ``num_shards`` (the fleet's
    *maximum*) so routers, mailboxes and the memsync cache are sized for
    every station the :class:`~repro.serving.autoscale.AutoScaler` may
    ever activate.  The inactive tail ``[active_shards, num_shards)``
    owns nothing until a split migrates vertices into it — and a station
    owning nothing never receives a sub-job or a mail row, so padding is
    free until used.
    """
    if not 0 < active_shards <= num_shards:
        raise ValueError("need 0 < active_shards <= num_shards")
    return Placement(assignment=hash_assignment(num_nodes, active_shards),
                     num_shards=num_shards, policy="hash")


def replica_shards_from_traffic(traffic: np.ndarray, owner: int,
                                n_extra: int) -> tuple[int, ...]:
    """Pick the ``n_extra`` replica shards a vertex of ``owner`` wants most.

    ``traffic`` is a measured ``(S, S)`` mail matrix — row = sending shard,
    column = receiving shard (:meth:`Placement.mail_matrix`, or the live
    :attr:`~repro.serving.router.CrossShardMailbox.counts`).  The shards
    that receive the most mail *from the owner* are the shards whose jobs
    most often touch state owned there, so placing the copies where the
    reads actually land maximizes what a replica buys: exact local rows on
    the consuming shard — and, after a failure, a promotable full copy on
    the shard most entangled with the dead one.  Ranking is by received
    mail descending, shard id ascending (deterministic).
    """
    traffic = np.asarray(traffic)
    if traffic.ndim != 2 or traffic.shape[0] != traffic.shape[1]:
        raise ValueError("traffic must be a square (S, S) matrix")
    num_shards = traffic.shape[0]
    owner = int(owner)
    if not 0 <= owner < num_shards:
        raise ValueError("owner shard out of range")
    if n_extra <= 0 or num_shards < 2:
        return ()
    others = np.array([s for s in range(num_shards) if s != owner])
    order = np.lexsort((others, -traffic[owner, others]))
    return tuple(int(others[i]) for i in order[:n_extra])


# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class VertexHeat:
    """Per-vertex workload counts over a stream range.

    ``src_count[v]`` edges leave ``v`` (local work on ``v``'s owner);
    ``dst_count[v]`` edges enter ``v`` (fan-in, the mailbox-forward driver).
    """

    src_count: np.ndarray
    dst_count: np.ndarray

    def __post_init__(self):
        if self.src_count.shape != self.dst_count.shape:
            raise ValueError("src_count/dst_count shape mismatch")

    @classmethod
    def from_graph(cls, graph, start: int = 0,
                   end: int | None = None) -> "VertexHeat":
        """Measure heat over edges ``[start, end)`` of ``graph``."""
        end = graph.num_edges if end is None else min(end, graph.num_edges)
        n = graph.num_nodes
        return cls(
            src_count=np.bincount(graph.src[start:end], minlength=n)
            .astype(np.int64),
            dst_count=np.bincount(graph.dst[start:end], minlength=n)
            .astype(np.int64))

    @property
    def num_nodes(self) -> int:
        return len(self.src_count)

    @property
    def degree(self) -> np.ndarray:
        """Total incident edges per vertex."""
        return self.src_count + self.dst_count

    @property
    def read_ratio(self) -> np.ndarray:
        """Fraction of incident edges entering the vertex (fan-in share).

        Destination-heavy vertices are the "read-mostly" population: their
        state is consulted by many interactions they do not initiate.
        Isolated vertices report 0.
        """
        deg = self.degree
        with np.errstate(invalid="ignore", divide="ignore"):
            ratio = np.where(deg > 0, self.dst_count / np.maximum(deg, 1),
                             0.0)
        return ratio


# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Placement:
    """A vertex -> shard mapping with optional replication.

    ``assignment[v]`` is the primary owner; ``replicas`` maps a vertex to
    the *extra* shards holding a full copy of its state.  Every holder
    (primary + replicas) receives every edge incident to the vertex through
    the mailbox, so replica tables are exact, not stale mirrors.
    """

    assignment: np.ndarray
    num_shards: int
    replicas: dict[int, tuple[int, ...]] = field(default_factory=dict)
    policy: str = "hash"
    moved_vertices: tuple[int, ...] = ()    # migrations applied (rebalance)

    def __post_init__(self):
        if self.num_shards <= 0:
            raise ValueError("num_shards must be positive")
        if len(self.assignment) and (self.assignment.min() < 0 or
                                     self.assignment.max() >= self.num_shards):
            raise ValueError("assignment references a shard out of range")
        for v, extra in self.replicas.items():
            if not 0 <= v < len(self.assignment):
                raise ValueError(f"replica vertex {v} out of range")
            owner = int(self.assignment[v])
            if owner in extra or len(set(extra)) != len(extra):
                raise ValueError(
                    f"replica set of vertex {v} must be distinct non-owner "
                    f"shards (owner {owner}, got {extra})")
            if any(s < 0 or s >= self.num_shards for s in extra):
                raise ValueError(f"replica shard out of range for vertex {v}")

    @property
    def num_nodes(self) -> int:
        return len(self.assignment)

    @property
    def replicated_vertices(self) -> int:
        """Vertices held by more than one shard."""
        return sum(1 for extra in self.replicas.values() if extra)

    @property
    def replica_copies(self) -> int:
        """Extra copies across all vertices (a vertex on r shards adds r-1)."""
        return sum(len(extra) for extra in self.replicas.values())

    def holders(self, vertex: int) -> tuple[int, ...]:
        """All shards holding ``vertex`` (primary first, replicas sorted)."""
        return (int(self.assignment[vertex]),
                *self.replicas.get(int(vertex), ()))

    def holder_matrix(self) -> np.ndarray:
        """Boolean ``(num_shards, num_nodes)`` membership matrix."""
        member = np.zeros((self.num_shards, self.num_nodes), dtype=bool)
        member[self.assignment, np.arange(self.num_nodes)] = True
        for v, extra in self.replicas.items():
            member[list(extra), v] = True
        return member

    def mail_matrix(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """Predicted mailbox deliveries ``[from_shard, to_shard]``.

        Mirrors the router exactly: edge ``(u, v)`` is processed locally on
        ``assignment[u]`` and delivered to every *other* holder of ``u`` or
        ``v``.  Used to re-price die crossings after a placement change
        (see :func:`repro.hw.plan_shard_dies_traffic_aware`).
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        member = self.holder_matrix()
        s_src = self.assignment[src]
        m = np.zeros((self.num_shards, self.num_shards), dtype=np.int64)
        for shard in range(self.num_shards):
            to_here = (member[shard, src] | member[shard, dst]) \
                & (s_src != shard)
            if to_here.any():
                m[:, shard] += np.bincount(s_src[to_here],
                                           minlength=self.num_shards)
        return m


# --------------------------------------------------------------------------- #
@runtime_checkable
class PlacementPolicy(Protocol):
    """Decides the vertex -> shard placement from workload heat.

    ``profile`` is optional measured feedback: a per-shard sequence exposing
    ``utilization`` and ``offered_load`` (``ShardStats`` satisfies it).
    Policies that do not use feedback must accept and ignore it.
    """

    name: str

    def place(self, heat: VertexHeat, num_shards: int,
              profile: Sequence | None = None) -> Placement:
        ...


class StaticHashPlacement:
    """PR 1's static multiplicative-hash partition (the policy baseline)."""

    name = "hash"

    def place(self, heat: VertexHeat, num_shards: int,
              profile: Sequence | None = None) -> Placement:
        return Placement(assignment=hash_assignment(heat.num_nodes,
                                                    num_shards),
                         num_shards=num_shards, policy=self.name)


class LoadAwareRebalance:
    """Migrate the hottest vertices off shards running above a threshold.

    This is the **two-pass** (profile-then-redeploy) rebalancer: it needs a
    whole profiling run before it can act, and the migration happens at
    deployment time, not during a run.  For traffic whose hot set drifts
    *mid-stream*, use the online path instead —
    :class:`~repro.serving.rebalance.OnlineRebalancer` applies the same
    donate-to-coolest rule per measurement window during the run, with the
    state handoff priced as :class:`~repro.serving.events.MigrationEvent`
    traffic.

    Greedy profile-guided migration: while some shard's modeled utilization
    exceeds ``util_threshold``, move the hottest not-yet-moved vertex from
    the hottest shard to the coolest one.  The model prices a vertex by its
    heat share: moving vertex ``v`` lowers the donor by
    ``load(v) * donor_rate`` and raises the recipient by
    ``load(v) * recipient_rate``, where each shard's rate (utilization per
    unit of heat) comes from the profile — so heterogeneous shard speeds
    are respected.  A move that would leave the recipient no better than
    the donor started is refused, which makes the loop terminate.

    ``profile`` utilization saturates at 1.0 under overload; for saturated
    shards the (uncapped) ``offered_load`` is used instead so the model
    still sees how far past capacity a donor is.

    Without a profile the policy degrades to the hash baseline — there is
    nothing to react to.
    """

    name = "rebalance"

    def __init__(self, util_threshold: float = 0.75,
                 max_migrations: int = 64, mail_weight: float = 0.5):
        if not 0.0 < util_threshold:
            raise ValueError("util_threshold must be positive")
        if max_migrations < 0:
            raise ValueError("max_migrations must be non-negative")
        self.util_threshold = float(util_threshold)
        self.max_migrations = int(max_migrations)
        self.mail_weight = float(mail_weight)

    def place(self, heat: VertexHeat, num_shards: int,
              profile: Sequence | None = None) -> Placement:
        base = hash_assignment(heat.num_nodes, num_shards)
        if profile is None:
            return Placement(assignment=base, num_shards=num_shards,
                             policy=self.name)
        if len(profile) != num_shards:
            raise ValueError("profile must cover every shard")

        util = np.array([float(s.utilization) for s in profile])
        offered = np.array([float(getattr(s, "offered_load", 0.0))
                            for s in profile])
        # Saturated shards hide their true load behind util == 1; offered
        # load is the uncapped estimate of the same quantity.
        est = np.where(util >= 0.999, np.maximum(util, offered), util)

        assignment = base.copy()
        # A vertex costs its owner local work per source edge and mailbox
        # work (on some shard) per destination edge.
        load_v = heat.src_count + self.mail_weight * heat.dst_count
        shard_load = np.bincount(assignment, weights=load_v,
                                 minlength=num_shards)
        with np.errstate(invalid="ignore", divide="ignore"):
            rate = np.where(shard_load > 0, est / np.maximum(shard_load, 1e-12),
                            0.0)
        loaded = shard_load > 0
        if loaded.any():
            rate[~loaded] = rate[loaded].mean()

        moved: list[int] = []
        immovable: set[int] = set()
        # Donors are the shards the *profile* measured above the threshold
        # — a recipient that warms up during the greedy redistribution is
        # not re-donated (that would cascade moves the measurement never
        # justified).
        donors_allowed = est > self.util_threshold
        while len(moved) < self.max_migrations:
            masked = np.where(donors_allowed, est, -np.inf)
            donor = int(np.argmax(masked))
            if masked[donor] <= self.util_threshold:
                break
            on_donor = (assignment == donor)
            candidates = np.where(on_donor, load_v, -1.0)
            for v in immovable:
                if assignment[v] == donor:
                    candidates[v] = -1.0
            v = int(np.argmax(candidates))
            if candidates[v] <= 0:
                donors_allowed[donor] = False   # exhausted; try next donor
                continue
            recipient = int(np.argmin(est))
            d_after = est[donor] - load_v[v] * rate[donor]
            r_after = est[recipient] + load_v[v] * rate[recipient]
            if max(d_after, r_after) >= est[donor]:
                # The donor's hottest vertex is too big to move; try the
                # next one before giving up on this donor.
                immovable.add(v)
                continue
            assignment[v] = recipient
            est[donor], est[recipient] = d_after, r_after
            moved.append(v)
            immovable.add(v)        # never ping-pong a migrated vertex
        return Placement(assignment=assignment, num_shards=num_shards,
                         policy=self.name, moved_vertices=tuple(moved))


class ReplicatedReadMostly:
    """Replicate the highest-fanin read-mostly vertices onto extra shards.

    Selection: among vertices whose ``read_ratio`` (fan-in share of
    incident edges) is at least ``min_read_ratio``, take the ``top_k`` by
    destination count.  Each selected vertex gains ``copies - 1`` replica
    shards (``copies=None`` replicates onto every shard).  Replica shards
    are **profile-driven** when a measured ``traffic`` matrix is supplied
    — placed on the shards that consume the most owner mail (see
    :func:`replica_shards_from_traffic`) — and round-robin after the owner
    otherwise, so the maintenance traffic spreads deterministically either
    way.

    Cost/benefit contract (tested): every holder receives every incident
    edge, so the report's ``replication_factor`` rises by one count per
    replica per incident edge — and in exchange each replica's neighbor
    rows for the vertex are *exact*, not stale mirrors.

    :meth:`refresh` is the maintenance half of the profile-driven story:
    re-run selection against newly measured heat, replicating vertices
    that heated into the top-k and **de-replicating** vertices that cooled
    out of it.
    """

    name = "replicate"

    def __init__(self, top_k: int = 8, min_read_ratio: float = 0.6,
                 copies: int | None = None):
        if top_k < 0:
            raise ValueError("top_k must be non-negative")
        if not 0.0 <= min_read_ratio <= 1.0:
            raise ValueError("min_read_ratio must be in [0, 1]")
        if copies is not None and copies < 2:
            raise ValueError("copies must be at least 2 (owner + replica)")
        self.top_k = int(top_k)
        self.min_read_ratio = float(min_read_ratio)
        self.copies = copies

    def _replica_sets(self, heat: VertexHeat, assignment: np.ndarray,
                      num_shards: int,
                      traffic: np.ndarray | None) -> dict[int, tuple[int, ...]]:
        replicas: dict[int, tuple[int, ...]] = {}
        if num_shards < 2 or self.top_k == 0:
            return replicas
        eligible = (heat.read_ratio >= self.min_read_ratio) \
            & (heat.dst_count > 0)
        # Stable hot-first order: by fan-in desc, vertex id asc.
        order = np.lexsort((np.arange(heat.num_nodes),
                            -heat.dst_count))
        chosen = [int(v) for v in order if eligible[v]][:self.top_k]
        n_extra = num_shards - 1 if self.copies is None \
            else min(self.copies - 1, num_shards - 1)
        for v in chosen:
            owner = int(assignment[v])
            if traffic is not None:
                extra = replica_shards_from_traffic(traffic, owner, n_extra)
            else:
                extra = tuple((owner + 1 + i) % num_shards
                              for i in range(n_extra))
            if extra:
                replicas[v] = extra
        return replicas

    def place(self, heat: VertexHeat, num_shards: int,
              profile: Sequence | None = None,
              traffic: np.ndarray | None = None) -> Placement:
        assignment = hash_assignment(heat.num_nodes, num_shards)
        replicas = self._replica_sets(heat, assignment, num_shards, traffic)
        return Placement(assignment=assignment, num_shards=num_shards,
                         replicas=replicas, policy=self.name)

    def refresh(self, placement: Placement, heat: VertexHeat,
                traffic: np.ndarray | None = None) -> Placement:
        """Profile-driven replica maintenance between (or after) runs.

        Re-selects the replica set against *measured* heat, keeping
        ownership untouched: vertices now in the eligible top-k gain
        copies (traffic-placed when a measured mail matrix is given), and
        previously replicated vertices that cooled out of the set are
        **de-replicated** — their copies stop costing maintenance mail.
        Returns a new :class:`Placement`; the input is not mutated, so the
        refresh composes with routers holding the old plan.
        """
        if heat.num_nodes != placement.num_nodes:
            raise ValueError("heat covers a different vertex count")
        replicas = self._replica_sets(heat, placement.assignment,
                                      placement.num_shards, traffic)
        return Placement(assignment=placement.assignment.copy(),
                         num_shards=placement.num_shards,
                         replicas=replicas, policy=self.name,
                         moved_vertices=placement.moved_vertices)


class HotColdHybrid:
    """Hot head on dedicated shards, cold tail on the shared pool.

    The crossover table in ``bench_serving_scale`` says partitioned shards
    win marginal-cost-dominated traffic while a shared queue wins the
    overhead-dominated regime — and a skewed stream contains *both*: a few
    hot vertices carry the bulk of the edges (worth fork-join parallelism
    and dedicated state locality) while a long cold tail trickles per-window
    crumbs onto every shard it touches (worth pooling).  This policy makes
    the two regimes coexist in one placement: the ``hot_top_k`` vertices by
    measured heat are spread over ``num_shards - 1`` dedicated shards
    (heaviest-first onto the least-loaded shard, so hot load balances), and
    every cold vertex maps to the **pool pseudo-shard** — the last shard
    index, which the engine's hybrid topology serves with K replicas behind
    one shared queue instead of a dedicated server.

    Routing falls out of the existing :class:`~repro.serving.router.\
ShardRouter` semantics: hot↔hot edges behave exactly like today's sharded
    topology, cold↔cold edges are local to the pool, and cross-regime edges
    travel the same mailbox (priced per die crossing) in either direction.

    Not registered in :data:`PLACEMENT_POLICIES`: the pool pseudo-shard
    only means something to the hybrid topology, so the engine constructs
    this policy when ``topology="hybrid"`` rather than letting
    ``--placement`` pick it for a partitioned fleet.
    """

    name = "hybrid"

    def __init__(self, hot_top_k: int = 16):
        if hot_top_k <= 0:
            raise ValueError("hot_top_k must be positive")
        self.hot_top_k = int(hot_top_k)

    def place(self, heat: VertexHeat, num_shards: int,
              profile: Sequence | None = None) -> Placement:
        """``num_shards`` counts the pool pseudo-shard: the last index is
        the pool, the first ``num_shards - 1`` are dedicated hot shards."""
        if num_shards < 2:
            raise ValueError(
                "hybrid placement needs at least one dedicated hot shard "
                "plus the pool pseudo-shard (num_shards >= 2)")
        hot_shards = num_shards - 1
        degree = heat.degree
        # Stable hot-first order: by heat desc, vertex id asc.
        order = np.lexsort((np.arange(heat.num_nodes), -degree))
        hot = [int(v) for v in order[:self.hot_top_k] if degree[v] > 0]
        assignment = np.full(heat.num_nodes, hot_shards, dtype=np.int64)
        load = np.zeros(hot_shards)
        for v in hot:   # heaviest first onto the least-loaded hot shard
            s = int(np.argmin(load))
            assignment[v] = s
            load[s] += degree[v]
        return Placement(assignment=assignment, num_shards=num_shards,
                         policy=self.name)


# --------------------------------------------------------------------------- #
PLACEMENT_POLICIES = {
    "hash": StaticHashPlacement,
    "rebalance": LoadAwareRebalance,
    "replicate": ReplicatedReadMostly,
}


def make_policy(name: str, **kwargs) -> PlacementPolicy:
    """Construct a placement policy by CLI name."""
    if name not in PLACEMENT_POLICIES:
        raise KeyError(f"unknown placement policy {name!r}; "
                       f"available: {', '.join(sorted(PLACEMENT_POLICIES))}")
    return PLACEMENT_POLICIES[name](**kwargs)
