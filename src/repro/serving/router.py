"""Hash-partitioned vertex sharding with a cross-shard mailbox.

Scaling vertex state beyond one device means splitting the Vertex Memory
Table, Mailbox, and Neighbor Table across shards.  The :class:`ShardRouter`
owns the partition function (a multiplicative hash of the vertex id, so
consecutive user/item id ranges spread evenly) and splits each incoming
edge batch into per-shard sub-batches:

* an edge is *local* to the shard owning its source vertex;
* an edge whose destination lives on a different shard is additionally
  *forwarded* to that shard through the :class:`CrossShardMailbox`, so the
  destination's owner also sees the interaction.

Consequently a shard processes exactly the edges incident to the vertices
it owns, in stream order.  That gives a hard consistency guarantee for the
FIFO neighbor state: a shard's neighbor-table rows for its *owned* vertices
are identical to the unsharded table's rows (asserted by the serving
tests).  Memory rows of non-owned endpoints are stale mirrors — the exact
cross-shard embedding refresh is an open item in ROADMAP.md.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.temporal_graph import EdgeBatch

__all__ = ["ShardBatch", "CrossShardMailbox", "ShardRouter"]

# 64-bit golden-ratio multiplier (Fibonacci hashing): cheap, deterministic,
# and spreads consecutive ids across shards.
_HASH_MULT = np.uint64(0x9E3779B97F4A7C15)


@dataclass(frozen=True)
class ShardBatch:
    """The slice of one job a single shard must process."""

    shard: int
    batch: EdgeBatch            # local + forwarded edges, chronological
    local_edges: int
    mail_edges: int             # edges forwarded in from other shards
    mail_from: np.ndarray       # (mail_edges,) source shard per forwarded edge


class CrossShardMailbox:
    """Accounting for edges forwarded between shards.

    The mailbox is the consistency mechanism: instead of shards reaching
    into each other's state, the owner of a remote endpoint receives the
    edge and applies it to its own tables.  This class tracks the traffic
    matrix so the engine can price die crossings and report the sharding
    overhead.
    """

    def __init__(self, num_shards: int):
        self.num_shards = int(num_shards)
        self.counts = np.zeros((num_shards, num_shards), dtype=np.int64)

    def record(self, from_shards: np.ndarray, to_shard: int) -> None:
        """Record forwarded edges (one per entry of ``from_shards``)."""
        np.add.at(self.counts, (np.asarray(from_shards, dtype=np.int64),
                                int(to_shard)), 1)

    @property
    def total_edges(self) -> int:
        return int(self.counts.sum())


class ShardRouter:
    """Hash-partitions vertices over ``num_shards`` and splits batches."""

    def __init__(self, num_shards: int, num_nodes: int):
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        self.num_shards = int(num_shards)
        self.num_nodes = int(num_nodes)
        ids = np.arange(num_nodes, dtype=np.uint64)
        with np.errstate(over="ignore"):
            hashed = (ids * _HASH_MULT) >> np.uint64(32)
        self.assignment = (hashed % np.uint64(num_shards)).astype(np.int64)

    def shard_of(self, vertices: np.ndarray) -> np.ndarray:
        return self.assignment[np.asarray(vertices, dtype=np.int64)]

    def split(self, batch: EdgeBatch,
              mailbox: CrossShardMailbox | None = None) -> list[ShardBatch]:
        """Partition ``batch`` into per-shard sub-batches.

        Each returned sub-batch preserves stream order.  An intra-shard edge
        appears on exactly one shard; a cross-shard edge appears on both
        endpoint owners (the destination side via the mailbox).  Shards with
        no incident edges are omitted.
        """
        s_src = self.assignment[batch.src]
        s_dst = self.assignment[batch.dst]
        out: list[ShardBatch] = []
        for shard in range(self.num_shards):
            local = s_src == shard
            mail = (s_dst == shard) & ~local
            sel = local | mail
            if not sel.any():
                continue
            sub = EdgeBatch(src=batch.src[sel], dst=batch.dst[sel],
                            t=batch.t[sel], eid=batch.eid[sel],
                            edge_feat=batch.edge_feat[sel])
            mail_from = s_src[mail]
            if mailbox is not None and len(mail_from):
                mailbox.record(mail_from, shard)
            out.append(ShardBatch(shard=shard, batch=sub,
                                  local_edges=int(local.sum()),
                                  mail_edges=int(mail.sum()),
                                  mail_from=mail_from))
        return out
