"""Placement-driven vertex sharding with a cross-shard mailbox.

Scaling vertex state beyond one device means splitting the Vertex Memory
Table, Mailbox, and Neighbor Table across shards.  The :class:`ShardRouter`
owns the *routing* of each incoming edge batch; the *partition* itself is a
:class:`~repro.serving.placement.Placement` produced by a placement policy
(see :mod:`repro.serving.placement`).  The default is PR 1's static
multiplicative hash, so ``ShardRouter(num_shards, num_nodes)`` behaves
exactly as before.

Routing rules (per edge ``(u, v)``):

* the edge is *local* to the shard owning its source vertex,
  ``assignment[u]``, which processes it in stream order;
* every **other holder** of either endpoint — the destination's owner, plus
  any replica shards of ``u`` or ``v`` — additionally receives the edge
  through the :class:`CrossShardMailbox`.

Consequently every holder of a vertex sees exactly the edges incident to
it, in stream order.  That gives a hard consistency guarantee for the FIFO
neighbor state: a shard's neighbor-table rows for the vertices it *holds*
(owned or replicated) are identical to the unsharded table's rows (asserted
by the serving and placement tests).

Vertex *memory* rows of non-held endpoints are governed by a separate,
pluggable sync policy (:mod:`repro.serving.memsync`).  The mail can carry
memory-row updates and invalidations alongside the edges: pass a
:class:`~repro.serving.memsync.VersionedMemoryCache` to :meth:`split` and
each :class:`ShardBatch` reports the rows the shard must pull before
processing (``sync_pull``), the owner-pushed rows riding in with its mail
(``sync_push``), and the staleness it tolerated (``stale_reads`` /
``version_lag``).  Policy space: ``none`` keeps PR 1's stale mirrors (and
measures the staleness), ``invalidate`` pulls fresh rows on demand, and
``push`` eagerly forwards owner writes — under the sync policies a holder's
memory rows are exact, not stale mirrors (the bit-identity tests in
``test_memsync``).  The :class:`CrossShardMailbox` prices both kinds of
traffic: ``counts`` for forwarded edges, ``sync_counts`` for transferred
memory rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..graph.temporal_graph import EdgeBatch
from .placement import Placement, hash_assignment

__all__ = ["ShardBatch", "CrossShardMailbox", "ShardRouter"]


_NO_ROWS = np.empty(0, dtype=np.int64)


@dataclass(frozen=True)
class ShardBatch:
    """The slice of one job a single shard must process.

    The ``sync_*`` fields are populated when :meth:`ShardRouter.split` is
    given a memsync cache: ``sync_pull`` are the vertex rows this shard
    must fetch from their owners before processing (priced as mailbox
    round-trips), ``sync_push`` the owner-updated rows delivered alongside
    its mail, and ``stale_reads`` / ``version_lag`` the staleness the
    ``none`` policy tolerated instead.
    """

    shard: int
    batch: EdgeBatch            # local + forwarded edges, chronological
    local_edges: int
    mail_edges: int             # edges forwarded in from other shards
    mail_from: np.ndarray       # (mail_edges,) source shard per forwarded edge
    sync_pull: np.ndarray = field(default_factory=lambda: _NO_ROWS)
    sync_push: np.ndarray = field(default_factory=lambda: _NO_ROWS)
    stale_reads: int = 0
    version_lag: int = 0


class CrossShardMailbox:
    """Accounting for edges forwarded between shards.

    The mailbox is the consistency mechanism: instead of shards reaching
    into each other's state, every holder of a remote endpoint receives the
    edge and applies it to its own tables.  This class tracks the traffic
    matrix so the engine can price die crossings and report the sharding
    overhead.
    """

    def __init__(self, num_shards: int):
        self.num_shards = int(num_shards)
        self.counts = np.zeros((num_shards, num_shards), dtype=np.int64)
        # Memory rows transferred for cross-shard sync (pulls + pushes),
        # keyed the same way: [owner shard, receiving shard].
        self.sync_counts = np.zeros((num_shards, num_shards), dtype=np.int64)

    def record(self, from_shards: np.ndarray, to_shard: int) -> None:
        """Record forwarded edges (one per entry of ``from_shards``)."""
        np.add.at(self.counts, (np.asarray(from_shards, dtype=np.int64),
                                int(to_shard)), 1)

    def record_sync(self, from_shards: np.ndarray, to_shard: int) -> None:
        """Record synced memory rows (one per entry of ``from_shards``)."""
        np.add.at(self.sync_counts,
                  (np.asarray(from_shards, dtype=np.int64), int(to_shard)), 1)

    @property
    def total_edges(self) -> int:
        return int(self.counts.sum())

    @property
    def total_sync_rows(self) -> int:
        return int(self.sync_counts.sum())


class ShardRouter:
    """Routes batches across shards according to a :class:`Placement`.

    ``ShardRouter(num_shards, num_nodes)`` keeps PR 1's behavior (static
    hash, no replication); pass ``placement=`` or use
    :meth:`from_placement` for policy-driven partitions.
    """

    def __init__(self, num_shards: int, num_nodes: int,
                 placement: Placement | None = None):
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        if placement is None:
            placement = Placement(
                assignment=hash_assignment(num_nodes, num_shards),
                num_shards=int(num_shards))
        if placement.num_shards != num_shards:
            raise ValueError("placement shard count mismatch")
        if placement.num_nodes != num_nodes:
            raise ValueError("placement covers a different vertex count")
        self.num_shards = int(num_shards)
        self.num_nodes = int(num_nodes)
        self.placement = placement
        self.assignment = placement.assignment
        # (num_shards, num_nodes) holder membership; row s is True where
        # shard s keeps state for the vertex (owned or replicated).
        self._member = placement.holder_matrix()

    @classmethod
    def from_placement(cls, placement: Placement) -> "ShardRouter":
        return cls(placement.num_shards, placement.num_nodes,
                   placement=placement)

    def shard_of(self, vertices: np.ndarray) -> np.ndarray:
        """Primary owner of each vertex (replicas are extra holders)."""
        return self.assignment[np.asarray(vertices, dtype=np.int64)]

    def migrate(self, vertices: np.ndarray, to_shard: int) -> np.ndarray:
        """Reassign ownership of ``vertices`` to ``to_shard``, mid-run.

        The online-rebalancing primitive: mutates the live placement's
        assignment (and this router's holder membership) in place, so the
        very next :meth:`split` routes under the new ownership.  Ownership
        stays exactly-once by construction — one assignment entry per
        vertex, flipped atomically inside a single event handler.

        Replicated vertices migrate too: the old owner — whose copy is
        exact at handoff time, since holders see every incident edge —
        **demotes into the replica set** (it stays a holder), and if the
        new owner was itself a replica it is promoted out of the set, so
        the :class:`Placement` owner/replica invariant holds throughout
        and the number of holders never shrinks mid-move.  Unreplicated
        vertices move plainly: the old owner ceases to hold the vertex.
        The caller is responsible for the *state* side of the handoff —
        transferring rows and informing the memsync cache
        (:meth:`VersionedMemoryCache.transfer_ownership`, whose
        ``keep_holder`` flag mirrors the demotion), which the
        :class:`~repro.serving.rebalance.OnlineRebalancer` and
        :meth:`~repro.serving.memsync.ShardedRuntime.migrate` both do.

        Returns the previous owner of each vertex.
        """
        v = np.unique(np.asarray(vertices, dtype=np.int64))
        if len(v) and (v.min() < 0 or v.max() >= self.num_nodes):
            raise ValueError("vertex out of range")
        if not 0 <= int(to_shard) < self.num_shards:
            raise ValueError("to_shard out of range")
        to = int(to_shard)
        old = self.assignment[v].copy()
        replicas = self.placement.replicas
        for x, o in zip(v.tolist(), old.tolist()):
            extra = replicas.get(x)
            if extra:
                # Demote the old owner into the replica set; promote the
                # target out of it if it was a member.
                new_extra = tuple(s for s in extra if s != to)
                if o != to:
                    new_extra += (o,)
                replicas[x] = new_extra
            elif o != to:
                self._member[o, x] = False
        self.assignment[v] = to
        self._member[to, v] = True
        return old

    def fail_over(self, dead: int) -> tuple[np.ndarray, np.ndarray]:
        """Evacuate ownership off a dead shard whose state is lost.

        Every vertex owned by ``dead`` gets a surviving owner at this
        instant: a replicated vertex **promotes** its lowest-id replica —
        a replica is a full holder, so the new owner's state is already
        exact and nothing moves — while an unreplicated vertex is
        reassigned round-robin across the survivors and must be
        **rebuilt** by the caller (memsync replay from peers; see
        :meth:`~repro.serving.memsync.ShardedRuntime.fail_shard`).  The
        dead shard also drops out of every replica set it belonged to and
        holds nothing afterwards.

        Returns ``(promoted, rebuilt)`` vertex-id arrays.
        """
        dead = int(dead)
        if not 0 <= dead < self.num_shards:
            raise ValueError("dead shard out of range")
        if self.num_shards < 2:
            raise ValueError("cannot fail over the only shard")
        survivors = [s for s in range(self.num_shards) if s != dead]
        replicas = self.placement.replicas
        promoted: list[int] = []
        rebuilt: list[int] = []
        for x in np.flatnonzero(self.assignment == dead).tolist():
            extra = replicas.get(x)
            if extra:
                new_owner = min(extra)
                rest = tuple(s for s in extra if s != new_owner)
                if rest:
                    replicas[x] = rest
                else:
                    del replicas[x]
                promoted.append(x)
            else:
                new_owner = survivors[x % len(survivors)]
                self._member[new_owner, x] = True
                rebuilt.append(x)
            self.assignment[x] = new_owner
        # The dead shard's replica copies are lost with it.
        for x, extra in list(replicas.items()):
            if dead in extra:
                rest = tuple(s for s in extra if s != dead)
                if rest:
                    replicas[x] = rest
                else:
                    del replicas[x]
        self._member[dead, :] = False
        return (np.asarray(promoted, dtype=np.int64),
                np.asarray(rebuilt, dtype=np.int64))

    def split(self, batch: EdgeBatch,
              mailbox: CrossShardMailbox | None = None,
              cache=None) -> list[ShardBatch]:
        """Partition ``batch`` into per-shard sub-batches.

        Each returned sub-batch preserves stream order.  An edge appears on
        its source's owner (local) and on every other holder of either
        endpoint (mail) — with no replication that is exactly the two
        owners.  Shards with no incident edges are omitted.

        With a :class:`~repro.serving.memsync.VersionedMemoryCache` as
        ``cache``, the split also runs the sync protocol for this batch in
        stream order — every shard's endpoint reads first (against the
        pre-batch versions), then the batch's owner writes — and attaches
        the resulting pull/push row sets and staleness counts to each
        :class:`ShardBatch`.  The caller prices (or, in a functional
        replay, actually transfers) those rows; ``split`` itself never
        touches vertex state.
        """
        s_src = self.assignment[batch.src]
        out: list[ShardBatch] = []
        for shard in range(self.num_shards):
            local = s_src == shard
            held = self._member[shard, batch.src] \
                | self._member[shard, batch.dst]
            mail = held & ~local
            sel = local | mail
            if not sel.any():
                continue
            sub = EdgeBatch(src=batch.src[sel], dst=batch.dst[sel],
                            t=batch.t[sel], eid=batch.eid[sel],
                            edge_feat=batch.edge_feat[sel])
            mail_from = s_src[mail]
            if mailbox is not None and len(mail_from):
                mailbox.record(mail_from, shard)
            out.append(ShardBatch(shard=shard, batch=sub,
                                  local_edges=int(local.sum()),
                                  mail_edges=int(mail.sum()),
                                  mail_from=mail_from))
        if cache is None:
            return out
        reads = {sb.shard: cache.note_reads(sb.shard,
                                            np.unique(sb.batch.nodes))
                 for sb in out}
        pushes = cache.note_writes(np.unique(batch.nodes),
                                   [sb.shard for sb in out])
        return [replace(sb, sync_pull=reads[sb.shard].pulled,
                        sync_push=pushes.get(sb.shard, _NO_ROWS),
                        stale_reads=reads[sb.shard].stale_reads,
                        version_lag=reads[sb.shard].max_lag)
                for sb in out]
