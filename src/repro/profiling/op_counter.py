"""Closed-form MAC / MEM accounting for memory-based TGNN inference.

Reproduces the complexity columns of Tables I and II.  Counts are **per
dynamic node embedding** (one endpoint of one new edge) and are split into
the paper's four parts: ``sample``, ``memory``, ``gnn``, ``update``.

Two conventions are provided because the paper's bookkeeping is coarser than
a physical count:

* ``Convention.PAPER`` — reverse-engineered from the table deltas so the
  ladder reproduces the published numbers almost exactly:

  - the GRU is counted as **one** pass over the stacked input weights
    (``msg_dim * mem_dim``) plus ``12 * mem_dim`` element-wise work.  This is
    confirmed by Wikipedia vs. GDELT: ``(472 vs 500) x 100 + 1.2k`` gives
    exactly the published 48.4 / 51.2 kMAC;
  - the LUT saving is ``time_dim * mem_dim + time_dim`` in the GRU (10.1 kMAC
    for both datasets — matches) and ``time_dim * embed_dim`` per neighbor in
    the GNN;
  - K and V are counted separately per neighbor, queries once per embedding.

* ``Convention.FULL`` — physically exact: all three GRU gates, input and
  hidden products, projections, dot products, weighted sums.

MEM counts external-memory words touched per embedding (on-chip parameters
are free, per the paper's stated assumption).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..models.config import ModelConfig

__all__ = ["Convention", "OpCounts", "count_ops", "count_ops_apan",
           "PARTS"]

PARTS = ("sample", "memory", "gnn", "update")


class Convention(enum.Enum):
    """MAC-accounting convention (see module docstring)."""

    PAPER = "paper"
    FULL = "full"


@dataclass(frozen=True)
class OpCounts:
    """Per-embedding operation counts, split by pipeline part."""

    macs: dict[str, float]   # part -> multiply-accumulate count
    mems: dict[str, float]   # part -> external-memory words touched

    @property
    def total_macs(self) -> float:
        return float(sum(self.macs.values()))

    @property
    def total_mems(self) -> float:
        return float(sum(self.mems.values()))

    @property
    def gru_macs(self) -> float:
        """Table II #(GRU) column (the memory part's compute)."""
        return self.macs["memory"]

    @property
    def gnn_macs(self) -> float:
        """Table II #(GNN) column."""
        return self.macs["gnn"]

    def scaled(self, factor: float) -> "OpCounts":
        return OpCounts(macs={k: v * factor for k, v in self.macs.items()},
                        mems={k: v * factor for k, v in self.mems.items()})


def count_ops(cfg: ModelConfig,
              convention: Convention = Convention.PAPER) -> OpCounts:
    """Operation counts per dynamic node embedding for ``cfg``.

    The co-design flags drive the reductions:

    - ``simplified_attention`` removes queries, keys, and attention dot
      products, leaving only values (plus the tiny ``k x k`` logit map);
    - ``lut_time_encoder`` removes every ``time_dim``-wide product (the
      pre-multiplication of §III-C) and the encoder's own evaluations;
    - ``pruning_budget`` scales every per-neighbor term (value compute,
      neighbor fetches) from ``k`` down to the budget.  Logit computation
      and the timestamp fetch still cover all ``k`` sampled slots — the
      pruning decision needs them.
    """
    m, tau, e = cfg.memory_dim, cfg.time_dim, cfg.embed_dim
    ef, nf, k = cfg.edge_dim, cfg.node_dim, cfg.num_neighbors
    keff = cfg.effective_neighbors
    msg = cfg.raw_message_dim + nf + tau  # GRU input width (features ride along)
    lut = cfg.lut_time_encoder
    kv_in = m + ef + tau                  # K/V input width per neighbor

    macs: dict[str, float] = {p: 0.0 for p in PARTS}
    mems: dict[str, float] = {p: 0.0 for p in PARTS}

    # ---- memory part: UPDT (+ time encoder) ----------------------------- #
    rnn = cfg.memory_updater == "rnn"
    if convention is Convention.PAPER:
        gru = msg * m + (4 * m if rnn else 12 * m)
        if lut:
            gru -= tau * m + tau          # pre-multiplied + no cos products
    else:
        gates = 1 if rnn else 3
        # input + hidden gate products, merging/elementwise, cos evaluation.
        gru = gates * (msg * m + m * m) + 4 * m + (0 if lut else tau)
        if lut:
            gru -= gates * tau * m        # time slice of the input gates
    macs["memory"] = float(gru)

    # ---- gnn part: temporal attention aggregator ------------------------ #
    enc_cost = 0.0 if lut else float(tau)   # per Phi() evaluation
    out_transform = (e + m) * e
    node_fusion = 0.0
    if nf > 0:
        # f' = s + W_s f for the query and each fetched neighbor.
        node_fusion = (1 + keff) * nf * m
    if cfg.simplified_attention:
        gnn = (
            keff * ((kv_in - (tau if lut else 0)) * e)   # values
            + k * k                                      # W_t logit map
            + keff * e                                   # weighted sum
            + keff * enc_cost                            # Phi per used nbr
            + out_transform + node_fusion
        )
    else:
        q_in = m + tau
        gnn = (
            (q_in - (tau if lut else 0)) * e             # query
            + k * (2 * ((kv_in - (tau if lut else 0)) * e))   # keys + values
            + 2 * k * e                                  # dots + weighted sum
            + (k + 1) * enc_cost                         # Phi per nbr + query
            + out_transform + node_fusion
        )
    macs["gnn"] = float(gnn)

    # ---- MEM accounting -------------------------------------------------- #
    # sample: neighbor-table row (id, edge id, timestamp per slot).  The
    # full k slots are always read — pruning decides *afterwards*.
    mems["sample"] = float(3 * k)
    # memory: own mail + own memory, plus mail + memory of the fetched
    # neighbors (their state must be current before aggregation).  Feature
    # words (edge or node) are already part of the mail payload.
    per_nbr_words = (msg - tau) + m
    mems["memory"] = float((msg - tau) + m + keff * per_nbr_words)
    # gnn: zero — operands were prefetched by the memory stage (Table I
    # reports 0 MEMs for the GNN part).
    mems["gnn"] = 0.0
    # update: write back own mail + memory + the neighbor-table append.
    mems["update"] = float((msg - tau) + m + 2 * 3)
    return OpCounts(macs=macs, mems=mems)


def count_ops_apan(cfg: ModelConfig, mailbox_size: int = 10,
                   convention: Convention = Convention.PAPER) -> OpCounts:
    """Operation counts for the APAN baseline's *latency-critical* path.

    Only the query path counts toward latency (mailbox attention + output
    transform); state update and message delivery are asynchronous.  MEMs
    cover reading the vertex's own state and mailbox — no neighbor fetches,
    which is APAN's entire point.
    """
    m, tau, e = cfg.memory_dim, cfg.time_dim, cfg.embed_dim
    ef, nf = cfg.edge_dim, cfg.node_dim
    K = mailbox_size
    mail_dim = m + ef
    kv_in = mail_dim + tau
    macs = {p: 0.0 for p in PARTS}
    mems = {p: 0.0 for p in PARTS}
    q_in = m + tau
    macs["gnn"] = float(
        q_in * e + K * (2 * kv_in * e) + 2 * K * e + (K + 1) * tau
        + (e + m) * e + (nf * m if nf else 0))
    mems["memory"] = float(m + K * (mail_dim + 1))
    mems["update"] = 0.0   # async, off the latency path
    return OpCounts(macs=macs, mems=mems)
