"""Published numbers from the paper, for side-by-side comparison.

Every bench prints paper-vs-measured using these constants, and the shape
tests assert our reproduction stays within tolerance of the published
*ratios* (not absolute values — our substrate is a simulator).

Source: Zhou et al., IPDPS 2022 (arXiv:2203.05095), Tables I-IV and §VI.
"""

from __future__ import annotations

__all__ = ["TABLE1", "TABLE2", "TABLE3", "TABLE4", "HEADLINE"]

# --------------------------------------------------------------------------- #
# Table I: per-part complexity and execution time per dynamic node embedding.
# kMEM/kMAC in thousands; times in nanoseconds.
# --------------------------------------------------------------------------- #
TABLE1 = {
    "wikipedia": {
        "sample": {"kMEM": 0.0, "kMAC": 0.0, "t_1cpu": 9, "t_32cpu": 9, "t_gpu": 8},
        "memory": {"kMEM": 5.2, "kMAC": 48.4, "t_1cpu": 273, "t_32cpu": 40, "t_gpu": 8},
        "gnn": {"kMEM": 0.0, "kMAC": 703.5, "t_1cpu": 296, "t_32cpu": 33, "t_gpu": 4},
        "update": {"kMEM": 0.5, "kMAC": 0.0, "t_1cpu": 23, "t_32cpu": 21, "t_gpu": 19},
        "total": {"kMEM": 5.7, "kMAC": 751.9, "t_1cpu": 601, "t_32cpu": 103, "t_gpu": 39},
    },
    "reddit": {
        "sample": {"kMEM": 0.1, "kMAC": 0.0, "t_1cpu": 11, "t_32cpu": 9, "t_gpu": 8},
        "memory": {"kMEM": 5.2, "kMAC": 48.4, "t_1cpu": 198, "t_32cpu": 47, "t_gpu": 9},
        "gnn": {"kMEM": 0.0, "kMAC": 703.5, "t_1cpu": 297, "t_32cpu": 31, "t_gpu": 3},
        "update": {"kMEM": 0.5, "kMAC": 0.0, "t_1cpu": 27, "t_32cpu": 25, "t_gpu": 15},
        "total": {"kMEM": 5.8, "kMAC": 751.9, "t_1cpu": 533, "t_32cpu": 112, "t_gpu": 35},
    },
}

# --------------------------------------------------------------------------- #
# Table II: the optimization ladder.  Per dataset, rows in ladder order:
# (kMEM, kMEM%, kMAC_GRU, kMAC_GNN, kMAC_total, kMAC%, AP, AP_delta,
#  thpt_kE_s, speedup).
# --------------------------------------------------------------------------- #
TABLE2 = {
    "wikipedia": [
        {"model": "baseline", "kMEM": 5.7, "kMEM_pct": 100.0, "kMAC_GRU": 48.4,
         "kMAC_GNN": 703.5, "kMAC_total": 751.9, "kMAC_pct": 100.0,
         "ap": 0.9900, "ap_delta": 0.0, "thpt": 0.85, "speedup": 1.00},
        {"model": "+SAT", "kMEM": 5.7, "kMEM_pct": 100.0, "kMAC_GRU": 48.4,
         "kMAC_GNN": 351.1, "kMAC_total": 399.5, "kMAC_pct": 53.1,
         "ap": 0.9821, "ap_delta": -0.0079, "thpt": 1.10, "speedup": 1.29},
        {"model": "+LUT", "kMEM": 5.7, "kMEM_pct": 100.0, "kMAC_GRU": 38.3,
         "kMAC_GNN": 240.0, "kMAC_total": 278.3, "kMAC_pct": 37.0,
         "ap": 0.9891, "ap_delta": -0.0009, "thpt": 1.12, "speedup": 1.32},
        {"model": "+NP(L)", "kMEM": 3.8, "kMEM_pct": 66.7, "kMAC_GRU": 38.3,
         "kMAC_GNN": 156.4, "kMAC_total": 194.5, "kMAC_pct": 25.9,
         "ap": 0.9891, "ap_delta": -0.0009, "thpt": 1.71, "speedup": 2.01},
        {"model": "+NP(M)", "kMEM": 2.9, "kMEM_pct": 50.9, "kMAC_GRU": 38.3,
         "kMAC_GNN": 114.6, "kMAC_total": 152.9, "kMAC_pct": 20.3,
         "ap": 0.9887, "ap_delta": -0.0013, "thpt": 2.71, "speedup": 3.19},
        {"model": "+NP(S)", "kMEM": 1.9, "kMEM_pct": 33.3, "kMAC_GRU": 38.3,
         "kMAC_GNN": 72.8, "kMAC_total": 111.1, "kMAC_pct": 14.8,
         "ap": 0.9878, "ap_delta": -0.0022, "thpt": 3.22, "speedup": 3.79},
    ],
    "reddit": [
        {"model": "baseline", "kMEM": 5.8, "kMEM_pct": 100.0, "kMAC_GRU": 48.4,
         "kMAC_GNN": 703.5, "kMAC_total": 751.9, "kMAC_pct": 100.0,
         "ap": 0.9978, "ap_delta": 0.0, "thpt": 0.92, "speedup": 1.00},
        {"model": "+SAT", "kMEM": 5.8, "kMEM_pct": 100.0, "kMAC_GRU": 48.4,
         "kMAC_GNN": 351.1, "kMAC_total": 399.5, "kMAC_pct": 53.1,
         "ap": 0.9967, "ap_delta": -0.0011, "thpt": 1.22, "speedup": 1.33},
        {"model": "+LUT", "kMEM": 5.8, "kMEM_pct": 100.0, "kMAC_GRU": 38.3,
         "kMAC_GNN": 240.0, "kMAC_total": 278.3, "kMAC_pct": 37.0,
         "ap": 0.9978, "ap_delta": 0.0, "thpt": 1.21, "speedup": 1.32},
        {"model": "+NP(L)", "kMEM": 3.9, "kMEM_pct": 67.2, "kMAC_GRU": 38.3,
         "kMAC_GNN": 156.4, "kMAC_total": 194.5, "kMAC_pct": 25.9,
         "ap": 0.9971, "ap_delta": -0.0007, "thpt": 1.51, "speedup": 1.64},
        {"model": "+NP(M)", "kMEM": 3.0, "kMEM_pct": 51.7, "kMAC_GRU": 38.3,
         "kMAC_GNN": 114.6, "kMAC_total": 152.9, "kMAC_pct": 20.3,
         "ap": 0.9971, "ap_delta": -0.0007, "thpt": 1.93, "speedup": 2.10},
        {"model": "+NP(S)", "kMEM": 2.0, "kMEM_pct": 34.4, "kMAC_GRU": 38.3,
         "kMAC_GNN": 72.8, "kMAC_total": 111.1, "kMAC_pct": 14.8,
         "ap": 0.9948, "ap_delta": -0.0030, "thpt": 2.21, "speedup": 2.40},
    ],
    "gdelt": [
        {"model": "baseline", "kMEM": 5.1, "kMEM_pct": 100.0, "kMAC_GRU": 51.2,
         "kMAC_GNN": 733.8, "kMAC_total": 785.0, "kMAC_pct": 100.0,
         "ap": 0.9623, "ap_delta": 0.0, "thpt": 1.29, "speedup": 1.00},
        {"model": "+SAT", "kMEM": 5.1, "kMEM_pct": 100.0, "kMAC_GRU": 51.2,
         "kMAC_GNN": 371.3, "kMAC_total": 422.5, "kMAC_pct": 53.8,
         "ap": 0.9612, "ap_delta": -0.0011, "thpt": 1.83, "speedup": 1.42},
        {"model": "+LUT", "kMEM": 5.1, "kMEM_pct": 100.0, "kMAC_GRU": 41.1,
         "kMAC_GNN": 260.2, "kMAC_total": 301.3, "kMAC_pct": 38.4,
         "ap": 0.9605, "ap_delta": -0.0018, "thpt": 1.85, "speedup": 1.43},
        {"model": "+NP(L)", "kMEM": 3.4, "kMEM_pct": 66.7, "kMAC_GRU": 41.1,
         "kMAC_GNN": 176.6, "kMAC_total": 217.7, "kMAC_pct": 27.7,
         "ap": 0.9598, "ap_delta": -0.0025, "thpt": 3.01, "speedup": 2.33},
        {"model": "+NP(M)", "kMEM": 2.5, "kMEM_pct": 49.1, "kMAC_GRU": 41.1,
         "kMAC_GNN": 134.8, "kMAC_total": 175.9, "kMAC_pct": 22.4,
         "ap": 0.9596, "ap_delta": -0.0027, "thpt": 3.62, "speedup": 2.81},
        {"model": "+NP(S)", "kMEM": 1.7, "kMEM_pct": 31.5, "kMAC_GRU": 41.4,
         "kMAC_GNN": 93.0, "kMAC_total": 134.1, "kMAC_pct": 17.1,
         "ap": 0.9590, "ap_delta": -0.0033, "thpt": 4.43, "speedup": 3.43},
    ],
}

# --------------------------------------------------------------------------- #
# Table III: hardware platform specs.
# --------------------------------------------------------------------------- #
TABLE3 = {
    "u200": {"dies": 3, "luts_per_die": 394_000, "dsps_per_die": 2280,
             "brams_per_die": 720, "urams_per_die": 320, "bw_gbs": 77.0},
    "zcu104": {"dies": 1, "luts_per_die": 230_000, "dsps_per_die": 1728,
               "brams_per_die": 312, "urams_per_die": 96, "bw_gbs": 19.2},
    "cpu": {"sockets": 2, "cores": 14, "threads": 28, "ghz": 2.2,
            "bw_gbs": 89.0},
    "gpu": {"cuda_cores": 3840, "mhz": 1532, "bw_gbs": 547.0},
}

# --------------------------------------------------------------------------- #
# Table IV: design configurations, resource utilization, frequency.
# --------------------------------------------------------------------------- #
TABLE4 = {
    "u200": {"n_cu": 2, "sg": 8, "s_fam": 16, "s_ftm": (8, 8),
             "lut": 563_000, "dsp": 2512, "bram": 1415, "uram": 448,
             "freq_mhz": 250},
    "zcu104": {"n_cu": 1, "sg": 4, "s_fam": 8, "s_ftm": (4, 4),
               "lut": 125_000, "dsp": 744, "bram": 240, "uram": 0,
               "freq_mhz": 125},
}

# --------------------------------------------------------------------------- #
# §VI headline claims.
# --------------------------------------------------------------------------- #
HEADLINE = {
    "compute_reduction": 0.84,       # "reduces the computation complexity by 84%"
    "mem_reduction": 0.67,           # "memory accesses by 67%"
    "max_ap_loss": 0.0033,           # "less than 0.33% accuracy loss"
    "u200_speedup_vs_cpu_min": 13.9,  # NP(L) batch-sweep claim
    "u200_speedup_vs_gpu_min": 4.6,
    "perf_model_error_range": (0.099, 0.128),
    "np_s_latency_ms_max": 10.0,     # NP(S) < 10 ms on all datasets (U200)
}
