"""Operation counting and complexity tables (Tables I-II)."""

from . import paper_reference  # noqa: F401
from .breakdown import (event_core_breakdown, format_table,  # noqa: F401
                        modeled_vs_measured, table1_breakdown,
                        table2_ladder)
from .op_counter import (PARTS, Convention, OpCounts, count_ops,  # noqa: F401
                         count_ops_apan)

__all__ = [
    "Convention", "OpCounts", "count_ops", "count_ops_apan", "PARTS",
    "table1_breakdown", "table2_ladder", "event_core_breakdown",
    "modeled_vs_measured", "format_table", "paper_reference",
]
