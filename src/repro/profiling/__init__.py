"""Operation counting and complexity tables (Tables I-II)."""

from . import paper_reference  # noqa: F401
from .breakdown import format_table, table1_breakdown, table2_ladder  # noqa: F401
from .op_counter import (PARTS, Convention, OpCounts, count_ops,  # noqa: F401
                         count_ops_apan)

__all__ = [
    "Convention", "OpCounts", "count_ops", "count_ops_apan", "PARTS",
    "table1_breakdown", "table2_ladder", "format_table",
    "paper_reference",
]
