"""Structured complexity tables: the Table I breakdown and Table II ladder.

These functions return plain lists of dicts so benches can print them and
tests can assert on them without parsing formatted text.
"""

from __future__ import annotations

from ..models.config import ModelConfig, variant_ladder
from .op_counter import PARTS, Convention, OpCounts, count_ops

__all__ = ["table1_breakdown", "table2_ladder", "event_core_breakdown",
           "modeled_vs_measured", "format_table"]


def table1_breakdown(cfg: ModelConfig,
                     convention: Convention = Convention.PAPER
                     ) -> list[dict]:
    """Per-part kMEM/kMAC rows (Table I structure) for one model config."""
    counts = count_ops(cfg, convention)
    total_mac = counts.total_macs
    total_mem = counts.total_mems
    rows = []
    for part in PARTS:
        rows.append({
            "part": part,
            "kMEM": counts.mems[part] / 1e3,
            "kMEM_pct": 100.0 * counts.mems[part] / total_mem if total_mem else 0.0,
            "kMAC": counts.macs[part] / 1e3,
            "kMAC_pct": 100.0 * counts.macs[part] / total_mac if total_mac else 0.0,
        })
    rows.append({"part": "total", "kMEM": total_mem / 1e3, "kMEM_pct": 100.0,
                 "kMAC": total_mac / 1e3, "kMAC_pct": 100.0})
    return rows


def table2_ladder(base: ModelConfig,
                  convention: Convention = Convention.PAPER) -> list[dict]:
    """Accumulated-optimization complexity rows (Table II structure).

    AP and measured throughput are filled in by the benches (they require
    training and timing); this function covers the analytic columns.
    """
    baseline = count_ops(base.with_(simplified_attention=False,
                                    lut_time_encoder=False,
                                    pruning_budget=None),
                         convention)
    rows = []
    for cfg in variant_ladder(base):
        c = count_ops(cfg, convention)
        rows.append({
            "model": cfg.name,
            "neighbors": cfg.effective_neighbors,
            "kMEM": c.total_mems / 1e3,
            "kMEM_pct": 100.0 * c.total_mems / baseline.total_mems,
            "kMAC_GRU": c.gru_macs / 1e3,
            "kMAC_GNN": c.gnn_macs / 1e3,
            "kMAC_total": c.total_macs / 1e3,
            "kMAC_pct": 100.0 * c.total_macs / baseline.total_macs,
            "config": cfg,
        })
    return rows


def event_core_breakdown(before: dict, after: dict) -> list[dict]:
    """Before/after rows for the serving event core (``serve-sim --profile``).

    ``before`` / ``after`` each describe one scheduler lane as a dict with
    ``events`` (events processed), ``wall_s`` (loop wall-clock seconds),
    and optionally ``cohort_calls`` (handler invocations that delivered a
    cohort; for the per-event heap lane this equals ``events``).  Returns
    one row per lane plus a ``speedup`` row comparing events/sec, the same
    list-of-dicts shape as the Table I/II breakdowns so the CLI can render
    it with :func:`format_table`.
    """
    rows = []
    for name, lane in (("heap (before)", before), ("vectorized (after)",
                                                   after)):
        events = int(lane["events"])
        wall = float(lane["wall_s"])
        rows.append({
            "lane": name,
            "events": events,
            "handler_calls": int(lane.get("cohort_calls", events)),
            "wall_s": wall,
            "events_per_sec": events / wall if wall > 0 else 0.0,
        })
    eps_before, eps_after = (r["events_per_sec"] for r in rows)
    rows.append({
        "lane": "speedup",
        "events": "",
        "handler_calls": "",
        "wall_s": "",
        "events_per_sec": eps_after / eps_before if eps_before else 0.0,
    })
    return rows


def modeled_vs_measured(measured: dict) -> list[dict]:
    """Modeled-vs-measured service-time rows from a report's ``measured``
    block (``serve-sim --backend measured --profile``).

    One row per shard plus a pooled ``all`` row: sample count, modeled and
    measured mean service time in milliseconds, their ratio
    (modeled / measured — how far off the analytical cost model is from
    the real kernels on this host), and the measured cv².  Same
    list-of-dicts shape as the other breakdowns, rendered with
    :func:`format_table`.
    """
    def row(label, block):
        measured_ms = 1e3 * float(block["mean_s"])
        modeled = block.get("modeled_mean_s")
        modeled_ms = 1e3 * float(modeled) if modeled is not None else None
        return {
            "shard": label,
            "samples": int(block["samples"]),
            "modeled_ms": modeled_ms if modeled_ms is not None else "-",
            "measured_ms": measured_ms,
            "modeled/measured": modeled_ms / measured_ms
            if modeled_ms is not None and measured_ms > 0 else "-",
            "cv2": float(block["cv2"]),
        }

    rows = [row(str(shard["shard"]), shard)
            for shard in measured.get("per_shard", [])]
    rows.append(row("all", measured))
    return rows


def format_table(rows: list[dict], columns: list[str] | None = None,
                 precision: int = 2) -> str:
    """Fixed-width text rendering of a list-of-dicts table."""
    if not rows:
        return "(empty)"
    columns = columns if columns is not None else \
        [c for c in rows[0] if c != "config"]
    cells = [[_fmt(row.get(c, ""), precision) for c in columns] for row in rows]
    widths = [max(len(c), *(len(r[i]) for r in cells))
              for i, c in enumerate(columns)]
    header = "  ".join(c.ljust(w) for c, w in zip(columns, widths))
    sep = "-" * len(header)
    body = "\n".join("  ".join(v.rjust(w) for v, w in zip(r, widths))
                     for r in cells)
    return f"{header}\n{sep}\n{body}"


def _fmt(value, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)
