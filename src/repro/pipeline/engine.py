"""Streaming inference engines over a common backend interface.

Three backend families, one protocol (``process_batch -> latency seconds``):

* :class:`SoftwareBackend` — runs the NumPy deployment path and reports
  *measured* wall-clock per batch (this is the "1 CPU thread" system of
  Table II; its speedups across the model ladder are real measurements, not
  models);
* :class:`SimulatedFPGABackend` — wraps :class:`FPGAAccelerator`; each batch
  arrives at an idle accelerator (the real-time deployment assumption) while
  vertex state persists across batches;
* :class:`ModeledGPPBackend` — prices batches with a calibrated
  :class:`~repro.perf.gpp.GPPCostModel` (the CPU-32T / GPU substitution)
  while still advancing functional state so downstream accuracy is exact.

:class:`LinearCostBackend` is the degenerate fourth member: an exact
``overhead + N * per_edge`` price with no functional state, for tests and
benchmarks that isolate queueing/placement effects from cost-model shape.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..graph.batching import iter_fixed_size
from ..graph.temporal_graph import EdgeBatch, TemporalGraph
from ..hw.accelerator import FPGAAccelerator
from ..models.tgn import TGNN, ModelRuntime
from ..perf.gpp import GPPCostModel
from ..profiling.op_counter import OpCounts

__all__ = ["EngineReport", "SoftwareBackend", "SimulatedFPGABackend",
           "ModeledGPPBackend", "LinearCostBackend", "run_engine"]


class LinearCostBackend:
    """Deterministic fixed-overhead + linear per-edge timing backend.

    No functional state and no model: ``process_batch`` costs exactly
    ``overhead_s + len(batch) * per_edge_s``.  The placement/pool tests and
    benchmarks use it to compare queue topologies on known service times —
    overhead-dominated vs marginal-cost-dominated regimes — without
    cost-model noise.
    """

    name = "linear-cost"

    def __init__(self, per_edge_s: float = 1e-3, overhead_s: float = 0.0):
        if per_edge_s < 0 or overhead_s < 0:
            raise ValueError("per_edge_s and overhead_s must be >= 0")
        self.per_edge_s = float(per_edge_s)
        self.overhead_s = float(overhead_s)

    def process_batch(self, batch: EdgeBatch) -> float:
        return self.overhead_s + len(batch) * self.per_edge_s


@dataclass
class EngineReport:
    """Aggregate outcome of streaming a range of edges through a backend."""

    backend: str
    n_edges: int
    total_latency_s: float
    batch_latencies_s: list[float]
    stage_time_s: dict[str, float] = field(default_factory=dict)

    @property
    def throughput_eps(self) -> float:
        return self.n_edges / self.total_latency_s \
            if self.total_latency_s > 0 else 0.0

    @property
    def mean_latency_s(self) -> float:
        return float(np.mean(self.batch_latencies_s)) \
            if self.batch_latencies_s else 0.0


class SoftwareBackend:
    """Measured single-thread NumPy inference (the deployment code path)."""

    name = "cpu-1t-measured"

    def __init__(self, model: TGNN, graph: TemporalGraph):
        self.model = model
        self.graph = graph
        self.rt: ModelRuntime = model.new_runtime(graph)
        self.timings: dict[str, float] = {}
        model.prepare_inference()

    def process_batch(self, batch: EdgeBatch) -> float:
        t0 = time.perf_counter()
        self.model.infer_batch(batch, self.rt, self.graph,
                               timings=self.timings)
        return time.perf_counter() - t0


class SimulatedFPGABackend:
    """Accelerator-simulator backend; each batch starts from idle."""

    def __init__(self, accelerator: FPGAAccelerator, graph: TemporalGraph):
        self.acc = accelerator
        self.graph = graph
        self.rt = accelerator.model.new_runtime(graph)
        self.name = f"fpga-{accelerator.hw.platform.name}"

    def process_batch(self, batch: EdgeBatch) -> float:
        report = self.acc.run_stream(self.graph, batch_size=len(batch),
                                     rt=self.rt, batches=[batch])
        return report.batch_latencies_s[0]


class ModeledGPPBackend:
    """Cost-model backend (CPU-32T / GPU substitution).

    Functional state still advances through the real kernels so that any
    accuracy evaluation downstream of this backend is exact; only the
    *timing* is modeled.
    """

    def __init__(self, cost_model: GPPCostModel, counts: OpCounts,
                 model: TGNN, graph: TemporalGraph,
                 light_runtime: bool = False,
                 functional: bool = True):
        self.cost = cost_model
        self.counts = counts
        self.model = model
        self.graph = graph
        self.rt = model.new_runtime(graph) if functional else None
        self.light = light_runtime
        self.name = cost_model.name

    def process_batch(self, batch: EdgeBatch) -> float:
        if self.rt is not None:
            self.model.infer_batch(batch, self.rt, self.graph)
        return self.cost.latency_s(self.counts, len(batch),
                                   light_runtime=self.light)


def run_engine(backend, graph: TemporalGraph, batch_size: int,
               start: int = 0, end: int | None = None) -> EngineReport:
    """Stream ``[start, end)`` through ``backend`` in fixed-size batches."""
    latencies = []
    n = 0
    for batch in iter_fixed_size(graph, batch_size, start=start, end=end):
        latencies.append(backend.process_batch(batch))
        n += len(batch)
    stage = dict(getattr(backend, "timings", {}) or {})
    return EngineReport(backend=getattr(backend, "name", type(backend).__name__),
                        n_edges=n, total_latency_s=float(sum(latencies)),
                        batch_latencies_s=latencies, stage_time_s=stage)
