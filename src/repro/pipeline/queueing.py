"""Sustained-load response-time analysis for streaming deployment.

The Fig. 5 latency numbers assume each batch meets an idle device.  In
production the device may still be busy when the next window closes, so the
*response time* (enqueue → results) includes queueing delay.  This module
replays a stream's real window arrival process against a backend's service
times and reports waiting/response statistics and utilization — the number
an SLO is actually written against.

Works with any engine backend (simulated FPGA, modeled GPP, measured
software): service time is whatever ``process_batch`` reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.batching import iter_time_windows
from ..graph.temporal_graph import TemporalGraph

__all__ = ["QueueStats", "replay_under_load"]


@dataclass(frozen=True)
class QueueStats:
    """Response-time statistics of a loaded replay."""

    windows: int
    utilization: float          # busy time / stream time
    mean_wait_s: float
    mean_response_s: float      # wait + service
    p95_response_s: float
    max_queue_depth: int
    dropped_windows: int        # arrivals while the queue was at capacity

    @property
    def stable(self) -> bool:
        """A sustainable deployment keeps utilization below 1."""
        return self.utilization < 1.0


def replay_under_load(backend, graph: TemporalGraph, window_s: float,
                      start: int = 0, end: int | None = None,
                      speedup: float = 1.0,
                      queue_capacity: int | None = None) -> QueueStats:
    """FIFO single-server queue driven by the stream's own window arrivals.

    ``speedup`` compresses stream time (2.0 = windows arrive twice as fast),
    the standard way to stress a deployment beyond its recorded load.
    ``queue_capacity`` (optional) drops arrivals when the backlog is full,
    modelling a bounded ingest buffer.
    """
    if window_s <= 0 or speedup <= 0:
        raise ValueError("window_s and speedup must be positive")
    arrivals: list[tuple[float, object]] = []
    t0 = None
    for batch in iter_time_windows(graph, window_s, start=start, end=end):
        t_arrive = (batch.t[-1]) / speedup   # window closes at its last edge
        if t0 is None:
            t0 = t_arrive
        arrivals.append((t_arrive - t0, batch))
    if not arrivals:
        raise ValueError("no windows in the requested range")

    server_free = 0.0
    busy = 0.0
    waits, responses = [], []
    queue_depth = 0
    max_depth = 0
    dropped = 0
    # FIFO with deterministic arrival order; service times come from the
    # backend (which also advances functional state in arrival order).
    pending_finish: list[float] = []
    for t_arrive, batch in arrivals:
        # Drain finished jobs to track instantaneous depth.
        pending_finish = [f for f in pending_finish if f > t_arrive]
        queue_depth = len(pending_finish)
        if queue_capacity is not None and queue_depth >= queue_capacity:
            dropped += 1
            continue
        service = backend.process_batch(batch)
        begin = max(server_free, t_arrive)
        finish = begin + service
        server_free = finish
        busy += service
        waits.append(begin - t_arrive)
        responses.append(finish - t_arrive)
        pending_finish.append(finish)
        max_depth = max(max_depth, len(pending_finish))

    stream_time = max(arrivals[-1][0], 1e-12)
    responses_arr = np.asarray(responses)
    return QueueStats(windows=len(responses),
                      utilization=busy / stream_time,
                      mean_wait_s=float(np.mean(waits)) if waits else 0.0,
                      mean_response_s=float(responses_arr.mean()),
                      p95_response_s=float(np.percentile(responses_arr, 95)),
                      max_queue_depth=max_depth,
                      dropped_windows=dropped)
