"""Sustained-load response-time analysis for streaming deployment.

The Fig. 5 latency numbers assume each batch meets an idle device.  In
production the device may still be busy when the next window closes, so the
*response time* (enqueue → results) includes queueing delay.  This module
replays a stream's real window arrival process against a backend's service
times and reports waiting/response statistics and utilization — the number
an SLO is actually written against.

The event loop itself now lives in :mod:`repro.serving.simulator`, which
generalizes it to K servers; :func:`replay_under_load` is the single-server
compatibility wrapper.  Two long-standing accounting bugs are fixed by the
move:

* utilization used to divide busy time by the *last arrival* instant,
  ignoring service that extends past it (reporting > 1 for stable systems,
  and dividing by ~0 for single-window streams).  It now divides by the
  makespan through the last completion and is bounded by 1; stability is
  judged by ``offered_load`` instead.
* ``queue_capacity`` used to count the in-service window against the
  buffer (drops began one window early).  Capacity now bounds *waiting*
  windows only.

Works with any engine backend (simulated FPGA, modeled GPP, measured
software): service time is whatever ``process_batch`` reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph.batching import iter_time_windows
from ..graph.temporal_graph import TemporalGraph
from ..serving.simulator import simulate_queue

__all__ = ["QueueStats", "replay_under_load"]


@dataclass(frozen=True)
class QueueStats:
    """Response-time statistics of a loaded replay."""

    windows: int
    utilization: float          # busy time / makespan, in [0, 1]
    mean_wait_s: float
    mean_response_s: float      # wait + service
    p95_response_s: float
    max_queue_depth: int        # waiting windows (in-service excluded)
    dropped_windows: int        # arrivals while the queue was at capacity
    offered_load: float = 0.0   # arrival rate x mean service
    p99_response_s: float = 0.0

    @property
    def stable(self) -> bool:
        """A sustainable deployment keeps offered load below 1."""
        return self.offered_load < 1.0


def replay_under_load(backend, graph: TemporalGraph, window_s: float,
                      start: int = 0, end: int | None = None,
                      speedup: float = 1.0,
                      queue_capacity: int | None = None) -> QueueStats:
    """FIFO single-server queue driven by the stream's own window arrivals.

    ``speedup`` compresses stream time (2.0 = windows arrive twice as fast),
    the standard way to stress a deployment beyond its recorded load.
    ``queue_capacity`` (optional) drops arrivals when the backlog is full,
    modelling a bounded ingest buffer.

    Thin wrapper over :func:`repro.serving.simulate_queue` with one server;
    use :class:`repro.serving.ServingEngine` for multi-shard/multi-stream
    deployments.
    """
    if window_s <= 0 or speedup <= 0:
        raise ValueError("window_s and speedup must be positive")
    arrivals: list[tuple[float, object]] = []
    t0 = None
    for batch in iter_time_windows(graph, window_s, start=start, end=end):
        t_arrive = (batch.t[-1]) / speedup   # window closes at its last edge
        if t0 is None:
            t0 = t_arrive
        arrivals.append((t_arrive - t0, batch))
    if not arrivals:
        raise ValueError("no windows in the requested range")

    res = simulate_queue(arrivals, backend.process_batch, num_servers=1,
                         queue_capacity=queue_capacity)
    return QueueStats(windows=res.jobs,
                      utilization=res.utilization,
                      mean_wait_s=res.mean_wait_s,
                      mean_response_s=res.mean_response_s,
                      p95_response_s=res.p95_response_s,
                      max_queue_depth=res.max_queue_depth,
                      dropped_windows=res.dropped,
                      offered_load=res.offered_load,
                      p99_response_s=res.p99_response_s)
