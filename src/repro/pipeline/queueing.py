"""Sustained-load response-time analysis for streaming deployment.

The Fig. 5 latency numbers assume each batch meets an idle device.  In
production the device may still be busy when the next window closes, so the
*response time* (enqueue → results) includes queueing delay.  This module
replays a stream's real window arrival process against a backend's service
times and reports waiting/response statistics and utilization — the number
an SLO is actually written against.

There is exactly **one** queue implementation in the repo: the discrete-
event core in :mod:`repro.serving.events`.  :func:`replay_under_load` is
the single-server compatibility wrapper over it, and the arrival process
itself comes from :func:`repro.serving.make_stream_arrivals` with one
stream — the same window-close arrival assembly the multi-stream serving
engine uses, so the two paths cannot drift apart.

Accounting contracts inherited from the shared core:

* utilization divides busy time by the makespan through the last
  completion and is bounded by 1; stability is judged by ``offered_load``.
* ``queue_capacity`` bounds *waiting* windows only; the in-service window
  does not count against the ingest buffer.

Works with any engine backend (simulated FPGA, modeled GPP, measured
software): service time is whatever ``process_batch`` reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph.temporal_graph import TemporalGraph
from ..serving.engine import make_stream_arrivals
from ..serving.simulator import simulate_queue

__all__ = ["QueueStats", "replay_under_load"]


@dataclass(frozen=True)
class QueueStats:
    """Response-time statistics of a loaded replay."""

    windows: int
    utilization: float          # busy time / makespan, in [0, 1]
    mean_wait_s: float
    mean_response_s: float      # wait + service
    p95_response_s: float
    max_queue_depth: int        # waiting windows (in-service excluded)
    dropped_windows: int        # arrivals while the queue was at capacity
    offered_load: float = 0.0   # arrival rate x mean service
    p99_response_s: float = 0.0

    @property
    def stable(self) -> bool:
        """A sustainable deployment keeps offered load below 1."""
        return self.offered_load < 1.0


def replay_under_load(backend, graph: TemporalGraph, window_s: float,
                      start: int = 0, end: int | None = None,
                      speedup: float = 1.0,
                      queue_capacity: int | None = None) -> QueueStats:
    """FIFO single-server queue driven by the stream's own window arrivals.

    ``speedup`` compresses stream time (2.0 = windows arrive twice as fast),
    the standard way to stress a deployment beyond its recorded load.
    ``queue_capacity`` (optional) drops arrivals when the backlog is full,
    modelling a bounded ingest buffer.

    Thin wrapper over the shared event core: one stream's window-close
    arrivals (:func:`repro.serving.make_stream_arrivals`) through one
    server (:func:`repro.serving.simulate_queue`); use
    :class:`repro.serving.ServingEngine` for multi-shard / multi-stream /
    pooled / hybrid deployments.
    """
    arrivals = make_stream_arrivals(graph, window_s, num_streams=1,
                                    start=start, end=end, speedup=speedup)
    res = simulate_queue([(a.t, a.batch) for a in arrivals],
                         backend.process_batch, num_servers=1,
                         queue_capacity=queue_capacity)
    return QueueStats(windows=res.jobs,
                      utilization=res.utilization,
                      mean_wait_s=res.mean_wait_s,
                      mean_response_s=res.mean_response_s,
                      p95_response_s=res.p95_response_s,
                      max_queue_depth=res.max_queue_depth,
                      dropped_windows=res.dropped,
                      offered_load=res.offered_load,
                      p99_response_s=res.p99_response_s)
