"""Streaming inference engines and real-time replay."""

from .engine import (EngineReport, ModeledGPPBackend,  # noqa: F401
                     SimulatedFPGABackend, SoftwareBackend, run_engine)
from .queueing import QueueStats, replay_under_load  # noqa: F401
from .realtime import (FIFTEEN_MINUTES, WindowPoint,  # noqa: F401
                       realtime_replay, summarize)

__all__ = [
    "EngineReport", "SoftwareBackend", "SimulatedFPGABackend",
    "ModeledGPPBackend", "run_engine",
    "realtime_replay", "WindowPoint", "FIFTEEN_MINUTES", "summarize",
    "QueueStats", "replay_under_load",
]
