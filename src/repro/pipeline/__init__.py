"""Streaming inference engines and real-time replay.

Engine backend protocol
-----------------------
Every replay/queueing entry point here — and the sharded serving layer in
:mod:`repro.serving` — drives backends through one duck-typed contract:

``process_batch(batch: EdgeBatch) -> float``
    Process one chronological edge batch and return its *service time in
    seconds*: measured wall-clock for :class:`SoftwareBackend`, simulated
    for :class:`SimulatedFPGABackend`, modeled for
    :class:`ModeledGPPBackend`.  Calls arrive in stream order, and
    implementations may advance functional vertex state as a side effect —
    callers must therefore never reuse one backend instance across
    independent replays (or shards) unless they intend shared state.

``name: str`` (optional)
    Label used in reports; falls back to the class name.

``measured: bool`` (optional)
    The **measured variant** of the protocol.  A backend carrying
    ``measured = True`` (see :class:`repro.serving.MeasuredBackend`)
    promises that ``process_batch`` *executes* the batch's real kernels
    and returns their measured wall-clock seconds, and that its
    ``model``/``graph`` attributes are picklable — the serving engine
    then runs it through a persistent worker pool
    (:class:`repro.serving.WorkerPool`, one process lane per worker)
    instead of calling it inline, reconciling measured durations back
    into deterministic event time (:mod:`repro.serving.measured`).
    Modeled backends simply omit the attribute.

Capacity contract
-----------------
How many backend instances serve at once is a *fleet* property, not a
backend one: :class:`repro.serving.CapacityConfig` fixes the invariant
``micro_batch × replicas == global_capacity`` at construction (the
``BatchConfig`` idiom), and the serving engine's autoscaler resizes
``replicas`` within ``[min_replicas, max_replicas]`` mid-run without
ever changing a backend's per-call contract — each instance still sees
stream-ordered ``process_batch`` calls for the vertices it currently
owns.  Backends therefore never need to know the fleet is elastic;
state that must follow ownership moves travels through the memsync
version cache, not through the backend.

New backends need no registration to work with these functions; to be
constructible by name (per serving shard, from the CLI), add a factory to
:class:`repro.serving.BackendRegistry`.
"""

from .engine import (EngineReport, LinearCostBackend,  # noqa: F401
                     ModeledGPPBackend, SimulatedFPGABackend,
                     SoftwareBackend, run_engine)
from .queueing import QueueStats, replay_under_load  # noqa: F401
from .realtime import (FIFTEEN_MINUTES, WindowPoint,  # noqa: F401
                       realtime_replay, summarize)

__all__ = [
    "EngineReport", "SoftwareBackend", "SimulatedFPGABackend",
    "ModeledGPPBackend", "LinearCostBackend", "run_engine",
    "realtime_replay", "WindowPoint", "FIFTEEN_MINUTES", "summarize",
    "QueueStats", "replay_under_load",
]
