"""Real-time streaming replay in fixed time windows (Fig. 5, right column).

The paper's production-environment experiment: replay the test stream in
15-minute windows, submit each window's edges as one batch, and record the
inference latency per window.  Window sizes vary wildly (the diurnal cycle
and burstiness of the generators show up directly), which is what produces
the latency fluctuation the paper highlights on the resource-constrained
ZCU104.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.batching import iter_time_window_spans
from ..graph.temporal_graph import TemporalGraph

__all__ = ["WindowPoint", "realtime_replay", "FIFTEEN_MINUTES"]

FIFTEEN_MINUTES = 15 * 60.0


@dataclass(frozen=True)
class WindowPoint:
    """Latency record for one replay window."""

    t_start_s: float        # window start (wall-clock boundary), stream time
    n_edges: int
    latency_s: float


def realtime_replay(backend, graph: TemporalGraph,
                    window_s: float = FIFTEEN_MINUTES,
                    start: int = 0, end: int | None = None
                    ) -> list[WindowPoint]:
    """Replay ``[start, end)`` in time windows through ``backend``.

    ``backend`` follows the engine protocol (``process_batch -> seconds``).
    Returns one point per non-empty window, in stream order.
    ``t_start_s`` is the true window boundary from
    :func:`~repro.graph.batching.iter_time_window_spans` — not the first
    edge's timestamp, which lands anywhere inside the window.
    """
    points: list[WindowPoint] = []
    for w_start, _, batch in iter_time_window_spans(graph, window_s,
                                                    start=start, end=end):
        latency = backend.process_batch(batch)
        points.append(WindowPoint(t_start_s=float(w_start),
                                  n_edges=len(batch),
                                  latency_s=latency))
    return points


def summarize(points: list[WindowPoint]) -> dict[str, float]:
    """Mean/percentile latency summary of a replay."""
    if not points:
        return {"windows": 0, "mean_s": 0.0, "p95_s": 0.0, "max_s": 0.0,
                "mean_edges": 0.0}
    lats = np.array([p.latency_s for p in points])
    sizes = np.array([p.n_edges for p in points])
    return {"windows": float(len(points)),
            "mean_s": float(lats.mean()),
            "p95_s": float(np.percentile(lats, 95)),
            "max_s": float(lats.max()),
            "mean_edges": float(sizes.mean())}
