"""Analytical performance models: §V equations, GPP baselines, validation."""

from .characterize import (Characterization, characterize,  # noqa: F401
                           lever_analysis)
from .gpp import CPU_1T, CPU_32T, GPU, GPPCostModel  # noqa: F401
from .performance_model import PerformanceModel, PerfPrediction  # noqa: F401
from .validation import ValidationPoint, validate_performance_model  # noqa: F401

__all__ = [
    "PerformanceModel", "PerfPrediction",
    "GPPCostModel", "CPU_1T", "CPU_32T", "GPU",
    "ValidationPoint", "validate_performance_model",
    "Characterization", "characterize", "lever_analysis",
]
