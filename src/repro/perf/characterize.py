"""Bottleneck characterization: the paper's §III "key points" as an API.

Section III derives three design observations from the case study:

1. on a serial processor the GNN computation dominates (>80 % of time,
   half of it attention-score computation);
2. the time-encoding matmuls are removable by reversing computation order;
3. on parallel machines the bottleneck moves to vertex-state traffic.

This module computes the same verdicts for *any* (model, platform) pair —
compute-bound vs. memory-bound, which pipeline stage dominates, and the
marginal benefit of each co-design lever — so a user targeting a different
board or model size can re-derive the co-design priorities instead of
trusting the paper's instance.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.config import HardwareConfig
from ..hw.eu import EmbeddingUnit
from ..hw.muu import MemoryUpdateUnit
from ..models.config import ModelConfig
from ..profiling.op_counter import Convention, count_ops
from .performance_model import PerformanceModel

__all__ = ["Characterization", "characterize", "lever_analysis"]


@dataclass(frozen=True)
class Characterization:
    """Bottleneck verdict for one (model, hardware) pair."""

    bound: str                   # "compute" | "memory"
    dominant_stage: str          # slowest pipeline stage
    t_comp_s: float
    t_ls_s: float
    compute_margin: float        # t_comp / t_ls (>1 = compute-bound)
    gnn_share_of_macs: float     # §III key point 1
    time_encoding_share: float   # §III key point 2 (removable matmuls)
    state_traffic_share: float   # §III key point 3 (vertex-state words)


def characterize(model_cfg: ModelConfig, hw: HardwareConfig
                 ) -> Characterization:
    """Compute the §III verdicts for this design point."""
    pm = PerformanceModel(model_cfg, hw)
    pred = pm.pipeline_period()
    n_nodes = 2 * hw.edges_per_cu
    cycles = {}
    cycles.update(MemoryUpdateUnit(model_cfg, hw).stage_cycles(n_nodes))
    cycles.update(EmbeddingUnit(model_cfg, hw).stage_cycles(n_nodes))
    dominant = max(cycles, key=cycles.get)

    counts = count_ops(model_cfg, Convention.PAPER)
    # Removable time-encoding work: difference against the LUT variant.
    lut_counts = count_ops(model_cfg.with_(lut_time_encoder=True),
                           Convention.PAPER)
    te_share = 1.0 - lut_counts.total_macs / counts.total_macs \
        if not model_cfg.lut_time_encoder else 0.0
    state_words = counts.mems["memory"] + counts.mems["update"]
    return Characterization(
        bound="compute" if pred.t_comp_s >= pred.t_ls_s else "memory",
        dominant_stage=dominant,
        t_comp_s=pred.t_comp_s,
        t_ls_s=pred.t_ls_s,
        compute_margin=pred.t_comp_s / max(pred.t_ls_s, 1e-30),
        gnn_share_of_macs=counts.gnn_macs / counts.total_macs,
        time_encoding_share=te_share,
        state_traffic_share=state_words / counts.total_mems,
    )


def lever_analysis(base_cfg: ModelConfig, hw: HardwareConfig,
                   batch_size: int = 1000) -> list[dict]:
    """Marginal latency effect of each co-design lever, applied alone.

    Returns one row per lever with the predicted latency ratio vs. the
    given base config — a quantitative version of the §III design
    discussion, valid for any platform.
    """
    if not base_cfg.simplified_attention:
        # The performance model targets the co-designed datapath; start
        # from the SAT variant as the reference point.
        base_cfg = base_cfg.with_(simplified_attention=True)
    base = PerformanceModel(base_cfg, hw).predict(batch_size).latency_s
    levers = {
        "lut_encoder": base_cfg.with_(lut_time_encoder=True),
        "pruning_np_s": base_cfg.with_(pruning_budget=max(
            1, base_cfg.num_neighbors // 5)),
        "double_sg": None,      # hardware lever
        "double_bandwidth": None,
    }
    rows = []
    for name, cfg in levers.items():
        if cfg is not None:
            lat = PerformanceModel(cfg, hw).predict(batch_size).latency_s
        elif name == "double_sg":
            lat = PerformanceModel(base_cfg, hw.with_(sg=2 * hw.sg)) \
                .predict(batch_size).latency_s
        else:
            from ..hw.platforms import FPGAPlatform
            p = hw.platform
            fat = FPGAPlatform(name=p.name + "-2xbw", dies=p.dies,
                               luts_per_die=p.luts_per_die,
                               dsps_per_die=p.dsps_per_die,
                               brams_per_die=p.brams_per_die,
                               urams_per_die=p.urams_per_die,
                               ddr_bw_gbs=2 * p.ddr_bw_gbs,
                               memory_channels=p.memory_channels)
            lat = PerformanceModel(base_cfg, hw.with_(platform=fat)) \
                .predict(batch_size).latency_s
        rows.append({"lever": name, "latency_ratio": lat / base,
                     "helps": lat < base * 0.999})
    return rows
