"""Analytical performance model of the accelerator (§V, Eqs. 18-22).

Predicts pipeline period, throughput and latency from algorithm parameters
(model dimensions, neighbor budget), design configuration (``Sg``, ``SFAM``,
``SFTM``, ``Nb``, frequency) and memory characteristics (``alpha(l) * BW``).

Deliberately idealised, exactly as the paper's model is: no pipeline
fill/flush overhead, no DRAM refresh, no Updater stalls.  Those effects live
only in the cycle simulator, which is why predicted-vs-actual disagree by a
few-to-several percent (the Fig. 6 experiment, reproduced by
``repro.perf.validation``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.accelerator import COMPUTE_STAGES
from ..hw.config import HardwareConfig
from ..hw.eu import EmbeddingUnit
from ..hw.memory_model import DDRModel
from ..hw.muu import MemoryUpdateUnit
from ..models.config import ModelConfig

__all__ = ["PerformanceModel", "PerfPrediction"]


@dataclass(frozen=True)
class PerfPrediction:
    """Model outputs for one (design, batch-size) point."""

    tp_s: float             # pipeline period Tp (Eq. 18)
    t_comp_s: float         # T_comp^max (Eq. 19-20)
    t_ls_s: float           # T_LS (Eq. 21)
    throughput_eps: float   # Nb / Tp (Eq. 22)
    latency_s: float        # (beta - 1 + ceil(N / Nb)) * Tp (Eq. 22)
    batch_size: int


class PerformanceModel:
    """Closed-form predictor for a (model config, hardware config) pair."""

    def __init__(self, model_cfg: ModelConfig, hw: HardwareConfig):
        if not model_cfg.simplified_attention:
            raise ValueError("the performance model targets the co-designed "
                             "(simplified-attention) accelerator")
        self.cfg = model_cfg
        self.hw = hw
        self.ddr: DDRModel = hw.ddr(refresh=False)   # idealised memory
        self._muu = MemoryUpdateUnit(model_cfg, hw)
        self._eu = EmbeddingUnit(model_cfg, hw)
        # Pipeline depth beta: memory ops (4) + compute stages.
        self.beta = 4 + len(COMPUTE_STAGES)

    # ------------------------------------------------------------------ #
    def t_comp_max(self) -> float:
        """Eq. (19)-(20): the slowest compute stage's duration (seconds)."""
        n_nodes = 2 * self.hw.edges_per_cu
        cycles = {}
        cycles.update(self._muu.stage_cycles(n_nodes))
        cycles.update(self._eu.stage_cycles(n_nodes))
        return max(cycles.values()) * self.hw.clock_s

    def t_ls(self) -> float:
        """Eq. (21): total load/store time of one processing batch.

        Mirrors the simulator's transfer inventory but at idealised
        ``alpha(l) * BW`` bandwidth with no fixed request latency and no
        refresh — the Section-V simplifications.
        """
        cfg, hw = self.cfg, self.hw
        nb = hw.nb
        n_nodes = 2 * nb
        k, keff = cfg.num_neighbors, cfg.effective_neighbors
        msg = cfg.raw_message_dim
        channels = max(1, hw.platform.memory_channels)
        bw = self.ddr.peak_bw_gbs * 1e9 / self.ddr.word_bytes  # words/s

        def t(words: float, burst: float) -> float:
            return words / (bw * self.ddr.alpha(burst))

        vertex_row = 3 * k + cfg.memory_dim + msg + 2
        nbr_row = cfg.memory_dim + cfg.edge_dim + (cfg.node_dim or 0)
        store_row = cfg.memory_dim + msg + 3
        total = (t(nb * (3 + cfg.edge_dim), 3 + cfg.edge_dim)          # edges
                 + t(n_nodes * vertex_row, vertex_row) / channels      # loads
                 + t(n_nodes * keff * nbr_row, nbr_row) / channels     # prefetch
                 + t(n_nodes * store_row, store_row) / channels        # stores
                 + t(n_nodes * cfg.embed_dim, cfg.embed_dim) / channels)
        return total

    def t_fill(self) -> float:
        """First-batch traversal time (pipeline fill).

        The paper's Eq. (22) charges ``(beta - 1) * Tp`` for the fill, which
        assumes all beta stages last a full period.  With the strongly
        unequal stage durations of this design (the GRU gates and the FTM
        dominate), that over-charges small batches badly, so we use the
        exact closed form instead: the serial traversal of one processing
        batch through loads, the compute chain, and the write-back.
        """
        n_nodes = 2 * self.hw.edges_per_cu
        cycles = {}
        cycles.update(self._muu.stage_cycles(n_nodes))
        cycles.update(self._eu.stage_cycles(n_nodes))
        return self.t_ls() + sum(cycles.values()) * self.hw.clock_s

    def pipeline_period(self) -> PerfPrediction:
        """Eq. (18): ``Tp = max(T_comp^max, T_LS)`` and derived steady rates."""
        t_comp = self.t_comp_max()
        t_ls = self.t_ls()
        tp = max(t_comp, t_ls)
        return PerfPrediction(tp_s=tp, t_comp_s=t_comp, t_ls_s=t_ls,
                              throughput_eps=self.hw.nb / tp,
                              latency_s=self.t_fill(),
                              batch_size=self.hw.nb)

    def predict(self, batch_size: int) -> PerfPrediction:
        """Eq. (22) with the refined fill: ``T_fill + (ceil(N/Nb) - 1) * Tp``."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        base = self.pipeline_period()
        n_pb = -(-batch_size // self.hw.nb)           # ceil(N / Nb)
        latency = self.t_fill() + (n_pb - 1) * base.tp_s
        # Throughput at batch size N saturates toward Nb/Tp as the fill
        # amortises — the shape of the Fig. 5/6 throughput curves.
        return PerfPrediction(tp_s=base.tp_s, t_comp_s=base.t_comp_s,
                              t_ls_s=base.t_ls_s,
                              throughput_eps=batch_size / latency,
                              latency_s=latency, batch_size=batch_size)
