"""Calibrated cost models for the CPU / GPU baselines.

This is the documented hardware substitution (DESIGN.md §1): we have neither
the dual Xeon Gold 5120 nor the Titan Xp, so cross-platform comparisons use
analytic cost models of the form

    latency(N) = T_batch + N * (2 * MACs_per_emb * t_mac
                                + 2 * MEMs_per_emb * t_word)

i.e. a fixed per-batch framework overhead (kernel-launch stack, Python
dispatch, synchronisation — the term that dominates small batches and gives
GPUs their flat low-batch latency curves) plus roofline-style marginal cost
proportional to the model's operation counts.

Calibration anchors come from the paper's own measurements (Fig. 5 / Fig. 7
operating points for the 32-thread CPU and the GPU): CPU ~64 ms and GPU
~8 ms at batch 200 on Wikipedia, saturating near ~6.5 kE/s and ~60 kE/s
respectively.  Because marginal cost scales with op counts, the same model
prices every TGNN variant (baseline, simplified, APAN) consistently.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..profiling.op_counter import OpCounts

__all__ = ["GPPCostModel", "CPU_1T", "CPU_32T", "GPU"]


@dataclass(frozen=True)
class GPPCostModel:
    """Latency/throughput model of a general-purpose platform."""

    name: str
    batch_overhead_s: float      # fixed per-batch framework cost
    per_mac_s: float             # marginal seconds per MAC
    per_word_s: float            # marginal seconds per memory word
    overhead_scale_no_sample: float = 0.6
    # APAN-style models launch fewer kernels (no sampler / neighbor fetch);
    # their fixed overhead shrinks by this factor.

    def marginal_edge_s(self, counts: OpCounts) -> float:
        """Marginal cost of one edge (two dynamic node embeddings)."""
        return 2.0 * (counts.total_macs * self.per_mac_s
                      + counts.total_mems * self.per_word_s)

    def latency_s(self, counts: OpCounts, batch_edges: int,
                  light_runtime: bool = False) -> float:
        """End-to-end latency of one batch of ``batch_edges`` new edges."""
        if batch_edges <= 0:
            raise ValueError("batch_edges must be positive")
        overhead = self.batch_overhead_s
        if light_runtime:
            overhead *= self.overhead_scale_no_sample
        return overhead + batch_edges * self.marginal_edge_s(counts)

    def throughput_eps(self, counts: OpCounts, batch_edges: int,
                       light_runtime: bool = False) -> float:
        """Sustained edges/second when streaming batches of this size."""
        return batch_edges / self.latency_s(counts, batch_edges,
                                            light_runtime=light_runtime)

    def part_times_s(self, counts: OpCounts, fixed_part_s: dict[str, float]
                     ) -> dict[str, float]:
        """Per-part times per embedding (Table I column structure).

        Compute-dominated parts follow the MAC rate, memory-dominated parts
        the word rate; ``fixed_part_s`` adds per-part dispatch floors (the
        sample/update parts are dominated by them on GPPs — the paper's
        "update is the bottleneck on parallel machines" observation).
        """
        out = {}
        for part in counts.macs:
            out[part] = (counts.macs[part] * self.per_mac_s
                         + counts.mems[part] * self.per_word_s
                         + fixed_part_s.get(part, 0.0))
        return out


def _calibrated(name: str, latency_at_200_s: float, plateau_keps: float,
                compute_fraction: float, macs_per_emb: float,
                words_per_emb: float) -> GPPCostModel:
    """Solve (T_batch, t_mac, t_word) from two published operating points.

    ``plateau_keps`` fixes the marginal per-edge cost; the batch-200 latency
    then fixes the overhead.  ``compute_fraction`` splits the marginal cost
    between the MAC and memory rails.
    """
    marginal = 1.0 / (plateau_keps * 1e3)            # s per edge at plateau
    per_mac = compute_fraction * marginal / (2.0 * macs_per_emb)
    per_word = (1.0 - compute_fraction) * marginal / (2.0 * words_per_emb)
    overhead = latency_at_200_s - 200.0 * marginal
    if overhead <= 0:
        raise ValueError(f"{name}: anchors imply non-positive overhead")
    return GPPCostModel(name=name, batch_overhead_s=overhead,
                        per_mac_s=per_mac, per_word_s=per_word)


# Baseline TGN-attn op counts on Wikipedia dims (the calibration workload).
_BASE_MACS = 835.5e3
_BASE_WORDS = 5.7e3

# Anchors from Fig. 5 / Fig. 7 (Wikipedia, baseline TGN):
#   CPU (32 threads): ~64 ms at batch 200, plateau ~6.5 kE/s.
#   GPU (Titan Xp):   ~8 ms at batch 200, plateau ~60 kE/s.
#   CPU (1 thread):   Table II measured 0.85 kE/s, overhead ~5 ms.
CPU_32T = _calibrated("cpu-32t", latency_at_200_s=64e-3, plateau_keps=6.5,
                      compute_fraction=0.6, macs_per_emb=_BASE_MACS,
                      words_per_emb=_BASE_WORDS)
GPU = _calibrated("gpu", latency_at_200_s=8e-3, plateau_keps=60.0,
                  compute_fraction=0.7, macs_per_emb=_BASE_MACS,
                  words_per_emb=_BASE_WORDS)
CPU_1T = _calibrated("cpu-1t", latency_at_200_s=240e-3, plateau_keps=0.85,
                     compute_fraction=0.8, macs_per_emb=_BASE_MACS,
                     words_per_emb=_BASE_WORDS)
