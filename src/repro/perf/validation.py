"""Predicted-vs-actual validation of the performance model (Fig. 6).

Sweeps batch size, runs both the analytical model (§V) and the cycle
simulator on the same design point, and reports relative errors.  The paper
reports 9.9-12.8 % average error, attributed to HLS pipeline flush cycles
and DRAM refresh — exactly the effects our simulator includes and our
analytical model omits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.temporal_graph import TemporalGraph
from ..hw.accelerator import FPGAAccelerator
from ..hw.config import HardwareConfig
from ..models.tgn import TGNN
from .performance_model import PerformanceModel

__all__ = ["ValidationPoint", "validate_performance_model"]


@dataclass(frozen=True)
class ValidationPoint:
    """One batch-size point of the Fig. 6 comparison."""

    batch_size: int
    predicted_latency_s: float
    actual_latency_s: float
    predicted_throughput_eps: float
    actual_throughput_eps: float

    @property
    def latency_error(self) -> float:
        return abs(self.predicted_latency_s - self.actual_latency_s) \
            / self.actual_latency_s

    @property
    def throughput_error(self) -> float:
        return abs(self.predicted_throughput_eps - self.actual_throughput_eps) \
            / self.actual_throughput_eps


def validate_performance_model(model: TGNN, hw: HardwareConfig,
                               graph: TemporalGraph,
                               batch_sizes: list[int],
                               warmup_edges: int = 0
                               ) -> list[ValidationPoint]:
    """Run the Fig. 6 sweep; returns one point per batch size."""
    perf = PerformanceModel(model.cfg, hw)
    points = []
    for n in batch_sizes:
        end = min(warmup_edges + max(n, hw.nb), graph.num_edges)
        acc = FPGAAccelerator(model, hw)
        rt = model.new_runtime(graph)
        if warmup_edges:
            from ..graph.batching import iter_fixed_size
            for b in iter_fixed_size(graph, n, end=warmup_edges):
                model.infer_batch(b, rt, graph)
        report = acc.run_stream(graph, n, start=warmup_edges, end=end, rt=rt)
        pred = perf.predict(n)
        points.append(ValidationPoint(
            batch_size=n,
            predicted_latency_s=pred.latency_s,
            actual_latency_s=report.mean_latency_s,
            predicted_throughput_eps=pred.throughput_eps,
            actual_throughput_eps=report.throughput_eps))
    return points
