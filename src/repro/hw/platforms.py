"""Hardware platform specifications (Table III) and design points (Table IV).

``FPGAPlatform`` captures the per-die resource budget and memory system of a
board; ``U200`` and ``ZCU104`` are the two boards the paper targets.  The
published design configurations for each are exposed as
:data:`U200_DESIGN` / :data:`ZCU104_DESIGN` (see ``hw.config``).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FPGAPlatform", "U200", "ZCU104"]


@dataclass(frozen=True)
class FPGAPlatform:
    """Resource and memory budget of an FPGA board."""

    name: str
    dies: int                  # Super Logic Regions
    luts_per_die: int
    dsps_per_die: int
    brams_per_die: int         # 36 Kb blocks
    urams_per_die: int         # 288 Kb blocks
    ddr_bw_gbs: float
    memory_channels: int = 1

    @property
    def total_luts(self) -> int:
        return self.dies * self.luts_per_die

    @property
    def total_dsps(self) -> int:
        return self.dies * self.dsps_per_die

    @property
    def total_brams(self) -> int:
        return self.dies * self.brams_per_die

    @property
    def total_urams(self) -> int:
        return self.dies * self.urams_per_die

    def fits(self, lut: int, dsp: int, bram: int, uram: int) -> bool:
        """Whether a resource estimate fits the board's total budget."""
        return (lut <= self.total_luts and dsp <= self.total_dsps
                and bram <= self.total_brams and uram <= self.total_urams)


# Table III.
U200 = FPGAPlatform(name="u200", dies=3, luts_per_die=394_000,
                    dsps_per_die=2280, brams_per_die=720, urams_per_die=320,
                    ddr_bw_gbs=77.0, memory_channels=4)
ZCU104 = FPGAPlatform(name="zcu104", dies=1, luts_per_die=230_000,
                      dsps_per_die=1728, brams_per_die=312, urams_per_die=96,
                      ddr_bw_gbs=19.2, memory_channels=1)
