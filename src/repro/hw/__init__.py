"""FPGA accelerator simulator: modules, timing, resources (§IV / Table IV)."""

from .accelerator import COMPUTE_STAGES, FPGAAccelerator, RunReport  # noqa: F401
from .config import U200_DESIGN, ZCU104_DESIGN, HardwareConfig  # noqa: F401
from .dse import (DesignPoint, SweepSpec, best_design, explore,  # noqa: F401
                  pareto_frontier)
from .eu import EU_STAGES, EmbeddingUnit  # noqa: F401
from .memory_model import DDRModel  # noqa: F401
from .multi_die import (Floorplan, plan_floorplan,  # noqa: F401
                        plan_shard_dies, plan_shard_dies_traffic_aware)
from .muu import MUU_STAGES, MemoryUpdateUnit  # noqa: F401
from .platforms import U200, ZCU104, FPGAPlatform  # noqa: F401
from .resources import ResourceEstimate, estimate_resources  # noqa: F401
from .trace import pipeline_overlap, render_gantt, stage_utilization  # noqa: F401
from .updater import UpdaterCache, UpdaterReport  # noqa: F401

__all__ = [
    "FPGAAccelerator", "RunReport", "COMPUTE_STAGES",
    "HardwareConfig", "U200_DESIGN", "ZCU104_DESIGN",
    "FPGAPlatform", "U200", "ZCU104",
    "DDRModel",
    "MemoryUpdateUnit", "MUU_STAGES",
    "EmbeddingUnit", "EU_STAGES",
    "UpdaterCache", "UpdaterReport",
    "ResourceEstimate", "estimate_resources",
    "DesignPoint", "SweepSpec", "explore", "pareto_frontier", "best_design",
    "Floorplan", "plan_floorplan", "plan_shard_dies",
    "plan_shard_dies_traffic_aware",
    "stage_utilization", "render_gantt", "pipeline_overlap",
]
