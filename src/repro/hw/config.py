"""Accelerator design configuration (the knobs of Table IV and §V).

A :class:`HardwareConfig` fixes the parallelism of every compute module, the
processing-batch size, the clock, and simulator fidelity options.  The two
published design points are :data:`U200_DESIGN` and :data:`ZCU104_DESIGN`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .memory_model import DDRModel
from .platforms import U200, ZCU104, FPGAPlatform

__all__ = ["HardwareConfig", "U200_DESIGN", "ZCU104_DESIGN"]


@dataclass(frozen=True)
class HardwareConfig:
    """Design parameters of the accelerator (§V notation in comments)."""

    platform: FPGAPlatform
    n_cu: int = 1                  # Ncu: computation units
    sg: int = 4                    # Sg: each MUU gate uses an Sg x Sg array
    s_fam: int = 8                 # SFAM: aggregation-tree parallelism
    s_ftm: tuple[int, int] = (4, 4)  # SFTM: transform array shape
    nb: int = 16                   # Nb: edges per processing (pipeline) batch
    freq_mhz: float = 125.0        # Ffreq
    word_bytes: int = 4            # Zd (float32)
    # --- Updater (fully-associative cache with rotating pointers) -------- #
    updater_lines: int = 64
    commit_scan: int = 3           # cache lines scanned per cycle (§VI)
    # --- fidelity knobs ---------------------------------------------------- #
    pipeline_flush_cycles: int = 24   # per-stage fill/drain overhead (HLS)
    die_crossing_cycles: int = 8      # SLR-boundary FIFO latency
    prefetch: bool = True             # overlap neighbor fetch with MUU
    loader_overlap: int = 8           # in-flight gather requests

    def __post_init__(self):
        if self.n_cu <= 0 or self.sg <= 0 or self.s_fam <= 0:
            raise ValueError("parallelism parameters must be positive")
        if self.nb <= 0:
            raise ValueError("processing batch size must be positive")
        if self.nb % self.n_cu != 0:
            raise ValueError("nb must divide evenly across CUs")
        if self.commit_scan <= 0:
            raise ValueError("commit_scan must be positive")

    # ------------------------------------------------------------------ #
    @property
    def clock_s(self) -> float:
        """Seconds per cycle."""
        return 1.0 / (self.freq_mhz * 1e6)

    @property
    def sg2(self) -> int:
        """MACs per cycle in one MUU gate array."""
        return self.sg * self.sg

    @property
    def sftm2(self) -> int:
        """MACs per cycle in the FTM array."""
        return self.s_ftm[0] * self.s_ftm[1]

    @property
    def edges_per_cu(self) -> int:
        """Edges of one processing batch handled by each CU."""
        return self.nb // self.n_cu

    def ddr(self, refresh: bool = False) -> DDRModel:
        """DDR model for this platform (refresh on = simulator fidelity)."""
        return DDRModel(peak_bw_gbs=self.platform.ddr_bw_gbs,
                        word_bytes=self.word_bytes, refresh=refresh)

    def with_(self, **kwargs) -> "HardwareConfig":
        return replace(self, **kwargs)


# Table IV design points.
U200_DESIGN = HardwareConfig(platform=U200, n_cu=2, sg=8, s_fam=16,
                             s_ftm=(8, 8), nb=32, freq_mhz=250.0,
                             updater_lines=128)
ZCU104_DESIGN = HardwareConfig(platform=ZCU104, n_cu=1, sg=4, s_fam=8,
                               s_ftm=(4, 4), nb=16, freq_mhz=125.0,
                               updater_lines=64)
