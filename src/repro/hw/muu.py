"""Memory Update Unit (MUU): the GRU mapped onto Sg x Sg MAC arrays (§IV-B).

The MUU implements UPDT as four pipelined gates — Update, Reset, Memory,
Merging — connected by on-chip FIFOs.  Each of the three matrix gates owns an
``Sg x Sg`` multiply-accumulate array; the merging gate is element-wise.

This class provides the *timing* model (cycles per pipeline stage for a
given node count) and a standalone functional kernel used by unit tests; the
top-level accelerator obtains its functional results from the shared model
kernels, guaranteeing bit-identical embeddings across software and simulator.
"""

from __future__ import annotations

import numpy as np

from ..models.config import ModelConfig
from ..models.tgn import TGNN
from .config import HardwareConfig

__all__ = ["MemoryUpdateUnit", "MUU_STAGES"]

MUU_STAGES = ("muu_time_enc", "muu_update_gate", "muu_reset_gate",
              "muu_memory_gate", "muu_merge_gate")


class MemoryUpdateUnit:
    """Timing model of one CU's MUU."""

    def __init__(self, model_cfg: ModelConfig, hw: HardwareConfig):
        self.cfg = model_cfg
        self.hw = hw

    def stage_cycles(self, n_nodes: int) -> dict[str, int]:
        """Cycles per MUU pipeline stage to update ``n_nodes`` memories.

        Gate stages process ``Sg^2`` MACs per cycle over the input product
        (``msg x mem``) and hidden product (``mem x mem``).  With the LUT
        encoder, the time-feature slice of the input product is replaced by
        one table lookup per node (1 cycle each, fully pipelined) and the
        encoding stage itself disappears into that lookup.
        """
        cfg, hw = self.cfg, self.hw
        m, tau = cfg.memory_dim, cfg.time_dim
        msg = cfg.message_dim
        if cfg.lut_time_encoder:
            te = n_nodes                       # one premultiplied lookup/node
            gate_in = (msg - tau) * m          # time slice folded into LUT
        else:
            te = _ceil(n_nodes * tau, hw.sg2)  # omega*dt + phi, cos in LUT/DSP
            gate_in = msg * m
        gate = _ceil(n_nodes * (gate_in + m * m), hw.sg2)
        merge = _ceil(n_nodes * 4 * m, hw.sg)  # element-wise lanes
        if cfg.memory_updater == "rnn":
            # Single-gate updater: reset/memory gate arrays sit idle.
            return {
                "muu_time_enc": te,
                "muu_update_gate": gate,
                "muu_reset_gate": 0,
                "muu_memory_gate": 0,
                "muu_merge_gate": merge,
            }
        return {
            "muu_time_enc": te,
            "muu_update_gate": gate,
            "muu_reset_gate": gate,
            "muu_memory_gate": gate,
            "muu_merge_gate": merge,
        }

    # ------------------------------------------------------------------ #
    @staticmethod
    def functional(model: TGNN, raw_messages: np.ndarray, dt: np.ndarray,
                   memory: np.ndarray) -> np.ndarray:
        """Reference GRU computation (delegates to the shared kernel)."""
        if model._premul_cache is not None and model.cfg.lut_time_encoder:
            return model._gru_lut_np(raw_messages, dt, memory)
        return model.memory_updater.forward_numpy(raw_messages, dt, memory)


def _ceil(a: int, b: int) -> int:
    return -(-int(a) // int(b))
