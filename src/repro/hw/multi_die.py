"""Multi-die (SLR) floorplanning model (§IV-B, Fig. 2 right).

Advanced FPGAs like the Alveo U200 are built from multiple Super Logic
Regions with a limited number of inter-die connections; the paper
distributes the CUs across SLR0/SLR2 with the shared front end (edge
parser, data loader, updater) on SLR1, crossing die boundaries through
on-chip FIFOs.

This module assigns accelerator modules to dies, verifies the per-die
resource budget, and counts boundary crossings on the dataflow — the count
feeds the ``die_crossing_cycles`` penalty in the accelerator simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..models.config import ModelConfig
from .config import HardwareConfig
from .resources import estimate_resources

__all__ = ["Floorplan", "plan_floorplan", "plan_shard_dies",
           "plan_shard_dies_traffic_aware"]

# Dataflow edges between top-level modules (producer -> consumer).
DATAFLOW = [
    ("edge_parser", "data_loader"),
    ("data_loader", "cu"),        # expanded per CU
    ("cu", "updater"),            # expanded per CU
    ("updater", "data_loader"),   # write-back sharing the controller
]


@dataclass(frozen=True)
class Floorplan:
    """Module -> die assignment plus derived crossing statistics."""

    assignment: dict[str, int]      # module name -> die index
    crossings: int                  # dataflow edges spanning dies
    per_die_dsp: dict[int, int]     # estimated DSPs per die
    feasible: bool                  # every die within its budget

    def crossing_for(self, producer: str, consumer: str) -> bool:
        return self.assignment[producer] != self.assignment[consumer]


def plan_floorplan(model_cfg: ModelConfig, hw: HardwareConfig) -> Floorplan:
    """Assign modules to dies following the paper's U200 layout.

    Single-die parts trivially place everything on die 0.  Multi-die parts
    place the shared front end (parser, loader, updater) on the middle die
    and spread the CUs over the remaining dies round-robin — the Fig. 2
    arrangement generalised to any die count.
    """
    dies = hw.platform.dies
    assignment: dict[str, int] = {}
    shared_die, cu_dies = _spread_over_dies(hw.n_cu, dies)
    for name in ("edge_parser", "data_loader", "updater"):
        assignment[name] = shared_die
    for i, die in enumerate(cu_dies):
        assignment[f"cu{i}"] = die

    # Crossings: loader->CU and CU->updater per CU, when dies differ.
    crossings = 0
    for i, die in enumerate(cu_dies):
        if die != shared_die:
            crossings += 2

    # Per-die DSP estimate: the CU datapaths dominate; shared front end is
    # logic-only.  Distribute the estimator's per-CU figure.
    est = estimate_resources(model_cfg, hw)
    per_cu_dsp = est.detail["dsp"]["per_cu"]
    per_die_dsp: dict[int, int] = {d: 0 for d in range(dies)}
    for die in cu_dies:
        per_die_dsp[die] += per_cu_dsp
    feasible = all(v <= hw.platform.dsps_per_die
                   for v in per_die_dsp.values())
    return Floorplan(assignment=assignment, crossings=crossings,
                     per_die_dsp=per_die_dsp, feasible=feasible)


def plan_shard_dies(num_shards: int, dies: int) -> list[int]:
    """Assign serving shards to dies, via the same placement as the CUs.

    The sharded serving engine reuses the Fig. 2 layout: the shared front
    end (ingest, batcher) conceptually sits on the middle die, and shard
    state spreads round-robin over the remaining dies — so cross-shard
    mailbox traffic between shards on different dies pays the SLR-boundary
    FIFO latency (``HardwareConfig.die_crossing_cycles``).  Single-die
    parts place every shard on die 0 and mailbox traffic stays on-chip.
    """
    if num_shards <= 0 or dies <= 0:
        raise ValueError("num_shards and dies must be positive")
    _, shard_dies = _spread_over_dies(num_shards, dies)
    return shard_dies


def plan_shard_dies_traffic_aware(traffic: np.ndarray,
                                  dies: int) -> list[int]:
    """Assign shards to dies so heavy mailbox pairs share a die.

    ``traffic[i, j]`` is the (predicted or measured) count of edges shard
    ``i`` forwards to shard ``j`` — e.g.
    :meth:`repro.serving.Placement.mail_matrix`.  Placement policies that
    migrate or replicate vertices change this matrix, so the die plan must
    be *re-derived* after a placement change or the cross-die mailbox
    penalty is priced against stale traffic.

    Same floorplan constraints as :func:`plan_shard_dies` (shared front end
    on the middle die, shards on the outer dies, balanced shard counts per
    die), but the shards are placed greedily — heaviest talkers first, each
    onto the non-full outer die it exchanges the most traffic with — and
    then refined by pairwise swaps until no swap reduces crossings.  The
    round-robin plan is refined the same way and the better of the two is
    returned, so the result never crosses more (predicted) edges than
    :func:`plan_shard_dies`.  Fully deterministic: ties break toward the
    lowest die index.
    """
    traffic = np.asarray(traffic, dtype=np.float64)
    n = len(traffic)
    if traffic.shape != (n, n):
        raise ValueError("traffic must be a square shard x shard matrix")
    if n <= 0 or dies <= 0:
        raise ValueError("traffic matrix and dies must be non-empty")
    if dies == 1:
        return [0] * n
    shared_die = dies // 2
    outer = [d for d in range(dies) if d != shared_die]
    cap = math.ceil(n / len(outer))
    sym = traffic + traffic.T       # a crossing costs either direction
    np.fill_diagonal(sym, 0.0)      # self-traffic never crosses

    def crossings(assign) -> float:
        a = np.asarray(assign)
        return float(sym[a[:, None] != a[None, :]].sum()) / 2.0

    def refine(assign) -> list[int]:
        """Swap shard pairs across dies while it reduces crossings.

        Each candidate swap is scored by its O(n) delta (only pairs
        involving the two swapped shards change), not a full recount.
        """
        assign = np.asarray(assign).copy()
        improved = True
        while improved:
            improved = False
            best = (1e-12, None)
            for i in range(n):
                for j in range(i + 1, n):
                    a, b = assign[i], assign[j]
                    if a == b:
                        continue
                    before = sym[i] @ (assign != a) + sym[j] @ (assign != b)
                    after = sym[i] @ (assign != b) + sym[j] @ (assign != a)
                    # The (i, j) pair crosses both before and after the
                    # swap, but the ``after`` expression (evaluated against
                    # the pre-swap assignment) scores it as local twice.
                    after += 2.0 * sym[i, j]
                    gain = before - after
                    if gain > best[0]:
                        best = (gain, (i, j))
            if best[1] is not None:
                i, j = best[1]
                assign[i], assign[j] = assign[j], assign[i]
                improved = True
        return [int(d) for d in assign]

    # Greedy seed: heaviest talkers first onto their best non-full die.
    order = np.argsort(-sym.sum(axis=1), kind="stable")
    greedy = [-1] * n
    fill = {d: 0 for d in outer}
    for s in map(int, order):
        best_die, best_gain = None, -1.0
        for d in outer:
            if fill[d] >= cap:
                continue
            gain = sum(sym[s, t] for t in range(n) if greedy[t] == d)
            if gain > best_gain:
                best_die, best_gain = d, gain
        greedy[s] = best_die
        fill[best_die] += 1

    _, rr = _spread_over_dies(n, dies)
    candidates = [refine(greedy), refine(rr)]
    return min(candidates, key=crossings)


def _spread_over_dies(n: int, dies: int) -> tuple[int, list[int]]:
    """Fig. 2 placement: shared front end on the middle die, ``n`` workers
    round-robin over the outer dies.  Returns ``(shared_die, worker_dies)``."""
    if dies == 1:
        return 0, [0] * n
    shared_die = dies // 2
    outer = [d for d in range(dies) if d != shared_die]
    return shared_die, [outer[i % len(outer)] for i in range(n)]
