"""The Updater: a fully-associative cache with rotating pointers (§IV-B).

Responsibilities (numbered as in the paper):

1. receive updated vertex information from the CUs (round-robin order),
2. write it back to external memory,
3. guarantee chronological commit order, and
4. eliminate redundant updates — when a vertex is updated again while an
   older update is still uncommitted, the stale line is invalidated.

This module provides both the *functional* dedup decision (which writes
survive) and the *timing* (commit cycles consumed, stalls when the cache
fills).  The chronological-commit invariant — a vertex's surviving write is
always its latest — is property-tested against a last-write-wins oracle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["UpdaterCache", "UpdaterReport"]


@dataclass
class UpdaterReport:
    """Outcome of pushing one batch of vertex updates through the Updater."""

    cycles: int                 # commit cycles consumed
    invalidated: int            # stale lines eliminated (redundant updates)
    committed: int              # lines written back to external memory
    survivors: np.ndarray       # indices (into the input) that committed
    stalled_cycles: int         # cycles the CUs waited on a full cache


class UpdaterCache:
    """Cycle-approximate model of the rotating-pointer commit cache.

    Entries enter in arrival order (the CUs' round-robin order preserves
    stream chronology); the commit pointer retires up to ``scan_width``
    consecutive lines per cycle.  An uncommitted line is invalidated when a
    newer update for the same vertex arrives, so external memory sees only
    the newest value — and sees it in chronological position.
    """

    def __init__(self, lines: int, scan_width: int = 3):
        if lines <= 0 or scan_width <= 0:
            raise ValueError("lines and scan_width must be positive")
        self.lines = lines
        self.scan_width = scan_width

    def process(self, vertex_ids: np.ndarray) -> UpdaterReport:
        """Run one batch of vertex updates (in arrival order) to completion.

        Returns timing and the surviving update set.  The model walks the
        arrival sequence maintaining cache occupancy: each arrival consumes
        one line (possibly reclaiming an invalidated older line for the same
        vertex); each elapsed cycle retires up to ``scan_width`` valid lines
        in FIFO order.  Arrivals stall when all lines are occupied.
        """
        v = np.asarray(vertex_ids, dtype=np.int64)
        n = len(v)
        if n == 0:
            return UpdaterReport(cycles=0, invalidated=0, committed=0,
                                 survivors=np.zeros(0, dtype=np.int64),
                                 stalled_cycles=0)

        # Functional outcome: last occurrence of each vertex commits, except
        # when the older line already committed before the newer arrival.
        # With one arrival per cycle and `scan_width >= 1`, a line older than
        # `lines` ago has always committed; we conservatively model the
        # invalidation window as the cache depth.
        survivors_mask = np.ones(n, dtype=bool)
        last_seen: dict[int, int] = {}
        invalidated = 0
        for i, vid in enumerate(v):
            j = last_seen.get(int(vid))
            if j is not None and i - j < self.lines:
                # Older update still (potentially) uncommitted: invalidate.
                survivors_mask[j] = False
                invalidated += 1
            last_seen[int(vid)] = i

        # Timing: arrivals at 1/cycle, retirement at `scan_width`/cycle from
        # the FIFO head.  Occupancy-driven stall computation.
        occupancy = 0
        stalled = 0
        cycles = 0
        pending = 0  # valid, uncommitted lines
        for i in range(n):
            # Retire before accepting (commit pointer runs concurrently).
            retired = min(self.scan_width, pending)
            pending -= retired
            occupancy -= retired
            if occupancy >= self.lines:
                # Stall until the commit pointer frees a line.
                need_cycles = 1
                stalled += need_cycles
                cycles += need_cycles
                retired = min(self.scan_width, pending)
                pending -= retired
                occupancy -= retired
            occupancy += 1
            if survivors_mask[i]:
                pending += 1
            # An invalidated line is reclaimed lazily when scanned; model it
            # as occupancy that drains with the same scan.
            cycles += 1
        # Drain remaining valid lines.
        cycles += -(-pending // self.scan_width)
        return UpdaterReport(cycles=cycles, invalidated=invalidated,
                             committed=int(survivors_mask.sum()),
                             survivors=np.nonzero(survivors_mask)[0],
                             stalled_cycles=stalled)
