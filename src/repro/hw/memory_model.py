"""External-memory (DDR) timing model with burst-dependent effective bandwidth.

The paper (Eq. 21, citing Lu et al.'s FPGA memory microbenchmarks [21])
models transfers at ``alpha(l) * BW`` where ``alpha(l) in (0, 1]`` is the
efficiency of a burst of length ``l`` words.  Short bursts pay per-request
overhead (address phase, bus turnaround) and achieve a small fraction of peak
bandwidth; long streaming bursts approach it.

We use the standard saturating form ``alpha(l) = l / (l + l_half)`` — the
measured curves in [21] are well fit by it — with ``l_half`` interpreted as
the burst length at which half of peak bandwidth is reached.

The model optionally charges DRAM refresh (tRFC every tREFI), which the
paper's *analytical* model omits and names as an error source in §VI; the
cycle simulator enables it, the Section-V model does not.  This asymmetry is
deliberate: it reproduces the Fig. 6 prediction-error structure.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DDRModel"]


@dataclass(frozen=True)
class DDRModel:
    """Bandwidth/latency model of one external-memory subsystem.

    Parameters
    ----------
    peak_bw_gbs:
        Peak bandwidth in GB/s (Table III values).
    word_bytes:
        Bytes per data word (the paper uses IEEE float32, ``Zd = 4``).
    l_half:
        Burst length (in words) achieving 50 % efficiency.
    base_latency_s:
        Fixed per-request latency (row activation + controller), charged
        once per logical transfer.
    refresh:
        Charge periodic refresh overhead (simulator only).
    t_refi_s / t_rfc_s:
        Refresh interval and refresh cycle time (DDR4 8 Gb defaults).
    """

    peak_bw_gbs: float
    word_bytes: int = 4
    l_half: float = 64.0
    base_latency_s: float = 120e-9
    refresh: bool = False
    t_refi_s: float = 7.8e-6
    t_rfc_s: float = 350e-9

    def alpha(self, burst_words: float) -> float:
        """Effective-bandwidth fraction for bursts of ``burst_words``."""
        if burst_words <= 0:
            raise ValueError("burst length must be positive")
        return burst_words / (burst_words + self.l_half)

    @property
    def refresh_derating(self) -> float:
        """Bandwidth multiplier due to refresh (1.0 when disabled)."""
        if not self.refresh:
            return 1.0
        return 1.0 - self.t_rfc_s / self.t_refi_s

    def transfer_time(self, total_words: float, burst_words: float,
                      requests: int = 1) -> float:
        """Seconds to move ``total_words`` in bursts of ``burst_words``.

        ``requests`` charges the fixed base latency that many times (e.g. one
        gather per vertex row); the bandwidth term uses the alpha-derated
        peak.  Either term may dominate — small scattered gathers are
        latency-bound, bulk table scans are bandwidth-bound.
        """
        if total_words <= 0:
            return 0.0
        bw = (self.peak_bw_gbs * 1e9 / self.word_bytes) \
            * self.alpha(burst_words) * self.refresh_derating
        return requests * self.base_latency_s + total_words / bw

    def row_gather_time(self, n_rows: int, row_words: float,
                        overlap: int = 8) -> float:
        """Time to gather ``n_rows`` scattered rows of ``row_words`` each.

        Row fetches are independent, so a hardware data loader keeps
        ``overlap`` requests in flight; latency amortises accordingly.
        """
        if n_rows <= 0 or row_words <= 0:
            return 0.0
        effective_requests = max(1, -(-n_rows // max(1, overlap)))
        return self.transfer_time(n_rows * row_words, row_words,
                                  requests=effective_requests)
