"""Embedding Unit (EU): attention + aggregation + transform (§IV-B).

Three modules, pipelined:

* **AM** (Attention Module) — Eq. (16) logits from the Δt list, softmax over
  the top-``budget`` entries.  Crucially this runs *before* any neighbor
  state arrives, which is what licenses the prefetch of §IV-C.
* **FAM** (Feature Aggregation Module) — multiply-add tree with ``SFAM``
  lanes.  Because the value map is affine, the hardware aggregates the *raw*
  neighbor vectors first (``sum_j alpha_j [f_j || e_j || Phi_j]``) and
  applies the weight matrix once per node in the FTM — mathematically
  identical to per-neighbor values (linearity), linearly cheaper in MACs.
* **FTM** (Feature Transformation Module) — ``SFTM`` MAC array applying the
  value weights to the aggregate and the output transform to
  ``[h || f'_i]``.

Timing only; functional results come from the shared model kernels.
"""

from __future__ import annotations

import numpy as np

from ..models.attention import _masked_softmax_np
from ..models.config import ModelConfig
from ..models.tgn import TGNN
from .config import HardwareConfig

__all__ = ["EmbeddingUnit", "EU_STAGES"]

EU_STAGES = ("eu_attention", "eu_time_enc", "eu_fam", "eu_ftm")


class EmbeddingUnit:
    """Timing model of one CU's EU."""

    def __init__(self, model_cfg: ModelConfig, hw: HardwareConfig):
        self.cfg = model_cfg
        self.hw = hw

    def stage_cycles(self, n_nodes: int) -> dict[str, int]:
        cfg, hw = self.cfg, self.hw
        m, tau, e = cfg.memory_dim, cfg.time_dim, cfg.embed_dim
        ef, nf = cfg.edge_dim, cfg.node_dim
        k = cfg.num_neighbors
        keff = cfg.effective_neighbors
        feat = m + ef + (0 if cfg.lut_time_encoder else tau) + (nf and m)
        # AM: one W_t row per cycle (k MAC lanes) + softmax/top-k scan.
        am = n_nodes * k + n_nodes * _ceil(k, hw.commit_scan)
        # Time encoding for the surviving neighbors.
        if cfg.lut_time_encoder:
            te = n_nodes * keff                    # 1 lookup per neighbor
        else:
            te = _ceil(n_nodes * keff * tau, hw.s_fam)
        # FAM: alpha-weighted aggregation of raw neighbor vectors.
        fam = _ceil(n_nodes * keff * (feat + (tau if cfg.lut_time_encoder else 0)),
                    hw.s_fam)
        # FTM: value weights on the aggregate + output transform.
        kv_in = m + ef + tau + (nf and m)
        ftm = _ceil(n_nodes * (kv_in * e + (e + m) * e), hw.sftm2)
        return {"eu_attention": int(am), "eu_time_enc": int(te),
                "eu_fam": int(fam), "eu_ftm": int(ftm)}

    # ------------------------------------------------------------------ #
    @staticmethod
    def functional(model: TGNN, nbr_feat: np.ndarray, edge_feat: np.ndarray,
                   time_enc: np.ndarray, logits: np.ndarray,
                   sel_mask: np.ndarray, self_feat: np.ndarray) -> np.ndarray:
        """Aggregate-then-transform reference; equals per-neighbor values.

        Exercised by unit tests to prove the FAM/FTM reordering is exact.
        """
        attn = model.attention
        alpha = _masked_softmax_np(logits, sel_mask)
        agg = np.einsum("nk,nkd->nd",
                        alpha, np.concatenate([nbr_feat, edge_feat, time_enc],
                                              axis=2))
        hidden = agg @ attn.w_v.weight.data.T \
            + alpha.sum(axis=1, keepdims=True) * attn.w_v.bias.data
        out = np.concatenate([hidden, self_feat], axis=1)
        emb = out @ model.out_transform.weight.data.T \
            + model.out_transform.bias.data
        return np.maximum(emb, 0.0)


def _ceil(a: int, b: int) -> int:
    return -(-int(a) // int(b))
