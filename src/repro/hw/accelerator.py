"""Cycle-approximate FPGA accelerator simulator (Fig. 2 / Fig. 4 / §IV).

The simulator is *functional + timing*:

* **Functional** — every processing batch runs through the shared NumPy
  model kernels (``TGNN.infer_batch``), so the embeddings it produces are
  bit-identical to the software deployment path (asserted by integration
  tests).  The Updater's redundant-write elimination is functionally the
  same last-write-wins rule the vertex tables implement.

* **Timing** — the Fig. 4 schedule is simulated with a two-track pipeline:

  - a **memory track** (one DDR controller, serialising edge loads, vertex
    loads, neighbor prefetches and write-backs, modelled by
    :class:`~repro.hw.memory_model.DDRModel` with burst-dependent effective
    bandwidth and refresh), and
  - a **compute track** of 9 fine-grained stages (5 MUU + 4 EU) running the
    classic pipeline recurrence
    ``finish[b][s] = max(finish[b][s-1], finish[b-1][s]) + dur[b][s]``.

  Cross-track dependencies implement §IV-C: the attention logits (computed
  from timestamps alone, thanks to the simplified attention) release the
  neighbor **prefetch** while the MUU is still running; the FAM cannot start
  before that prefetch lands.  Disabling ``prefetch`` serialises the fetch
  behind the MUU — the ablation of the co-design's key enabler.

The accelerator requires a model with the simplified attention: the vanilla
mechanism cannot compute attention before fetching keys, which is precisely
why the paper's hardware implements Eq. (16).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graph.batching import iter_fixed_size
from ..graph.temporal_graph import TemporalGraph
from ..models.tgn import TGNN, ModelRuntime
from .config import HardwareConfig
from .eu import EU_STAGES, EmbeddingUnit
from .memory_model import DDRModel
from .muu import MUU_STAGES, MemoryUpdateUnit
from .updater import UpdaterCache

__all__ = ["FPGAAccelerator", "RunReport", "COMPUTE_STAGES"]

COMPUTE_STAGES = MUU_STAGES + EU_STAGES


@dataclass(frozen=True)
class TraceEvent:
    """One scheduled stage occupancy (for Gantt rendering / utilization)."""

    stage: str
    batch_index: int
    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class RunReport:
    """Timing + bookkeeping for one simulated stream segment."""

    n_edges: int
    total_s: float                      # wall-clock of the whole segment
    batch_latencies_s: list[float]      # per user batch: arrival -> last write
    stage_time_s: dict[str, float]      # summed busy time per stage/track
    updater_invalidated: int
    updater_committed: int
    mem_busy_s: float
    compute_busy_s: float
    embeddings: list[np.ndarray] = field(default_factory=list)
    events: list[TraceEvent] = field(default_factory=list)

    @property
    def throughput_eps(self) -> float:
        """New edges per second (Eq. 3)."""
        return self.n_edges / self.total_s if self.total_s > 0 else 0.0

    @property
    def mean_latency_s(self) -> float:
        return float(np.mean(self.batch_latencies_s)) \
            if self.batch_latencies_s else 0.0


class FPGAAccelerator:
    """Simulated accelerator bound to one model and one design point."""

    def __init__(self, model: TGNN, hw: HardwareConfig):
        if not model.cfg.simplified_attention:
            raise ValueError(
                "the accelerator implements the simplified attention (Eq. 16)"
                " — the vanilla mechanism defeats prefetching (§IV-C)")
        self.model = model
        self.hw = hw
        self.muu = MemoryUpdateUnit(model.cfg, hw)
        self.eu = EmbeddingUnit(model.cfg, hw)
        self.updater = UpdaterCache(hw.updater_lines, hw.commit_scan)
        self.ddr: DDRModel = hw.ddr(refresh=True)
        model.prepare_inference()

    # ------------------------------------------------------------------ #
    # per-processing-batch costs                                          #
    # ------------------------------------------------------------------ #
    def _mem_times(self, n_edges: int) -> dict[str, float]:
        """Seconds on the memory track per transfer type (Fig. 4 ops 1-5)."""
        cfg, hw = self.model.cfg, self.hw
        n_nodes = 2 * n_edges
        k, keff = cfg.num_neighbors, cfg.effective_neighbors
        msg = cfg.raw_message_dim
        channels = max(1, hw.platform.memory_channels)
        d = self.ddr

        def ch(t: float) -> float:
            return t / channels

        load_edges = d.transfer_time(n_edges * (3 + cfg.edge_dim),
                                     burst_words=3 + cfg.edge_dim)
        vertex_row = 3 * k + cfg.memory_dim + msg + 2
        load_vertex = ch(d.row_gather_time(n_nodes, vertex_row,
                                           overlap=hw.loader_overlap))
        nbr_row = cfg.memory_dim + cfg.edge_dim + (cfg.node_dim or 0)
        prefetch = ch(d.row_gather_time(n_nodes * keff, nbr_row,
                                        overlap=hw.loader_overlap))
        store_row = cfg.memory_dim + msg + 3
        store = ch(d.row_gather_time(n_nodes, store_row,
                                     overlap=hw.loader_overlap))
        store_emb = ch(d.transfer_time(n_nodes * cfg.embed_dim,
                                       burst_words=cfg.embed_dim))
        return {"load_edges": load_edges, "load_vertex": load_vertex,
                "prefetch": prefetch, "store": store + store_emb}

    def _compute_durations(self, n_edges: int) -> dict[str, float]:
        """Seconds per compute stage (max over CUs; CUs run in parallel)."""
        hw = self.hw
        per_cu_edges = -(-n_edges // hw.n_cu)
        n_nodes = 2 * per_cu_edges
        cycles = {}
        cycles.update(self.muu.stage_cycles(n_nodes))
        cycles.update(self.eu.stage_cycles(n_nodes))
        flush = hw.pipeline_flush_cycles
        crossing = hw.die_crossing_cycles if hw.platform.dies > 1 else 0
        return {name: (c + flush + crossing) * hw.clock_s
                for name, c in cycles.items()}

    # ------------------------------------------------------------------ #
    def run_stream(self, graph: TemporalGraph, batch_size: int,
                   start: int = 0, end: int | None = None,
                   rt: ModelRuntime | None = None,
                   collect_embeddings: bool = False,
                   batches: list | None = None,
                   trace: bool = False) -> RunReport:
        """Simulate inference over edges ``[start, end)`` in user batches.

        ``batches`` overrides the fixed-size batching with an explicit list
        of :class:`EdgeBatch` (used by the real-time window replay).
        ``trace=True`` records a :class:`TraceEvent` per stage occupancy
        (see ``repro.hw.trace`` for rendering and utilization analysis).
        """
        cfg, hw = self.model.cfg, self.hw
        rt = rt if rt is not None else self.model.new_runtime(graph)
        end = graph.num_edges if end is None else end
        if batches is None:
            batches = list(iter_fixed_size(graph, batch_size,
                                           start=start, end=end))

        events: list[TraceEvent] = []
        pb_index = 0

        def record(stage: str, start_t: float, end_t: float) -> None:
            if trace and end_t > start_t:
                events.append(TraceEvent(stage=stage, batch_index=pb_index,
                                         start_s=start_t, end_s=end_t))

        stage_time: dict[str, float] = {}
        # The DDR controller reorders reads ahead of pending writes, so the
        # read path (edge/vertex loads, prefetch) and the write-back path
        # are modelled as separate serial tracks.
        read_free = 0.0
        write_free = 0.0
        comp_free = {s: 0.0 for s in COMPUTE_STAGES}
        latencies: list[float] = []
        embeddings: list[np.ndarray] = []
        invalidated = 0
        committed = 0
        clock_now = 0.0
        n_total = 0

        for batch in batches:
            arrival = clock_now
            batch_done = arrival
            # Split the user batch into processing batches of Nb edges.
            for lo in range(0, len(batch), hw.nb):
                hi = min(lo + hw.nb, len(batch))
                sub = _slice_batch(batch, lo, hi)
                n_edges = len(sub)
                n_total += n_edges

                # ---- functional step (shared kernels) ------------------- #
                result = self.model.infer_batch(sub, rt, graph)
                if collect_embeddings:
                    embeddings.append(result.embeddings.data)
                report = self.updater.process(sub.nodes)
                invalidated += report.invalidated
                committed += report.committed

                # ---- timing step ---------------------------------------- #
                mem = self._mem_times(n_edges)
                comp = self._compute_durations(n_edges)

                # read track: edge + vertex loads, in order.
                t = max(read_free, arrival)
                t_edges = t + mem["load_edges"]
                t_vertex = t_edges + mem["load_vertex"]
                read_free = t_vertex
                _acc(stage_time, "load_edges", mem["load_edges"])
                _acc(stage_time, "load_vertex", mem["load_vertex"])
                record("load_edges", t, t_edges)
                record("load_vertex", t_edges, t_vertex)

                # compute tracks: the MUU chain and the EU chain run in
                # PARALLEL.  The attention module needs only the neighbor
                # timestamps (already on chip after load_vertex) — the whole
                # point of Eq. (16) — so it fires immediately and releases
                # the neighbor prefetch while the GRU gates are still busy.
                finish: dict[str, float] = {}

                def run(stage: str, ready: float) -> float:
                    start = max(ready, comp_free[stage])
                    finish[stage] = start + comp[stage]
                    comp_free[stage] = finish[stage]
                    _acc(stage_time, stage, comp[stage])
                    record(stage, start, finish[stage])
                    return finish[stage]

                # MUU chain.
                muu_t = run("muu_time_enc", t_vertex)
                muu_t = run("muu_update_gate", muu_t)
                muu_t = run("muu_reset_gate", muu_t)
                muu_t = run("muu_memory_gate", muu_t)
                muu_done = run("muu_merge_gate", muu_t)

                # EU front end (timestamp-only).
                am_done = run("eu_attention", t_vertex)
                te_done = run("eu_time_enc", am_done)

                # Prefetch: released by the attention logits (§IV-C), or —
                # with prefetching disabled (ablation / vanilla-style) —
                # only after the MUU has fully committed the batch.
                pf_ready = am_done if hw.prefetch else muu_done
                pf_start = max(read_free, pf_ready)
                prefetch_done = pf_start + mem["prefetch"]
                read_free = prefetch_done
                _acc(stage_time, "prefetch", mem["prefetch"])
                record("prefetch", pf_start, prefetch_done)

                # EU back end: FAM needs prefetched neighbor state; FTM
                # additionally needs the self memory updated by the MUU.
                fam_done = run("eu_fam", max(te_done, prefetch_done))
                run("eu_ftm", max(fam_done, muu_done))

                # store (Updater commit + write-back) on the write track.
                updater_s = report.cycles * hw.clock_s
                store_start = max(write_free, finish["eu_ftm"])
                store_scale = (report.committed / max(1, len(sub.nodes)))
                store_dur = mem["store"] * store_scale + updater_s
                write_free = store_start + store_dur
                _acc(stage_time, "store", store_dur)
                record("store", store_start, write_free)
                batch_done = write_free
                pb_index += 1

            latencies.append(batch_done - arrival)
            clock_now = batch_done

        mem_busy = sum(stage_time.get(s, 0.0) for s in
                       ("load_edges", "load_vertex", "prefetch", "store"))
        comp_busy = sum(stage_time.get(s, 0.0) for s in COMPUTE_STAGES)
        return RunReport(n_edges=n_total, total_s=clock_now,
                         batch_latencies_s=latencies, stage_time_s=stage_time,
                         updater_invalidated=invalidated,
                         updater_committed=committed,
                         mem_busy_s=mem_busy, compute_busy_s=comp_busy,
                         embeddings=embeddings, events=events)

    # ------------------------------------------------------------------ #
    def latency_single_batch(self, graph: TemporalGraph, batch_size: int,
                             warmup_edges: int = 0) -> float:
        """Latency (s) of one batch arriving at an idle accelerator.

        Optionally warms vertex state by replaying ``warmup_edges`` first
        (timing of the warm-up is discarded).
        """
        rt = self.model.new_runtime(graph)
        if warmup_edges > 0:
            for b in iter_fixed_size(graph, batch_size, end=warmup_edges):
                self.model.infer_batch(b, rt, graph)
        report = self.run_stream(graph, batch_size, start=warmup_edges,
                                 end=min(warmup_edges + batch_size,
                                         graph.num_edges), rt=rt)
        return report.batch_latencies_s[0]


def _slice_batch(batch, lo: int, hi: int):
    """Sub-slice of an EdgeBatch (views)."""
    from ..graph.temporal_graph import EdgeBatch
    return EdgeBatch(src=batch.src[lo:hi], dst=batch.dst[lo:hi],
                     t=batch.t[lo:hi], eid=batch.eid[lo:hi],
                     edge_feat=batch.edge_feat[lo:hi])


def _acc(d: dict[str, float], key: str, value: float) -> None:
    d[key] = d.get(key, 0.0) + value
