"""FPGA resource estimator (Table IV reproduction).

Counts DSPs, BRAM36s, URAM288s and logic LUTs for a (model, design) pair
using the paper's stated cost basis: with IEEE float32, a multiplier costs
3 DSPs and an accumulator 2 DSPs (§VI-A); a BRAM is 36 Kb and a URAM 288 Kb.

Structural accounting:

* **DSP** — each CU instantiates dual endpoint lanes (Algorithm 1 updates
  ``u`` and ``v`` concurrently), each lane holding the three ``Sg x Sg`` MUU
  gate arrays, the ``SFAM``-lane aggregation tree, the ``SFTM`` transform
  array, and the small AM dot-product row.
* **BRAM/URAM** — pre-multiplied LUT time-encoder tables, inter-module
  FIFOs, the Updater's cache lines, double-buffered staging for a processing
  batch, and (when the platform has URAM) a hot-vertex cache sized to the
  available budget.
* **LUT** — affine model in DSPs and memory blocks calibrated on the two
  published design points (HLS float32 datapaths dominate logic usage).

The estimator is intentionally analytic — it exists to reproduce Table IV
and to drive design-space exploration, not to replace synthesis.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..models.config import ModelConfig
from .config import HardwareConfig

__all__ = ["ResourceEstimate", "estimate_resources"]

BRAM_BYTES = 36 * 1024 // 8       # one BRAM36 in bytes
URAM_BYTES = 288 * 1024 // 8      # one URAM288 in bytes
DSP_PER_MUL = 3                   # float32 multiplier (§VI-A)
DSP_PER_ACC = 2                   # float32 accumulator (§VI-A)

# Multi-die boards dedicate part of their on-chip memory to a hot-vertex
# cache (memory + mailbox rows); fractions calibrated on the published U200
# design point (1415 BRAM / 448 URAM).
CACHE_BRAM_FRAC = 0.55
CACHE_URAM_FRAC = 0.45

# Logic-LUT affine calibration (fit to the two Table IV design points).
LUT_PER_CU = 48_000
LUT_PER_DSP = 150
LUT_PER_MEMBLOCK = 24


@dataclass(frozen=True)
class ResourceEstimate:
    """Estimated utilization plus feasibility against the platform budget."""

    lut: int
    dsp: int
    bram: int
    uram: int
    fits: bool
    detail: dict[str, dict[str, int]]

    def utilization(self, hw: HardwareConfig) -> dict[str, float]:
        p = hw.platform
        return {"lut": self.lut / p.total_luts,
                "dsp": self.dsp / p.total_dsps,
                "bram": self.bram / p.total_brams,
                "uram": self.uram / p.total_urams if p.total_urams else 0.0}


def estimate_resources(model_cfg: ModelConfig, hw: HardwareConfig,
                       vertex_cache_rows: int | None = None
                       ) -> ResourceEstimate:
    """Estimate the accelerator's resource footprint.

    ``vertex_cache_rows`` sizes the on-chip hot-vertex cache; by default it
    consumes ~70 % of the platform's URAM budget (zero on URAM-less parts).
    """
    m, tau, e = model_cfg.memory_dim, model_cfg.time_dim, model_cfg.embed_dim
    ef = model_cfg.edge_dim
    k = model_cfg.num_neighbors
    msg = model_cfg.raw_message_dim
    zd = hw.word_bytes

    # ---- DSP ------------------------------------------------------------- #
    mac = DSP_PER_MUL + DSP_PER_ACC
    muu = 3 * hw.sg2 * mac
    fam = hw.s_fam * DSP_PER_MUL + (hw.s_fam - 1) * DSP_PER_ACC
    ftm = hw.sftm2 * mac
    am = k * mac                                     # W_t row dot product
    dsp_per_cu = muu + fam + ftm + am
    dsp = hw.n_cu * dsp_per_cu

    # ---- on-chip memory --------------------------------------------------- #
    def brams(nbytes: float) -> int:
        return -(-int(nbytes) // BRAM_BYTES)

    lut_tables = 0
    if model_cfg.lut_time_encoder:
        # Pre-multiplied tables: GRU input-gate slice (3m) + value slice (e),
        # replicated per CU for single-cycle private access.
        lut_tables = hw.n_cu * brams(model_cfg.lut_bins * (3 * m + e) * zd)
    fifo_bram = hw.n_cu * 12 * 2                     # ~12 FIFOs x 2 BRAM
    updater_bram = brams(hw.updater_lines * (msg + m + 2) * zd)
    edge_buf = brams(2 * hw.nb * (3 + ef) * zd)      # double-buffered edges
    staging = 2 * hw.nb * 2 * model_cfg.effective_neighbors * (m + ef) * zd
    misc_bram = hw.n_cu * 8                          # control, width adapters

    uram = 0
    staging_bram = 0
    cache_bram = 0
    platform = hw.platform
    # Multi-die, URAM-rich boards (U200 class) bank a hot-vertex cache across
    # both memory types; embedded single-die parts keep the design URAM-free
    # (the published ZCU104 point uses 0 URAM).
    rich = platform.dies > 1 and platform.total_urams >= 300
    if rich:
        if vertex_cache_rows is None:
            budget = (int(CACHE_BRAM_FRAC * platform.total_brams) * BRAM_BYTES
                      + int(CACHE_URAM_FRAC * platform.total_urams) * URAM_BYTES)
            vertex_cache_rows = budget // ((m + msg) * zd)
        cache_bytes = vertex_cache_rows * (m + msg) * zd
        uram_budget = int(CACHE_URAM_FRAC * platform.total_urams) * URAM_BYTES
        in_uram = min(cache_bytes, uram_budget)
        cache_bram = brams(cache_bytes - in_uram)
        uram = -(-int(in_uram + staging) // URAM_BYTES)
    else:
        vertex_cache_rows = 0
        staging_bram = brams(staging)

    bram = (lut_tables + fifo_bram + updater_bram + edge_buf + staging_bram
            + cache_bram + misc_bram)

    # ---- logic ------------------------------------------------------------ #
    lut = (LUT_PER_CU * hw.n_cu + LUT_PER_DSP * dsp
           + LUT_PER_MEMBLOCK * (bram + uram))

    detail = {
        "dsp": {"muu_per_lane": muu, "fam_per_lane": fam,
                "ftm_per_lane": ftm, "am_per_lane": am,
                "per_cu": dsp_per_cu},
        "bram": {"lut_tables": lut_tables, "fifos": fifo_bram,
                 "updater": updater_bram, "edge_buffer": edge_buf,
                 "staging": staging_bram, "vertex_cache": cache_bram,
                 "misc": misc_bram},
        "uram": {"vertex_cache_rows": vertex_cache_rows, "total": uram},
    }
    fits = platform.fits(lut, dsp, bram, uram)
    return ResourceEstimate(lut=int(lut), dsp=int(dsp), bram=int(bram),
                            uram=int(uram), fits=fits, detail=detail)
