"""Design-space exploration over accelerator configurations.

The reason the paper builds an analytical performance model (§V) is to pick
design points without synthesising each one.  This module packages that
workflow: enumerate configurations, price them with the closed-form model
and the resource estimator, filter by the platform budget, and return the
throughput/resource Pareto frontier.

Used by ``examples/design_space_exploration.py`` and the ablation benches.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..models.config import ModelConfig
from ..perf.performance_model import PerformanceModel
from .config import HardwareConfig
from .platforms import FPGAPlatform
from .resources import ResourceEstimate, estimate_resources

__all__ = ["DesignPoint", "SweepSpec", "explore", "pareto_frontier",
           "best_design"]


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated configuration."""

    hw: HardwareConfig
    resources: ResourceEstimate
    throughput_eps: float
    latency_s: float

    @property
    def dsp(self) -> int:
        return self.resources.dsp


@dataclass(frozen=True)
class SweepSpec:
    """Axes of the configuration sweep."""

    n_cu: tuple[int, ...] = (1, 2, 3)
    sg: tuple[int, ...] = (4, 8, 16)
    s_fam: tuple[int, ...] = (8, 16, 32)
    s_ftm: tuple[tuple[int, int], ...] = ((4, 4), (8, 8), (16, 8))
    nb: tuple[int, ...] = (16, 32, 64)
    freq_mhz: tuple[float, ...] = (250.0,)

    def configurations(self, platform: FPGAPlatform):
        for n_cu, sg, s_fam, s_ftm, nb, freq in itertools.product(
                self.n_cu, self.sg, self.s_fam, self.s_ftm, self.nb,
                self.freq_mhz):
            if nb % n_cu != 0:
                continue
            yield HardwareConfig(platform=platform, n_cu=n_cu, sg=sg,
                                 s_fam=s_fam, s_ftm=s_ftm, nb=nb,
                                 freq_mhz=freq)


def explore(model_cfg: ModelConfig, platform: FPGAPlatform,
            spec: SweepSpec | None = None, batch_size: int = 1000
            ) -> list[DesignPoint]:
    """Evaluate every feasible configuration analytically.

    Infeasible (over-budget) designs are dropped.  Returns points in sweep
    order; combine with :func:`pareto_frontier` or :func:`best_design`.
    """
    spec = spec if spec is not None else SweepSpec()
    points = []
    for hw in spec.configurations(platform):
        res = estimate_resources(model_cfg, hw)
        if not res.fits:
            continue
        pred = PerformanceModel(model_cfg, hw).predict(batch_size)
        points.append(DesignPoint(hw=hw, resources=res,
                                  throughput_eps=pred.throughput_eps,
                                  latency_s=pred.latency_s))
    return points


def pareto_frontier(points: list[DesignPoint],
                    resource: str = "dsp") -> list[DesignPoint]:
    """Non-dominated set: no cheaper design has throughput >= this one's.

    Sorted by ascending resource usage; throughput strictly increases along
    the returned list.
    """
    def cost(p: DesignPoint) -> int:
        return getattr(p.resources, resource)

    frontier: list[DesignPoint] = []
    for p in sorted(points, key=lambda p: (cost(p), -p.throughput_eps)):
        if not frontier or p.throughput_eps > frontier[-1].throughput_eps:
            frontier.append(p)
    return frontier


def best_design(points: list[DesignPoint],
                objective: str = "throughput") -> DesignPoint:
    """Pick the best feasible point by ``throughput`` or ``latency``."""
    if not points:
        raise ValueError("no feasible design points")
    if objective == "throughput":
        return max(points, key=lambda p: p.throughput_eps)
    if objective == "latency":
        return min(points, key=lambda p: p.latency_s)
    raise ValueError(f"unknown objective {objective!r}")
