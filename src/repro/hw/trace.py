"""Trace analysis for the accelerator simulator: Gantt charts + utilization.

Turn the :class:`~repro.hw.accelerator.TraceEvent` stream collected by
``run_stream(..., trace=True)`` into

* per-stage **utilization** (busy time / span) — where the pipeline's
  bottleneck sits, and how well the prefetch hides memory latency;
* an **ASCII Gantt chart** — one row per stage, one column per time slot —
  which makes pipeline overlap (or the lack of it) directly visible in test
  logs and bench output.
"""

from __future__ import annotations

from collections import defaultdict

from .accelerator import COMPUTE_STAGES, RunReport, TraceEvent

__all__ = ["stage_utilization", "render_gantt", "pipeline_overlap"]

MEM_STAGES = ("load_edges", "load_vertex", "prefetch", "store")
ALL_STAGES = MEM_STAGES[:2] + COMPUTE_STAGES[:5] \
    + ("eu_attention", "eu_time_enc", "prefetch", "eu_fam", "eu_ftm",
       "store")


def stage_utilization(report: RunReport) -> dict[str, float]:
    """Fraction of the run each stage was busy (0..1)."""
    if not report.events:
        raise ValueError("run_stream was not called with trace=True")
    span = max(e.end_s for e in report.events) \
        - min(e.start_s for e in report.events)
    busy: dict[str, float] = defaultdict(float)
    for e in report.events:
        busy[e.stage] += e.duration_s
    return {stage: (t / span if span > 0 else 0.0)
            for stage, t in sorted(busy.items())}


def pipeline_overlap(report: RunReport) -> float:
    """Overlap factor: sum of stage busy time / wall-clock span.

    1.0 means fully serial execution; values above 1 quantify how many
    stages run concurrently on average — the whole point of the Fig. 4
    schedule.
    """
    if not report.events:
        raise ValueError("run_stream was not called with trace=True")
    span = max(e.end_s for e in report.events) \
        - min(e.start_s for e in report.events)
    busy = sum(e.duration_s for e in report.events)
    return busy / span if span > 0 else 0.0


def render_gantt(report: RunReport, width: int = 100,
                 stages: tuple[str, ...] | None = None,
                 max_time_s: float | None = None) -> str:
    """ASCII Gantt: one row per stage; digits mark the processing batch.

    Each column is ``span / width`` seconds; a cell shows the (mod-10)
    index of the processing batch occupying the stage, ``.`` if idle.
    Overlapping occupancy in one cell keeps the earliest batch (display
    only — the schedule itself never double-books a stage).
    """
    if not report.events:
        raise ValueError("run_stream was not called with trace=True")
    t0 = min(e.start_s for e in report.events)
    t1 = max(e.end_s for e in report.events)
    if max_time_s is not None:
        t1 = min(t1, t0 + max_time_s)
    span = max(t1 - t0, 1e-12)
    stages = stages if stages is not None else tuple(
        s for s in ALL_STAGES if any(e.stage == s for e in report.events))
    name_w = max(len(s) for s in stages)
    grid = {s: ["."] * width for s in stages}
    for e in sorted(report.events, key=lambda e: e.start_s):
        if e.stage not in grid or e.start_s >= t1:
            continue
        lo = int((e.start_s - t0) / span * width)
        hi = max(lo + 1, int((min(e.end_s, t1) - t0) / span * width))
        mark = str(e.batch_index % 10)
        for c in range(max(lo, 0), min(hi, width)):
            if grid[e.stage][c] == ".":
                grid[e.stage][c] = mark
    header = f"{'':{name_w}}  |{'-' * width}| {span * 1e6:.1f} us"
    rows = [f"{s:{name_w}}  |{''.join(grid[s])}|" for s in stages]
    return "\n".join([header] + rows)
