"""Reverse-mode automatic differentiation on NumPy arrays.

This module is the training substrate for the reproduction: the paper trains
its teacher (TGN-attn) and distilled student models with PyTorch; we provide
an equivalent, dependency-free engine.  Design goals, in order:

1. **Correctness** — every op's vector-Jacobian product is validated against
   central finite differences (see ``repro.autograd.gradcheck`` and the
   property-based tests).
2. **Vectorised hot paths** — all forward/backward math is expressed as whole
   array NumPy operations; no Python loops over elements.
3. **Small surface** — only the ops the TGNN models need are implemented, so
   every op can be carefully tested.

The public entry point is :class:`Tensor`.  A global no-grad mode
(:func:`no_grad`) lets inference reuse the exact training code path with zero
graph-building overhead, which keeps the model implementations single-source.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "as_tensor"]

# Module-level switch consulted when deciding whether to record the graph.
_GRAD_ENABLED: bool = True


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph recording (inference mode)."""
    global _GRAD_ENABLED
    prev = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = prev


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing NumPy broadcasting.

    Broadcasting may (a) prepend axes and (b) stretch size-1 axes; the adjoint
    of both is summation over the broadcast axes.
    """
    if grad.shape == shape:
        return grad
    # (a) remove prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # (b) collapse stretched axes.
    axes = tuple(i for i, (g, s) in enumerate(zip(grad.shape, shape)) if s == 1 and g != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def as_tensor(value, dtype=np.float64) -> "Tensor":
    """Coerce ``value`` (Tensor, ndarray, scalar, nested list) to a Tensor."""
    if isinstance(value, Tensor):
        return value
    return Tensor(np.asarray(value, dtype=dtype))


class Tensor:
    """A NumPy array plus an autograd tape node.

    Parameters
    ----------
    data:
        Array-like payload; stored as a contiguous ``np.ndarray``.
    requires_grad:
        Whether gradients should be accumulated into ``self.grad`` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "_op")
    __array_priority__ = 100  # make ndarray.__mul__ defer to Tensor.__rmul__

    def __init__(self, data, requires_grad: bool = False):
        if isinstance(data, Tensor):  # defensive: never nest tensors
            data = data.data
        self.data: np.ndarray = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad: bool = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self._op: str = "leaf"

    # ------------------------------------------------------------------ #
    # introspection                                                       #
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}, op={self._op}{flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        if self.data.size != 1:
            raise ValueError("item() requires a single-element tensor")
        return float(self.data.reshape(()))

    def detach(self) -> "Tensor":
        """Return a new leaf tensor sharing this tensor's data."""
        return Tensor(self.data)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------ #
    # graph construction                                                  #
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(data: np.ndarray, parents: Sequence["Tensor"], op: str,
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        """Create a non-leaf tensor; records the tape only in grad mode."""
        out = Tensor(data)
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward
            out._op = op
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into ``self.grad`` (allocating on first use)."""
        if not self.requires_grad:
            return
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Run reverse-mode accumulation from this tensor.

        ``grad`` defaults to ones (scalar outputs are the common case).
        Topological order is computed iteratively so deep GRU chains cannot
        overflow the Python recursion limit.
        """
        if grad is None:
            grad = np.ones_like(self.data)
        # Iterative post-order DFS over the tape.
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------ #
    # arithmetic                                                          #
    # ------------------------------------------------------------------ #
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data

        def backward(g: np.ndarray) -> None:
            self._accumulate(g)
            other._accumulate(g)

        return Tensor._make(out_data, (self, other), "add", backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(g: np.ndarray) -> None:
            self._accumulate(-g)

        return Tensor._make(-self.data, (self,), "neg", backward)

    def __sub__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data - other.data

        def backward(g: np.ndarray) -> None:
            self._accumulate(g)
            other._accumulate(-g)

        return Tensor._make(out_data, (self, other), "sub", backward)

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other) - self

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data * other.data

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * other.data)
            other._accumulate(g * self.data)

        return Tensor._make(out_data, (self, other), "mul", backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data / other.data

        def backward(g: np.ndarray) -> None:
            self._accumulate(g / other.data)
            other._accumulate(-g * self.data / (other.data ** 2))

        return Tensor._make(out_data, (self, other), "div", backward)

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("Tensor.__pow__ supports scalar exponents only")
        out_data = self.data ** exponent

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), "pow", backward)

    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data @ other.data

        def backward(g: np.ndarray) -> None:
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:  # inner product -> scalar
                self._accumulate(g * b)
                other._accumulate(g * a)
            elif a.ndim == 1:  # (k,) @ (k, n) -> (n,)
                self._accumulate(g @ b.T)
                other._accumulate(np.outer(a, g))
            elif b.ndim == 1:  # (m, k) @ (k,) -> (m,)
                self._accumulate(np.outer(g, b))
                other._accumulate(a.T @ g)
            else:
                ga = g @ np.swapaxes(b, -1, -2)
                gb = np.swapaxes(a, -1, -2) @ g
                self._accumulate(_unbroadcast(ga, a.shape))
                other._accumulate(_unbroadcast(gb, b.shape))

        return Tensor._make(out_data, (self, other), "matmul", backward)

    # ------------------------------------------------------------------ #
    # elementwise nonlinearities                                          #
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * out_data)

        return Tensor._make(out_data, (self,), "exp", backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g / self.data)

        return Tensor._make(out_data, (self,), "log", backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * (1.0 - out_data ** 2))

        return Tensor._make(out_data, (self,), "tanh", backward)

    def sigmoid(self) -> "Tensor":
        # Numerically stable logistic: exp only ever sees non-positive input.
        x = self.data
        out_data = np.where(x >= 0, 1.0 / (1.0 + np.exp(-np.abs(x))),
                            np.exp(-np.abs(x)) / (1.0 + np.exp(-np.abs(x))))

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), "sigmoid", backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * mask)

        return Tensor._make(out_data, (self,), "relu", backward)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def cos(self) -> "Tensor":
        out_data = np.cos(self.data)

        def backward(g: np.ndarray) -> None:
            self._accumulate(-g * np.sin(self.data))

        return Tensor._make(out_data, (self,), "cos", backward)

    # ------------------------------------------------------------------ #
    # reductions                                                          #
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray) -> None:
            g = np.asarray(g)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return Tensor._make(out_data, (self,), "sum", backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if np.isscalar(axis) else tuple(axis)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        """Max along ``axis``; ties split gradient evenly (sub-gradient)."""
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray) -> None:
            expanded = out_data if keepdims else np.expand_dims(out_data, axis)
            mask = (self.data == expanded).astype(np.float64)
            mask /= mask.sum(axis=axis, keepdims=True)
            g_full = g if keepdims else np.expand_dims(g, axis)
            self._accumulate(mask * g_full)

        return Tensor._make(out_data, (self,), "max", backward)

    # ------------------------------------------------------------------ #
    # shape manipulation                                                  #
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g.reshape(self.data.shape))

        return Tensor._make(out_data, (self,), "reshape", backward)

    def transpose(self, axes: tuple[int, ...] | None = None) -> "Tensor":
        out_data = np.transpose(self.data, axes)
        inverse = None if axes is None else tuple(np.argsort(axes))

        def backward(g: np.ndarray) -> None:
            self._accumulate(np.transpose(g, inverse))

        return Tensor._make(out_data, (self,), "transpose", backward)

    def __getitem__(self, index) -> "Tensor":
        """Basic and integer-array indexing with scatter-add adjoint."""
        out_data = self.data[index]

        def backward(g: np.ndarray) -> None:
            if not self.requires_grad:
                return
            full = np.zeros_like(self.data)
            np.add.at(full, index, g)  # handles repeated indices correctly
            self._accumulate(full)

        return Tensor._make(out_data, (self,), "getitem", backward)

    @staticmethod
    def concat(tensors: Iterable["Tensor"], axis: int = -1) -> "Tensor":
        tensors = [as_tensor(t) for t in tensors]
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(g: np.ndarray) -> None:
            for t, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
                idx = [slice(None)] * g.ndim
                idx[axis] = slice(lo, hi)
                t._accumulate(g[tuple(idx)])

        return Tensor._make(out_data, tuple(tensors), "concat", backward)

    @staticmethod
    def stack(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [as_tensor(t) for t in tensors]
        out_data = np.stack([t.data for t in tensors], axis=axis)

        def backward(g: np.ndarray) -> None:
            for i, t in enumerate(tensors):
                t._accumulate(np.take(g, i, axis=axis))

        return Tensor._make(out_data, tuple(tensors), "stack", backward)

    @staticmethod
    def where(condition: np.ndarray, a: "Tensor", b: "Tensor") -> "Tensor":
        """Elementwise select; ``condition`` is a plain boolean array."""
        a, b = as_tensor(a), as_tensor(b)
        cond = np.asarray(condition, dtype=bool)
        out_data = np.where(cond, a.data, b.data)

        def backward(g: np.ndarray) -> None:
            a._accumulate(np.where(cond, g, 0.0))
            b._accumulate(np.where(cond, 0.0, g))

        return Tensor._make(out_data, (a, b), "where", backward)
