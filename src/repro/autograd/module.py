"""Minimal neural-network module system over the autograd engine.

Mirrors the subset of ``torch.nn`` that the TGNN models need: parameter
registration and recursive collection, :class:`Linear`, :class:`GRUCell`
(Eqs. (7)-(10) of the paper), and a small :class:`MLP` used by the link
predictor.  State-dict save/load is plain ``dict[str, np.ndarray]`` so model
checkpoints stay NumPy-native.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from . import init
from .tensor import Tensor

__all__ = ["Parameter", "Module", "Linear", "GRUCell", "MLP", "Sequential"]


class Parameter(Tensor):
    """A Tensor that is always a trainable leaf."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)
        # Parameters must be trainable even when constructed under no_grad
        # (e.g. a model built inside an inference context then trained).
        self.requires_grad = True


class Module:
    """Base class providing parameter/submodule registration by attribute."""

    def __init__(self):
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})

    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # -- parameter access ------------------------------------------------ #
    def parameters(self) -> Iterator[Parameter]:
        """Yield all parameters of this module and its submodules."""
        for p in self._parameters.values():
            yield p
        for m in self._modules.values():
            yield from m.parameters()

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, p in self._parameters.items():
            yield (f"{prefix}{name}", p)
        for mod_name, m in self._modules.items():
            yield from m.named_parameters(prefix=f"{prefix}{mod_name}.")

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # -- checkpointing ---------------------------------------------------- #
    def state_dict(self) -> dict[str, np.ndarray]:
        """Return a flat name -> array copy of all parameters."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter values in place; shapes must match exactly."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)}, "
                           f"unexpected={sorted(unexpected)}")
        for name, value in state.items():
            p = own[name]
            value = np.asarray(value, dtype=np.float64)
            if value.shape != p.data.shape:
                raise ValueError(f"shape mismatch for {name}: "
                                 f"{value.shape} vs {p.data.shape}")
            p.data[...] = value

    # -- call protocol ----------------------------------------------------- #
    def forward(self, *args, **kwargs):  # pragma: no cover - interface
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Linear(Module):
    """Affine map ``y = x @ W^T + b`` with Glorot-uniform initialisation."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.glorot_uniform(out_features, in_features, rng=rng))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out


class GRUCell(Module):
    """Gated recurrent unit matching Eqs. (7)-(10) of the paper.

    ``r = sigma(W_ir m + b_ir + W_hr s + b_hr)``
    ``z = sigma(W_iz m + b_iz + W_hz s + b_hz)``
    ``n = tanh(W_in m + b_in + r * (W_hn s + b_hn))``
    ``s' = (1 - z) * n + z * s``
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        # Stacked gate weights: rows [r; z; n], applied in one matmul each
        # for input and hidden (same layout as torch.nn.GRUCell).
        self.weight_ih = Parameter(init.glorot_uniform(3 * hidden_size, input_size, rng=rng))
        self.weight_hh = Parameter(init.glorot_uniform(3 * hidden_size, hidden_size, rng=rng))
        self.bias_ih = Parameter(np.zeros(3 * hidden_size))
        self.bias_hh = Parameter(np.zeros(3 * hidden_size))

    def forward(self, m: Tensor, s: Tensor) -> Tensor:
        h = self.hidden_size
        gi = m @ self.weight_ih.T + self.bias_ih
        gh = s @ self.weight_hh.T + self.bias_hh
        r = (gi[:, 0:h] + gh[:, 0:h]).sigmoid()
        z = (gi[:, h:2 * h] + gh[:, h:2 * h]).sigmoid()
        n = (gi[:, 2 * h:3 * h] + r * gh[:, 2 * h:3 * h]).tanh()
        return (1.0 - z) * n + z * s


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)
        for i, layer in enumerate(layers):
            setattr(self, f"layer{i}", layer)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x


class MLP(Module):
    """Two-layer perceptron with ReLU, the downstream link decoder shape."""

    def __init__(self, in_features: int, hidden: int, out_features: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.fc1 = Linear(in_features, hidden, rng=rng)
        self.fc2 = Linear(hidden, out_features, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.fc2(self.fc1(x).relu())
