"""First-order optimisers (SGD with momentum, Adam) for Parameter updates.

State is keyed by parameter identity.  ``step`` mutates ``p.data`` in place
(no reallocation), per the HPC guideline of preferring in-place updates on
large arrays.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .module import Parameter

__all__ = ["SGD", "Adam", "clip_grad_norm"]


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= ``max_norm``.

    Returns the pre-clip norm (useful for logging training stability).
    """
    params = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total


class _Optimizer:
    def __init__(self, parameters: Iterable[Parameter], lr: float):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class SGD(_Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-2,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: dict[int, np.ndarray] = {}

    def step(self) -> None:
        for p in self.parameters:
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v = self._velocity.get(id(p))
                if v is None:
                    v = np.zeros_like(p.data)
                    self._velocity[id(p)] = v
                v *= self.momentum
                v += g
                g = v
            p.data -= self.lr * g


class Adam(_Optimizer):
    """Adam (Kingma & Ba) with bias correction; the paper's training setup."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1 ** self._t
        bias2 = 1.0 - b2 ** self._t
        for p in self.parameters:
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m = self._m.get(id(p))
            if m is None:
                m = np.zeros_like(p.data)
                v = np.zeros_like(p.data)
                self._m[id(p)], self._v[id(p)] = m, v
            else:
                v = self._v[id(p)]
            m *= b1
            m += (1.0 - b1) * g
            v *= b2
            v += (1.0 - b2) * g * g
            p.data -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)
