"""Weight initialisation schemes.

All functions take an optional ``rng`` so experiments are reproducible
end-to-end from a single seed (the benches and training harness thread one
``np.random.Generator`` through every stochastic component).
"""

from __future__ import annotations

import numpy as np

__all__ = ["glorot_uniform", "uniform", "normal", "default_rng"]


def default_rng(rng: np.random.Generator | None) -> np.random.Generator:
    """Return ``rng`` or a freshly seeded deterministic generator."""
    # The designated seed-0 fallback every unseeded component shares.
    return rng if rng is not None \
        else np.random.default_rng(0)  # repro-lint: ok=unseeded-rng (documented deterministic fallback)


def glorot_uniform(fan_out: int, fan_in: int,
                   rng: np.random.Generator | None = None) -> np.ndarray:
    """Glorot/Xavier uniform init for a ``(fan_out, fan_in)`` weight."""
    rng = default_rng(rng)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_out, fan_in))


def uniform(shape: tuple[int, ...], low: float = -0.1, high: float = 0.1,
            rng: np.random.Generator | None = None) -> np.ndarray:
    rng = default_rng(rng)
    return rng.uniform(low, high, size=shape)


def normal(shape: tuple[int, ...], std: float = 0.02,
           rng: np.random.Generator | None = None) -> np.ndarray:
    rng = default_rng(rng)
    return rng.normal(0.0, std, size=shape)
