"""Differentiable functional building blocks used by the TGNN models.

All functions accept and return :class:`~repro.autograd.tensor.Tensor` and
are composed from the primitive ops in ``tensor.py``, so their gradients are
automatically correct wherever the primitives are.  Numerically sensitive
reductions (softmax, log-sum-exp, BCE) are written in the max-shifted stable
form.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, as_tensor

__all__ = [
    "softmax",
    "log_softmax",
    "masked_softmax",
    "bce_with_logits",
    "soft_cross_entropy",
    "mse_loss",
    "dot_rows",
]


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Max-shifted softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    e = shifted.exp()
    return e / e.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable ``log(softmax(x))``."""
    x = as_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def masked_softmax(x: Tensor, mask: np.ndarray, axis: int = -1) -> Tensor:
    """Softmax restricted to positions where ``mask`` is True.

    Masked-out positions get exactly zero probability.  Rows whose mask is
    entirely False produce a uniform all-zero row (no NaNs), which is the
    behaviour the attention aggregator wants for isolated vertices with no
    temporal neighbors yet.
    """
    x = as_tensor(x)
    mask = np.asarray(mask, dtype=bool)
    neg_inf = np.where(mask, 0.0, -1e30)
    shifted = x + Tensor(neg_inf)
    shifted = shifted - Tensor(shifted.data.max(axis=axis, keepdims=True))
    e = shifted.exp() * Tensor(mask.astype(np.float64))
    denom = e.sum(axis=axis, keepdims=True)
    # Guard fully-masked rows: replace 0 denominators by 1 (numerator is 0).
    safe = Tensor(np.where(denom.data == 0.0, 1.0, denom.data))
    return e / (denom + (safe - denom).detach())


def bce_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean binary cross-entropy on raw logits.

    Uses the standard stable form
    ``max(x, 0) - x*t + log(1 + exp(-|x|))``.
    """
    logits = as_tensor(logits)
    t = Tensor(np.asarray(targets, dtype=np.float64))
    relu_x = logits.relu()
    # |x| with the correct sub-gradient: relu(x) + relu(-x).
    abs_x = logits.relu() + (-logits).relu()
    softplus = ((-abs_x).exp() + 1.0).log()
    loss = relu_x - logits * t + softplus
    return loss.mean()


def soft_cross_entropy(student_logits: Tensor, teacher_logits: np.ndarray,
                       temperature: float = 1.0,
                       mask: np.ndarray | None = None) -> Tensor:
    """Distillation loss of Eq. (17): soft CE between attention logits.

    ``- sum_v softmax(teacher/T) . log_softmax(student/T)`` averaged over
    rows.  The teacher side is a constant (no gradient flows into it), which
    matches the knowledge-distillation setup in the paper.  ``mask`` limits
    the distribution to valid neighbor slots.
    """
    teacher = np.asarray(teacher_logits, dtype=np.float64) / temperature
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        teacher = np.where(mask, teacher, -1e30)
    t_shift = teacher - teacher.max(axis=-1, keepdims=True)
    t_prob = np.exp(t_shift)
    if mask is not None:
        t_prob *= mask
    denom = t_prob.sum(axis=-1, keepdims=True)
    t_prob = t_prob / np.where(denom == 0.0, 1.0, denom)

    scaled = student_logits * (1.0 / temperature)
    if mask is not None:
        log_p = _masked_log_softmax(scaled, mask)
        per_row = -(Tensor(t_prob) * log_p).sum(axis=-1)
        valid_rows = mask.any(axis=-1)
        if not valid_rows.any():
            return per_row.sum() * 0.0
        return per_row[np.nonzero(valid_rows)[0]].mean()
    log_p = log_softmax(scaled, axis=-1)
    return -(Tensor(t_prob) * log_p).sum(axis=-1).mean()


def _masked_log_softmax(x: Tensor, mask: np.ndarray) -> Tensor:
    neg_inf = np.where(mask, 0.0, -1e30)
    shifted = x + Tensor(neg_inf)
    shifted = shifted - Tensor(shifted.data.max(axis=-1, keepdims=True))
    e = shifted.exp() * Tensor(mask.astype(np.float64))
    denom = e.sum(axis=-1, keepdims=True)
    denom = denom + Tensor(np.where(denom.data == 0.0, 1.0, 0.0))
    return shifted - denom.log()


def mse_loss(pred: Tensor, target: np.ndarray) -> Tensor:
    """Mean squared error against a constant target."""
    diff = as_tensor(pred) - Tensor(np.asarray(target, dtype=np.float64))
    return (diff * diff).mean()


def dot_rows(a: Tensor, b: Tensor) -> Tensor:
    """Row-wise dot product of two ``(n, d)`` tensors -> ``(n,)``."""
    return (a * b).sum(axis=-1)
