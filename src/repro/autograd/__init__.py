"""NumPy reverse-mode autograd: the training substrate of the reproduction.

Public surface::

    from repro.autograd import Tensor, no_grad
    from repro.autograd import functional as F
    from repro.autograd.module import Module, Linear, GRUCell, MLP
    from repro.autograd.optim import Adam, SGD
"""

from . import functional, init  # noqa: F401
from .gradcheck import check_gradients, numerical_grad  # noqa: F401
from .module import GRUCell, Linear, MLP, Module, Parameter, Sequential  # noqa: F401
from .optim import SGD, Adam, clip_grad_norm  # noqa: F401
from .tensor import Tensor, as_tensor, is_grad_enabled, no_grad  # noqa: F401

__all__ = [
    "Tensor", "no_grad", "is_grad_enabled", "as_tensor",
    "Module", "Parameter", "Linear", "GRUCell", "MLP", "Sequential",
    "SGD", "Adam", "clip_grad_norm",
    "check_gradients", "numerical_grad",
    "functional", "init",
]
