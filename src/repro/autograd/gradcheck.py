"""Numerical gradient verification used by the test suite.

Compares reverse-mode gradients against central finite differences.  Kept in
the library (not the tests) so downstream users extending the op set can
validate their additions the same way.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["numerical_grad", "check_gradients"]


def numerical_grad(fn: Callable[..., Tensor], inputs: Sequence[Tensor],
                   index: int, eps: float = 1e-6) -> np.ndarray:
    """Central finite-difference gradient of scalar ``fn`` w.r.t. input ``index``."""
    x = inputs[index]
    grad = np.zeros_like(x.data)
    flat = x.data.ravel()
    gflat = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        f_plus = fn(*inputs).item()
        flat[i] = orig - eps
        f_minus = fn(*inputs).item()
        flat[i] = orig
        gflat[i] = (f_plus - f_minus) / (2.0 * eps)
    return grad


def check_gradients(fn: Callable[..., Tensor], inputs: Sequence[Tensor],
                    eps: float = 1e-6, atol: float = 1e-5,
                    rtol: float = 1e-4) -> None:
    """Assert analytic gradients of scalar ``fn`` match finite differences.

    Raises ``AssertionError`` naming the offending input index on mismatch.
    """
    for p in inputs:
        p.zero_grad()
    out = fn(*inputs)
    if out.size != 1:
        raise ValueError("check_gradients requires a scalar-valued function")
    out.backward()
    for idx, p in enumerate(inputs):
        if not p.requires_grad:
            continue
        analytic = p.grad if p.grad is not None else np.zeros_like(p.data)
        numeric = numerical_grad(fn, inputs, idx, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = float(np.max(np.abs(analytic - numeric)))
            raise AssertionError(
                f"gradient mismatch on input {idx}: max abs err {worst:.3e}")
