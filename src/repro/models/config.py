"""Model configuration and the Table II optimization ladder.

A :class:`ModelConfig` pins every dimension and co-design flag.  The ladder
helper enumerates the paper's accumulated-optimization rows:

    Baseline  -> +SAT -> +LUT -> +NP(L) -> +NP(M) -> +NP(S)

where SAT is the simplified temporal attention (Eq. 16), LUT the look-up
table time encoder (§III-C), and NP(x) neighbor pruning with budgets 6/4/2.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["ModelConfig", "variant_ladder", "NP_BUDGETS"]

# Pruning budgets from §VI: NP(L/M/S) keep 6/4/2 of the 10 sampled neighbors.
NP_BUDGETS: dict[str, int] = {"L": 6, "M": 4, "S": 2}


@dataclass(frozen=True)
class ModelConfig:
    """Dimensions and co-design switches for a memory-based TGNN.

    Defaults reproduce the paper's TGN-attn setup: memory/time/embedding
    width 100, 10 most-recent temporal neighbors, Wikipedia-style 172-d edge
    features.
    """

    memory_dim: int = 100
    time_dim: int = 100
    embed_dim: int = 100
    edge_dim: int = 172
    node_dim: int = 0
    num_neighbors: int = 10        # sampled most-recent neighbors (k)
    # --- co-design flags -------------------------------------------------- #
    simplified_attention: bool = False   # SAT (Eq. 16)
    lut_time_encoder: bool = False       # LUT (§III-C)
    lut_bins: int = 128
    pruning_budget: int | None = None    # NP: neighbors kept after pruning
    memory_updater: str = "gru"          # UPDT variant: "gru" (paper) | "rnn"
    # --- bookkeeping ------------------------------------------------------ #
    name: str = "baseline"

    def __post_init__(self):
        if self.pruning_budget is not None:
            if not self.simplified_attention:
                raise ValueError(
                    "neighbor pruning requires the simplified attention: the "
                    "pruning decision uses its pre-fetch logits (§III-B)")
            if not 0 < self.pruning_budget <= self.num_neighbors:
                raise ValueError("pruning budget must be in [1, num_neighbors]")
        for field in ("memory_dim", "time_dim", "embed_dim", "num_neighbors"):
            if getattr(self, field) <= 0:
                raise ValueError(f"{field} must be positive")
        if self.edge_dim < 0 or self.node_dim < 0:
            raise ValueError("feature dims must be non-negative")
        if self.memory_updater not in ("gru", "rnn"):
            raise ValueError("memory_updater must be 'gru' or 'rnn'")

    # ------------------------------------------------------------------ #
    @property
    def raw_message_dim(self) -> int:
        """Cached message payload width: ``s_src || s_dst || f_e``."""
        return 2 * self.memory_dim + self.edge_dim

    @property
    def message_dim(self) -> int:
        """GRU input width: raw message plus the time encoding (Eq. 4)."""
        return self.raw_message_dim + self.time_dim

    @property
    def effective_neighbors(self) -> int:
        """Neighbors whose values are actually computed and fetched."""
        return self.pruning_budget if self.pruning_budget is not None \
            else self.num_neighbors

    def with_(self, **kwargs) -> "ModelConfig":
        """Derive a modified copy (dataclass ``replace`` convenience)."""
        return replace(self, **kwargs)


def variant_ladder(base: ModelConfig) -> list[ModelConfig]:
    """The six accumulated-optimization variants of Table II, in order."""
    sat = base.with_(simplified_attention=True, name="+SAT")
    lut = sat.with_(lut_time_encoder=True, name="+LUT")
    return [
        base.with_(name="baseline"),
        sat,
        lut,
        lut.with_(pruning_budget=NP_BUDGETS["L"], name="+NP(L)"),
        lut.with_(pruning_budget=NP_BUDGETS["M"], name="+NP(M)"),
        lut.with_(pruning_budget=NP_BUDGETS["S"], name="+NP(S)"),
    ]
