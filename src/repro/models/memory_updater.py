"""Memory updaters: the UPDT function of Eq. (1).

The paper's chosen variant is the GRU (gates per Eqs. 7-10) because
TGN-attn has "the highest accuracy to complexity ratio" among the memory
variants TGN benchmarks; we also provide the plain-RNN updater from that
benchmark family.  Both consume a vertex's cached raw message plus the time
encoding of the gap between the mail's timestamp and the vertex's previous
memory update, and both map onto the hardware MUU of §IV-B (the RNN uses a
single gate array).
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, init
from ..autograd.module import GRUCell, Linear, Module, Parameter
from .config import ModelConfig

__all__ = ["GRUMemoryUpdater", "RNNMemoryUpdater"]


class GRUMemoryUpdater(Module):
    """``s' = GRU(m || Phi(dt), s)`` over a batch of vertices.

    The time encoder is shared with the attention aggregator (as in TGN) and
    injected by the parent model.
    """

    def __init__(self, cfg: ModelConfig, time_encoder: Module,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.cfg = cfg
        self.time_encoder = time_encoder
        self.gru = GRUCell(cfg.message_dim, cfg.memory_dim, rng=rng)

    def forward(self, raw_messages: np.ndarray, dt: np.ndarray,
                memory: np.ndarray) -> Tensor:
        """Update memory for ``n`` vertices.

        Parameters
        ----------
        raw_messages: ``(n, raw_message_dim)`` cached mail payloads.
        dt: ``(n,)`` mail timestamp minus previous memory-update timestamp
            (clipped at zero by the caller).
        memory: ``(n, memory_dim)`` previous memory ``s``.
        """
        phi = self.time_encoder(np.asarray(dt, dtype=np.float64))
        m = Tensor.concat([Tensor(np.asarray(raw_messages, dtype=np.float64)),
                           phi], axis=-1)
        return self.gru(m, Tensor(np.asarray(memory, dtype=np.float64)))

    # ------------------------------------------------------------------ #
    def forward_numpy(self, raw_messages: np.ndarray, dt: np.ndarray,
                      memory: np.ndarray,
                      time_features: np.ndarray | None = None) -> np.ndarray:
        """Graph-free inference path, bit-compatible with :meth:`forward`.

        ``time_features`` lets a caller supply pre-computed (e.g. LUT)
        encodings; otherwise the shared encoder is invoked.
        """
        if time_features is None:
            time_features = self.time_encoder.encode_numpy(
                np.asarray(dt, dtype=np.float64))
        m = np.concatenate([raw_messages, time_features], axis=1)
        gi = m @ self.gru.weight_ih.data.T + self.gru.bias_ih.data
        return self._gates(gi, memory)

    def forward_numpy_premul(self, raw_messages: np.ndarray,
                             bins: np.ndarray, premul_table: np.ndarray,
                             memory: np.ndarray) -> np.ndarray:
        """LUT fast path: the time slice of ``W_ih @ input`` is one lookup."""
        d_t = self.cfg.time_dim
        w_raw = self.gru.weight_ih.data[:, :-d_t]
        gi = raw_messages @ w_raw.T + premul_table[bins] + self.gru.bias_ih.data
        return self._gates(gi, memory)

    def input_time_weight(self) -> np.ndarray:
        """Time-encoding slice of the stacked input weights (for premult)."""
        return self.gru.weight_ih.data[:, -self.cfg.time_dim:]

    def _gates(self, gi: np.ndarray, memory: np.ndarray) -> np.ndarray:
        h = self.cfg.memory_dim
        gh = memory @ self.gru.weight_hh.data.T + self.gru.bias_hh.data
        r = _sigmoid(gi[:, 0:h] + gh[:, 0:h])
        z = _sigmoid(gi[:, h:2 * h] + gh[:, h:2 * h])
        n = np.tanh(gi[:, 2 * h:3 * h] + r * gh[:, 2 * h:3 * h])
        return (1.0 - z) * n + z * memory


class RNNMemoryUpdater(Module):
    """Vanilla-RNN updater: ``s' = tanh(W_i [m || Phi(dt)] + W_h s + b)``.

    One third of the GRU's gate compute; the TGN paper reports slightly
    lower accuracy.  Shares the LUT premultiplication interface with the
    GRU so every co-design optimization applies unchanged.
    """

    def __init__(self, cfg: ModelConfig, time_encoder: Module,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.cfg = cfg
        self.time_encoder = time_encoder
        self.w_ih = Parameter(init.glorot_uniform(cfg.memory_dim,
                                                  cfg.message_dim, rng=rng))
        self.w_hh = Parameter(init.glorot_uniform(cfg.memory_dim,
                                                  cfg.memory_dim, rng=rng))
        self.bias = Parameter(np.zeros(cfg.memory_dim))

    def forward(self, raw_messages: np.ndarray, dt: np.ndarray,
                memory: np.ndarray) -> Tensor:
        phi = self.time_encoder(np.asarray(dt, dtype=np.float64))
        m = Tensor.concat([Tensor(np.asarray(raw_messages, dtype=np.float64)),
                           phi], axis=-1)
        s = Tensor(np.asarray(memory, dtype=np.float64))
        return (m @ self.w_ih.T + s @ self.w_hh.T + self.bias).tanh()

    def forward_numpy(self, raw_messages: np.ndarray, dt: np.ndarray,
                      memory: np.ndarray,
                      time_features: np.ndarray | None = None) -> np.ndarray:
        if time_features is None:
            time_features = self.time_encoder.encode_numpy(
                np.asarray(dt, dtype=np.float64))
        m = np.concatenate([raw_messages, time_features], axis=1)
        return np.tanh(m @ self.w_ih.data.T + memory @ self.w_hh.data.T
                       + self.bias.data)

    def forward_numpy_premul(self, raw_messages: np.ndarray,
                             bins: np.ndarray, premul_table: np.ndarray,
                             memory: np.ndarray) -> np.ndarray:
        d_t = self.cfg.time_dim
        w_raw = self.w_ih.data[:, :-d_t]
        return np.tanh(raw_messages @ w_raw.T + premul_table[bins]
                       + memory @ self.w_hh.data.T + self.bias.data)

    def input_time_weight(self) -> np.ndarray:
        return self.w_ih.data[:, -self.cfg.time_dim:]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    """Stable logistic matching Tensor.sigmoid exactly."""
    ax = np.abs(x)
    e = np.exp(-ax)
    return np.where(x >= 0, 1.0 / (1.0 + e), e / (1.0 + e))
