"""Downstream temporal link prediction head.

The paper's evaluation task (§VI): given the dynamic embeddings of two
vertices at time t, predict whether an edge occurs.  TGNN inference proper
ends at the embeddings; this MLP is the external edge classifier used for
self-supervised training and the Average Precision numbers in Table II.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor
from ..autograd.module import MLP, Module

__all__ = ["LinkPredictor"]


class LinkPredictor(Module):
    """``logit = MLP([h_u || h_v])`` with one hidden ReLU layer."""

    def __init__(self, embed_dim: int, hidden: int | None = None,
                 rng: np.random.Generator | None = None):
        super().__init__()
        hidden = hidden if hidden is not None else embed_dim
        self.mlp = MLP(2 * embed_dim, hidden, 1, rng=rng)

    def forward(self, h_src: Tensor, h_dst: Tensor) -> Tensor:
        """Score vertex pairs; returns ``(n,)`` logits."""
        pair = Tensor.concat([h_src, h_dst], axis=-1)
        return self.mlp(pair).reshape(-1)

    def score_numpy(self, h_src: np.ndarray, h_dst: np.ndarray) -> np.ndarray:
        """Graph-free scoring path (deployment)."""
        x = np.concatenate([h_src, h_dst], axis=1)
        h = x @ self.mlp.fc1.weight.data.T + self.mlp.fc1.bias.data
        np.maximum(h, 0.0, out=h)
        return (h @ self.mlp.fc2.weight.data.T + self.mlp.fc2.bias.data).ravel()
