"""TGNN models: TGN-attn baseline, co-designed variants, and APAN."""

from .apan import APAN, APANRuntime  # noqa: F401
from .attention import (DT_SCALE, AttentionOutput,  # noqa: F401
                        SimplifiedTemporalAttention, VanillaTemporalAttention)
from .config import NP_BUDGETS, ModelConfig, variant_ladder  # noqa: F401
from .checkpoint import (load_model, load_runtime, save_model,  # noqa: F401
                         save_runtime)
from .link_predictor import LinkPredictor  # noqa: F401
from .memory_updater import GRUMemoryUpdater, RNNMemoryUpdater  # noqa: F401
from .message import build_raw_messages  # noqa: F401
from .multilayer import MultiLayerTGNN  # noqa: F401
from .pruning import select_pruned, top_k_mask  # noqa: F401
from .tgn import (KERNEL_STAGES, TGNN, BatchResult,  # noqa: F401
                  ModelRuntime)
from .time_encoding import CosineTimeEncoder, LUTTimeEncoder  # noqa: F401

__all__ = [
    "ModelConfig", "variant_ladder", "NP_BUDGETS",
    "TGNN", "ModelRuntime", "BatchResult", "KERNEL_STAGES",
    "CosineTimeEncoder", "LUTTimeEncoder",
    "VanillaTemporalAttention", "SimplifiedTemporalAttention",
    "AttentionOutput", "DT_SCALE",
    "GRUMemoryUpdater", "RNNMemoryUpdater", "MultiLayerTGNN",
    "build_raw_messages",
    "top_k_mask", "select_pruned",
    "LinkPredictor", "APAN", "APANRuntime",
    "save_model", "load_model", "save_runtime", "load_runtime",
]
