"""Memory-based TGNN (TGN-attn) and its co-designed variants.

One class implements the whole Table II ladder: the :class:`ModelConfig`
flags select vanilla vs. simplified attention, cosine vs. LUT time encoder,
and the pruning budget.  The model follows the paper's Algorithm 1 exactly:

    1. update vertex memory from cached messages         (UPDT / MUU)
    2. refresh cached messages with the new signals      (mailbox)
    3. compute output embeddings via temporal attention  (GNN / EU)
    4. append the new edges to the neighbor table        (FIFO sampler)

Two execution paths share the same parameters:

* :meth:`process_batch` — autograd path used for training and distillation;
* :meth:`infer_batch` — pure-NumPy deployment path with *actual* pruned
  gathers and pre-multiplied LUT tables, instrumented with the per-stage
  timings of Table I.  The two paths agree to float round-off (asserted by
  integration tests), and the hardware simulator reuses the same per-module
  numpy kernels, so all three implementations are functionally identical.

Worker-pool contract (measured serving backends)
------------------------------------------------
:class:`TGNN`, :class:`ModelRuntime`, and the graph are **picklable**, and
:meth:`infer_batch` is stateless apart from the runtime it is handed —
parameters (including the ``prepare_inference`` premultiplied LUT cache)
are plain numpy arrays with no open handles, closures, or clocks.  The
measured serving path (:mod:`repro.serving.measured`) relies on this:
each worker process receives ``(model, graph)`` once, builds its own
runtime via :meth:`TGNN.new_runtime`, and replays its shard's sub-batches
FIFO through :meth:`infer_batch`.  Changes that break picklability (e.g.
caching a lambda on the model) break `serve-sim --backend measured
--workers N`; ``test_measured`` pins the contract.  :data:`KERNEL_STAGES`
names the Table I stage keys ``infer_batch`` reports via ``timings``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..autograd import Tensor, no_grad
from ..autograd.module import Linear, Module
from ..graph.sampler import FIFONeighborSampler
from ..graph.state import VertexState
from ..graph.temporal_graph import EdgeBatch, TemporalGraph
from .attention import (DT_SCALE, AttentionOutput, SimplifiedTemporalAttention,
                        VanillaTemporalAttention, _masked_softmax_np)
from .config import ModelConfig
from .memory_updater import GRUMemoryUpdater, RNNMemoryUpdater
from .message import build_raw_messages
from .pruning import select_pruned
from .time_encoding import CosineTimeEncoder, LUTTimeEncoder

__all__ = ["TGNN", "ModelRuntime", "BatchResult", "MemoryUpdate",
           "KERNEL_STAGES"]

# Table I stage keys of the deployment path, in pipeline order: the
# ``timings`` dict of :meth:`TGNN.infer_batch` uses exactly these, and the
# measured serving backend's per-stage report aggregates under them.
KERNEL_STAGES = ("memory", "sample", "gnn", "update")


def _assemble_endpoints(batch: EdgeBatch) -> tuple[np.ndarray, np.ndarray,
                                                   np.ndarray, np.ndarray]:
    """Per-batch endpoint assembly shared by both pipeline stages.

    Returns ``(nodes, t_nodes, uniq, inverse)``: the interleaved endpoint
    ids, each endpoint's edge timestamp (every edge contributes its ``t``
    twice — once per endpoint), and the unique-vertex table with the
    inverse map back to endpoint rows.  Every memory-update entry point
    (autograd, numpy, LUT-premultiplied) starts from exactly this tuple,
    and ``infer_batch`` reuses ``t_nodes`` downstream instead of
    recomputing the repeat.
    """
    nodes = batch.nodes
    t_nodes = np.repeat(batch.t, 2)
    uniq, inverse = np.unique(nodes, return_inverse=True)
    return nodes, t_nodes, uniq, inverse


@dataclass
class ModelRuntime:
    """Mutable per-stream state: vertex tables + neighbor FIFO.

    Forking a runtime (``snapshot``/``restore``) lets evaluation continue
    from the training boundary without corrupting the training state.
    """

    state: VertexState
    sampler: FIFONeighborSampler

    def snapshot(self) -> dict:
        return {
            "state": self.state.snapshot(),
            "nbr": {
                "_nbrs": self.sampler.table._nbrs.copy(),
                "_eids": self.sampler.table._eids.copy(),
                "_times": self.sampler.table._times.copy(),
                "_head": self.sampler.table._head.copy(),
                "_count": self.sampler.table._count.copy(),
            },
        }

    def restore(self, snap: dict) -> None:
        self.state.restore(snap["state"])
        for name, arr in snap["nbr"].items():
            getattr(self.sampler.table, name)[...] = arr

    def reset(self) -> None:
        self.state.reset()
        t = self.sampler.table
        t._nbrs.fill(0)
        t._eids.fill(0)
        t._times.fill(-np.inf)
        t._head.fill(0)
        t._count.fill(0)


@dataclass
class BatchResult:
    """Output of one processed batch (2 embeddings per edge, interleaved).

    When negative-sample queries were requested, their embeddings occupy the
    trailing rows of ``embeddings`` (``nodes`` includes them too).
    """

    nodes: np.ndarray          # (2B [+n_neg],) vertex ids: src0, dst0, ...
    embeddings: Tensor         # (2B [+n_neg], embed_dim)
    attention: AttentionOutput | None = None
    dt_scaled: np.ndarray | None = None   # (rows, k) scaled neighbor gaps
    num_edges: int = 0         # B; 0 means "infer from len(nodes)//2"

    def _b(self) -> int:
        return self.num_edges if self.num_edges else len(self.nodes) // 2

    @property
    def src_embeddings(self) -> Tensor:
        return self.embeddings[np.arange(0, 2 * self._b(), 2)]

    @property
    def dst_embeddings(self) -> Tensor:
        return self.embeddings[np.arange(1, 2 * self._b(), 2)]

    @property
    def neg_embeddings(self) -> Tensor:
        """Embeddings of the negative-sample query nodes (may be empty)."""
        return self.embeddings[np.arange(2 * self._b(), len(self.nodes))]


@dataclass
class MemoryUpdate:
    """Stage-1 output of :meth:`TGNN.process_batch` (committed memory/mail).

    ``process_batch`` is two pipeline stages — the memory update (the
    paper's MUU) and the embedding computation (EU) — and distributed
    deployments need to observe the boundary between them: after stage 1
    the batch's updated memory rows exist and can be forwarded to other
    shards *before* any shard's attention reads them (the software
    analogue of DGNN-Booster's inter-stage state forwarding; see
    :mod:`repro.serving.memsync`).  This container carries stage 1's
    results into stage 2.
    """

    nodes: np.ndarray          # (2B,) interleaved src/dst endpoint ids
    t_nodes: np.ndarray        # (2B,) per-endpoint edge timestamps
    inverse: np.ndarray        # (2B,) index into the unique-vertex rows
    updated: Tensor            # (n_unique, memory_dim) post-GRU memory


class TGNN(Module):
    """TGN-attn and its simplified variants, per :class:`ModelConfig`."""

    def __init__(self, cfg: ModelConfig, rng: np.random.Generator | None = None):
        super().__init__()
        self.cfg = cfg
        if cfg.lut_time_encoder:
            self.time_encoder = LUTTimeEncoder(cfg.time_dim, cfg.lut_bins, rng=rng)
        else:
            self.time_encoder = CosineTimeEncoder(cfg.time_dim, rng=rng)
        if cfg.memory_updater == "rnn":
            self.memory_updater = RNNMemoryUpdater(cfg, self.time_encoder,
                                                   rng=rng)
        else:
            self.memory_updater = GRUMemoryUpdater(cfg, self.time_encoder,
                                                   rng=rng)
        if cfg.simplified_attention:
            self.attention: Module = SimplifiedTemporalAttention(cfg, rng=rng)
        else:
            self.attention = VanillaTemporalAttention(cfg, rng=rng)
        self.node_proj = (Linear(cfg.node_dim, cfg.memory_dim, rng=rng)
                          if cfg.node_dim > 0 else None)
        self.out_transform = Linear(cfg.embed_dim + cfg.memory_dim,
                                    cfg.embed_dim, rng=rng)
        self._premul_cache: dict | None = None

    # ------------------------------------------------------------------ #
    # runtime management                                                  #
    # ------------------------------------------------------------------ #
    def new_runtime(self, graph: TemporalGraph) -> ModelRuntime:
        """Fresh zeroed vertex state + FIFO neighbor table for ``graph``."""
        state = VertexState(graph.num_nodes, self.cfg.memory_dim,
                            self.cfg.raw_message_dim)
        sampler = FIFONeighborSampler.create(graph.num_nodes,
                                             mr=self.cfg.num_neighbors)
        return ModelRuntime(state=state, sampler=sampler)

    def calibrate(self, graph: TemporalGraph) -> None:
        """Fit LUT bin edges (and warm-start entries) from stream Δt stats.

        No-op for the cosine encoder.  Must run before training a LUT model.
        """
        if isinstance(self.time_encoder, LUTTimeEncoder):
            from ..datasets.stats import encoder_input_deltas
            deltas = encoder_input_deltas(graph)
            ref = CosineTimeEncoder(self.cfg.time_dim)
            self.time_encoder.calibrate(deltas, reference=ref)
            self._premul_cache = None

    # ------------------------------------------------------------------ #
    # shared per-batch preparation                                        #
    # ------------------------------------------------------------------ #
    def _refresh_mail(self, rt: ModelRuntime, batch: EdgeBatch,
                      nodes: np.ndarray, t_nodes: np.ndarray,
                      inverse: np.ndarray, updated: np.ndarray) -> None:
        """Refresh cached messages with the new signals (last write wins)."""
        mem_src = updated[inverse[0::2]]
        mem_dst = updated[inverse[1::2]]
        msg_src, msg_dst = build_raw_messages(mem_src, mem_dst,
                                              batch.edge_feat)
        msgs = np.empty((len(nodes), self.cfg.raw_message_dim))
        msgs[0::2] = msg_src
        msgs[1::2] = msg_dst
        rt.state.write_mail(nodes, msgs, t_nodes)

    def _update_memory_np(self, batch: EdgeBatch, rt: ModelRuntime
                          ) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                     np.ndarray]:
        """Algorithm 1 lines 3-8 (numpy): returns (nodes, t_nodes, inverse,
        updated).

        ``updated`` holds the post-GRU memory for the batch's unique
        vertices; state (memory + mailbox) is committed as a side effect.
        """
        nodes, t_nodes, uniq, inverse = _assemble_endpoints(batch)
        mem, mail, mail_t, last = rt.state.read(uniq)
        has_mail = mail_t > -np.inf
        updated = mem.copy()
        if has_mail.any():
            idx = np.nonzero(has_mail)[0]
            dt = np.maximum(mail_t[idx] - last[idx], 0.0)
            tf = self._gru_time_features_np(dt)
            updated[idx] = self.memory_updater.forward_numpy(
                mail[idx], dt, mem[idx], time_features=tf)
            rt.state.write_memory(uniq[idx], updated[idx], mail_t[idx])
        self._refresh_mail(rt, batch, nodes, t_nodes, inverse, updated)
        return nodes, t_nodes, inverse, updated

    def _gru_time_features_np(self, dt: np.ndarray) -> np.ndarray:
        """Time features for the GRU input (LUT premultiplication is applied
        downstream inside forward_numpy's matmul; here we return Phi)."""
        return self.time_encoder.encode_numpy(dt)

    # ------------------------------------------------------------------ #
    # training path (autograd)                                            #
    # ------------------------------------------------------------------ #
    def update_memory(self, batch: EdgeBatch,
                      rt: ModelRuntime) -> MemoryUpdate:
        """Stage 1 of :meth:`process_batch`: GRU memory update + mail refresh.

        Consumes each endpoint's cached message, commits the updated memory
        rows (detached) and the batch's new raw messages to ``rt``, and
        returns the stage-1 results stage 2 (:meth:`embed`) needs.  Exposed
        separately so distributed runtimes can forward the freshly-written
        rows between the two stages (:mod:`repro.serving.memsync`).
        """
        nodes, t_nodes, uniq, inverse = _assemble_endpoints(batch)
        mem, mail, mail_t, last = rt.state.read(uniq)
        has_mail = mail_t > -np.inf
        dt_mail = np.where(has_mail, np.maximum(mail_t - last, 0.0), 0.0)
        raw = np.where(has_mail[:, None], mail, 0.0)
        gru_out = self.memory_updater(raw, dt_mail, mem)
        updated = Tensor.where(has_mail[:, None], gru_out, Tensor(mem))
        # Commit detached state before the GNN reads neighbor memory.
        commit_t = np.where(has_mail, mail_t, last)
        rt.state.write_memory(uniq, updated.data, commit_t)
        self._refresh_mail(rt, batch, nodes, t_nodes, inverse, updated.data)
        return MemoryUpdate(nodes=nodes, t_nodes=t_nodes, inverse=inverse,
                            updated=updated)

    def process_batch(self, batch: EdgeBatch, rt: ModelRuntime,
                      graph: TemporalGraph,
                      neg_dst: np.ndarray | None = None) -> BatchResult:
        """Differentiable processing of one chronological edge batch.

        Gradients flow through the GRU update and the attention aggregation
        of the *current* batch; state committed to the runtime is detached
        (TGN's standard truncation of backprop across batches).

        ``neg_dst`` (optional, shape ``(n_neg,)``) appends pure *query*
        embeddings for negative-sampled vertices, evaluated at the batch's
        edge times (cycled if ``n_neg != B``) against pre-insertion neighbor
        lists — the TGN link-prediction protocol.  Negative queries never
        touch vertex state.

        Equivalent to ``embed(batch, rt, graph, update_memory(batch, rt),
        neg_dst)`` — the two stages are exposed separately for distributed
        runtimes that must synchronize state between them.
        """
        return self.embed(batch, rt, graph, self.update_memory(batch, rt),
                          neg_dst)

    def embed(self, batch: EdgeBatch, rt: ModelRuntime,
              graph: TemporalGraph, update: MemoryUpdate,
              neg_dst: np.ndarray | None = None,
              gathered=None) -> BatchResult:
        """Stage 2 of :meth:`process_batch`: attention over temporal
        neighbors (pre-insertion table) + neighbor-table append.

        ``gathered`` optionally supplies the precomputed
        ``rt.sampler.gather(query_nodes, cfg.num_neighbors)`` result so a
        caller that already sampled the neighbors (the memsync replay's
        inter-stage sync needs the read-set first) does not pay the gather
        twice; it must cover exactly the batch's endpoint queries, so it
        cannot be combined with ``neg_dst``.
        """
        cfg = self.cfg
        nodes, t_nodes = update.nodes, update.t_nodes
        inverse, updated = update.inverse, update.updated
        query_nodes = nodes
        query_t = t_nodes
        self_feat = updated[inverse]
        if neg_dst is not None and len(neg_dst) > 0:
            if gathered is not None:
                raise ValueError("gathered covers only the endpoint "
                                 "queries; it cannot be used with neg_dst")
            neg = np.asarray(neg_dst, dtype=np.int64)
            neg_t = np.resize(batch.t, len(neg))
            query_nodes = np.concatenate([nodes, neg])
            query_t = np.concatenate([t_nodes, neg_t])
            self_feat = Tensor.concat(
                [self_feat, Tensor(rt.state.memory[neg])], axis=0)

        g = gathered if gathered is not None \
            else rt.sampler.gather(query_nodes, cfg.num_neighbors)
        dt_nbr = np.maximum(query_t[:, None] - g.times, 0.0)
        dt_nbr = np.where(g.mask, dt_nbr, 0.0)
        nbr_mem = rt.state.memory[g.nbrs]
        e_feat = graph.edge_feat[g.eids]
        e_feat = np.where(g.mask[:, :, None], e_feat, 0.0)

        nbr_feat = Tensor(nbr_mem)
        if self.node_proj is not None:
            self_feat = self_feat + self.node_proj(
                Tensor(graph.node_feat[query_nodes]))
            nbr_feat = nbr_feat + self.node_proj(Tensor(graph.node_feat[g.nbrs]))
        time_enc = self.time_encoder(dt_nbr)
        time_zero = self.time_encoder(np.zeros(len(query_nodes)))
        dt_scaled = dt_nbr * DT_SCALE
        attn = self.attention(query_feat=self_feat, nbr_feat=nbr_feat,
                              edge_feat=e_feat, time_enc=time_enc,
                              time_enc_zero=time_zero, mask=g.mask,
                              dt_scaled=dt_scaled)
        emb = self.out_transform(
            Tensor.concat([attn.hidden, self_feat], axis=-1)).relu()
        rt.sampler.insert_edges(batch.src, batch.dst, batch.eid, batch.t)
        return BatchResult(nodes=query_nodes, embeddings=emb, attention=attn,
                           dt_scaled=dt_scaled, num_edges=len(batch))

    # ------------------------------------------------------------------ #
    # deployment path (pure numpy, really-pruned gathers)                 #
    # ------------------------------------------------------------------ #
    def prepare_inference(self) -> None:
        """Pre-multiply the LUT table with the downstream weight slices.

        After this call, :meth:`infer_batch` replaces every time-feature
        matmul with a table lookup — the §III-C computation-order reversal.
        Call again after any parameter change.
        """
        self._premul_cache = None
        if not isinstance(self.time_encoder, LUTTimeEncoder):
            return
        d_t = self.cfg.time_dim
        cache = {"updt": self.time_encoder.premultiply(
            self.memory_updater.input_time_weight())}
        if isinstance(self.attention, SimplifiedTemporalAttention):
            w_v_time = self.attention.w_v.weight.data[:, -d_t:]
            cache["attn_v"] = self.time_encoder.premultiply(w_v_time)
        self._premul_cache = cache

    def infer_batch(self, batch: EdgeBatch, rt: ModelRuntime,
                    graph: TemporalGraph,
                    timings: dict[str, float] | None = None) -> BatchResult:
        """Fast inference for one batch; optionally accumulates per-stage
        wall-clock seconds into ``timings`` under the Table I stage names
        (``sample`` / ``memory`` / ``gnn`` / ``update``)."""
        cfg = self.cfg
        tic = time.perf_counter

        # memory: mailbox consumption + GRU (Table I "memory" part).
        t0 = tic()
        nodes, t_nodes, inverse, updated = \
            self._update_memory_np_timed(batch, rt)
        t1 = tic()

        # sample: neighbor-table fetch (Table I "sample" part).
        g = rt.sampler.gather(nodes, cfg.num_neighbors)
        t2 = tic()

        # gnn: attention + transform (Table I "GNN" part).
        emb, attn_logits, sel = self._gnn_numpy(nodes, t_nodes, g, updated,
                                                inverse, rt, graph)
        t3 = tic()

        # update: neighbor-table append (memory/mail writes were already
        # committed inside the memory stage, mirroring Algorithm 1's order).
        rt.sampler.insert_edges(batch.src, batch.dst, batch.eid, batch.t)
        t4 = tic()

        if timings is not None:
            timings["memory"] = timings.get("memory", 0.0) + (t1 - t0)
            timings["sample"] = timings.get("sample", 0.0) + (t2 - t1)
            timings["gnn"] = timings.get("gnn", 0.0) + (t3 - t2)
            timings["update"] = timings.get("update", 0.0) + (t4 - t3)
        attn = AttentionOutput(hidden=Tensor(np.zeros((len(nodes), 0))),
                               logits=Tensor(attn_logits), mask=g.mask,
                               selected=sel)
        return BatchResult(nodes=nodes, embeddings=Tensor(emb),
                           attention=attn, dt_scaled=None)

    def _update_memory_np_timed(self, batch, rt):
        """Wrapper so LUT premultiplication applies inside the GRU path."""
        cache = self._premul_cache
        if cache is None:
            return self._update_memory_np(batch, rt)
        # LUT fast path: time contribution to the input gates is a lookup.
        nodes, t_nodes, uniq, inverse = _assemble_endpoints(batch)
        mem, mail, mail_t, last = rt.state.read(uniq)
        has_mail = mail_t > -np.inf
        updated = mem.copy()
        if has_mail.any():
            idx = np.nonzero(has_mail)[0]
            dt = np.maximum(mail_t[idx] - last[idx], 0.0)
            updated[idx] = self.memory_updater.forward_numpy_premul(
                mail[idx], self.time_encoder.bin_index(dt),
                cache["updt"], mem[idx])
            rt.state.write_memory(uniq[idx], updated[idx], mail_t[idx])
        self._refresh_mail(rt, batch, nodes, t_nodes, inverse, updated)
        return nodes, t_nodes, inverse, updated

    def _gru_lut_np(self, raw: np.ndarray, dt: np.ndarray,
                    memory: np.ndarray) -> np.ndarray:
        """Updater step where ``W[:, time] @ Phi(dt)`` is one LUT read."""
        return self.memory_updater.forward_numpy_premul(
            raw, self.time_encoder.bin_index(dt),
            self._premul_cache["updt"], memory)

    def _gnn_numpy(self, nodes, t_nodes, g, updated, inverse, rt, graph):
        """Embedding computation with gather-then-compute pruning."""
        cfg = self.cfg
        dt_nbr = np.maximum(t_nodes[:, None] - g.times, 0.0)
        dt_nbr = np.where(g.mask, dt_nbr, 0.0)
        self_feat = updated[inverse]
        if self.node_proj is not None:
            self_feat = self_feat + (graph.node_feat[nodes]
                                     @ self.node_proj.weight.data.T
                                     + self.node_proj.bias.data)

        if isinstance(self.attention, SimplifiedTemporalAttention):
            logits = self.attention.logits_numpy(dt_nbr * DT_SCALE)
            if cfg.pruning_budget is not None:
                idx, sel_mask = select_pruned(logits, g.mask,
                                              cfg.pruning_budget)
                rows = np.arange(len(nodes))[:, None]
                nbrs = g.nbrs[rows, idx]
                eids = g.eids[rows, idx]
                sel_dt = dt_nbr[rows, idx]
                sel_logits = logits[rows, idx]
            else:
                nbrs, eids, sel_dt = g.nbrs, g.eids, dt_nbr
                sel_logits, sel_mask = logits, g.mask
            nbr_feat = rt.state.memory[nbrs]
            if self.node_proj is not None:
                nbr_feat = nbr_feat + (graph.node_feat[nbrs]
                                       @ self.node_proj.weight.data.T
                                       + self.node_proj.bias.data)
            e_feat = np.where(sel_mask[:, :, None],
                              graph.edge_feat[eids], 0.0)
            cache = self._premul_cache
            if cache is not None and "attn_v" in cache:
                # Values without the time matmul: lookup the premultiplied
                # contribution and add it to the raw-feature product.
                d_t = cfg.time_dim
                w_v = self.attention.w_v
                kv_raw = np.concatenate([nbr_feat, e_feat], axis=2)
                values = (kv_raw @ w_v.weight.data[:, :-d_t].T
                          + cache["attn_v"][self.time_encoder.bin_index(sel_dt)]
                          + w_v.bias.data)
                alpha = _masked_softmax_np(sel_logits, sel_mask)
                hidden = np.einsum("nk,nke->ne", alpha, values)
            else:
                time_enc = self.time_encoder.encode_numpy(sel_dt)
                hidden = self.attention.forward_numpy(
                    nbr_feat, e_feat, time_enc, sel_logits, sel_mask)
            full_logits, selected = logits, _expand_selection(
                g.mask, cfg.pruning_budget, logits)
        else:
            nbr_feat = rt.state.memory[g.nbrs]
            if self.node_proj is not None:
                nbr_feat = nbr_feat + (graph.node_feat[g.nbrs]
                                       @ self.node_proj.weight.data.T
                                       + self.node_proj.bias.data)
            e_feat = np.where(g.mask[:, :, None], graph.edge_feat[g.eids], 0.0)
            time_enc = self.time_encoder.encode_numpy(dt_nbr)
            time_zero = self.time_encoder.encode_numpy(np.zeros(len(nodes)))
            hidden, full_logits = self.attention.forward_numpy(
                self_feat, nbr_feat, e_feat, time_enc, time_zero, g.mask)
            selected = g.mask

        out = np.concatenate([hidden, self_feat], axis=1)
        emb = out @ self.out_transform.weight.data.T + self.out_transform.bias.data
        np.maximum(emb, 0.0, out=emb)
        return emb, full_logits, selected


def _expand_selection(mask: np.ndarray, budget: int | None,
                      logits: np.ndarray) -> np.ndarray:
    """Full-width selected-mask for reporting (mirrors top_k_mask)."""
    if budget is None:
        return mask
    from .pruning import top_k_mask
    return top_k_mask(logits, mask, budget)
