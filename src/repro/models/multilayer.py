"""Multi-layer temporal attention TGNN (the TGN framework's L-layer GNN).

The paper optimises the 1-layer TGN-attn variant ("highest accuracy to
complexity ratio"), but the framework it builds on supports L layers: the
layer-``l`` representation of vertex ``v`` at query time ``t`` aggregates
the layer-``l-1`` representations of its temporal neighbors, evaluated at
the same query time:

    h^0_v(t)  = s_v (+ W_s f_v)
    h^l_v(t)  = transform_l( attn_l({h^{l-1}_u(t), e_uv, Phi(t - t_uv)}),
                             h^{l-1}_v(t) )

Each layer owns its attention and transform parameters (as in TGN).  The
memory/mailbox machinery is shared with :class:`~repro.models.tgn.TGNN`;
only the GNN stage recurses.  Neighbor fan-out is ``k^L``, which is exactly
the exponential-cost argument the paper makes for staying at one layer —
this class exists to quantify that trade-off (see the layer-count ablation
test) and to extend the reproduction beyond the paper's operating point.

The hardware simulator intentionally rejects multi-layer models: the
published accelerator is single-layer.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, no_grad
from ..autograd.module import Linear, Module
from ..graph.temporal_graph import EdgeBatch, TemporalGraph
from .attention import (DT_SCALE, SimplifiedTemporalAttention,
                        VanillaTemporalAttention)
from .config import ModelConfig
from .memory_updater import GRUMemoryUpdater, RNNMemoryUpdater
from .message import build_raw_messages
from .tgn import BatchResult, ModelRuntime, TGNN
from .time_encoding import CosineTimeEncoder, LUTTimeEncoder

__all__ = ["MultiLayerTGNN"]


class MultiLayerTGNN(Module):
    """L-layer memory-based TGNN sharing the single-layer substrates."""

    def __init__(self, cfg: ModelConfig, num_layers: int = 2,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        self.cfg = cfg
        self.num_layers = num_layers
        if cfg.lut_time_encoder:
            self.time_encoder: Module = LUTTimeEncoder(cfg.time_dim,
                                                       cfg.lut_bins, rng=rng)
        else:
            self.time_encoder = CosineTimeEncoder(cfg.time_dim, rng=rng)
        updater_cls = RNNMemoryUpdater if cfg.memory_updater == "rnn" \
            else GRUMemoryUpdater
        self.memory_updater = updater_cls(cfg, self.time_encoder, rng=rng)
        self.node_proj = (Linear(cfg.node_dim, cfg.memory_dim, rng=rng)
                          if cfg.node_dim > 0 else None)
        # Per-layer attention + transform.  Layer inputs are memory_dim wide
        # for l=1 and embed_dim wide above, so we require the two dims equal
        # (TGN's default configuration) to keep kv widths uniform.
        if cfg.embed_dim != cfg.memory_dim:
            raise ValueError("multi-layer model requires "
                             "embed_dim == memory_dim")
        attn_cls = SimplifiedTemporalAttention if cfg.simplified_attention \
            else VanillaTemporalAttention
        self.layers = []
        for i in range(num_layers):
            attn = attn_cls(cfg, rng=rng)
            transform = Linear(cfg.embed_dim + cfg.memory_dim,
                               cfg.embed_dim, rng=rng)
            setattr(self, f"attn{i}", attn)
            setattr(self, f"transform{i}", transform)
            self.layers.append((attn, transform))

    # ------------------------------------------------------------------ #
    def new_runtime(self, graph: TemporalGraph) -> ModelRuntime:
        proto = TGNN.__new__(TGNN)          # reuse the runtime factory shape
        proto.cfg = self.cfg
        return TGNN.new_runtime(proto, graph)

    def calibrate(self, graph: TemporalGraph) -> None:
        if isinstance(self.time_encoder, LUTTimeEncoder):
            from ..datasets.stats import encoder_input_deltas
            deltas = encoder_input_deltas(graph)
            self.time_encoder.calibrate(deltas,
                                        reference=CosineTimeEncoder(
                                            self.cfg.time_dim))

    # ------------------------------------------------------------------ #
    def _base_features(self, nodes: np.ndarray, rt: ModelRuntime,
                       graph: TemporalGraph,
                       override: dict[int, Tensor] | None = None) -> Tensor:
        """Layer-0 features: memory (possibly batch-updated) + node proj."""
        base = Tensor(rt.state.memory[nodes])
        if override:
            rows = [override.get(int(v)) for v in nodes]
            if any(r is not None for r in rows):
                stacked = Tensor.stack(
                    [r if r is not None else base[i]
                     for i, r in enumerate(rows)], axis=0)
                base = stacked
        if self.node_proj is not None:
            base = base + self.node_proj(Tensor(graph.node_feat[nodes]))
        return base

    def _embed(self, layer: int, nodes: np.ndarray, t: np.ndarray,
               rt: ModelRuntime, graph: TemporalGraph,
               override: dict[int, Tensor] | None) -> Tensor:
        """Recursive layer-``layer`` embeddings for (node, time) queries."""
        if layer == 0:
            return self._base_features(nodes, rt, graph, override)
        cfg = self.cfg
        k = cfg.num_neighbors
        g = rt.sampler.gather(nodes, k)
        dt = np.maximum(t[:, None] - g.times, 0.0)
        dt = np.where(g.mask, dt, 0.0)
        # Recurse: neighbor representations at the SAME query times.
        flat_nbrs = g.nbrs.reshape(-1)
        flat_t = np.repeat(t, k)
        nbr_repr = self._embed(layer - 1, flat_nbrs, flat_t, rt, graph,
                               override)
        nbr_repr = nbr_repr.reshape(len(nodes), k, cfg.memory_dim)
        self_repr = self._embed(layer - 1, nodes, t, rt, graph, override)
        e_feat = np.where(g.mask[:, :, None], graph.edge_feat[g.eids], 0.0)
        time_enc = self.time_encoder(dt)
        time_zero = self.time_encoder(np.zeros(len(nodes)))
        attn, transform = self.layers[layer - 1]
        out = attn(query_feat=self_repr, nbr_feat=nbr_repr, edge_feat=e_feat,
                   time_enc=time_enc, time_enc_zero=time_zero, mask=g.mask,
                   dt_scaled=dt * DT_SCALE)
        return transform(Tensor.concat([out.hidden, self_repr],
                                       axis=-1)).relu()

    # ------------------------------------------------------------------ #
    def process_batch(self, batch: EdgeBatch, rt: ModelRuntime,
                      graph: TemporalGraph,
                      neg_dst: np.ndarray | None = None) -> BatchResult:
        """Algorithm 1 with an L-layer GNN stage."""
        cfg = self.cfg
        nodes = batch.nodes
        t_nodes = np.repeat(batch.t, 2)
        uniq, inverse = np.unique(nodes, return_inverse=True)
        mem, mail, mail_t, last = rt.state.read(uniq)
        has_mail = mail_t > -np.inf
        dt_mail = np.where(has_mail, np.maximum(mail_t - last, 0.0), 0.0)
        raw = np.where(has_mail[:, None], mail, 0.0)
        gru_out = self.memory_updater(raw, dt_mail, mem)
        updated = Tensor.where(has_mail[:, None], gru_out, Tensor(mem))
        rt.state.write_memory(uniq, updated.data,
                              np.where(has_mail, mail_t, last))
        mem_src = updated.data[inverse[0::2]]
        mem_dst = updated.data[inverse[1::2]]
        msg_src, msg_dst = build_raw_messages(mem_src, mem_dst,
                                              batch.edge_feat)
        msgs = np.empty((len(nodes), cfg.raw_message_dim))
        msgs[0::2] = msg_src
        msgs[1::2] = msg_dst
        rt.state.write_mail(nodes, msgs, t_nodes)

        # Gradient flows through the batch vertices' updated memory at
        # layer 0 via the override map (neighbors outside the batch read
        # stored state).
        override = {int(v): updated[i] for i, v in enumerate(uniq)}
        query_nodes, query_t = nodes, t_nodes
        if neg_dst is not None and len(neg_dst) > 0:
            neg = np.asarray(neg_dst, dtype=np.int64)
            query_nodes = np.concatenate([nodes, neg])
            query_t = np.concatenate([t_nodes, np.resize(batch.t, len(neg))])
        emb = self._embed(self.num_layers, query_nodes, query_t, rt, graph,
                          override)
        rt.sampler.insert_edges(batch.src, batch.dst, batch.eid, batch.t)
        return BatchResult(nodes=query_nodes, embeddings=emb,
                           attention=None, dt_scaled=None,
                           num_edges=len(batch))

    def infer_batch(self, batch: EdgeBatch, rt: ModelRuntime,
                    graph: TemporalGraph,
                    timings: dict | None = None) -> BatchResult:
        """Inference path (no-grad training path; no pruned-gather fast path
        is provided for L > 1 — the paper's deployment target is 1 layer)."""
        with no_grad():
            return self.process_batch(batch, rt, graph)

    def prepare_inference(self) -> None:
        """No premultiplied fast path for the multi-layer model (no-op)."""
