"""Checkpoint I/O: save/load models and runtimes as portable ``.npz`` files.

A deployment needs two artifacts: the trained **parameters** (plus the LUT
encoder's calibrated bin edges, which are data statistics rather than
parameters) and, optionally, the warm **runtime state** (vertex memory,
mailbox, neighbor table) so inference can resume mid-stream.

Format: a flat NumPy ``.npz`` with ``param/<name>`` entries, ``meta/...``
entries for the config, and ``state/...`` entries for runtime state — no
pickle, no custom binary, loadable anywhere NumPy runs.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np

from .config import ModelConfig
from .tgn import TGNN, ModelRuntime
from .time_encoding import LUTTimeEncoder

__all__ = ["save_model", "load_model", "save_runtime", "load_runtime"]


def save_model(model: TGNN, path: str) -> None:
    """Serialise config + parameters (+ LUT calibration) to ``path``."""
    payload: dict[str, np.ndarray] = {}
    for name, value in model.state_dict().items():
        payload[f"param/{name}"] = value
    cfg_json = json.dumps(dataclasses.asdict(model.cfg))
    payload["meta/config"] = np.frombuffer(cfg_json.encode(), dtype=np.uint8)
    if isinstance(model.time_encoder, LUTTimeEncoder):
        payload["meta/lut_edges"] = model.time_encoder.edges
        payload["meta/lut_calibrated"] = np.array(
            [model.time_encoder.calibrated], dtype=bool)
    np.savez(path, **payload)


def load_model(path: str) -> TGNN:
    """Reconstruct a model saved by :func:`save_model`."""
    data = np.load(path, allow_pickle=False)
    cfg_json = bytes(data["meta/config"]).decode()
    raw = json.loads(cfg_json)
    # dataclasses.asdict keeps tuples as lists; ModelConfig has none today,
    # but guard the pruning_budget null round-trip explicitly.
    cfg = ModelConfig(**raw)
    model = TGNN(cfg)
    state = {key[len("param/"):]: data[key]
             for key in data.files if key.startswith("param/")}
    model.load_state_dict(state)
    if isinstance(model.time_encoder, LUTTimeEncoder) \
            and "meta/lut_edges" in data.files:
        model.time_encoder.edges = data["meta/lut_edges"]
        model.time_encoder.calibrated = bool(data["meta/lut_calibrated"][0])
    model.prepare_inference()
    return model


def save_runtime(rt: ModelRuntime, path: str) -> None:
    """Serialise vertex state + neighbor table (resume-able stream state)."""
    t = rt.sampler.table
    np.savez(path,
             **{f"state/{k}": v for k, v in rt.state.snapshot().items()},
             **{"nbr/nbrs": t._nbrs, "nbr/eids": t._eids,
                "nbr/times": t._times, "nbr/head": t._head,
                "nbr/count": t._count})


def load_runtime(model: TGNN, num_nodes: int, path: str) -> ModelRuntime:
    """Rebuild a runtime saved by :func:`save_runtime` for ``model``."""
    data = np.load(path, allow_pickle=False)

    class _Graphish:
        pass

    g = _Graphish()
    g.num_nodes = num_nodes
    rt = model.new_runtime(g)  # type: ignore[arg-type]
    rt.state.restore({k[len("state/"):]: data[k]
                      for k in data.files if k.startswith("state/")})
    t = rt.sampler.table
    t._nbrs[...] = data["nbr/nbrs"]
    t._eids[...] = data["nbr/eids"]
    t._times[...] = data["nbr/times"]
    t._head[...] = data["nbr/head"]
    t._count[...] = data["nbr/count"]
    return rt
