"""APAN-style baseline: asynchronous propagation attention network.

APAN [Wang et al., SIGMOD'21] is the latency-targeted TGNN the paper compares
against in Fig. 7.  Its key idea: move message passing *off* the inference
critical path.  Each vertex keeps a small mailbox of the most recent messages
pushed to it; at query time the embedding is computed by attending over the
vertex's **own mailbox only** — no neighbor-state fetches — while new
messages are propagated to neighbor mailboxes asynchronously after the
response is returned.

This buys low latency at an accuracy cost (the mailbox is a lossy, delayed
view of the neighborhood) and a memory cost (mailboxes cache k messages per
vertex — the "exponential extra memory" scaling the paper critiques in §I).

Our implementation mirrors that structure on the shared substrates so its
accuracy is measured under the identical protocol as TGN-attn and the
co-designed models.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autograd import Tensor
from ..autograd import functional as F
from ..autograd.module import GRUCell, Linear, Module
from ..graph.temporal_graph import EdgeBatch, TemporalGraph
from .attention import _masked_softmax_np
from .config import ModelConfig
from .time_encoding import CosineTimeEncoder

__all__ = ["APAN", "APANRuntime"]


@dataclass
class APANRuntime:
    """Per-stream APAN state: vertex state + message mailboxes (ring)."""

    state: np.ndarray        # (N, d_mem) vertex state
    mailbox: np.ndarray      # (N, K, d_mail) most recent K messages
    mail_time: np.ndarray    # (N, K) message timestamps (-inf = empty)
    head: np.ndarray         # (N,) ring write position

    @classmethod
    def create(cls, num_nodes: int, memory_dim: int, mail_dim: int,
               mailbox_size: int) -> "APANRuntime":
        return cls(state=np.zeros((num_nodes, memory_dim)),
                   mailbox=np.zeros((num_nodes, mailbox_size, mail_dim)),
                   mail_time=np.full((num_nodes, mailbox_size), -np.inf),
                   head=np.zeros(num_nodes, dtype=np.int64))

    def snapshot(self) -> dict:
        return {k: getattr(self, k).copy()
                for k in ("state", "mailbox", "mail_time", "head")}

    def restore(self, snap: dict) -> None:
        for k, v in snap.items():
            getattr(self, k)[...] = v

    def reset(self) -> None:
        self.state.fill(0.0)
        self.mailbox.fill(0.0)
        self.mail_time.fill(-np.inf)
        self.head.fill(0)


class APAN(Module):
    """Mailbox-attention TGNN baseline.

    Query path (latency-critical): attention of the vertex state over its K
    cached messages, then an output transform.  Update path (asynchronous):
    GRU state update from the attention summary, then message delivery to the
    counterpart's mailbox.
    """

    def __init__(self, cfg: ModelConfig, mailbox_size: int = 10,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.cfg = cfg
        self.mailbox_size = mailbox_size
        # A delivered message carries the sender state and the edge feature.
        self.mail_dim = cfg.memory_dim + cfg.edge_dim
        kv_in = self.mail_dim + cfg.time_dim
        self.time_encoder = CosineTimeEncoder(cfg.time_dim, rng=rng)
        self.w_q = Linear(cfg.memory_dim + cfg.time_dim, cfg.embed_dim, rng=rng)
        self.w_k = Linear(kv_in, cfg.embed_dim, rng=rng)
        self.w_v = Linear(kv_in, cfg.embed_dim, rng=rng)
        self.out_transform = Linear(cfg.embed_dim + cfg.memory_dim,
                                    cfg.embed_dim, rng=rng)
        self.updater = GRUCell(cfg.embed_dim, cfg.memory_dim, rng=rng)
        self.node_proj = (Linear(cfg.node_dim, cfg.memory_dim, rng=rng)
                          if cfg.node_dim > 0 else None)

    def new_runtime(self, graph: TemporalGraph) -> APANRuntime:
        return APANRuntime.create(graph.num_nodes, self.cfg.memory_dim,
                                  self.mail_dim, self.mailbox_size)

    # ------------------------------------------------------------------ #
    def process_batch(self, batch: EdgeBatch, rt: APANRuntime,
                      graph: TemporalGraph) -> Tensor:
        """Process one batch; returns ``(2B, embed_dim)`` embeddings.

        Mirrors the deployment split: the returned embeddings only depend on
        state available *before* this batch's propagation (async delivery),
        exactly like APAN's decoupled inference.
        """
        cfg = self.cfg
        nodes = batch.nodes
        t_nodes = np.repeat(batch.t, 2)

        # --- query path: attend over own mailbox ------------------------- #
        state = rt.state[nodes]
        if self.node_proj is not None:
            state = state + (graph.node_feat[nodes]
                             @ self.node_proj.weight.data.T
                             + self.node_proj.bias.data)
        mail = rt.mailbox[nodes]                       # (n, K, d_mail)
        mail_t = rt.mail_time[nodes]                   # (n, K)
        mask = mail_t > -np.inf
        dt = np.where(mask, np.maximum(t_nodes[:, None] - mail_t, 0.0), 0.0)

        state_t = Tensor(state)
        q = self.w_q(Tensor.concat(
            [state_t, self.time_encoder(np.zeros(len(nodes)))], axis=-1))
        kv = Tensor.concat([Tensor(mail), self.time_encoder(dt)], axis=-1)
        keys = self.w_k(kv)
        values = self.w_v(kv)
        logits = (keys * q.reshape(len(nodes), 1, cfg.embed_dim)).sum(axis=-1)
        logits = logits * (1.0 / np.sqrt(self.mailbox_size))
        alpha = F.masked_softmax(logits, mask, axis=-1)
        hidden = (alpha.reshape(len(nodes), self.mailbox_size, 1) * values).sum(axis=1)
        emb = self.out_transform(Tensor.concat([hidden, state_t], axis=-1)).relu()

        # --- async path: state update + message delivery ----------------- #
        new_state = self.updater(hidden, Tensor(rt.state[nodes]))
        _write_last_wins(rt.state, nodes, new_state.data)
        # Deliver messages to the counterpart endpoint's mailbox ring.
        counterpart = np.empty_like(nodes)
        counterpart[0::2] = batch.dst
        counterpart[1::2] = batch.src
        payload = np.concatenate(
            [rt.state[nodes], np.repeat(batch.edge_feat, 2, axis=0)], axis=1)
        _mailbox_push(rt, counterpart, payload, t_nodes)
        return emb

    def embed_nodes(self, nodes: np.ndarray, t: np.ndarray, rt: APANRuntime,
                    graph: TemporalGraph) -> Tensor:
        """Query-only path: embeddings for arbitrary (node, time) pairs.

        Runs the identical mailbox attention as :meth:`process_batch` but
        performs no state update and no message delivery.  Used for
        negative-sample scoring so positives and negatives go through the
        same computation.
        """
        cfg = self.cfg
        nodes = np.asarray(nodes, dtype=np.int64)
        t = np.asarray(t, dtype=np.float64)
        state = rt.state[nodes]
        if self.node_proj is not None:
            state = state + (graph.node_feat[nodes]
                             @ self.node_proj.weight.data.T
                             + self.node_proj.bias.data)
        mail = rt.mailbox[nodes]
        mail_t = rt.mail_time[nodes]
        mask = mail_t > -np.inf
        dt = np.where(mask, np.maximum(t[:, None] - mail_t, 0.0), 0.0)
        state_t = Tensor(state)
        q = self.w_q(Tensor.concat(
            [state_t, self.time_encoder(np.zeros(len(nodes)))], axis=-1))
        kv = Tensor.concat([Tensor(mail), self.time_encoder(dt)], axis=-1)
        keys = self.w_k(kv)
        values = self.w_v(kv)
        logits = (keys * q.reshape(len(nodes), 1, cfg.embed_dim)).sum(axis=-1)
        logits = logits * (1.0 / np.sqrt(self.mailbox_size))
        alpha = F.masked_softmax(logits, mask, axis=-1)
        hidden = (alpha.reshape(len(nodes), self.mailbox_size, 1)
                  * values).sum(axis=1)
        return self.out_transform(
            Tensor.concat([hidden, state_t], axis=-1)).relu()

    def infer_batch(self, batch: EdgeBatch, rt: APANRuntime,
                    graph: TemporalGraph) -> np.ndarray:
        """Deployment path (numpy only)."""
        from ..autograd import no_grad
        with no_grad():
            return self.process_batch(batch, rt, graph).data


def _write_last_wins(target: np.ndarray, indices: np.ndarray,
                     values: np.ndarray) -> None:
    """Row write where the last occurrence of a duplicate index wins."""
    from ..graph.state import _last_occurrence
    last = _last_occurrence(np.asarray(indices, dtype=np.int64))
    target[indices[last]] = values[last]


def _mailbox_push(rt: APANRuntime, vertices: np.ndarray,
                  payload: np.ndarray, t: np.ndarray) -> None:
    """Ring-buffer append of one message per (vertex, payload) pair.

    Sequential within duplicate vertices (later messages take later slots),
    vectorised across distinct vertices — same grouping trick as the
    NeighborTable insert.
    """
    v = np.asarray(vertices, dtype=np.int64)
    order = np.argsort(v, kind="stable")
    vs = v[order]
    group_start = np.empty(len(vs), dtype=bool)
    if len(vs) == 0:
        return
    group_start[0] = True
    group_start[1:] = vs[1:] != vs[:-1]
    idx = np.arange(len(vs))
    start_idx = np.maximum.accumulate(np.where(group_start, idx, 0))
    cumcount = idx - start_idx
    K = rt.mailbox.shape[1]
    uniq, counts = np.unique(vs, return_counts=True)
    totals = np.repeat(counts, counts)
    keep = (totals - cumcount) <= K
    slots = (rt.head[vs] + cumcount) % K
    kv, ks = vs[keep], slots[keep]
    rt.mailbox[kv, ks] = payload[order][keep]
    rt.mail_time[kv, ks] = np.asarray(t, dtype=np.float64)[order][keep]
    rt.head[uniq] = (rt.head[uniq] + counts) % K
