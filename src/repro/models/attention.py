"""Temporal attention aggregators: vanilla (Eqs. 11-15) and simplified (Eq. 16).

Both consume a batch of query vertices with ``k`` timestamp-sorted temporal
neighbors and produce (aggregated hidden state, per-neighbor attention
logits).  The logits are exposed because knowledge distillation (Eq. 17)
aligns the student's Eq.-(16) logits with the teacher's qK logits.

Scaling note: Eq. (16)'s ``W_t`` acts on raw Δt.  We feed Δt in **days**
(``DT_SCALE``); this is an exact reparameterisation (absorb the constant into
``W_t``) that keeps optimisation well-conditioned for second-resolution
streams.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autograd import Tensor
from ..autograd import functional as F
from ..autograd.module import Linear, Module, Parameter
from .config import ModelConfig
from .pruning import top_k_mask

__all__ = ["AttentionOutput", "VanillaTemporalAttention",
           "SimplifiedTemporalAttention", "DT_SCALE"]

DT_SCALE = 1.0 / 86_400.0  # seconds -> days


@dataclass
class AttentionOutput:
    """Result of one attention aggregation over a node batch."""

    hidden: Tensor            # (n, embed_dim) aggregated neighborhood state
    logits: Tensor            # (n, k) pre-softmax attention logits (full list)
    mask: np.ndarray          # (n, k) valid-neighbor mask
    selected: np.ndarray      # (n, k) post-pruning mask (== mask when no NP)


class VanillaTemporalAttention(Module):
    """Transformer-style temporal attention of TGN-attn (Eqs. 11-15).

    ``q = W_q [f'_i || Phi(0)]``, ``K/V = W_{k/v} [f'_j || e_ij || Phi(dt)]``,
    ``h = softmax(q K^T / sqrt(k)) V``.  The query/key computation is the
    half of the GNN compute that the simplified mechanism eliminates.
    """

    def __init__(self, cfg: ModelConfig, rng: np.random.Generator | None = None):
        super().__init__()
        self.cfg = cfg
        kv_in = cfg.memory_dim + cfg.edge_dim + cfg.time_dim
        q_in = cfg.memory_dim + cfg.time_dim
        self.w_q = Linear(q_in, cfg.embed_dim, rng=rng)
        self.w_k = Linear(kv_in, cfg.embed_dim, rng=rng)
        self.w_v = Linear(kv_in, cfg.embed_dim, rng=rng)

    def forward(self, query_feat: Tensor, nbr_feat: Tensor,
                edge_feat: np.ndarray, time_enc: Tensor,
                time_enc_zero: Tensor, mask: np.ndarray,
                dt_scaled: np.ndarray | None = None) -> AttentionOutput:
        """Aggregate ``k`` neighbors for ``n`` query vertices.

        Shapes: ``query_feat (n, d_mem)``, ``nbr_feat (n, k, d_mem)``,
        ``edge_feat (n, k, d_ef)``, ``time_enc (n, k, d_time)``,
        ``time_enc_zero (n, d_time)``, ``mask (n, k)`` bool.
        ``dt_scaled`` is accepted (and ignored) for interface parity.
        """
        n, k = mask.shape
        q = self.w_q(Tensor.concat([query_feat, time_enc_zero], axis=-1))
        kv_in = Tensor.concat([nbr_feat, Tensor(edge_feat), time_enc], axis=-1)
        keys = self.w_k(kv_in)                        # (n, k, E)
        values = self.w_v(kv_in)                      # (n, k, E)
        logits = (keys * q.reshape(n, 1, self.cfg.embed_dim)).sum(axis=-1)
        logits = logits * (1.0 / np.sqrt(k))
        alpha = F.masked_softmax(logits, mask, axis=-1)
        hidden = (alpha.reshape(n, k, 1) * values).sum(axis=1)
        return AttentionOutput(hidden=hidden, logits=logits, mask=mask,
                               selected=mask.copy())

    # -- fast inference ---------------------------------------------------- #
    def forward_numpy(self, query_feat: np.ndarray, nbr_feat: np.ndarray,
                      edge_feat: np.ndarray, time_enc: np.ndarray,
                      time_enc_zero: np.ndarray, mask: np.ndarray
                      ) -> tuple[np.ndarray, np.ndarray]:
        """Graph-free path returning ``(hidden, logits)``."""
        n, k = mask.shape
        q = (np.concatenate([query_feat, time_enc_zero], axis=1)
             @ self.w_q.weight.data.T + self.w_q.bias.data)
        kv_in = np.concatenate([nbr_feat, edge_feat, time_enc], axis=2)
        keys = kv_in @ self.w_k.weight.data.T + self.w_k.bias.data
        values = kv_in @ self.w_v.weight.data.T + self.w_v.bias.data
        logits = np.einsum("nke,ne->nk", keys, q) / np.sqrt(k)
        alpha = _masked_softmax_np(logits, mask)
        hidden = np.einsum("nk,nke->ne", alpha, values)
        return hidden, logits


class SimplifiedTemporalAttention(Module):
    """The co-designed light-weight attention of Eq. (16).

    ``alpha' = Softmax(a + W_t . dt)`` with a shared learnable logit vector
    ``a`` (length k) and a learnable ``(k, k)`` map ``W_t`` from the node's
    Δt list to logit offsets.  No queries, no keys: logits depend on
    timestamps only, which (a) halves GNN compute and (b) lets hardware
    resolve *which* neighbors matter before fetching any of their state —
    enabling both pruning and prefetching.
    """

    def __init__(self, cfg: ModelConfig, rng: np.random.Generator | None = None):
        super().__init__()
        self.cfg = cfg
        k = cfg.num_neighbors
        kv_in = cfg.memory_dim + cfg.edge_dim + cfg.time_dim
        self.attn_bias = Parameter(np.zeros(k))             # `a` in Eq. (16)
        self.w_t = Linear(k, k, rng=rng)                    # `W_t` in Eq. (16)
        self.w_v = Linear(kv_in, cfg.embed_dim, rng=rng)

    def logits_from_dt(self, dt_scaled: np.ndarray | Tensor) -> Tensor:
        """Eq. (16) logits from the Δt list alone (pre-fetch decision)."""
        dt = dt_scaled if isinstance(dt_scaled, Tensor) else Tensor(dt_scaled)
        return self.w_t(dt) + self.attn_bias

    def forward(self, query_feat: Tensor, nbr_feat: Tensor,
                edge_feat: np.ndarray, time_enc: Tensor,
                time_enc_zero: Tensor, mask: np.ndarray,
                dt_scaled: np.ndarray | None = None) -> AttentionOutput:
        """Same interface as the vanilla aggregator; ``dt_scaled`` required.

        ``query_feat``/``time_enc_zero`` are unused by the math (no query
        path) but kept for signature parity so the model can swap aggregators
        behind one call site.
        """
        if dt_scaled is None:
            raise ValueError("simplified attention requires dt_scaled")
        n, k = mask.shape
        logits = self.logits_from_dt(dt_scaled)
        selected = mask
        if self.cfg.pruning_budget is not None:
            selected = top_k_mask(logits.data, mask, self.cfg.pruning_budget)
        kv_in = Tensor.concat([nbr_feat, Tensor(edge_feat), time_enc], axis=-1)
        values = self.w_v(kv_in)
        alpha = F.masked_softmax(logits, selected, axis=-1)
        hidden = (alpha.reshape(n, k, 1) * values).sum(axis=1)
        return AttentionOutput(hidden=hidden, logits=logits, mask=mask,
                               selected=selected)

    # -- fast inference ---------------------------------------------------- #
    def logits_numpy(self, dt_scaled: np.ndarray) -> np.ndarray:
        return dt_scaled @ self.w_t.weight.data.T + self.w_t.bias.data \
            + self.attn_bias.data

    def forward_numpy(self, nbr_feat: np.ndarray, edge_feat: np.ndarray,
                      time_enc: np.ndarray, logits: np.ndarray,
                      sel_mask: np.ndarray) -> np.ndarray:
        """Value computation + weighted aggregation on *pruned* inputs.

        All array arguments are already gathered down to the pruning budget
        ``p`` columns (see :func:`repro.models.pruning.select_pruned`), so
        the dominant matmul runs on ``(n, p, .)`` — this is where the
        measured NP speedup comes from.
        """
        kv_in = np.concatenate([nbr_feat, edge_feat, time_enc], axis=2)
        values = kv_in @ self.w_v.weight.data.T + self.w_v.bias.data
        alpha = _masked_softmax_np(logits, sel_mask)
        return np.einsum("nk,nke->ne", alpha, values)


def _masked_softmax_np(logits: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """NumPy twin of functional.masked_softmax (all-masked rows -> zeros)."""
    neg = np.where(mask, logits, -np.inf)
    mx = np.max(neg, axis=-1, keepdims=True)
    mx = np.where(np.isfinite(mx), mx, 0.0)
    e = np.exp(np.where(mask, logits - mx, -np.inf))
    e = np.where(mask, e, 0.0)
    denom = e.sum(axis=-1, keepdims=True)
    return e / np.where(denom == 0.0, 1.0, denom)
