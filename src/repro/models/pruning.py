"""Attention-score-based temporal neighbor pruning (§III-B).

The simplified attention computes its logits from Δt *alone*, before any
hidden feature is fetched.  That ordering is what makes pruning profitable:
for a budget ``p`` we keep the ``p`` highest-logit valid neighbors, apply the
softmax only to them, and fetch/compute values only for them — a linear
reduction in both MACs and external-memory accesses.

On the FPGA this same decision drives prefetching (§IV-C): the EU resolves
the surviving neighbor indices from timestamps only, then prefetches their
memory while the MUU is still busy.
"""

from __future__ import annotations

import numpy as np

__all__ = ["top_k_mask", "select_pruned"]


def top_k_mask(logits: np.ndarray, mask: np.ndarray, budget: int) -> np.ndarray:
    """Boolean mask keeping the ``budget`` highest-logit valid slots per row.

    Rows with fewer than ``budget`` valid slots keep all of them.  Ties are
    broken toward lower slot index (deterministic, matching a hardware
    comparator tree's fixed priority).
    """
    logits = np.asarray(logits, dtype=np.float64)
    mask = np.asarray(mask, dtype=bool)
    if logits.shape != mask.shape:
        raise ValueError("logits and mask shapes must match")
    n, k = logits.shape
    if budget >= k:
        return mask.copy()
    if budget <= 0:
        raise ValueError("budget must be positive")
    # Key: valid logits as-is, invalid slots -inf; stable tie-break by index
    # via a tiny monotone penalty well below float64 resolution of logits.
    keyed = np.where(mask, logits, -np.inf)
    tie = np.arange(k, dtype=np.float64) * 1e-12
    keyed = keyed - tie
    # argpartition picks the top-`budget` per row in O(k).
    top_idx = np.argpartition(-keyed, budget - 1, axis=1)[:, :budget]
    out = np.zeros_like(mask)
    np.put_along_axis(out, top_idx, True, axis=1)
    return out & mask


def select_pruned(logits: np.ndarray, mask: np.ndarray, budget: int
                  ) -> tuple[np.ndarray, np.ndarray]:
    """Compact top-``budget`` selection for the gather-then-compute path.

    Returns ``(indices, sel_mask)`` where ``indices`` has shape
    ``(n, budget)`` giving the chosen slot per row (padded with slot 0 where
    a row has fewer valid neighbors) and ``sel_mask`` flags real selections.
    The fast inference path gathers neighbor data through ``indices`` so the
    value computation runs on ``budget`` columns instead of ``k``.
    """
    keep = top_k_mask(logits, mask, budget)
    n, k = keep.shape
    budget = min(budget, k)
    # Order selected slots by ascending slot index to preserve the
    # timestamp-sorted neighbor order within the pruned list.
    order = np.argsort(~keep, axis=1, kind="stable")[:, :budget]
    rows = np.arange(n)[:, None]
    sel_mask = keep[rows, order]
    indices = np.where(sel_mask, order, 0)
    return indices, sel_mask
