"""Message construction (Eqs. 4-5) and the Most-Recent aggregator contract.

A graph signal between ``i`` and ``j`` at time ``t_e`` generates two raw
messages ``m_i = s_i || s_j || f_e`` and ``m_j = s_j || s_i || f_e``.  The
time encoding ``Phi(dt)`` of Eq. (4) is appended later, *at consumption
time*, from the stored mail timestamp — storing raw payloads keeps the
mailbox row width independent of the encoder and lets the LUT encoder swap
in without touching external-memory layout.

The "Most-Recent" aggregator itself is the last-write-wins semantics of
:meth:`repro.graph.state.VertexState.write_mail`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["build_raw_messages"]


def build_raw_messages(mem_src: np.ndarray, mem_dst: np.ndarray,
                       edge_feat: np.ndarray
                       ) -> tuple[np.ndarray, np.ndarray]:
    """Build both directed raw messages for a batch of edges.

    Parameters
    ----------
    mem_src, mem_dst:
        ``(B, d_mem)`` *updated* memory of the endpoints (Algorithm 1 updates
        memory before caching the new messages).
    edge_feat:
        ``(B, d_ef)`` edge features; ``d_ef`` may be zero.

    Returns
    -------
    ``(msg_src, msg_dst)`` each of shape ``(B, 2*d_mem + d_ef)``.
    """
    if mem_src.shape != mem_dst.shape:
        raise ValueError("endpoint memory shapes must match")
    if len(edge_feat) != len(mem_src):
        raise ValueError("edge_feat batch size mismatch")
    msg_src = np.concatenate([mem_src, mem_dst, edge_feat], axis=1)
    msg_dst = np.concatenate([mem_dst, mem_src, edge_feat], axis=1)
    return np.ascontiguousarray(msg_src), np.ascontiguousarray(msg_dst)
