"""Time encoders: the Transformer-style cosine encoder and its LUT replacement.

Cosine encoder (Eq. 6): ``Phi(dt) = cos(omega * dt + phi)`` with learnable
``omega, phi``.  Its outputs feed vector-matrix products inside the GRU and
the attention aggregator — about 30 % of the simplified model's compute
(§III-C) — and the trigonometric nonlinearity blocks pre-computation.

LUT encoder (§III-C): partition the Δt axis into ``n_bins`` intervals holding
*equal numbers of observed Δt* (the Fig. 1 power law puts most mass near 0,
so equal-width bins would waste resolution), learn one output vector per bin,
and at inference pre-multiply each entry by the downstream weight matrices so
an encode-plus-matmul collapses to a single on-chip lookup (1 cycle on the
FPGA).
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, init
from ..autograd.module import Module, Parameter

__all__ = ["CosineTimeEncoder", "LUTTimeEncoder"]


class CosineTimeEncoder(Module):
    """Eq. (6): ``Phi(dt)_d = cos(omega_d * dt + phi_d)``.

    ``omega`` is initialised geometrically over ~10 decades (the classic
    functional time encoding of Xu et al.), so different output dimensions
    resolve different timescales out of the box.
    """

    def __init__(self, time_dim: int, rng: np.random.Generator | None = None):
        super().__init__()
        self.time_dim = time_dim
        rng = init.default_rng(rng)
        base = 1.0 / (10.0 ** np.linspace(0.0, 9.0, time_dim))
        self.omega = Parameter(base * (1.0 + 0.01 * rng.standard_normal(time_dim)))
        self.phase = Parameter(np.zeros(time_dim))

    def forward(self, dt: Tensor | np.ndarray) -> Tensor:
        """Encode Δt of shape ``(...,)`` to ``(..., time_dim)``."""
        dt = dt if isinstance(dt, Tensor) else Tensor(np.asarray(dt, dtype=np.float64))
        expanded = dt.reshape(*dt.shape, 1)
        return (expanded * self.omega + self.phase).cos()

    def encode_numpy(self, dt: np.ndarray) -> np.ndarray:
        """Graph-free fast path for pure inference."""
        return np.cos(np.asarray(dt, dtype=np.float64)[..., None]
                      * self.omega.data + self.phase.data)


class LUTTimeEncoder(Module):
    """Equal-frequency binned time encoder with learnable entries (§III-C).

    Call :meth:`calibrate` with observed training Δt *before* training to fix
    the bin edges (they are data statistics, not parameters).  Entries are
    initialised from a cosine encoder evaluated at bin centres so the student
    starts close to the teacher's time features.

    At deployment, :meth:`premultiply` folds a weight matrix into the table:
    ``premultiply(W)[b] = table[b] @ W.T`` — the "reversed computation order"
    trick that removes every ``time_dim``-wide matmul at inference.
    """

    def __init__(self, time_dim: int, n_bins: int = 128,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if n_bins <= 0:
            raise ValueError("n_bins must be positive")
        self.time_dim = time_dim
        self.n_bins = n_bins
        self.table = Parameter(init.normal((n_bins, time_dim), std=0.1, rng=rng))
        # Edges default to a degenerate single-bin partition until calibrated.
        self.edges = np.concatenate(([0.0], np.full(n_bins - 1, np.inf), [np.inf]))
        self.calibrated = False

    # ------------------------------------------------------------------ #
    def calibrate(self, deltas: np.ndarray,
                  reference: CosineTimeEncoder | None = None) -> None:
        """Fit equal-frequency bin edges from observed Δt values.

        If ``reference`` is given, entries are re-initialised to the cosine
        encoding of each bin's median Δt (the distillation warm start).
        """
        from ..datasets.stats import equal_frequency_edges
        self.edges = equal_frequency_edges(deltas, n_bins=self.n_bins)
        self.calibrated = True
        if reference is not None:
            centers = self._bin_centers(deltas)
            self.table.data[...] = reference.encode_numpy(centers)

    def _bin_centers(self, deltas: np.ndarray) -> np.ndarray:
        """Median observed Δt per bin (empty bins fall back to edge values)."""
        d = np.asarray(deltas, dtype=np.float64)
        idx = self.bin_index(d)
        centers = np.zeros(self.n_bins)
        for b in range(self.n_bins):
            members = d[idx == b]
            if len(members):
                centers[b] = np.median(members)
            else:
                lo = self.edges[b]
                centers[b] = lo if np.isfinite(lo) else self.edges[b - 1]
        return centers

    # ------------------------------------------------------------------ #
    def bin_index(self, dt: np.ndarray) -> np.ndarray:
        """Map Δt values to bin ids in ``[0, n_bins)`` (vectorised)."""
        dt = np.asarray(dt, dtype=np.float64)
        idx = np.searchsorted(self.edges, dt, side="right") - 1
        return np.clip(idx, 0, self.n_bins - 1)

    def forward(self, dt: Tensor | np.ndarray) -> Tensor:
        """Differentiable lookup: gradient scatters into the hit entries."""
        raw = dt.data if isinstance(dt, Tensor) else np.asarray(dt, dtype=np.float64)
        return self.table[self.bin_index(raw)]

    def encode_numpy(self, dt: np.ndarray) -> np.ndarray:
        return self.table.data[self.bin_index(dt)]

    # ------------------------------------------------------------------ #
    def premultiply(self, weight: np.ndarray) -> np.ndarray:
        """Fold ``weight`` (shape ``(out, time_dim)``) into the table.

        Returns ``(n_bins, out)`` such that row ``b`` equals
        ``weight @ table[b]`` — the on-chip pre-computed product the FPGA
        stores in BRAM/URAM.  One lookup then replaces encode + matmul.
        """
        weight = np.asarray(weight, dtype=np.float64)
        if weight.shape[1] != self.time_dim:
            raise ValueError("weight inner dim must equal time_dim")
        return self.table.data @ weight.T

    def storage_words(self, out_dims: list[int] | None = None) -> int:
        """On-chip words needed for the (pre-multiplied) tables."""
        if out_dims:
            return self.n_bins * int(sum(out_dims))
        return self.n_bins * self.time_dim
