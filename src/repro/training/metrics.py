"""Evaluation metrics for temporal link prediction.

Average Precision (the paper's accuracy metric in Table II / Fig. 7) and
ROC-AUC, implemented directly on score arrays so no sklearn dependency is
needed.  Both match the standard definitions:

* AP — area under the precision-recall curve using the step-wise
  interpolation ``sum_k (R_k - R_{k-1}) * P_k`` over descending scores;
* AUC — Mann-Whitney U statistic with midrank tie handling.
"""

from __future__ import annotations

import numpy as np

__all__ = ["average_precision", "roc_auc"]


def average_precision(labels: np.ndarray, scores: np.ndarray) -> float:
    """Average precision of binary ``labels`` ranked by ``scores``.

    Ties in scores are handled by grouping (all tied predictions enter the
    ranking together), matching scikit-learn's implementation.
    """
    labels = np.asarray(labels, dtype=np.float64).ravel()
    scores = np.asarray(scores, dtype=np.float64).ravel()
    if labels.shape != scores.shape:
        raise ValueError("labels and scores must have the same length")
    n_pos = labels.sum()
    if n_pos == 0:
        return 0.0
    order = np.argsort(-scores, kind="stable")
    sorted_labels = labels[order]
    sorted_scores = scores[order]
    tp = np.cumsum(sorted_labels)
    fp = np.cumsum(1.0 - sorted_labels)
    # Collapse tied-score groups to their final (cumulative) counts.
    distinct = np.nonzero(np.diff(sorted_scores))[0]
    boundary = np.concatenate([distinct, [len(sorted_scores) - 1]])
    tp_b, fp_b = tp[boundary], fp[boundary]
    precision = tp_b / (tp_b + fp_b)
    recall = tp_b / n_pos
    recall_prev = np.concatenate([[0.0], recall[:-1]])
    return float(np.sum((recall - recall_prev) * precision))


def roc_auc(labels: np.ndarray, scores: np.ndarray) -> float:
    """ROC-AUC via the rank-sum formulation (midranks for ties)."""
    labels = np.asarray(labels, dtype=np.float64).ravel()
    scores = np.asarray(scores, dtype=np.float64).ravel()
    n_pos = labels.sum()
    n_neg = len(labels) - n_pos
    if n_pos == 0 or n_neg == 0:
        return 0.5
    ranks = _midranks(scores)
    u = ranks[labels > 0].sum() - n_pos * (n_pos + 1) / 2.0
    return float(u / (n_pos * n_neg))


def _midranks(x: np.ndarray) -> np.ndarray:
    """1-based ranks with ties assigned the group mean rank."""
    order = np.argsort(x, kind="stable")
    ranks = np.empty(len(x), dtype=np.float64)
    sx = x[order]
    i = 0
    while i < len(sx):
        j = i
        while j + 1 < len(sx) and sx[j + 1] == sx[i]:
            j += 1
        ranks[order[i:j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    return ranks
