"""Knowledge distillation: training simplified students against a TGN teacher.

The paper's setup (§III-A): the student — simplified attention, optionally
LUT encoder and pruning — trains under *both* the self-supervised link loss
and a soft cross-entropy (Eq. 17) that pulls its Δt-based attention logits
``alpha' = a + W_t . dt`` toward the teacher's qK attention logits at
temperature T.

Teacher and student run side by side over the same chronological stream with
separate vertex states but — because neighbor tables depend only on the
stream, never on parameters — **identical** neighbor lists, so their logit
rows align one-to-one.  The teacher runs under no-grad; its logits enter the
loss as constants.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autograd import Tensor, no_grad
from ..autograd import functional as F
from ..autograd.optim import Adam, clip_grad_norm
from ..graph.batching import iter_fixed_size
from ..graph.temporal_graph import TemporalGraph
from ..models.link_predictor import LinkPredictor
from ..models.tgn import TGNN
from .self_supervised import TrainConfig, Trainer

__all__ = ["DistillationConfig", "DistillationTrainer"]


@dataclass(frozen=True)
class DistillationConfig:
    """KD hyper-parameters; ``temperature`` is T of Eq. (17) (paper: T=1)."""

    temperature: float = 1.0
    kd_weight: float = 1.0     # weight of the attention-alignment loss
    epochs: int = 3
    batch_size: int = 200
    lr: float = 1e-3
    grad_clip: float = 5.0
    seed: int = 0


class DistillationTrainer:
    """Joint self-supervision + attention distillation for a student TGNN."""

    def __init__(self, teacher: TGNN, student: TGNN, graph: TemporalGraph,
                 cfg: DistillationConfig | None = None,
                 predictor: LinkPredictor | None = None,
                 warm_start: bool = False):
        if teacher.cfg.num_neighbors != student.cfg.num_neighbors:
            raise ValueError("teacher and student must sample the same "
                             "number of neighbors for logit alignment")
        if not student.cfg.simplified_attention:
            raise ValueError("the student must use the simplified attention")
        self.teacher = teacher
        self.student = student
        self.graph = graph
        if warm_start:
            warm_start_student(teacher, student)
        self.cfg = cfg if cfg is not None else DistillationConfig()
        rng = np.random.default_rng(self.cfg.seed)
        self.predictor = predictor if predictor is not None else \
            LinkPredictor(student.cfg.embed_dim, rng=rng)
        self.optimizer = Adam(
            list(student.parameters()) + list(self.predictor.parameters()),
            lr=self.cfg.lr)
        self.rng = rng
        self.history: list[dict] = []

    # ------------------------------------------------------------------ #
    def train(self, train_end: int, log: bool = False) -> list[dict]:
        """Distill over edges ``[0, train_end)`` for ``cfg.epochs`` epochs."""
        cfg = self.cfg
        for epoch in range(cfg.epochs):
            rt_t = self.teacher.new_runtime(self.graph)
            rt_s = self.student.new_runtime(self.graph)
            link_losses, kd_losses, agreements = [], [], []
            for batch in iter_fixed_size(self.graph, cfg.batch_size,
                                         end=train_end):
                neg = self.rng.integers(0, self.graph.num_nodes,
                                        size=len(batch))
                with no_grad():
                    res_t = self.teacher.process_batch(batch, rt_t,
                                                       self.graph, neg_dst=neg)
                res_s = self.student.process_batch(batch, rt_s, self.graph,
                                                   neg_dst=neg)
                # Link loss (self-supervision).
                pos = self.predictor(res_s.src_embeddings,
                                     res_s.dst_embeddings)
                ngs = self.predictor(res_s.src_embeddings,
                                     res_s.neg_embeddings)
                logits = Tensor.concat([pos, ngs], axis=0)
                labels = np.concatenate([np.ones(len(pos.data)),
                                         np.zeros(len(ngs.data))])
                link_loss = F.bce_with_logits(logits, labels)
                # Attention alignment (Eq. 17), masked to valid neighbors.
                kd_loss = F.soft_cross_entropy(
                    res_s.attention.logits, res_t.attention.logits.data,
                    temperature=cfg.temperature, mask=res_s.attention.mask)
                loss = link_loss + kd_loss * cfg.kd_weight
                self.optimizer.zero_grad()
                loss.backward()
                clip_grad_norm(self.optimizer.parameters, cfg.grad_clip)
                self.optimizer.step()
                link_losses.append(link_loss.item())
                kd_losses.append(kd_loss.item())
                agreements.append(attention_agreement(
                    res_s.attention.logits.data, res_t.attention.logits.data,
                    res_s.attention.mask))
            entry = {"epoch": epoch,
                     "link_loss": float(np.mean(link_losses)),
                     "kd_loss": float(np.mean(kd_losses)),
                     "top1_agreement": float(np.mean(agreements))}
            self.history.append(entry)
            if log:  # pragma: no cover - console side effect
                print(f"epoch {epoch}: link {entry['link_loss']:.4f} "
                      f"kd {entry['kd_loss']:.4f} "
                      f"agree {entry['top1_agreement']:.3f}")
        return self.history

    # ------------------------------------------------------------------ #
    def as_trainer(self) -> Trainer:
        """Wrap the student for evaluation with the shared predictor."""
        t = Trainer(self.student, self.graph,
                    TrainConfig(batch_size=self.cfg.batch_size,
                                seed=self.cfg.seed),
                    predictor=self.predictor)
        return t


def warm_start_student(teacher: TGNN, student: TGNN) -> list[str]:
    """Copy every shape-compatible shared parameter from teacher to student.

    The architectures differ only in the attention mechanism (and possibly
    the time encoder), so the GRU updater, node projection, value weights
    and output transform can inherit the teacher's solution — a standard
    distillation warm start that shortens student training.  Returns the
    names of the copied parameters.
    """
    teacher_sd = teacher.state_dict()
    student_sd = student.state_dict()
    copied = []
    for name, value in student_sd.items():
        if name in teacher_sd and teacher_sd[name].shape == value.shape:
            student_sd[name] = teacher_sd[name]
            copied.append(name)
    student.load_state_dict(student_sd)
    return copied


def attention_agreement(student_logits: np.ndarray, teacher_logits: np.ndarray,
                        mask: np.ndarray) -> float:
    """Fraction of rows where student and teacher agree on the top neighbor.

    The distillation progress metric: rows with fewer than two valid
    neighbors are skipped (agreement there is vacuous).
    """
    mask = np.asarray(mask, dtype=bool)
    rows = mask.sum(axis=1) >= 2
    if not rows.any():
        return 1.0
    s = np.where(mask, student_logits, -np.inf)[rows]
    t = np.where(mask, teacher_logits, -np.inf)[rows]
    return float(np.mean(np.argmax(s, axis=1) == np.argmax(t, axis=1)))
