"""Self-supervised temporal link prediction training (the TGN protocol).

Models learn by predicting the stream's own future edges: each training batch
contributes positive pairs (the batch's real edges) and uniformly sampled
negative destinations; the loss is binary cross-entropy on the link
predictor's logits.  State is reset at each epoch start and evolves
chronologically through the epoch.

The same loop body doubles as the streaming evaluator (no_grad + metric
accumulation), so train and test follow the identical state-update protocol —
the property that makes "AP difference" comparisons across model variants
meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..autograd import Tensor, no_grad
from ..autograd import functional as F
from ..autograd.optim import Adam, clip_grad_norm
from ..graph.batching import iter_fixed_size
from ..graph.temporal_graph import TemporalGraph
from ..models.link_predictor import LinkPredictor
from ..models.tgn import TGNN, ModelRuntime
from .metrics import average_precision, roc_auc

__all__ = ["TrainConfig", "Trainer", "EvalResult"]


@dataclass(frozen=True)
class TrainConfig:
    """Hyper-parameters for the self-supervised loop (paper defaults)."""

    epochs: int = 3
    batch_size: int = 200          # the paper's Fig. 7 operating point
    lr: float = 1e-3
    grad_clip: float = 5.0
    seed: int = 0


@dataclass
class EvalResult:
    """Streaming evaluation outcome over an edge range."""

    ap: float
    auc: float
    n_edges: int


class Trainer:
    """Trains a TGNN + link predictor on a chronological stream."""

    def __init__(self, model: TGNN, graph: TemporalGraph,
                 cfg: TrainConfig | None = None,
                 predictor: LinkPredictor | None = None):
        self.model = model
        self.graph = graph
        self.cfg = cfg if cfg is not None else TrainConfig()
        rng = np.random.default_rng(self.cfg.seed)
        self.predictor = predictor if predictor is not None else \
            LinkPredictor(model.cfg.embed_dim, rng=rng)
        self.optimizer = Adam(
            list(model.parameters()) + list(self.predictor.parameters()),
            lr=self.cfg.lr)
        self.rng = rng
        self.history: list[dict] = []

    # ------------------------------------------------------------------ #
    def _sample_negatives(self, n: int) -> np.ndarray:
        """Uniform negative destinations over all vertices (TGN protocol)."""
        return self.rng.integers(0, self.graph.num_nodes, size=n)

    def _link_loss(self, result) -> Tensor:
        """BCE over positive pairs and (src, negative) pairs."""
        pos = self.predictor(result.src_embeddings, result.dst_embeddings)
        neg = self.predictor(result.src_embeddings, result.neg_embeddings)
        logits = Tensor.concat([pos, neg], axis=0)
        labels = np.concatenate([np.ones(len(pos.data)),
                                 np.zeros(len(neg.data))])
        return F.bce_with_logits(logits, labels)

    # ------------------------------------------------------------------ #
    def train(self, train_end: int, log: bool = False) -> list[dict]:
        """Run ``cfg.epochs`` epochs over edges ``[0, train_end)``."""
        for epoch in range(self.cfg.epochs):
            rt = self.model.new_runtime(self.graph)
            losses = []
            for batch in iter_fixed_size(self.graph, self.cfg.batch_size,
                                         end=train_end):
                neg = self._sample_negatives(len(batch))
                result = self.model.process_batch(batch, rt, self.graph,
                                                  neg_dst=neg)
                loss = self._link_loss(result)
                self.optimizer.zero_grad()
                loss.backward()
                clip_grad_norm(self.optimizer.parameters, self.cfg.grad_clip)
                self.optimizer.step()
                losses.append(loss.item())
            entry = {"epoch": epoch, "loss": float(np.mean(losses))}
            self.history.append(entry)
            if log:  # pragma: no cover - console side effect
                print(f"epoch {epoch}: loss {entry['loss']:.4f}")
        return self.history

    # ------------------------------------------------------------------ #
    def evaluate(self, start: int, end: int,
                 runtime: ModelRuntime | None = None,
                 warmup_end: int | None = None,
                 seed: int = 12345) -> EvalResult:
        """Streaming AP/AUC over edges ``[start, end)``.

        ``runtime`` continues from the given state; otherwise a fresh runtime
        is warmed up by replaying ``[0, warmup_end or start)`` without
        scoring (building memory/neighbor state exactly as deployment would).
        Negative sampling uses its own seed so evaluation is deterministic
        regardless of how much training consumed the trainer's RNG.
        """
        eval_rng = np.random.default_rng(seed)
        model = self.model
        if runtime is None:
            runtime = model.new_runtime(self.graph)
            warm = warmup_end if warmup_end is not None else start
            with no_grad():
                for batch in iter_fixed_size(self.graph, self.cfg.batch_size,
                                             end=warm):
                    model.process_batch(batch, runtime, self.graph)
        labels_all: list[np.ndarray] = []
        scores_all: list[np.ndarray] = []
        with no_grad():
            for batch in iter_fixed_size(self.graph, self.cfg.batch_size,
                                         start=start, end=end):
                neg = eval_rng.integers(0, self.graph.num_nodes,
                                        size=len(batch))
                result = model.process_batch(batch, runtime, self.graph,
                                             neg_dst=neg)
                pos = self.predictor(result.src_embeddings,
                                     result.dst_embeddings).data
                ng = self.predictor(result.src_embeddings,
                                    result.neg_embeddings).data
                scores_all.append(np.concatenate([pos, ng]))
                labels_all.append(np.concatenate([np.ones(len(pos)),
                                                  np.zeros(len(ng))]))
        labels = np.concatenate(labels_all)
        scores = np.concatenate(scores_all)
        return EvalResult(ap=average_precision(labels, scores),
                          auc=roc_auc(labels, scores),
                          n_edges=int(end - start))
