"""Training: self-supervised link prediction, KD, and metrics."""

from .distillation import (DistillationConfig, DistillationTrainer,  # noqa: F401
                           attention_agreement, warm_start_student)
from .metrics import average_precision, roc_auc  # noqa: F401
from .self_supervised import EvalResult, TrainConfig, Trainer  # noqa: F401

__all__ = [
    "Trainer", "TrainConfig", "EvalResult",
    "DistillationTrainer", "DistillationConfig", "attention_agreement",
    "warm_start_student",
    "average_precision", "roc_auc",
]
