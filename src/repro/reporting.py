"""Shared reporting helpers for the benchmark harness.

Benches print paper-vs-measured tables to the console *and* persist them
under ``results/`` so EXPERIMENTS.md can reference stable artifacts.
"""

from __future__ import annotations

import json
import os
from typing import Sequence

__all__ = ["render_table", "save_result", "save_json", "section"]


def section(title: str) -> str:
    bar = "=" * max(len(title), 8)
    return f"\n{bar}\n{title}\n{bar}"


def render_table(rows: Sequence[dict], columns: Sequence[str] | None = None,
                 precision: int = 3, title: str | None = None) -> str:
    """Fixed-width table; floats rendered at ``precision`` decimals."""
    if not rows:
        return "(no rows)"
    columns = list(columns) if columns is not None else \
        [c for c in rows[0] if not c.startswith("_")]

    def fmt(v):
        if isinstance(v, float):
            return f"{v:.{precision}f}"
        return str(v)

    cells = [[fmt(r.get(c, "")) for c in columns] for r in rows]
    widths = [max(len(str(c)), *(len(row[i]) for row in cells))
              for i, c in enumerate(columns)]
    lines = []
    if title:
        lines.append(section(title))
    lines.append("  ".join(str(c).ljust(w) for c, w in zip(columns, widths)))
    lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    for row in cells:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def save_result(name: str, text: str, results_dir: str | None = None) -> str:
    """Write ``text`` to ``results/<name>.txt``; returns the path."""
    base = results_dir or os.environ.get("REPRO_RESULTS_DIR", "results")
    os.makedirs(base, exist_ok=True)
    path = os.path.join(base, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    return path


def save_json(name: str, obj, results_dir: str | None = None) -> str:
    """Write ``obj`` as canonical JSON to ``results/<name>.json``.

    Same directory convention as :func:`save_result`; used for
    machine-readable artifacts like the ``BENCH_events_per_sec``
    perf-trajectory record CI compares against its committed baseline.
    """
    base = results_dir or os.environ.get("REPRO_RESULTS_DIR", "results")
    os.makedirs(base, exist_ok=True)
    path = os.path.join(base, f"{name}.json")
    with open(path, "w") as fh:
        json.dump(obj, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
