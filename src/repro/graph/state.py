"""Mutable per-vertex state: the Vertex Memory Table and Vertex Mailbox.

These are the two external-memory tables of the paper's Graph Storage
(Fig. 2).  Memory is the GRU hidden state ``s_v``; the mailbox caches the
most recent raw message per vertex ("Most-Recent" aggregator of TGN), which
the UPDT function consumes on the vertex's *next* appearance — the
information-leak fix described in Section II.

Layout is flat and contiguous: ``(num_nodes, d)`` float arrays updated in
place.  ``snapshot``/``restore`` give the training loop cheap epoch resets.
"""

from __future__ import annotations

import numpy as np

__all__ = ["VertexState"]


class VertexState:
    """Vertex memory + mailbox + bookkeeping timestamps.

    Parameters
    ----------
    num_nodes:
        Vertex count.
    memory_dim:
        Width of the memory vector ``s_v``.
    raw_message_dim:
        Width of a cached raw message ``s_src || s_dst || f_e`` (the time
        encoding is appended at update time from the stored timestamp, so it
        is *not* part of the cached payload).
    """

    def __init__(self, num_nodes: int, memory_dim: int, raw_message_dim: int):
        self.num_nodes = int(num_nodes)
        self.memory_dim = int(memory_dim)
        self.raw_message_dim = int(raw_message_dim)
        self.memory = np.zeros((num_nodes, memory_dim), dtype=np.float64)
        self.mailbox = np.zeros((num_nodes, raw_message_dim), dtype=np.float64)
        # Timestamp of the cached message; -inf marks "no mail yet".
        self.mail_time = np.full(num_nodes, -np.inf, dtype=np.float64)
        # Timestamp at which `memory` was last written (for delta-t).
        self.last_update = np.zeros(num_nodes, dtype=np.float64)

    # ------------------------------------------------------------------ #
    def has_mail(self, vertices: np.ndarray) -> np.ndarray:
        return self.mail_time[np.asarray(vertices, dtype=np.int64)] > -np.inf

    def read(self, vertices: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Gather ``(memory, mailbox, mail_time, last_update)`` rows."""
        v = np.asarray(vertices, dtype=np.int64)
        return (self.memory[v], self.mailbox[v],
                self.mail_time[v], self.last_update[v])

    def write_memory(self, vertices: np.ndarray, values: np.ndarray,
                     t: np.ndarray) -> None:
        """Commit updated memory rows and their update timestamps.

        When a vertex appears multiple times in ``vertices`` the **last**
        write wins — the same semantics the hardware Updater enforces by
        invalidating stale cache lines (Section IV-B).  NumPy fancy
        assignment applies duplicates in order, so we deduplicate explicitly
        to keep the guarantee independent of NumPy internals.
        """
        v = np.asarray(vertices, dtype=np.int64)
        last = _last_occurrence(v)
        self.memory[v[last]] = values[last]
        self.last_update[v[last]] = np.asarray(t, dtype=np.float64)[last]

    def write_mail(self, vertices: np.ndarray, messages: np.ndarray,
                   t: np.ndarray) -> None:
        """Cache raw messages (Most-Recent aggregator: last write wins)."""
        v = np.asarray(vertices, dtype=np.int64)
        last = _last_occurrence(v)
        self.mailbox[v[last]] = messages[last]
        self.mail_time[v[last]] = np.asarray(t, dtype=np.float64)[last]

    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict[str, np.ndarray]:
        """Deep copy of all state (epoch boundaries, val/test forks)."""
        return {
            "memory": self.memory.copy(),
            "mailbox": self.mailbox.copy(),
            "mail_time": self.mail_time.copy(),
            "last_update": self.last_update.copy(),
        }

    def restore(self, snap: dict[str, np.ndarray]) -> None:
        self.memory[...] = snap["memory"]
        self.mailbox[...] = snap["mailbox"]
        self.mail_time[...] = snap["mail_time"]
        self.last_update[...] = snap["last_update"]

    def reset(self) -> None:
        """Zero all state (start of an epoch over the stream)."""
        self.memory.fill(0.0)
        self.mailbox.fill(0.0)
        self.mail_time.fill(-np.inf)
        self.last_update.fill(0.0)

    def memory_words(self) -> int:
        """External-memory footprint in words (for the resource model)."""
        return self.num_nodes * (self.memory_dim + self.raw_message_dim + 2)


def _last_occurrence(v: np.ndarray) -> np.ndarray:
    """Boolean mask selecting the last occurrence of each value in ``v``."""
    if len(v) == 0:
        return np.zeros(0, dtype=bool)
    last = np.ones(len(v), dtype=bool)
    # A position is NOT last if the same value appears later.  Stable sort
    # groups occurrences; within a group only the final index survives.
    order = np.argsort(v, kind="stable")
    sorted_v = v[order]
    not_last_sorted = np.empty(len(v), dtype=bool)
    not_last_sorted[:-1] = sorted_v[:-1] == sorted_v[1:]
    not_last_sorted[-1] = False
    last[order] = ~not_last_sorted
    return last
