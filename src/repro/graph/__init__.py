"""Temporal-graph substrate: stream storage, neighbor tables, vertex state."""

from .batching import (iter_fixed_size, iter_time_window_spans,  # noqa: F401
                       iter_time_windows, merge_batches)
from .neighbor_table import GatheredNeighbors, NeighborTable  # noqa: F401
from .sampler import FIFONeighborSampler, FullHistorySampler  # noqa: F401
from .state import VertexState  # noqa: F401
from .temporal_graph import EdgeBatch, TemporalGraph  # noqa: F401

__all__ = [
    "TemporalGraph", "EdgeBatch",
    "NeighborTable", "GatheredNeighbors",
    "FullHistorySampler", "FIFONeighborSampler",
    "VertexState",
    "iter_fixed_size", "iter_time_windows", "iter_time_window_spans",
    "merge_batches",
]
