"""Chronological edge-stream container for dynamic graphs.

A temporal graph here is exactly what the paper's Algorithm 1 consumes: a
stream of edges ``e(src, dst, f_e, t_e)`` in non-decreasing timestamp order,
plus optional static node features.  Storage is struct-of-arrays (contiguous
NumPy columns) so batch slicing is a view, not a copy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["TemporalGraph", "EdgeBatch"]


@dataclass(frozen=True)
class EdgeBatch:
    """A contiguous chronological slice of the edge stream (views, no copies)."""

    src: np.ndarray          # (B,) int64 source vertex ids
    dst: np.ndarray          # (B,) int64 destination vertex ids
    t: np.ndarray            # (B,) float64 timestamps, non-decreasing
    eid: np.ndarray          # (B,) int64 global edge ids
    edge_feat: np.ndarray    # (B, d_ef) float64; d_ef may be 0

    def __len__(self) -> int:
        return len(self.src)

    @property
    def nodes(self) -> np.ndarray:
        """All endpoint vertex ids in interleaved (src, dst) order.

        Order matters: Algorithm 1 processes sources and destinations of the
        same edge together, and the Updater's chronology guarantee is defined
        over this order.
        """
        out = np.empty(2 * len(self.src), dtype=np.int64)
        out[0::2] = self.src
        out[1::2] = self.dst
        return out


class TemporalGraph:
    """Immutable chronological edge stream with optional features.

    Parameters
    ----------
    src, dst, t:
        Edge endpoint ids and timestamps.  ``t`` must be non-decreasing —
        this is validated at construction because every downstream component
        (memory updates, the Updater's commit order, the FIFO sampler)
        assumes chronological arrival.
    edge_feat:
        Optional ``(E, d_ef)`` edge features (Wikipedia/Reddit-style).
    node_feat:
        Optional ``(N, d_nf)`` static node features (GDELT-style).
    num_nodes:
        Total vertex count; inferred from the ids when omitted.
    """

    def __init__(self, src, dst, t, edge_feat: np.ndarray | None = None,
                 node_feat: np.ndarray | None = None,
                 num_nodes: int | None = None):
        self.src = np.ascontiguousarray(src, dtype=np.int64)
        self.dst = np.ascontiguousarray(dst, dtype=np.int64)
        self.t = np.ascontiguousarray(t, dtype=np.float64)
        if not (len(self.src) == len(self.dst) == len(self.t)):
            raise ValueError("src/dst/t length mismatch")
        if len(self.t) > 1 and np.any(np.diff(self.t) < 0):
            raise ValueError("edge timestamps must be non-decreasing")
        if np.any(self.src < 0) or np.any(self.dst < 0):
            raise ValueError("vertex ids must be non-negative")

        n_edges = len(self.src)
        if edge_feat is None:
            edge_feat = np.zeros((n_edges, 0), dtype=np.float64)
        self.edge_feat = np.ascontiguousarray(edge_feat, dtype=np.float64)
        if self.edge_feat.shape[0] != n_edges:
            raise ValueError("edge_feat row count must equal number of edges")

        inferred = int(max(self.src.max(initial=-1), self.dst.max(initial=-1)) + 1)
        self.num_nodes = int(num_nodes) if num_nodes is not None else inferred
        if self.num_nodes < inferred:
            raise ValueError("num_nodes smaller than max vertex id + 1")

        if node_feat is None:
            node_feat = np.zeros((self.num_nodes, 0), dtype=np.float64)
        self.node_feat = np.ascontiguousarray(node_feat, dtype=np.float64)
        if self.node_feat.shape[0] != self.num_nodes:
            raise ValueError("node_feat row count must equal num_nodes")

    # ------------------------------------------------------------------ #
    @property
    def num_edges(self) -> int:
        return len(self.src)

    @property
    def edge_dim(self) -> int:
        return self.edge_feat.shape[1]

    @property
    def node_dim(self) -> int:
        return self.node_feat.shape[1]

    @property
    def duration(self) -> float:
        """Time span of the stream in its native units."""
        if self.num_edges == 0:
            return 0.0
        return float(self.t[-1] - self.t[0])

    def __len__(self) -> int:
        return self.num_edges

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"TemporalGraph(nodes={self.num_nodes}, edges={self.num_edges}, "
                f"d_ef={self.edge_dim}, d_nf={self.node_dim})")

    # ------------------------------------------------------------------ #
    def slice(self, lo: int, hi: int) -> EdgeBatch:
        """Return edges ``[lo, hi)`` as a zero-copy batch."""
        return EdgeBatch(src=self.src[lo:hi], dst=self.dst[lo:hi],
                         t=self.t[lo:hi], eid=np.arange(lo, hi, dtype=np.int64),
                         edge_feat=self.edge_feat[lo:hi])

    def split(self, train_frac: float = 0.70, val_frac: float = 0.15
              ) -> tuple["TemporalGraph", tuple[int, int, int]]:
        """Chronological train/val/test boundaries (TGN evaluation protocol).

        Returns the graph itself plus the ``(train_end, val_end, test_end)``
        edge indices, because temporal models must keep one global stream —
        splitting into separate graphs would lose cross-boundary neighbors.
        """
        if not 0.0 < train_frac < 1.0 or train_frac + val_frac >= 1.0:
            raise ValueError("invalid split fractions")
        train_end = int(self.num_edges * train_frac)
        val_end = int(self.num_edges * (train_frac + val_frac))
        return self, (train_end, val_end, self.num_edges)
