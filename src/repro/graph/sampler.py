"""Temporal neighbor samplers.

Two implementations with identical query interfaces:

* :class:`FullHistorySampler` — TGN's software sampler.  Keeps the complete
  temporal adjacency and, per query, selects the ``k`` most recent past
  neighbors.  This is the "sample" stage profiled in Table I.
* :class:`FIFONeighborSampler` — the paper's hardware replacement (§III):
  a wrapper over :class:`~repro.graph.neighbor_table.NeighborTable` that
  returns whatever the FIFO currently holds.  Because the table only ever
  keeps the ``mr`` most recent interactions, both samplers agree whenever
  ``k <= mr`` — an equivalence the integration tests assert.
"""

from __future__ import annotations

import numpy as np

from .neighbor_table import GatheredNeighbors, NeighborTable

__all__ = ["FullHistorySampler", "FIFONeighborSampler"]


class FullHistorySampler:
    """Most-recent-k sampler over the full interaction history.

    The history is an append-only struct-of-arrays; queries binary-search the
    per-vertex chronological lists.  Append is amortised O(1) per edge.
    """

    def __init__(self, num_nodes: int):
        self.num_nodes = int(num_nodes)
        self._nbrs: list[list[int]] = [[] for _ in range(num_nodes)]
        self._eids: list[list[int]] = [[] for _ in range(num_nodes)]
        self._times: list[list[float]] = [[] for _ in range(num_nodes)]

    def insert_edges(self, src: np.ndarray, dst: np.ndarray,
                     eid: np.ndarray, t: np.ndarray) -> None:
        """Append a chronological edge batch to both endpoints' histories."""
        for s, d, e, ts in zip(np.asarray(src, dtype=np.int64),
                               np.asarray(dst, dtype=np.int64),
                               np.asarray(eid, dtype=np.int64),
                               np.asarray(t, dtype=np.float64)):
            self._nbrs[s].append(int(d))
            self._eids[s].append(int(e))
            self._times[s].append(float(ts))
            self._nbrs[d].append(int(s))
            self._eids[d].append(int(e))
            self._times[d].append(float(ts))

    def gather(self, vertices: np.ndarray, k: int) -> GatheredNeighbors:
        """Return each vertex's ``k`` most recent neighbors, time-ascending."""
        vertices = np.asarray(vertices, dtype=np.int64)
        B = len(vertices)
        nbrs = np.zeros((B, k), dtype=np.int64)
        eids = np.zeros((B, k), dtype=np.int64)
        times = np.full((B, k), -np.inf, dtype=np.float64)
        mask = np.zeros((B, k), dtype=bool)
        for row, v in enumerate(vertices):
            hist_n = self._nbrs[v]
            take = min(k, len(hist_n))
            if take == 0:
                continue
            nbrs[row, :take] = hist_n[-take:]
            eids[row, :take] = self._eids[v][-take:]
            times[row, :take] = self._times[v][-take:]
            mask[row, :take] = True
        return GatheredNeighbors(nbrs, eids, times, mask)

    def degree(self, vertices: np.ndarray) -> np.ndarray:
        return np.array([len(self._nbrs[v]) for v in
                         np.asarray(vertices, dtype=np.int64)], dtype=np.int64)


class FIFONeighborSampler:
    """Hardware-style sampler: reads the rolling NeighborTable directly.

    Sampling cost is a single table-row fetch — there is no search — which is
    why the paper's architecture removes the sampler stage from the critical
    path entirely.
    """

    def __init__(self, table: NeighborTable):
        self.table = table

    @classmethod
    def create(cls, num_nodes: int, mr: int) -> "FIFONeighborSampler":
        return cls(NeighborTable(num_nodes, mr))

    def insert_edges(self, src, dst, eid, t) -> None:
        self.table.insert_edges(src, dst, eid, t)

    def gather(self, vertices: np.ndarray, k: int) -> GatheredNeighbors:
        """Fetch up to ``k`` most recent neighbors, always shaped ``(B, k)``.

        The table can hold at most ``mr`` entries per vertex, so for
        ``k > mr`` the trailing ``k - mr`` slots are padding (mask cleared,
        times ``-inf``) — the same convention
        :class:`FullHistorySampler` uses for vertices with short histories,
        keeping the two samplers drop-in interchangeable at any ``k``.
        """
        k = int(k)
        g = self.table.gather(vertices, k=min(k, self.table.mr))
        if k <= self.table.mr:
            return g
        B, held = g.nbrs.shape
        nbrs = np.zeros((B, k), dtype=np.int64)
        eids = np.zeros((B, k), dtype=np.int64)
        times = np.full((B, k), -np.inf, dtype=np.float64)
        mask = np.zeros((B, k), dtype=bool)
        nbrs[:, :held] = g.nbrs
        eids[:, :held] = g.eids
        times[:, :held] = g.times
        mask[:, :held] = g.mask
        return GatheredNeighbors(nbrs, eids, times, mask)

    def degree(self, vertices: np.ndarray) -> np.ndarray:
        return self.table.degree(vertices)
