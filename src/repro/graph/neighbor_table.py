"""Most-recent temporal neighbor table (the paper's Vertex Neighbor Table).

The paper replaces TGN's software temporal sampler — which scans a vertex's
full interaction history — with an on-chip FIFO that simply keeps the ``mr``
most recent neighbors per vertex.  This module is that structure: a rolling
ring buffer per vertex, with fully vectorised batch insertion and gathering.

Invariants (property-tested in ``tests/property/test_neighbor_table.py``):

* after any insertion sequence, a vertex's valid slots hold exactly its
  ``min(history, mr)`` most recent interactions;
* gathered neighbor lists are timestamp-sorted (ascending), as required by
  the simplified attention of Eq. (16);
* vertices with no history gather an all-masked row (no garbage reads).
"""

from __future__ import annotations

import numpy as np

__all__ = ["NeighborTable", "GatheredNeighbors"]


class GatheredNeighbors:
    """Timestamp-sorted neighbor rows for a batch of query vertices.

    Attributes
    ----------
    nbrs, eids: ``(B, k)`` int64 — neighbor vertex / edge ids (arbitrary
        values where masked).
    times: ``(B, k)`` float64 — interaction timestamps, ascending within each
        valid prefix.
    mask: ``(B, k)`` bool — True for valid slots.  Valid slots always form a
        prefix after sorting.
    """

    __slots__ = ("nbrs", "eids", "times", "mask")

    def __init__(self, nbrs: np.ndarray, eids: np.ndarray,
                 times: np.ndarray, mask: np.ndarray):
        self.nbrs = nbrs
        self.eids = eids
        self.times = times
        self.mask = mask

    @property
    def k(self) -> int:
        return self.nbrs.shape[1]

    def __len__(self) -> int:
        return self.nbrs.shape[0]


class NeighborTable:
    """Per-vertex ring buffer of the ``mr`` most recent interactions."""

    def __init__(self, num_nodes: int, mr: int):
        if mr <= 0:
            raise ValueError("mr must be positive")
        self.num_nodes = int(num_nodes)
        self.mr = int(mr)
        self._nbrs = np.zeros((num_nodes, mr), dtype=np.int64)
        self._eids = np.zeros((num_nodes, mr), dtype=np.int64)
        self._times = np.full((num_nodes, mr), -np.inf, dtype=np.float64)
        self._head = np.zeros(num_nodes, dtype=np.int64)   # next write slot
        self._count = np.zeros(num_nodes, dtype=np.int64)  # valid entries

    # ------------------------------------------------------------------ #
    def insert_edges(self, src: np.ndarray, dst: np.ndarray,
                     eid: np.ndarray, t: np.ndarray) -> None:
        """Record a chronological batch of edges (both directions).

        Equivalent to Algorithm 1 lines 12-14: ``dst`` joins ``src``'s list
        and vice versa.  Vectorised over the whole batch; per-vertex insert
        order follows stream order even when a vertex appears many times in
        one batch.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        eid = np.asarray(eid, dtype=np.int64)
        t = np.asarray(t, dtype=np.float64)
        # Interleave (src->dst) and (dst->src) insertions in edge order so a
        # vertex appearing as both endpoints keeps chronological slots.
        n = len(src)
        vertices = np.empty(2 * n, dtype=np.int64)
        partners = np.empty(2 * n, dtype=np.int64)
        edge_ids = np.empty(2 * n, dtype=np.int64)
        times = np.empty(2 * n, dtype=np.float64)
        vertices[0::2], vertices[1::2] = src, dst
        partners[0::2], partners[1::2] = dst, src
        edge_ids[0::2], edge_ids[1::2] = eid, eid
        times[0::2], times[1::2] = t, t
        self._insert(vertices, partners, edge_ids, times)

    def _insert(self, vertices: np.ndarray, partners: np.ndarray,
                eids: np.ndarray, times: np.ndarray) -> None:
        if len(vertices) == 0:
            return
        # Group insertions by vertex, preserving arrival order inside groups.
        order = np.argsort(vertices, kind="stable")
        v_sorted = vertices[order]
        # cumcount: position of each insertion within its vertex group.
        group_start = np.empty(len(v_sorted), dtype=bool)
        group_start[0] = True
        group_start[1:] = v_sorted[1:] != v_sorted[:-1]
        idx = np.arange(len(v_sorted))
        start_idx = np.maximum.accumulate(np.where(group_start, idx, 0))
        cumcount = idx - start_idx
        # Per-vertex totals (to advance heads and cap counts).
        uniq, counts = np.unique(v_sorted, return_counts=True)
        totals = np.repeat(counts, counts)
        # Only the last `mr` insertions of a group can survive the ring.
        keep = (totals - cumcount) <= self.mr
        slots = (self._head[v_sorted] + cumcount) % self.mr
        kv, ks = v_sorted[keep], slots[keep]
        self._nbrs[kv, ks] = partners[order][keep]
        self._eids[kv, ks] = eids[order][keep]
        self._times[kv, ks] = times[order][keep]
        self._head[uniq] = (self._head[uniq] + counts) % self.mr
        self._count[uniq] = np.minimum(self._count[uniq] + counts, self.mr)

    # ------------------------------------------------------------------ #
    def gather(self, vertices: np.ndarray, k: int | None = None
               ) -> GatheredNeighbors:
        """Fetch the most recent ``k`` (default ``mr``) neighbors per vertex.

        Rows are sorted by timestamp ascending with valid entries first —
        the "fixed-length timestamp-sorted list" the simplified attention
        operates on.  When ``k < mr`` the *most recent* ``k`` are kept.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        k = self.mr if k is None else int(k)
        if not 0 < k <= self.mr:
            raise ValueError(f"k must be in [1, {self.mr}]")
        nbrs = self._nbrs[vertices]
        eids = self._eids[vertices]
        times = self._times[vertices].copy()
        valid = times > -np.inf
        # Sort ascending; invalid slots (-inf) land first, so flip the key to
        # push them last: use +inf for invalid, then take the earliest k of
        # the most recent k... Simpler: sort descending by time (invalid
        # last), truncate to k most recent, then reverse to ascending.
        desc = np.argsort(-times, axis=1, kind="stable")
        rows = np.arange(len(vertices))[:, None]
        nbrs = nbrs[rows, desc][:, :k][:, ::-1]
        eids = eids[rows, desc][:, :k][:, ::-1]
        times = times[rows, desc][:, :k][:, ::-1]
        mask = valid[rows, desc][:, :k][:, ::-1]
        # Shift valid entries to the front (ascending order, mask suffix).
        # After the flip, invalid entries sit at the *front*; roll each row
        # left by its number of invalid slots.
        n_invalid = (~mask).sum(axis=1)
        if n_invalid.any():
            cols = (np.arange(k)[None, :] + n_invalid[:, None]) % k
            nbrs = nbrs[rows, cols]
            eids = eids[rows, cols]
            times = times[rows, cols]
            mask = mask[rows, cols]
        return GatheredNeighbors(np.ascontiguousarray(nbrs),
                                 np.ascontiguousarray(eids),
                                 np.ascontiguousarray(times),
                                 np.ascontiguousarray(mask))

    def degree(self, vertices: np.ndarray | None = None) -> np.ndarray:
        """Number of valid stored neighbors per vertex (<= mr)."""
        if vertices is None:
            return self._count.copy()
        return self._count[np.asarray(vertices, dtype=np.int64)]

    def memory_words(self) -> int:
        """Storage footprint in table words (for the resource model)."""
        return self.num_nodes * self.mr * 3  # nbr id, edge id, timestamp
