"""Batch formation over the edge stream.

The paper (§II-A) defines both deployment modes we support:

* :func:`iter_fixed_size` — batches of a fixed number of graph signals
  (the mode used for the latency/throughput sweeps of Fig. 5, cols 1-2);
* :func:`iter_time_windows` — batches of all signals inside fixed wall-clock
  windows (the 15-minute real-time replay of Fig. 5, col 3).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .temporal_graph import EdgeBatch, TemporalGraph

__all__ = ["iter_fixed_size", "iter_time_windows", "iter_time_window_spans",
           "merge_batches"]


def iter_fixed_size(graph: TemporalGraph, batch_size: int,
                    start: int = 0, end: int | None = None
                    ) -> Iterator[EdgeBatch]:
    """Yield consecutive batches of ``batch_size`` edges from ``[start, end)``.

    The final batch may be smaller.  Batches are views into the stream.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    end = graph.num_edges if end is None else min(end, graph.num_edges)
    for lo in range(start, end, batch_size):
        yield graph.slice(lo, min(lo + batch_size, end))


def iter_time_windows(graph: TemporalGraph, window: float,
                      start: int = 0, end: int | None = None
                      ) -> Iterator[EdgeBatch]:
    """Yield batches covering consecutive time windows of length ``window``.

    Windows are aligned to the timestamp of the first yielded edge.  Empty
    windows are skipped (they carry no graph signals, hence no work), which
    matches how a deployed system would idle.
    """
    for _, _, batch in iter_time_window_spans(graph, window, start=start,
                                              end=end):
        yield batch


def iter_time_window_spans(graph: TemporalGraph, window: float,
                           start: int = 0, end: int | None = None
                           ) -> Iterator[tuple[float, float, EdgeBatch]]:
    """Yield ``(window_start, window_end, batch)`` for each non-empty window.

    Same iteration as :func:`iter_time_windows` but also reports the true
    window boundaries (``window_end = window_start + window``); every edge in
    ``batch`` satisfies ``window_start <= t < window_end``.  Consumers that
    need the wall-clock boundary rather than the first-edge timestamp (the
    real-time replay, the serving engine's arrival model) read it from here.
    """
    if window <= 0:
        raise ValueError("window must be positive")
    end = graph.num_edges if end is None else min(end, graph.num_edges)
    if start >= end:
        return
    t = graph.t
    lo = start
    window_start = float(t[start])
    while lo < end:
        # Skip over empty windows so the next edge lands inside the window.
        if t[lo] >= window_start + window:
            n_skip = np.floor((t[lo] - window_start) / window)
            window_start += float(n_skip) * window
            if t[lo] >= window_start + window:  # float round-off guard
                window_start = float(t[lo])
        hi = lo + int(np.searchsorted(t[lo:end], window_start + window,
                                      side="left"))
        yield window_start, window_start + window, graph.slice(lo, hi)
        lo = hi
        window_start += window


def merge_batches(batches: list[EdgeBatch]) -> EdgeBatch:
    """Concatenate edge batches into one chronological batch.

    Edges are re-sorted by timestamp (stable, so same-time edges keep their
    input order) because downstream state updates assume non-decreasing
    arrival — the contract a dynamic batcher must restore when it coalesces
    windows from independent streams.
    """
    if not batches:
        raise ValueError("merge_batches needs at least one batch")
    if len(batches) == 1:
        return batches[0]
    t = np.concatenate([b.t for b in batches])
    order = np.argsort(t, kind="stable")
    return EdgeBatch(
        src=np.concatenate([b.src for b in batches])[order],
        dst=np.concatenate([b.dst for b in batches])[order],
        t=t[order],
        eid=np.concatenate([b.eid for b in batches])[order],
        edge_feat=np.concatenate([b.edge_feat for b in batches])[order])
