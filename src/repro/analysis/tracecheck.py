"""Dynamic event-trace checker for the serving event core.

The unit suites (tests/unit/test_events.py, test_rebalance.py,
test_failover.py) grew a family of ad-hoc invariant asserts over
``EventScheduler`` traces: timestamps are monotone, every admitted job is
serviced exactly once, per-server busy intervals never overlap, the
migration log replays to exactly-once ownership, offered windows are
conserved, and the heap and vectorized scheduler lanes agree on the order
of equal-``(t, priority)`` events.  This module generalizes them into one
reusable checker that replays a recorded trace and returns a findings
report, so the same invariants run inside the bench smoke, behind
``serve-sim --check-trace``, and against any future actor.

Checks (finding ``check`` values)
---------------------------------
``causality``             an event recorded before one already fired —
                          a handler scheduled into the past.
``exactly-once-service``  duplicate/missing ServiceBegin-ServiceEnd
                          pairing for a ``(group, index)`` job.
``busy-overlap``          two service spans overlap on one server.
``mail-at-flush``         mail/sync recorded away from a release instant.
``ownership-chain``       a MigrationEvent whose ``from_shard`` is not
                          the current owner (double-ownership), a
                          self-migration, or a final assignment the
                          replayed log does not land on.
``fleet-size``            a ScaleEvent whose ``servers_before`` is not
                          the current fleet size, a step of more than
                          one server, a shrink below one, or a final
                          fleet the replayed log does not land on.
``conservation``          offered windows != served + dropped (report)
                          or != flushed (trace).
``same-key-order``        heap and vectorized lanes disagree on the
                          relative order of equal-timestamp events.
``lane-divergence``       the lanes disagree outright (different event
                          at different times, or different counts).

The checker matches events by type *name*, not class identity, so it
stays stdlib-only (importable without numpy) and works with any
duck-typed trace a test fabricates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

__all__ = ["TraceFinding", "TraceCheckReport", "check_causality",
           "check_service_exactly_once", "check_mail_at_flush",
           "check_ownership_chain", "check_fleet_size",
           "check_conservation", "check_lane_agreement", "check_run"]

# Service spans may abut exactly; anything closer than this is overlap.
_OVERLAP_TOL = 1e-12


@dataclass(frozen=True)
class TraceFinding:
    """One invariant violation at one instant of the replayed trace."""

    check: str
    t: float | None
    detail: str

    def render(self) -> str:
        at = "" if self.t is None else f" @ t={self.t:.6g}"
        return f"[{self.check}]{at} {self.detail}"


@dataclass
class TraceCheckReport:
    """Outcome of a :func:`check_run` pass over one (or two) traces."""

    findings: list[TraceFinding] = field(default_factory=list)
    events: int = 0
    checks: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for f in self.findings:
            out[f.check] = out.get(f.check, 0) + 1
        return out

    def render(self) -> str:
        if self.ok:
            return (f"trace check: clean ({self.events} events, "
                    f"{len(self.checks)} checks)")
        lines = [f.render() for f in self.findings]
        lines.append(f"trace check: {len(self.findings)} finding(s) over "
                     f"{self.events} events")
        return "\n".join(lines)


def _kind(event: Any) -> str:
    return type(event).__name__


def _event_key(event: Any) -> tuple:
    """Comparable identity of one event: type name + scalar fields.

    Payload fields that are not scalars (an ArrivalEvent's batch holds
    numpy arrays) are skipped — array equality is elementwise, and the
    lanes share the batch objects anyway; the ordering contract is about
    *which event fired when*, which the scalars pin down.
    """
    fields = getattr(event, "__dict__", None)
    if fields is None:
        return (_kind(event), float(event.t))
    scalars = tuple(
        (name, value) for name, value in sorted(fields.items())
        if isinstance(value, (bool, int, float, str)))
    return (_kind(event), scalars)


# --------------------------------------------------------------------------- #
def check_causality(trace: Sequence[Any]) -> list[TraceFinding]:
    """Recorded event times never move backwards.

    The scheduler raises on ``schedule(t < now)``; this is the trace-side
    mirror — it also catches an actor that *records* a back-dated event
    directly (``sched.record`` bypasses the heap).
    """
    findings = []
    prev = float("-inf")
    prev_kind = "start-of-trace"
    for event in trace:
        t = float(event.t)
        if t < prev:
            findings.append(TraceFinding(
                "causality", t,
                f"{_kind(event)} recorded at t={t:.6g} after "
                f"{prev_kind} already fired at t={prev:.6g} "
                f"(scheduled into the past)"))
        else:
            prev, prev_kind = t, _kind(event)
    return findings


def check_service_exactly_once(trace: Sequence[Any]) -> list[TraceFinding]:
    """Begin/end pairing and per-server busy-interval disjointness.

    Every ``(group, index)`` job begins exactly once and ends exactly
    once, ends never precede their begin, and the service spans of one
    ``(group, server)`` station never overlap — migrations and failovers
    reroute *future* jobs; they may never duplicate or lose an admitted
    one.
    """
    findings = []
    begun: dict[tuple[int, int], Any] = {}
    spans: dict[tuple[int, int], list[float]] = {}
    ended: set[tuple[int, int]] = set()
    for event in trace:
        kind = _kind(event)
        if kind == "ServiceBeginEvent":
            key = (event.group, event.index)
            if key in begun:
                findings.append(TraceFinding(
                    "exactly-once-service", float(event.t),
                    f"job group={key[0]} index={key[1]} began twice "
                    f"(first at t={float(begun[key].t):.6g})"))
            else:
                begun[key] = event
                spans[key] = [float(event.t), float("nan")]
        elif kind == "ServiceEndEvent":
            key = (event.group, event.index)
            if key in ended:
                findings.append(TraceFinding(
                    "exactly-once-service", float(event.t),
                    f"job group={key[0]} index={key[1]} ended twice"))
                continue
            ended.add(key)
            if key not in begun:
                findings.append(TraceFinding(
                    "exactly-once-service", float(event.t),
                    f"job group={key[0]} index={key[1]} ended without "
                    f"a ServiceBeginEvent"))
            else:
                spans[key][1] = float(event.t)
                if spans[key][1] < spans[key][0]:
                    findings.append(TraceFinding(
                        "exactly-once-service", float(event.t),
                        f"job group={key[0]} index={key[1]} ends at "
                        f"t={spans[key][1]:.6g} before its begin at "
                        f"t={spans[key][0]:.6g}"))
    for key in sorted(begun):
        if key not in ended:
            findings.append(TraceFinding(
                "exactly-once-service", float(begun[key].t),
                f"job group={key[0]} index={key[1]} began but never "
                f"ended (lost in service)"))
    # Per-(group, server) stations: spans sorted by begin must be disjoint.
    by_server: dict[tuple[int, int], list[tuple[float, float]]] = {}
    for key, event in begun.items():        # insertion == trace order
        b, e = spans[key]
        if e == e:                          # paired (not NaN)
            by_server.setdefault((event.group, event.server),
                                 []).append((b, e))
    for station in sorted(by_server):
        intervals = sorted(by_server[station])
        for (b0, e0), (b1, _) in zip(intervals, intervals[1:]):
            if b1 < e0 - _OVERLAP_TOL:
                findings.append(TraceFinding(
                    "busy-overlap", b1,
                    f"group={station[0]} server={station[1]} begins a "
                    f"job at t={b1:.6g} while the previous one runs "
                    f"until t={e0:.6g}"))
    return findings


def check_mail_at_flush(trace: Sequence[Any]) -> list[TraceFinding]:
    """Mail and sync rows are recorded at a job release instant.

    The router forks a job the moment the batcher releases it; mail and
    sync events time-stamped away from any flush mean traffic was
    recorded outside the release path (e.g. back-dated by a handler).
    """
    flush_ts = {float(e.t) for e in trace if _kind(e) == "FlushEvent"}
    findings = []
    for event in trace:
        if _kind(event) in ("MailEvent", "SyncEvent") \
                and float(event.t) not in flush_ts:
            findings.append(TraceFinding(
                "mail-at-flush", float(event.t),
                f"{_kind(event)} at t={float(event.t):.6g} matches no "
                f"FlushEvent instant"))
    return findings


def check_ownership_chain(trace: Sequence[Any],
                          initial_assignment: Sequence[int],
                          final_assignment: Sequence[int] | None = None,
                          ) -> list[TraceFinding]:
    """Replay the migration log: ownership moves exactly-once.

    Each ``MigrationEvent`` must consume the current owner — a vertex can
    never be owned by two shards, because every handoff names the owner
    it takes from.  When ``final_assignment`` is given the replay must
    land exactly on it (the live router agrees with its own log).
    """
    findings = []
    owner = [int(s) for s in initial_assignment]
    for event in trace:
        if _kind(event) != "MigrationEvent":
            continue
        t = float(event.t)
        v, src, dst = int(event.vertex), int(event.from_shard), \
            int(event.to_shard)
        if src == dst:
            findings.append(TraceFinding(
                "ownership-chain", t,
                f"vertex {v} migrated to its own shard {src} "
                f"({event.reason})"))
            continue
        if owner[v] != src:
            findings.append(TraceFinding(
                "ownership-chain", t,
                f"vertex {v} migrated from shard {src} but is owned by "
                f"shard {owner[v]} ({event.reason}): double ownership"))
        owner[v] = dst
    if final_assignment is not None:
        wrong = [v for v, (a, b) in
                 enumerate(zip(owner, final_assignment))
                 if int(a) != int(b)]
        if wrong:
            head = ", ".join(
                f"{v}: log={owner[v]} live={int(final_assignment[v])}"
                for v in wrong[:5])
            findings.append(TraceFinding(
                "ownership-chain", None,
                f"replayed migration log disagrees with the live "
                f"assignment on {len(wrong)} vertex(es) ({head}"
                f"{', ...' if len(wrong) > 5 else ''})"))
    return findings


def check_fleet_size(trace: Sequence[Any], initial_servers: int,
                     final_servers: int | None = None,
                     ) -> list[TraceFinding]:
    """Replay the scale log: the fleet changes one server at a time.

    Each ``ScaleEvent`` must consume the current fleet size (the same
    decision-to-application discipline as ``MigrationEvent`` ownership):
    ``servers_before`` names the fleet it resizes, ``servers_after``
    moves it by exactly one in the direction ``kind`` claims, and the
    fleet never drops below one server.  When ``final_servers`` is given
    the replay must land exactly on it (the live controller agrees with
    its own log).
    """
    findings = []
    fleet = int(initial_servers)
    for event in trace:
        if _kind(event) != "ScaleEvent":
            continue
        t = float(event.t)
        before, after = int(event.servers_before), int(event.servers_after)
        if event.kind not in ("up", "down"):
            findings.append(TraceFinding(
                "fleet-size", t,
                f"ScaleEvent kind {event.kind!r} is neither 'up' nor "
                f"'down' ({event.reason})"))
            continue
        step = 1 if event.kind == "up" else -1
        if after != before + step:
            findings.append(TraceFinding(
                "fleet-size", t,
                f"scale-{event.kind} moves the fleet {before} -> {after}: "
                f"capacity must change one server at a time "
                f"({event.reason})"))
        if before != fleet:
            findings.append(TraceFinding(
                "fleet-size", t,
                f"scale-{event.kind} expected a fleet of {before} but the "
                f"replayed log stands at {fleet} ({event.reason}): stale "
                f"decision applied"))
        if after <= 0:
            findings.append(TraceFinding(
                "fleet-size", t,
                f"scale-{event.kind} shrinks the fleet to {after}: a run "
                f"needs at least one server ({event.reason})"))
        fleet = after
    if final_servers is not None and fleet != int(final_servers):
        findings.append(TraceFinding(
            "fleet-size", None,
            f"replayed scale log lands on a fleet of {fleet} but the "
            f"live controller reports {int(final_servers)}"))
    return findings


def check_conservation(num_arrivals: int, report: Any = None,
                       trace: Sequence[Any] | None = None,
                       ) -> list[TraceFinding]:
    """Every offered window is accounted for: served, dropped, or flushed.

    With a report: ``windows + dropped_windows == offered``.  With a
    trace: the batcher's FlushEvents must release every offered window
    exactly once (drops happen downstream, at admission).
    """
    findings = []
    if report is not None:
        served = int(report.windows) + int(report.dropped_windows)
        if served != num_arrivals:
            findings.append(TraceFinding(
                "conservation", None,
                f"report accounts for {report.windows} served + "
                f"{report.dropped_windows} dropped windows, but "
                f"{num_arrivals} were offered"))
    if trace is not None:
        flushed = 0
        for event in trace:
            if _kind(event) == "FlushEvent":
                flushed += int(event.windows)
        if flushed != num_arrivals:
            findings.append(TraceFinding(
                "conservation", None,
                f"batcher flushed {flushed} windows but {num_arrivals} "
                f"were offered (arrivals lost before admission)"))
    return findings


def check_lane_agreement(heap_trace: Sequence[Any],
                         vec_trace: Sequence[Any]) -> list[TraceFinding]:
    """Heap vs vectorized scheduler: same workload, same event order.

    Both lanes must produce the identical typed-event sequence.  The
    first divergence at *equal* timestamps is same-key nondeterminism —
    two events with equal ``(t, priority)`` whose relative order changed
    between the per-event heap and the cohort-dispatch lane, exactly the
    bug class the ``(t, priority, seq)`` contract exists to exclude.
    """
    findings = []
    for i, (a, b) in enumerate(zip(heap_trace, vec_trace)):
        if _event_key(a) == _event_key(b):
            continue
        if float(a.t) == float(b.t):
            findings.append(TraceFinding(
                "same-key-order", float(a.t),
                f"lanes diverge at trace position {i} with equal "
                f"timestamps: heap recorded {_kind(a)}, vectorized "
                f"recorded {_kind(b)} — equal-(t, priority) events "
                f"reordered between lanes"))
        else:
            findings.append(TraceFinding(
                "lane-divergence", float(a.t),
                f"lanes diverge at trace position {i}: heap "
                f"{_kind(a)} at t={float(a.t):.6g} vs vectorized "
                f"{_kind(b)} at t={float(b.t):.6g}"))
        break                    # everything after the fork is noise
    if len(heap_trace) != len(vec_trace) and not findings:
        findings.append(TraceFinding(
            "lane-divergence", None,
            f"heap lane recorded {len(heap_trace)} events, vectorized "
            f"{len(vec_trace)}"))
    return findings


# --------------------------------------------------------------------------- #
def check_run(trace: Sequence[Any] | None = None, report: Any = None,
              num_arrivals: int | None = None,
              initial_assignment: Sequence[int] | None = None,
              final_assignment: Sequence[int] | None = None,
              initial_servers: int | None = None,
              final_servers: int | None = None,
              heap_trace: Sequence[Any] | None = None,
              engine: Any = None) -> TraceCheckReport:
    """Run every applicable check over one recorded run.

    Pass an ``engine`` after a traced run (``run(..., trace=True)``) and
    the trace, report-independent counters, and final assignment are
    pulled from it (``initial_assignment`` must still be a *pre-run*
    copy — the router mutates in place).  Any explicitly passed value
    wins over the engine's.
    """
    if engine is not None:
        if trace is None:
            trace = engine.last_event_trace
        if num_arrivals is None:
            num_arrivals = getattr(engine, "last_num_arrivals", None)
        if final_assignment is None and initial_assignment is not None:
            router = getattr(engine, "router", None)
            if router is not None:
                final_assignment = router.assignment
        auto = getattr(engine, "autoscaler", None)
        if auto is not None:
            if initial_servers is None:
                initial_servers = auto.initial_servers
            if final_servers is None:
                final_servers = auto.fleet_size
    if trace is None:
        raise ValueError("check_run needs a trace: run the engine with "
                         "trace=True (tracing is off by default — it "
                         "costs memory)")
    findings: list[TraceFinding] = []
    checks = ["causality", "exactly-once-service", "busy-overlap",
              "mail-at-flush"]
    findings += check_causality(trace)
    findings += check_service_exactly_once(trace)
    findings += check_mail_at_flush(trace)
    if initial_assignment is not None:
        checks.append("ownership-chain")
        findings += check_ownership_chain(trace, initial_assignment,
                                          final_assignment)
    if initial_servers is not None:
        checks.append("fleet-size")
        findings += check_fleet_size(trace, initial_servers, final_servers)
    if num_arrivals is not None:
        checks.append("conservation")
        findings += check_conservation(num_arrivals, report=report,
                                       trace=trace)
    if heap_trace is not None:
        checks.append("same-key-order")
        findings += check_lane_agreement(heap_trace, trace)
    return TraceCheckReport(findings=findings, events=len(trace),
                            checks=tuple(checks))
