"""``repro-lint``: run the project ruleset over a source tree.

Usage::

    repro-lint [paths...]            # default: src
    repro-lint --list-rules
    repro-lint --select unseeded-rng,scheduler-purity src

Exit status: 0 clean, 1 findings, 2 usage error.  Installed as a console
script by setup.py and runnable as ``python -m repro.analysis``; CI runs
it as a blocking step before tier-1 (see .github/workflows/ci.yml).
"""

from __future__ import annotations

import argparse
import sys

from .linting import lint_paths
from .rules import ALL_RULES, default_rules

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-lint",
        description="determinism & invariant linter for the repro "
                    "serving stack (stdlib-ast, no dependencies)")
    p.add_argument("paths", nargs="*", default=["src"],
                   help="files or directories to lint (default: src)")
    p.add_argument("--select", default=None, metavar="RULE[,RULE...]",
                   help="run only these rules")
    p.add_argument("--list-rules", action="store_true",
                   help="print the ruleset and exit")
    return p


def main(argv: list[str] | None = None, out=print) -> int:
    args = build_parser().parse_args(argv)
    rules = default_rules()
    if args.list_rules:
        for rule in rules:
            out(f"{rule.name}: {rule.summary}")
        return 0
    if args.select is not None:
        wanted = [r.strip() for r in args.select.split(",") if r.strip()]
        known = {cls.name for cls in ALL_RULES}
        unknown = [w for w in wanted if w not in known]
        if unknown:
            out(f"repro-lint: unknown rule(s): {', '.join(unknown)} "
                f"(see --list-rules)")
            return 2
        rules = [r for r in rules if r.name in wanted]
    findings, n_files = lint_paths(args.paths, rules)
    for finding in findings:
        out(finding.render())
    if findings:
        out(f"repro-lint: {len(findings)} finding(s) in {n_files} "
            f"file(s); suppress intentional sites with "
            f"'# repro-lint: ok=<rule> (reason)'")
        return 1
    out(f"repro-lint: clean ({n_files} files, {len(rules)} rules)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
