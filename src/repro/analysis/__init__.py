"""Correctness tooling: static determinism linter + event-trace checker.

The serving stack's exactness contracts (byte-stable golden reports,
bit-identical sharded replays, heap-vs-vectorized scheduler equivalence)
are conventions, not laws of the runtime.  This subsystem enforces them
mechanically, *before* the golden diff:

``repro-lint`` (static half)
    :mod:`repro.analysis.linting` + :mod:`repro.analysis.rules` — an
    AST linter (stdlib ``ast``, zero dependencies) with project rules:
    ``unseeded-rng``, ``wall-clock-in-events``, ``unordered-iteration``,
    ``float-sum-report``, ``report-omit-when-off``,
    ``scheduler-purity``.  Console script ``repro-lint`` /
    ``python -m repro.analysis``; exit 1 on findings; inline pragma
    ``# repro-lint: ok=<rule> (reason)`` waives a designated site.

``tracecheck`` (dynamic half)
    :mod:`repro.analysis.tracecheck` — replays a recorded
    ``EventScheduler`` trace and flags causality violations, broken
    exactly-once service/ownership, conservation breaks, and
    equal-``(t, priority)`` order divergence between the heap and
    vectorized scheduler lanes.  Reachable as ``serve-sim
    --check-trace`` and run per-PR by the bench smoke.

Both halves run as a blocking CI ``lint`` job ahead of tier-1 (together
with the ruff/mypy baseline configured in pyproject.toml).  This package
deliberately imports nothing outside the stdlib, so the lint gate works
on a bare checkout.
"""

from .linting import (FileContext, LintFinding, Rule, iter_python_files,
                      lint_file, lint_paths)
from .rules import ALL_RULES, default_rules
from .tracecheck import (TraceCheckReport, TraceFinding, check_causality,
                         check_conservation, check_lane_agreement,
                         check_mail_at_flush, check_ownership_chain,
                         check_run, check_service_exactly_once)

__all__ = [
    "LintFinding", "FileContext", "Rule", "lint_file", "lint_paths",
    "iter_python_files", "ALL_RULES", "default_rules",
    "TraceFinding", "TraceCheckReport", "check_causality",
    "check_service_exactly_once", "check_mail_at_flush",
    "check_ownership_chain", "check_conservation", "check_lane_agreement",
    "check_run",
]
