"""`repro-lint` core: AST-walking linter with project-specific rules.

The serving stack's exactness story (byte-stable golden reports,
heap-vs-vectorized scheduler equivalence, bit-identical sharded replays)
rests on conventions — seeded RNG, stable iteration orders, report fields
omitted-when-off, handlers touching the scheduler only through its public
API — that nothing in ruff/mypy knows about.  This module is the
framework; the conventions themselves live in :mod:`repro.analysis.rules`
as small :class:`Rule` subclasses, each an `ast` visitor over one file.

Everything here is stdlib-only (``ast`` + ``tokenize``-free line scanning)
so the linter runs in any environment that can import the repo — CI, the
tier-1 suite, or a bare checkout with no dev dependencies installed.

Suppression
-----------
A finding is suppressed by an inline pragma on the *first line* of the
offending statement::

    t0 = time.perf_counter()   # repro-lint: ok=wall-clock-in-events (why)

``ok=`` takes a comma-separated rule list; ``ok=all`` waives every rule
for that line.  The parenthesized justification is a convention, not
syntax — but write one: a pragma without a reason is a review comment
waiting to happen.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass
from typing import Iterable, Iterator

__all__ = ["LintFinding", "FileContext", "Rule", "lint_file", "lint_paths",
           "iter_python_files"]

_PRAGMA = re.compile(r"#\s*repro-lint:\s*ok=([A-Za-z0-9_,-]+)")


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: " \
               f"[{self.rule}] {self.message}"


class FileContext:
    """Parsed source + per-line pragma map, shared by every rule."""

    def __init__(self, path: str, source: str):
        self.path = path.replace(os.sep, "/")
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        # line number -> set of rule names waived on that line
        self.suppressed: dict[int, set[str]] = {}
        for i, line in enumerate(self.lines, start=1):
            m = _PRAGMA.search(line)
            if m:
                self.suppressed[i] = {r.strip()
                                      for r in m.group(1).split(",")}

    # ------------------------------------------------------------------ #
    def is_suppressed(self, line: int, rule: str) -> bool:
        waived = self.suppressed.get(line, ())
        return rule in waived or "all" in waived

    @property
    def is_test(self) -> bool:
        """Test/bench files get the relaxed ruleset (hard-coded seeds are
        the *point* of a reproducible test)."""
        name = self.path.rsplit("/", 1)[-1]
        return ("/tests/" in self.path or "/benchmarks/" in self.path
                or name.startswith(("test_", "bench_", "conftest")))


class Rule:
    """One project convention, checked per file.

    Subclasses set ``name``/``summary`` and implement :meth:`visit`,
    yielding ``(node, message)`` pairs; the framework attaches locations
    and applies pragma suppression.  ``applies_to`` scopes the rule to a
    path family (e.g. only ``serving/``) so rules stay cheap and local.
    """

    name: str = ""
    summary: str = ""

    def applies_to(self, ctx: FileContext) -> bool:
        return True

    def visit(self, ctx: FileContext) -> Iterator[tuple[ast.AST, str]]:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    def check(self, ctx: FileContext) -> list[LintFinding]:
        if not self.applies_to(ctx):
            return []
        findings = []
        for node, message in self.visit(ctx):
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
            if not ctx.is_suppressed(line, self.name):
                findings.append(LintFinding(ctx.path, line, col,
                                            self.name, message))
        return findings


# --------------------------------------------------------------------------- #
def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Expand files/directories into a sorted, deduplicated .py file list.

    Sorted so findings (and therefore CI logs) are byte-stable regardless
    of filesystem enumeration order — the linter holds itself to the
    determinism bar it enforces.
    """
    seen = set()
    out = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs.sort()
                dirs[:] = [d for d in dirs
                           if d not in ("__pycache__", ".git")]
                for fn in sorted(files):
                    if fn.endswith(".py"):
                        full = os.path.join(root, fn)
                        if full not in seen:
                            seen.add(full)
                            out.append(full)
        elif path.endswith(".py"):
            if path not in seen:
                seen.add(path)
                out.append(path)
    return iter(sorted(out))


def lint_file(path: str, rules: Iterable[Rule],
              source: str | None = None) -> list[LintFinding]:
    if source is None:
        with open(path, encoding="utf-8") as f:
            source = f.read()
    ctx = FileContext(path, source)
    findings: list[LintFinding] = []
    for rule in rules:
        findings.extend(rule.check(ctx))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_paths(paths: Iterable[str],
               rules: Iterable[Rule]) -> tuple[list[LintFinding], int]:
    """Lint every .py file under ``paths``; returns (findings, n_files)."""
    rules = list(rules)
    findings: list[LintFinding] = []
    n_files = 0
    for path in iter_python_files(paths):
        n_files += 1
        findings.extend(lint_file(path, rules))
    return findings, n_files
