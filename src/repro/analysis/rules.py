"""The project ruleset behind ``repro-lint``.

Each rule encodes one convention the golden-report / exact-replay
contracts depend on.  The docstring of each rule class is the normative
statement; the "Correctness tooling" section of
``src/repro/serving/__init__.py`` is the narrative version.

Rules fire on library code only (``FileContext.is_test`` relaxes tests
and benches, where hard-coded seeds and wall clocks are legitimate), and
every rule honors the ``# repro-lint: ok=<rule>`` inline pragma.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .linting import FileContext, Rule, dotted_name

__all__ = ["ALL_RULES", "default_rules",
           "UnseededRngRule", "WallClockInEventsRule",
           "UnorderedIterationRule", "FloatSumReportRule",
           "ReportOmitWhenOffRule", "SchedulerPurityRule"]


# --------------------------------------------------------------------------- #
class UnseededRngRule(Rule):
    """``unseeded-rng``: all randomness flows from an explicit seed.

    Flags, in library code:

    * legacy global-state numpy API (``np.random.rand``, ``.seed``,
      ``.randint``, ``RandomState``...) — process-global RNG state makes
      replays depend on call order across the whole program;
    * stdlib ``random`` module calls — same global-state hazard;
    * ``np.random.default_rng()`` with no arguments — OS-entropy seeded,
      so two runs differ byte-for-byte;
    * ``np.random.default_rng(<literal>)`` — a hard-coded seed buried in
      a function body cannot be threaded from the caller's config; hoist
      it to a parameter/spec field (``default_rng(args.seed)``,
      ``default_rng(spec.seed)``) or pragma the designated fallback.
    """

    name = "unseeded-rng"
    summary = ("RNG must be an explicit np.random.Generator or a seed "
               "threaded from config; no global-state random APIs")

    # attribute names on np.random that are types/constructors, not the
    # legacy global-state functions
    _OK_ATTRS = {"default_rng", "Generator", "SeedSequence", "BitGenerator",
                 "PCG64", "Philox", "MT19937", "SFC64"}

    def applies_to(self, ctx: FileContext) -> bool:
        return not ctx.is_test

    def visit(self, ctx: FileContext) -> Iterator[tuple[ast.AST, str]]:
        stdlib_random = any(
            isinstance(n, ast.Import)
            and any(a.name == "random" for a in n.names)
            for n in ast.walk(ctx.tree))
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            parts = dotted.split(".")
            # numpy's module-level API: np.random.X / numpy.random.X
            if len(parts) >= 3 and parts[-3] in ("np", "numpy") \
                    and parts[-2] == "random":
                attr = parts[-1]
                if attr == "default_rng":
                    yield from self._check_default_rng(node)
                elif attr not in self._OK_ATTRS:
                    yield (node,
                           f"legacy global-state API np.random.{attr}(); "
                           f"construct an np.random.Generator with an "
                           f"explicit seed instead")
            elif stdlib_random and len(parts) == 2 \
                    and parts[0] == "random":
                yield (node,
                       f"stdlib random.{parts[1]}() uses process-global "
                       f"state; thread an np.random.Generator instead")

    def _check_default_rng(self, node: ast.Call):
        if not node.args and not node.keywords:
            yield (node, "np.random.default_rng() without a seed draws "
                         "OS entropy; runs are not reproducible")
        elif node.args and isinstance(node.args[0], ast.Constant) \
                and isinstance(node.args[0].value, (int, float)):
            yield (node,
                   f"hard-coded seed default_rng({node.args[0].value!r}) "
                   f"in library code; thread the seed (or a Generator) "
                   f"from the caller/config so experiments stay "
                   f"reproducible end-to-end from one seed")


# --------------------------------------------------------------------------- #
class WallClockInEventsRule(Rule):
    """``wall-clock-in-events``: event handlers live in simulated time.

    ``serving/events.py`` is the discrete-event core: every actor takes
    its notion of "now" from the scheduler (event ``t`` / ``sched.now``).
    A wall-clock read (``time.time``, ``perf_counter``, ``monotonic``)
    inside the core couples firing order or payloads to host speed and
    breaks replay determinism.  Designated profiling sites (the engine
    times the loop *around* ``sched.run()``, never inside it) carry the
    pragma.

    ``serving/measured.py`` is in scope too, with one carve-out: the
    ``timed_kernel`` context manager is the measured path's designated
    wall-clock site (its whole point is to time real kernel executions),
    so clock reads inside a function named ``timed_kernel`` in that file
    are legal — anywhere else in the module they fire, which guarantees
    every measured duration flows through the audited timer.
    """

    name = "wall-clock-in-events"
    summary = ("no time.time/perf_counter/monotonic inside the event core "
               "(serving/events.py, serving/measured.py); handlers use "
               "scheduler time — except inside measured.timed_kernel, the "
               "designated kernel-timing site")

    _CLOCKS = {"time", "perf_counter", "monotonic", "process_time",
               "thread_time", "perf_counter_ns", "monotonic_ns",
               "time_ns"}

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.path.endswith(("serving/events.py",
                                  "serving/measured.py"))

    def _carved_out(self, ctx: FileContext) -> set[int]:
        """Node ids inside ``timed_kernel`` defs (measured.py only)."""
        if not ctx.path.endswith("serving/measured.py"):
            return set()
        return {
            id(inner)
            for n in ast.walk(ctx.tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
            and n.name == "timed_kernel"
            for inner in ast.walk(n)}

    def visit(self, ctx: FileContext) -> Iterator[tuple[ast.AST, str]]:
        allowed = self._carved_out(ctx)
        from_imports = {
            a.asname or a.name
            for n in ast.walk(ctx.tree)
            if isinstance(n, ast.ImportFrom) and n.module == "time"
            for a in n.names}
        for node in ast.walk(ctx.tree):
            if id(node) in allowed:
                continue
            name = None
            if isinstance(node, ast.Attribute):
                dotted = dotted_name(node)
                if dotted and dotted.startswith("time.") \
                        and dotted.split(".")[1] in self._CLOCKS:
                    name = dotted
            elif isinstance(node, ast.Name) and node.id in from_imports:
                name = node.id
            if name is not None:
                yield (node,
                       f"wall-clock {name} inside the event core; "
                       f"handlers must take time from the scheduler "
                       f"(event t / sched.now)")


# --------------------------------------------------------------------------- #
class UnorderedIterationRule(Rule):
    """``unordered-iteration``: no set/``.keys()`` iteration in serving.

    Event scheduling and report assembly sit behind the
    ``(t, priority, seq)`` total order and the canonical-JSON contract;
    iterating a ``set`` (hash order) anywhere on those paths reintroduces
    run-to-run nondeterminism that the goldens cannot catch until it
    bites.  Iterate ``sorted(...)`` instead; ``.keys()`` is flagged too —
    dict order is insertion order, so spell it ``for k in d`` (the
    explicit ``.keys()`` form is where set-like view arithmetic creeps
    in).
    """

    name = "unordered-iteration"
    summary = ("no iteration over sets or dict .keys() in serving/ or "
               "analysis/ (order feeds scheduling/reports); use sorted()")

    def applies_to(self, ctx: FileContext) -> bool:
        return ("/serving/" in ctx.path or "/analysis/" in ctx.path) \
            and not ctx.is_test

    def visit(self, ctx: FileContext) -> Iterator[tuple[ast.AST, str]]:
        iters: list[ast.AST] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
        for it in iters:
            if isinstance(it, (ast.Set, ast.SetComp)):
                yield (it, "iterating a set literal/comprehension: hash "
                           "order is nondeterministic across runs; wrap "
                           "in sorted()")
            elif isinstance(it, ast.Call):
                dotted = dotted_name(it.func)
                if isinstance(it.func, ast.Name) and it.func.id == "set":
                    yield (it, "iterating set(...): hash order is "
                               "nondeterministic across runs; wrap in "
                               "sorted()")
                elif dotted and dotted.endswith(".keys") \
                        and not it.args and not it.keywords:
                    yield (it, "iterating .keys(): spell it `for k in d` "
                               "(insertion order) or sorted(d) if the "
                               "order feeds a report")


# --------------------------------------------------------------------------- #
class FloatSumReportRule(Rule):
    """``float-sum-report``: no order-sensitive float accumulation.

    Builtin ``sum()`` over floats accumulates left-to-right, so any
    reordering of the iterable (a refactor, a parallel merge) perturbs
    the low bits — and the golden reports pin those bits.  On serving
    report paths, ``sum()`` is allowed only over provably-integer
    summands (``len(...)``, ``int(...)``, integer literals); float
    reductions must use ``math.fsum`` (order-insensitive) or a numpy
    reduction over an array whose order is documented-stable, with the
    pragma naming that order.
    """

    name = "float-sum-report"
    summary = ("builtin sum() on serving report paths only over int "
               "summands (len/int/literal); floats need math.fsum or a "
               "documented stable order")

    def applies_to(self, ctx: FileContext) -> bool:
        return "/serving/" in ctx.path and not ctx.is_test

    @staticmethod
    def _int_summand(elt: ast.AST) -> bool:
        if isinstance(elt, ast.Constant) and isinstance(elt.value, int):
            return True
        if isinstance(elt, ast.Call) and isinstance(elt.func, ast.Name) \
                and elt.func.id in ("len", "int"):
            return True
        return False

    def visit(self, ctx: FileContext) -> Iterator[tuple[ast.AST, str]]:
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "sum" and node.args):
                continue
            arg = node.args[0]
            elt = arg.elt if isinstance(arg, (ast.GeneratorExp,
                                              ast.ListComp)) else arg
            if not self._int_summand(elt):
                yield (node,
                       "builtin sum() with a non-integer summand on a "
                       "report path: accumulation order perturbs the low "
                       "bits the goldens pin; use math.fsum, or pragma "
                       "with the documented stable order")


# --------------------------------------------------------------------------- #
class ReportOmitWhenOffRule(Rule):
    """``report-omit-when-off``: new ``ServingReport`` fields default-omit.

    The golden JSON reports from PRs 3-7 are byte-pinned.  Any *new*
    defaulted field on ``ServingReport`` must therefore be deleted from
    ``to_dict()`` when it is "off" (the way ``ingest``/``rebalance``/
    ``chaos`` families already are), or every golden re-bakes.  The rule
    knows the baseline fields the goldens already contain; a defaulted
    field that is neither baseline nor mentioned in ``to_dict`` is a
    golden-breaking change waiting for CI.
    """

    name = "report-omit-when-off"
    summary = ("new defaulted ServingReport fields must be omitted from "
               "to_dict() when off, so pinned goldens stay byte-identical")

    # Defaulted fields already present in the pinned golden schema
    # (PR 3: topology/placement/memsync families).  Everything after
    # these landed with an omit-when-off branch in to_dict().
    BASELINE = frozenset({
        "topology", "placement", "replicated_vertices", "memsync",
        "sync_edges", "stale_reads", "max_version_lag", "pool_servers",
    })

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.path.endswith("serving/engine.py")

    def visit(self, ctx: FileContext) -> Iterator[tuple[ast.AST, str]]:
        report = next(
            (n for n in ast.walk(ctx.tree)
             if isinstance(n, ast.ClassDef) and n.name == "ServingReport"),
            None)
        if report is None:
            return
        to_dict = next(
            (n for n in report.body
             if isinstance(n, ast.FunctionDef) and n.name == "to_dict"),
            None)
        omitted: set[str] = set()
        if to_dict is not None:
            omitted = {n.value for n in ast.walk(to_dict)
                       if isinstance(n, ast.Constant)
                       and isinstance(n.value, str)}
        for stmt in report.body:
            if isinstance(stmt, ast.AnnAssign) \
                    and isinstance(stmt.target, ast.Name) \
                    and stmt.value is not None:
                field = stmt.target.id
                if field not in self.BASELINE and field not in omitted:
                    yield (stmt,
                           f"new defaulted report field {field!r} is "
                           f"never omitted in to_dict(): chaos-free/"
                           f"feature-off runs will emit it and every "
                           f"pinned golden re-bakes; add an "
                           f"omit-when-off branch")


# --------------------------------------------------------------------------- #
class SchedulerPurityRule(Rule):
    """``scheduler-purity``: actors use the scheduler's public API only.

    Outside ``serving/events.py`` (the scheduler's own module), code
    holding a scheduler reference may call ``schedule`` / ``schedule_run``
    / ``cancel`` / ``record`` / ``run`` and read public state, but may
    not reach into private internals (``_heap``, ``_runs``, ``_seq``...)
    or assign any scheduler attribute (``sched.now = ...``) — that is how
    an actor silently forks the ``(t, priority, seq)`` total order the
    whole exactness story depends on.
    """

    name = "scheduler-purity"
    summary = ("actors touch the scheduler only via its public API; no "
               "private-attribute access or attribute assignment outside "
               "events.py")

    _SCHED_NAMES = {"sched", "_sched", "scheduler", "_scheduler"}

    def applies_to(self, ctx: FileContext) -> bool:
        return "/serving/" in ctx.path \
            and not ctx.path.endswith("serving/events.py") \
            and not ctx.is_test

    def _is_scheduler_expr(self, node: ast.AST) -> bool:
        # `sched` / `self.sched` / `self._sched` (any base object)
        if isinstance(node, ast.Name):
            return node.id in self._SCHED_NAMES
        if isinstance(node, ast.Attribute):
            return node.attr in self._SCHED_NAMES
        return False

    def visit(self, ctx: FileContext) -> Iterator[tuple[ast.AST, str]]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if not self._is_scheduler_expr(node.value):
                continue
            if isinstance(node.ctx, (ast.Store, ast.Del)):
                yield (node,
                       f"assigning scheduler attribute .{node.attr}: "
                       f"actors may only mutate scheduler state through "
                       f"schedule/schedule_run/cancel/record")
            elif node.attr.startswith("_"):
                yield (node,
                       f"private scheduler internal .{node.attr} accessed "
                       f"outside events.py; use the public API "
                       f"(schedule/schedule_run/cancel/record/run)")


# --------------------------------------------------------------------------- #
ALL_RULES = (UnseededRngRule, WallClockInEventsRule, UnorderedIterationRule,
             FloatSumReportRule, ReportOmitWhenOffRule, SchedulerPurityRule)


def default_rules() -> list[Rule]:
    """Fresh instances of the full ruleset (rules are stateless)."""
    return [cls() for cls in ALL_RULES]
