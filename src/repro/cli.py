"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``info``    package, dataset registry, published design points.
``train``   self-supervised training (optionally distilled from a teacher
            checkpoint) on a named dataset analogue; saves a ``.npz`` model.
``eval``    streaming AP/AUC of a checkpoint on a dataset split.
``infer``   throughput/latency of a checkpoint on a backend
            (``software`` measured, ``u200``/``zcu104`` simulated).
``dse``     design-space sweep + Pareto frontier for a platform.
``trace``   simulate a few batches with tracing and print the ASCII Gantt
            chart + per-stage utilization.
``serve-sim``  multi-stream serving simulation on the discrete-event core:
            N shards, a shared-queue pool of N replicas, or the hybrid
            hot/cold topology (``--topology sharded|pool|hybrid``) x M
            streams through a named backend, with dynamic batching and
            serial or double-buffered ingest
            (``--ingest serial|pipelined``), placement policies
            (``--placement hash|rebalance|replicate``), cross-shard
            memory sync policies (``--memsync none|invalidate|push``),
            online rebalancing (``--rebalance-online`` with
            ``--rebalance-threshold`` / ``--rebalance-window``: mid-run
            `MigrationEvent` ownership changes with priced state handoff),
            SLO-driven autoscaling (``--autoscale --slo-p95`` with
            ``--scale-window`` / ``--max-servers``: mid-run `ScaleEvent`
            fleet resizing — pool replicas spin up/down, shards
            split/merge with priced handoff),
            and per-shard queueing statistics; ``--json`` writes a
            canonical (byte-stable) report, and ``--ingest serial``
            without the rebalance flags is byte-identical to the
            pre-event-core engine.

Every command is a plain function taking parsed args, so tests invoke them
without subprocesses.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Temporal GNN model-architecture co-design (IPDPS'22 "
                    "reproduction)")
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="package and registry overview")

    t = sub.add_parser("train", help="train (or distill) a model")
    t.add_argument("--dataset", default="wikipedia")
    t.add_argument("--edges", type=int, default=3000)
    t.add_argument("--epochs", type=int, default=3)
    t.add_argument("--batch-size", type=int, default=100)
    t.add_argument("--memory-dim", type=int, default=32)
    t.add_argument("--neighbors", type=int, default=10)
    t.add_argument("--simplified", action="store_true",
                   help="use the Eq.(16) attention (required for --prune)")
    t.add_argument("--lut", action="store_true", help="LUT time encoder")
    t.add_argument("--prune", type=int, default=None,
                   help="neighbor pruning budget")
    t.add_argument("--teacher", default=None,
                   help="teacher checkpoint for knowledge distillation")
    t.add_argument("--seed", type=int, default=0)
    t.add_argument("--out", required=True, help="output checkpoint (.npz)")

    e = sub.add_parser("eval", help="evaluate a checkpoint")
    e.add_argument("--model", required=True)
    e.add_argument("--dataset", default="wikipedia")
    e.add_argument("--edges", type=int, default=3000)
    e.add_argument("--batch-size", type=int, default=100)

    i = sub.add_parser("infer", help="throughput/latency of a checkpoint")
    i.add_argument("--model", required=True)
    i.add_argument("--dataset", default="wikipedia")
    i.add_argument("--edges", type=int, default=3000)
    i.add_argument("--batch-size", type=int, default=200)
    i.add_argument("--backend", choices=["software", "u200", "zcu104"],
                   default="software")

    d = sub.add_parser("dse", help="design-space exploration")
    d.add_argument("--platform", choices=["u200", "zcu104"], default="u200")
    d.add_argument("--prune", type=int, default=4)
    d.add_argument("--batch-size", type=int, default=1000)

    g = sub.add_parser("trace", help="pipeline Gantt chart")
    g.add_argument("--platform", choices=["u200", "zcu104"],
                   default="zcu104")
    g.add_argument("--batches", type=int, default=3)
    g.add_argument("--width", type=int, default=100)
    g.add_argument("--seed", type=int, default=0)

    v = sub.add_parser("serve-sim",
                       help="sharded multi-stream serving simulation")
    v.add_argument("--dataset", default="wikipedia")
    v.add_argument("--edges", type=int, default=2000)
    v.add_argument("--shards", type=int, default=4)
    v.add_argument("--streams", type=int, default=4)
    v.add_argument("--speedup", type=float, default=2.0,
                   help="stream-time compression (load multiplier)")
    v.add_argument("--window-s", type=float, default=900.0)
    from .serving.registry import DEFAULT_REGISTRY
    v.add_argument("--backend", default="zcu104",
                   choices=DEFAULT_REGISTRY.available(),
                   help="registry backend name, replicated per shard; "
                        "'measured' executes the real numpy kernels in a "
                        "worker pool (--workers) and reconciles measured "
                        "durations into event time")
    v.add_argument("--workers", type=int, default=0,
                   help="measured backend only: worker-pool process lanes "
                        "running the real kernels (shard s on lane "
                        "s %% N); 0 computes in-process with one virtual "
                        "lane per shard")
    v.add_argument("--batch-edges", type=int, default=None,
                   help="dynamic batcher size trigger (edges)")
    v.add_argument("--deadline-ms", type=float, default=None,
                   help="dynamic batcher flush deadline (default: "
                        "passthrough, or unbounded with --batch-edges)")
    v.add_argument("--queue-capacity", type=int, default=None)
    from .serving.placement import PLACEMENT_POLICIES
    v.add_argument("--placement", default="hash",
                   choices=sorted(PLACEMENT_POLICIES),
                   help="vertex placement policy (sharded topology); "
                        "'rebalance' runs a hash-placed profiling pass "
                        "first and migrates hot vertices off overloaded "
                        "shards")
    v.add_argument("--topology", default="sharded",
                   choices=["sharded", "pool", "hybrid"],
                   help="partitioned shards with dedicated queues; a pool "
                        "of stateless replicas behind one shared queue; or "
                        "hybrid — the measured hot head on dedicated "
                        "shards and the cold tail drained by a shared-"
                        "queue pool, in one event loop")
    v.add_argument("--ingest", default="serial",
                   choices=["serial", "pipelined"],
                   help="ingest tier: 'serial' serializes batching delay "
                        "in front of service (byte-identical to the pre-"
                        "event-core engine); 'pipelined' double-buffers "
                        "the ingest so the batcher flushes the moment the "
                        "fleet goes hungry and batching delay hides "
                        "behind in-flight compute")
    v.add_argument("--hot-top-k", type=int, default=16,
                   help="hybrid: how many of the hottest vertices (by "
                        "measured heat) go to the dedicated shards")
    v.add_argument("--pool-servers", type=int, default=None,
                   help="replica count behind the shared queue (pool and "
                        "hybrid; defaults to --shards)")
    from .serving.memsync import MEMSYNC_POLICIES
    v.add_argument("--memsync", default="none",
                   choices=list(MEMSYNC_POLICIES),
                   help="cross-shard vertex-memory sync policy (sharded "
                        "topology): 'none' keeps stale mirrors (and "
                        "measures the staleness), 'invalidate' pulls fresh "
                        "rows on stale reads, 'push' forwards owner writes "
                        "alongside the edge mail")
    v.add_argument("--util-threshold", type=float, default=0.75,
                   help="rebalance: migrate off shards above this measured "
                        "utilization")
    v.add_argument("--rebalance-online", action="store_true",
                   help="run the OnlineRebalancer on the event loop: "
                        "migrate vertex ownership mid-run off shards whose "
                        "window utilization exceeds --rebalance-threshold "
                        "(sharded), or track hot-set drift between pool "
                        "and dedicated shards (hybrid); state handoff is "
                        "priced like sync traffic")
    v.add_argument("--rebalance-threshold", type=float, default=0.75,
                   help="online rebalancing: donate off shards above this "
                        "window utilization (sharded topology)")
    v.add_argument("--rebalance-window", type=float, default=None,
                   metavar="SECONDS",
                   help="online rebalancing: measurement window in served "
                        "(event-loop) seconds; default is one workload "
                        "window, --window-s / --speedup")
    v.add_argument("--autoscale", action="store_true",
                   help="run the AutoScaler on the event loop: watch "
                        "windowed p95 response latency against --slo-p95 "
                        "and resize the fleet mid-run via ScaleEvents — "
                        "pool replicas spin up/down in place; sharded "
                        "shards split/merge ownership across a "
                        "--max-servers-slot fleet with priced state "
                        "handoff (requires --placement hash)")
    v.add_argument("--slo-p95", type=float, default=None, metavar="SECONDS",
                   help="autoscale: the SLO band's upper edge in event-"
                        "loop seconds (window p95 above it scales up; "
                        "p95 at or below half of it scales down)")
    v.add_argument("--scale-window", type=float, default=None,
                   metavar="SECONDS",
                   help="autoscale: measurement window in event-loop "
                        "seconds; default is one workload window, "
                        "--window-s / --speedup")
    v.add_argument("--max-servers", type=int, default=None,
                   help="autoscale: fleet-size ceiling (default twice the "
                        "initial fleet)")
    v.add_argument("--replicate-top-k", type=int, default=8,
                   help="replicate: how many read-mostly hot vertices to "
                        "replicate")
    v.add_argument("--fail-at", type=float, default=None, metavar="SECONDS",
                   help="chaos: inject a shard failure at this event-loop "
                        "time (sharded topology)")
    v.add_argument("--fail-shard", type=int, default=0,
                   help="chaos: which shard fails")
    v.add_argument("--fail-mode", default="dead",
                   choices=["dead", "slow"],
                   help="chaos: 'dead' stops the shard and loses its "
                        "vertex state (replica mirrors are promoted to "
                        "owners, the rest is rebuilt by memsync replay "
                        "from peers); 'slow' multiplies its service times "
                        "by --fail-degradation")
    v.add_argument("--recover-at", type=float, default=None,
                   metavar="SECONDS",
                   help="chaos: restore the failed shard at this event-"
                        "loop time (dead mode migrates the held state "
                        "back to it)")
    v.add_argument("--fail-degradation", type=float, default=4.0,
                   help="chaos: slow-mode service-time multiplier")
    v.add_argument("--json", default=None, metavar="PATH",
                   help="also write the report as canonical JSON (byte-"
                        "identical across runs with the same arguments on "
                        "the modeled/simulated backends; the 'software' "
                        "backend measures wall-clock and will differ)")
    v.add_argument("--check-trace", action="store_true",
                   help="record the typed event trace and replay it "
                        "through repro.analysis.tracecheck (causality, "
                        "exactly-once service/ownership, conservation; "
                        "with --profile, also heap-vs-vectorized "
                        "same-key order); prints the findings report "
                        "and exits 3 on any finding")
    v.add_argument("--profile", action="store_true",
                   help="replay the same workload under the reference heap "
                        "scheduler and the vectorized scheduler, print the "
                        "before/after event-core breakdown (events/sec, "
                        "handler calls), and verify the two reports are "
                        "byte-identical; the printed report comes from the "
                        "vectorized lane")
    v.add_argument("--model", default=None,
                   help="optional checkpoint (.npz); default builds NP(4)")
    v.add_argument("--memory-dim", type=int, default=32)
    v.add_argument("--seed", type=int, default=0)
    return p


# --------------------------------------------------------------------------- #
def _dataset(args):
    from .datasets import load
    return load(args.dataset, num_edges=args.edges)


def _model_cfg(args, graph):
    from .models import ModelConfig
    return ModelConfig(memory_dim=args.memory_dim, time_dim=args.memory_dim,
                       embed_dim=args.memory_dim,
                       edge_dim=graph.edge_dim, node_dim=graph.node_dim,
                       num_neighbors=args.neighbors,
                       simplified_attention=args.simplified or bool(args.teacher),
                       lut_time_encoder=args.lut,
                       pruning_budget=args.prune)


def cmd_info(args, out=print) -> int:
    from . import __version__
    from .datasets import DATASETS
    from .hw import U200_DESIGN, ZCU104_DESIGN
    out(f"repro {__version__} — IPDPS'22 TGNN co-design reproduction")
    out(f"datasets: {', '.join(sorted(DATASETS))}")
    for name, hw in (("u200", U200_DESIGN), ("zcu104", ZCU104_DESIGN)):
        out(f"{name}: Ncu={hw.n_cu} Sg={hw.sg} SFAM={hw.s_fam} "
            f"SFTM={hw.s_ftm} Nb={hw.nb} @ {hw.freq_mhz:.0f} MHz, "
            f"{hw.platform.ddr_bw_gbs:.1f} GB/s DDR")
    return 0


def cmd_train(args, out=print) -> int:
    from .models import TGNN, load_model, save_model
    from .training import (DistillationConfig, DistillationTrainer,
                           TrainConfig, Trainer)
    graph = _dataset(args)
    _, (train_end, val_end, test_end) = graph.split()
    cfg = _model_cfg(args, graph)
    model = TGNN(cfg, rng=np.random.default_rng(args.seed))
    model.calibrate(graph)
    if args.teacher:
        teacher = load_model(args.teacher)
        trainer = DistillationTrainer(
            teacher, model, graph,
            DistillationConfig(epochs=args.epochs,
                               batch_size=args.batch_size, seed=args.seed),
            warm_start=True)
        hist = trainer.train(train_end)
        out(f"distilled {args.epochs} epochs: "
            f"kd_loss {hist[-1]['kd_loss']:.4f}, "
            f"agreement {hist[-1]['top1_agreement']:.3f}")
        evaluator = trainer.as_trainer()
    else:
        evaluator = Trainer(model, graph,
                            TrainConfig(epochs=args.epochs,
                                        batch_size=args.batch_size,
                                        seed=args.seed))
        hist = evaluator.train(train_end)
        out(f"trained {args.epochs} epochs: loss {hist[-1]['loss']:.4f}")
    res = evaluator.evaluate(val_end, test_end)
    out(f"test AP {res.ap:.4f}  AUC {res.auc:.4f}")
    save_model(model, args.out)
    out(f"saved checkpoint to {args.out}")
    return 0


def cmd_eval(args, out=print) -> int:
    from .models import load_model
    from .training import TrainConfig, Trainer
    graph = _dataset(args)
    _, (train_end, val_end, test_end) = graph.split()
    model = load_model(args.model)
    trainer = Trainer(model, graph,
                      TrainConfig(batch_size=args.batch_size, seed=0))
    res = trainer.evaluate(val_end, test_end)
    out(f"test AP {res.ap:.4f}  AUC {res.auc:.4f} "
        f"over {res.n_edges} edges")
    return 0


def cmd_infer(args, out=print) -> int:
    from .hw import FPGAAccelerator, U200_DESIGN, ZCU104_DESIGN
    from .models import load_model
    from .pipeline import (SimulatedFPGABackend, SoftwareBackend,
                           run_engine)
    graph = _dataset(args)
    model = load_model(args.model)
    if args.backend == "software":
        backend = SoftwareBackend(model, graph)
        label = "measured (1 thread)"
    else:
        design = U200_DESIGN if args.backend == "u200" else ZCU104_DESIGN
        backend = SimulatedFPGABackend(FPGAAccelerator(model, design), graph)
        label = f"simulated ({args.backend})"
    report = run_engine(backend, graph, batch_size=args.batch_size)
    out(f"{label}: {report.throughput_eps / 1e3:.2f} kE/s, "
        f"mean batch latency {report.mean_latency_s * 1e3:.3f} ms "
        f"over {report.n_edges} edges")
    return 0


def cmd_dse(args, out=print) -> int:
    from .hw import U200, ZCU104, explore, pareto_frontier
    from .models import ModelConfig
    platform = U200 if args.platform == "u200" else ZCU104
    cfg = ModelConfig(simplified_attention=True, lut_time_encoder=True,
                      pruning_budget=args.prune)
    points = explore(cfg, platform, batch_size=args.batch_size)
    frontier = pareto_frontier(points)
    out(f"{len(points)} feasible designs on {args.platform}; "
        f"frontier ({len(frontier)} points):")
    for p in frontier:
        out(f"  Ncu={p.hw.n_cu} Sg={p.hw.sg} SFAM={p.hw.s_fam} "
            f"SFTM={p.hw.s_ftm} Nb={p.hw.nb}: {p.dsp} DSP, "
            f"{p.throughput_eps / 1e3:.1f} kE/s, "
            f"{p.latency_s * 1e3:.2f} ms @ N={args.batch_size}")
    return 0


def cmd_trace(args, out=print) -> int:
    from .datasets import wikipedia_like
    from .hw import (FPGAAccelerator, U200_DESIGN, ZCU104_DESIGN,
                     pipeline_overlap, render_gantt, stage_utilization)
    from .models import ModelConfig, TGNN
    design = U200_DESIGN if args.platform == "u200" else ZCU104_DESIGN
    graph = wikipedia_like(num_edges=1000, num_users=120, num_items=25)
    cfg = ModelConfig(simplified_attention=True, lut_time_encoder=True,
                      pruning_budget=4)
    model = TGNN(cfg, rng=np.random.default_rng(args.seed))
    model.calibrate(graph)
    acc = FPGAAccelerator(model, design)
    n = args.batches * design.nb
    report = acc.run_stream(graph, batch_size=n, end=n, trace=True)
    out(render_gantt(report, width=args.width))
    out("")
    for stage, util in stage_utilization(report).items():
        out(f"{stage:>18}: {'#' * int(40 * util):<40} {util * 100:5.1f}%")
    out(f"\npipeline overlap factor: {pipeline_overlap(report):.2f}x "
        f"(1.0 = serial)")
    return 0


def cmd_serve_sim(args, out=print) -> int:
    from .models import ModelConfig, TGNN, load_model
    from .serving import (DEFAULT_REGISTRY, DynamicBatcher, OnlineRebalancer,
                          ServingEngine, VertexHeat, make_policy)
    graph = _dataset(args)
    if args.model:
        model = load_model(args.model)
    else:
        cfg = ModelConfig(memory_dim=args.memory_dim,
                          time_dim=args.memory_dim,
                          embed_dim=args.memory_dim,
                          edge_dim=graph.edge_dim, node_dim=graph.node_dim,
                          simplified_attention=True, lut_time_encoder=True,
                          pruning_budget=4, name="NP(4)")
        model = TGNN(cfg, rng=np.random.default_rng(args.seed))
        model.calibrate(graph)
        model.prepare_inference()

    batcher = DynamicBatcher(
        max_edges=args.batch_edges,
        max_delay_s=None if args.deadline_ms is None
        else args.deadline_ms / 1e3)
    # Cost-model backends report timing independent of functional state;
    # skip the (never-read) per-shard functional inference entirely.
    backend_kwargs = {"functional": False} \
        if args.backend in ("cpu-32t", "gpu") else None
    if args.backend == "measured" and args.topology != "sharded":
        out(f"error: --backend measured requires --topology sharded "
            f"(the worker pool pins one real kernel runtime per shard; "
            f"{args.topology} replicas would share mutable state across "
            f"processes)")
        return 2
    if args.workers and args.backend != "measured":
        out(f"error: --workers requires --backend measured (the modeled "
            f"{args.backend} backend prices batches without executing "
            f"them, so there is no worker pool to size)")
        return 2
    fpga_design = None
    if args.backend in ("u200", "zcu104"):
        from .hw import U200_DESIGN, ZCU104_DESIGN
        fpga_design = U200_DESIGN if args.backend == "u200" \
            else ZCU104_DESIGN

    def build_engine(placement=None, die_of=None, rebalancer=None,
                     failures=None, autoscaler=None, num_shards=None):
        # Price cross-shard mailbox traffic at the SLR-crossing latency of
        # the simulated part (single-die parts get an all-zero penalty;
        # pool replicas forward nothing, so no penalty applies there).
        kwargs = {}
        if placement is not None:
            kwargs["placement"] = placement
        if rebalancer is not None:
            kwargs["rebalancer"] = rebalancer
        if failures is not None:
            kwargs["failures"] = failures
        if autoscaler is not None:
            kwargs["autoscaler"] = autoscaler
        if args.topology in ("sharded", "hybrid"):
            kwargs["memsync"] = args.memsync
        if args.topology == "hybrid":
            kwargs["hot_top_k"] = args.hot_top_k
        if args.topology in ("pool", "hybrid") \
                and args.pool_servers is not None:
            kwargs["pool_servers"] = args.pool_servers
        if fpga_design is not None and args.topology in ("sharded",
                                                         "hybrid"):
            kwargs["die_of"] = die_of
            kwargs["mail_hop_s"] = \
                fpga_design.die_crossing_cycles * fpga_design.clock_s
        if args.backend == "measured":
            kwargs["workers"] = args.workers
        return ServingEngine.from_registry(
            args.backend, model, graph,
            num_shards=args.shards if num_shards is None else num_shards,
            registry=DEFAULT_REGISTRY, backend_kwargs=backend_kwargs,
            batcher=batcher, topology=args.topology, **kwargs)

    def run(engine, scheduler_cls=None):
        return engine.run(graph, window_s=args.window_s,
                          speedup=args.speedup, num_streams=args.streams,
                          queue_capacity=args.queue_capacity,
                          ingest=args.ingest, scheduler_cls=scheduler_cls,
                          trace=args.check_trace)

    def plan_dies(placement):
        if fpga_design is None or args.topology == "pool":
            return None
        dies = fpga_design.platform.dies
        if args.topology == "hybrid":
            # The cold-tail pool is one more station on the floorplan (the
            # placement's last pseudo-shard).
            from .hw import plan_shard_dies
            return plan_shard_dies(args.shards + 1, dies)
        # Branch on whether the placement actually changed anything — a
        # rebalance *profiling* pass is still the hash partition and must
        # be priced exactly as `--placement hash` would deploy.
        unchanged = placement is None or (not placement.moved_vertices
                                          and not placement.replicas)
        if unchanged:
            from .hw import plan_shard_dies
            # The placement's own shard count covers elastic fleets too:
            # a padded autoscale layout needs a die for every station the
            # controller may ever activate.
            return plan_shard_dies(placement.num_shards if placement
                                   is not None else args.shards, dies)
        # The policy moved/replicated vertices, so the expected mailbox
        # traffic matrix changed: re-plan the shard -> die assignment
        # against the *new* traffic so die crossings are priced correctly.
        from .hw import plan_shard_dies_traffic_aware
        return plan_shard_dies_traffic_aware(
            placement.mail_matrix(graph.src, graph.dst), dies)

    placement = None
    if args.topology == "hybrid":
        # Placement is built inside the engine (HotColdHybrid from the
        # graph's measured heat); --placement only applies to sharded.
        if args.placement != "hash":
            out(f"note: --placement {args.placement} is ignored in hybrid "
                f"topology (the hot/cold split comes from the measured "
                f"traffic profile)")
    elif args.topology == "sharded":
        heat = VertexHeat.from_graph(graph)
        if args.placement == "rebalance":
            policy = make_policy("rebalance",
                                 util_threshold=args.util_threshold)
            base = policy.place(heat, args.shards)      # hash baseline
            profile = run(build_engine(die_of=plan_dies(base))).shard_stats
            placement = policy.place(heat, args.shards, profile=profile)
            out(f"rebalance: profiled max util "
                f"{max(s.utilization for s in profile) * 100:.2f}%, "
                f"migrated {len(placement.moved_vertices)} vertex(es) off "
                f"shards above {args.util_threshold * 100:.0f}%")
        elif args.placement == "replicate":
            placement = make_policy(
                "replicate", top_k=args.replicate_top_k).place(heat,
                                                               args.shards)
            out(f"replicate: {placement.replicated_vertices} read-mostly "
                f"vertex(es) replicated "
                f"({placement.replica_copies} extra copies)")
        else:
            placement = make_policy("hash").place(heat, args.shards)
    else:
        if args.placement != "hash":
            out(f"note: --placement {args.placement} is ignored in pool "
                f"topology (replicas share one queue and one state store)")
        if args.memsync != "none":
            out(f"note: --memsync {args.memsync} is ignored in pool "
                f"topology (replicas share one state store, so nothing "
                f"is ever stale)")

    rebal_kwargs = None
    if args.rebalance_online:
        if args.topology == "pool":
            out("note: --rebalance-online is ignored in pool topology "
                "(one shared queue has no partition to rebalance)")
        else:
            # Default window: one workload window in event-loop seconds
            # (arrival time is stream time compressed by --speedup).
            window = args.rebalance_window \
                if args.rebalance_window is not None \
                else args.window_s / args.speedup
            rebal_kwargs = dict(window_s=window,
                                util_threshold=args.rebalance_threshold)

    plans = None
    if args.fail_at is not None:
        if args.topology != "sharded":
            out(f"note: --fail-at is ignored in {args.topology} topology "
                f"(chaos injection fails a dedicated shard and promotes "
                f"its replica mirrors; only the sharded topology has "
                f"both)")
        elif rebal_kwargs is not None:
            out("error: --fail-at cannot be combined with "
                "--rebalance-online (migrations racing a failover would "
                "make the ownership chain ambiguous)")
            return 2
        else:
            from .serving import FailurePlan
            plans = FailurePlan(fail_at=args.fail_at,
                                shard=args.fail_shard,
                                mode=args.fail_mode,
                                recover_at=args.recover_at,
                                degradation=args.fail_degradation)

    make_autoscaler = None
    engine_shards = None
    if args.autoscale:
        from .serving import (AutoScaler, CapacityConfig,
                              padded_hash_placement)
        if args.backend == "measured":
            out("error: --autoscale requires a modeled backend (a "
                "measured worker lane cannot be created mid-run)")
            return 2
        if args.topology == "hybrid":
            out("error: --autoscale does not apply to the hybrid "
                "topology (the pool pseudo-shard and the dedicated "
                "shards would need separate controllers)")
            return 2
        if rebal_kwargs is not None:
            out("error: --autoscale cannot be combined with "
                "--rebalance-online (both migrate ownership from "
                "windowed measurements and would race each other's "
                "consistency checks)")
            return 2
        if plans is not None:
            out("error: --autoscale cannot be combined with --fail-at "
                "(a failover changes ownership and fleet health "
                "underneath the scaler's decisions)")
            return 2
        if args.slo_p95 is None:
            out("error: --autoscale requires --slo-p95 (the SLO the "
                "controller scales against)")
            return 2
        if args.topology == "sharded" and args.placement != "hash":
            out(f"error: --autoscale requires --placement hash on the "
                f"sharded topology (splits and merges need an "
                f"unreplicated hash layout; {args.placement} would put "
                f"replicas or profiled moves underneath the controller)")
            return 2
        initial = (args.pool_servers or args.shards) \
            if args.topology == "pool" else args.shards
        max_servers = args.max_servers if args.max_servers is not None \
            else 2 * initial
        if max_servers < initial:
            out(f"error: --max-servers {max_servers} is below the "
                f"initial fleet of {initial}")
            return 2
        scale_window = args.scale_window \
            if args.scale_window is not None \
            else args.window_s / args.speedup
        capacity = CapacityConfig(micro_batch=args.batch_edges or 1,
                                  replicas=initial,
                                  max_replicas=max_servers)

        def make_autoscaler():
            # Fresh controller per engine build (same discipline as the
            # rebalancer in the --profile lanes).
            return AutoScaler(capacity, slo_p95_s=args.slo_p95,
                              scale_window_s=scale_window)

        if args.topology == "sharded":
            # The elastic fleet is a max-servers-slot station array: the
            # hash layout covers the active prefix, the padded tail owns
            # nothing until a split activates it.
            engine_shards = max_servers
            placement = padded_hash_placement(graph.num_nodes,
                                              args.shards, max_servers)
    else:
        scale_flags = [name for name, value in
                       (("--slo-p95", args.slo_p95),
                        ("--scale-window", args.scale_window),
                        ("--max-servers", args.max_servers))
                       if value is not None]
        if scale_flags:
            out(f"error: {', '.join(scale_flags)} require(s) --autoscale")
            return 2

    if args.profile:
        # Two independent replays of the identical workload — fresh
        # engine, placement, and rebalancer per lane so neither warm
        # state nor mid-run migrations leak across.  Timing covers the
        # event loop only (engine.last_loop_wall_s): setup and report
        # assembly are identical in both lanes and would dilute the
        # scheduler comparison.
        import copy as _copy
        from .profiling import event_core_breakdown, format_table
        from .serving import HeapEventScheduler

        def lane(scheduler_cls):
            pl = _copy.deepcopy(placement)
            reb = OnlineRebalancer(**rebal_kwargs) \
                if rebal_kwargs is not None else None
            eng = build_engine(placement=pl, die_of=plan_dies(pl),
                               rebalancer=reb, failures=plans,
                               autoscaler=make_autoscaler()
                               if make_autoscaler is not None else None,
                               num_shards=engine_shards)
            initial = eng.router.assignment.copy()
            rep = run(eng, scheduler_cls=scheduler_cls)
            s = eng.last_scheduler
            calls = s.events_processed \
                - getattr(s, "cohort_events", 0) \
                + getattr(s, "cohort_calls", 0)
            return rep, {"events": s.events_processed,
                         "wall_s": eng.last_loop_wall_s,
                         "cohort_calls": calls}, eng, initial

        before_report, before_lane, before_eng, _ = lane(HeapEventScheduler)
        report, after_lane, engine, initial_owner = lane(None)
        rows = event_core_breakdown(before_lane, after_lane)
        out("event core profile (same workload, both schedulers):")
        out(format_table(rows, precision=3))
        if report.measured is not None:
            # Measured service times are wall-clock, so the two lanes can
            # never agree byte-for-byte (and the heap lane's event order
            # is its own timing's, not the vectorized lane's): compare the
            # float-free structural projection and skip the cross-lane
            # order check.
            from .profiling import modeled_vs_measured
            identical = before_report.to_structure_json() \
                == report.to_structure_json()
            out(f"event core speedup {rows[-1]['events_per_sec']:.2f}x, "
                f"report structures identical: "
                f"{'yes' if identical else 'NO'}")
            out("modeled vs measured service time (vectorized lane):")
            out(format_table(modeled_vs_measured(report.measured),
                             precision=3))
            heap_trace = None
        else:
            identical = before_report.to_json() == report.to_json()
            out(f"event core speedup {rows[-1]['events_per_sec']:.2f}x, "
                f"reports byte-identical: {'yes' if identical else 'NO'}")
            heap_trace = before_eng.last_event_trace
    else:
        rebalancer = OnlineRebalancer(**rebal_kwargs) \
            if rebal_kwargs is not None else None
        engine = build_engine(placement=placement,
                              die_of=plan_dies(placement),
                              rebalancer=rebalancer, failures=plans,
                              autoscaler=make_autoscaler()
                              if make_autoscaler is not None else None,
                              num_shards=engine_shards)
        initial_owner = engine.router.assignment.copy()
        report = run(engine)
        heap_trace = None

    if args.check_trace:
        # Replay the recorded trace through the invariant checker: the
        # run's own causality/exactly-once/conservation story, plus (with
        # --profile) heap-vs-vectorized same-key order agreement.
        from .analysis.tracecheck import check_run
        result = check_run(engine=engine, report=report,
                           initial_assignment=initial_owner,
                           heap_trace=heap_trace)
        out(result.render())
        if not result.ok:
            return 3

    if args.topology == "pool":
        label = (f"serve-sim: pool of {report.pool_servers} "
                 f"replica(s) x {report.num_streams} stream(s)")
    elif args.topology == "hybrid":
        label = (f"serve-sim: {report.num_shards - 1} hot shard(s) + pool "
                 f"of {report.pool_servers} replica(s) x "
                 f"{report.num_streams} stream(s)")
    else:
        label = (f"serve-sim: {report.num_shards} shard(s) x "
                 f"{report.num_streams} stream(s)")
    ingest_tag = "" if report.ingest == "serial" \
        else f" [ingest {report.ingest}]"
    out(f"{label} @ {report.speedup:g}x load on {args.backend} "
        f"[placement {report.placement}]{ingest_tag}")
    for s in report.shard_stats:
        out(f"  shard {s.shard}: util {s.utilization * 100:6.2f}%  "
            f"jobs {s.jobs}  edges {s.edges} (mail {s.mail_in_edges})  "
            f"wait {s.mean_wait_s * 1e3:.3f} ms  "
            f"p95 {s.p95_response_s * 1e3:.3f} ms  drops {s.dropped_jobs}")
    out(f"windows {report.windows} (dropped {report.dropped_windows}), "
        f"response p95 {report.p95_response_s * 1e3:.3f} ms / "
        f"p99 {report.p99_response_s * 1e3:.3f} ms, "
        f"throughput {report.throughput_eps / 1e3:.2f} kE/s")
    out(f"cross-shard edges {report.cross_shard_edges} "
        f"(x{report.replication_factor:.2f} replication, "
        f"{report.replicated_vertices} replicated vertices, "
        f"{report.cross_die_mail_edges} die crossings); "
        f"{'stable' if report.stable else 'OVERLOADED'}")
    if report.memsync != "none":
        out(f"memsync {report.memsync}: {report.sync_edges} memory rows "
            f"synced, {report.stale_reads} stale reads "
            f"(max version lag {report.max_version_lag})")
    if report.rebalance == "online":
        out(f"rebalance online: {report.migrations} migration(s) of "
            f"{report.migrated_vertices} vertex(es), "
            f"{report.handoff_rows} state rows handed off")
    if report.chaos != "off":
        out(f"chaos {report.chaos}: {report.failures} failure(s) / "
            f"{report.recoveries} recovery(ies), "
            f"{report.promoted_vertices} promoted + "
            f"{report.rebuilt_vertices} rebuilt vertex(es), "
            f"{report.recovery_rows} recovery rows; outage p99 "
            f"{report.outage_p99_response_s * 1e3:.3f} ms over "
            f"{report.outage_windows} window(s)")
    if report.measured is not None:
        m = report.measured
        modeled = m.get("modeled_mean_s")
        modeled_tag = "" if modeled is None \
            else f", modeled {modeled * 1e3:.3f} ms"
        out(f"measured: {m['samples']} kernel batch(es) on "
            f"{m['workers']} worker lane(s), mean service "
            f"{m['mean_s'] * 1e3:.3f} ms (cv2 {m['cv2']:.2f})"
            f"{modeled_tag}")
    if report.scaling is not None:
        sc = report.scaling
        rows_tag = f", {sc['handoff_rows']} split/merge rows" \
            if sc["handoff_rows"] else ""
        out(f"autoscale slo-p95 {sc['slo_p95_s'] * 1e3:.3f} ms: "
            f"{sc['scale_ups']} up / {sc['scale_downs']} down, fleet "
            f"{sc['initial_servers']} -> {sc['final_servers']} "
            f"(peak {sc['peak_servers']}, mean {sc['mean_servers']:.2f}), "
            f"{sc['server_seconds']:.1f} server-seconds{rows_tag}")
    if args.json:
        with open(args.json, "w") as f:
            f.write(report.to_json() + "\n")
        out(f"wrote JSON report to {args.json}")
    return 0


COMMANDS = {
    "info": cmd_info,
    "train": cmd_train,
    "eval": cmd_eval,
    "infer": cmd_infer,
    "dse": cmd_dse,
    "trace": cmd_trace,
    "serve-sim": cmd_serve_sim,
}


def main(argv: list[str] | None = None, out=print) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args, out=out)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
