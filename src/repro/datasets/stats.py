"""Stream statistics: the Δt analysis behind Fig. 1 and the LUT calibration.

The time encoder's input is the gap between a vertex's previous interaction
and the current graph signal.  Fig. 1 shows this distribution follows a power
law ("most inputs are close to 0"), which motivates equal-*frequency* (not
equal-width) LUT binning in §III-C.  These helpers compute exactly that
distribution from a stream, build the equal-frequency partition, and quantify
the heavy tail.
"""

from __future__ import annotations

import numpy as np

from ..graph.temporal_graph import TemporalGraph

__all__ = ["encoder_input_deltas", "delta_t_histogram",
           "equal_frequency_edges", "tail_heaviness"]


def encoder_input_deltas(graph: TemporalGraph) -> np.ndarray:
    """All Δt values the time encoder would see over one pass of the stream.

    For each edge, both endpoints observe ``t_e - t_last(v)`` where
    ``t_last`` is the vertex's previous interaction time (0 gap for a
    vertex's first appearance, matching a zero-initialised memory clock).
    """
    last = np.zeros(graph.num_nodes, dtype=np.float64)
    seen = np.zeros(graph.num_nodes, dtype=bool)
    deltas = np.empty(2 * graph.num_edges, dtype=np.float64)
    src, dst, t = graph.src, graph.dst, graph.t
    out = 0
    # Sequential by necessity: each event updates the clocks the next reads.
    for i in range(graph.num_edges):
        for v in (src[i], dst[i]):
            deltas[out] = t[i] - last[v] if seen[v] else 0.0
            last[v] = t[i]
            seen[v] = True
            out += 1
    return deltas


def delta_t_histogram(deltas: np.ndarray, n_bins: int = 50,
                      unit: float = 86_400.0
                      ) -> tuple[np.ndarray, np.ndarray]:
    """Equal-width histogram of Δt in ``unit`` (days by default): Fig. 1.

    Returns ``(bin_edges, counts)`` with edges in the chosen unit.
    """
    days = np.asarray(deltas, dtype=np.float64) / unit
    counts, edges = np.histogram(days, bins=n_bins,
                                 range=(0.0, max(days.max(), 1e-9)))
    return edges, counts


def equal_frequency_edges(deltas: np.ndarray, n_bins: int = 128) -> np.ndarray:
    """Bin edges giving (approximately) equal Δt mass per bin (§III-C).

    Returns ``n_bins + 1`` non-decreasing edges with ``edges[0] = 0`` and
    ``edges[-1] = +inf`` so every future Δt maps to a bin.  Duplicate
    quantiles (heavy mass at tiny Δt) are allowed — those bins simply cover
    zero width, which preserves resolution where the data lives.
    """
    if n_bins <= 0:
        raise ValueError("n_bins must be positive")
    d = np.sort(np.asarray(deltas, dtype=np.float64))
    if len(d) == 0:
        raise ValueError("need at least one delta to calibrate bins")
    qs = np.linspace(0.0, 1.0, n_bins + 1)[1:-1]
    inner = np.quantile(d, qs)
    edges = np.concatenate(([0.0], inner, [np.inf]))
    return np.maximum.accumulate(edges)  # enforce monotonicity exactly


def tail_heaviness(deltas: np.ndarray) -> float:
    """Ratio median/mean of Δt; << 1 indicates the Fig. 1 power-law shape.

    For an exponential distribution this is ln2 ≈ 0.69; heavy-tailed bursty
    streams score far lower.  Used by tests to assert the generators produce
    the right regime.
    """
    d = np.asarray(deltas, dtype=np.float64)
    d = d[d > 0]
    if len(d) == 0:
        return 1.0
    return float(np.median(d) / d.mean())
