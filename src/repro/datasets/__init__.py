"""Synthetic dataset analogues and stream statistics."""

from .registry import DATASETS, load  # noqa: F401
from .stats import (delta_t_histogram, encoder_input_deltas,  # noqa: F401
                    equal_frequency_edges, tail_heaviness)
from .synthetic import (StreamSpec, drifting_hot_set_graph,  # noqa: F401
                        gdelt_like, generate_stream, lastfm_like, mooc_like,
                        reddit_like, wikipedia_like)

__all__ = [
    "StreamSpec", "generate_stream",
    "wikipedia_like", "reddit_like", "gdelt_like",
    "lastfm_like", "mooc_like", "drifting_hot_set_graph",
    "DATASETS", "load",
    "encoder_input_deltas", "delta_t_histogram", "equal_frequency_edges",
    "tail_heaviness",
]
