"""Synthetic dataset analogues and stream statistics."""

from .registry import DATASETS, load  # noqa: F401
from .stats import (delta_t_histogram, encoder_input_deltas,  # noqa: F401
                    equal_frequency_edges, tail_heaviness)
from .synthetic import (StreamSpec, gdelt_like, generate_stream,  # noqa: F401
                        lastfm_like, mooc_like, reddit_like, wikipedia_like)

__all__ = [
    "StreamSpec", "generate_stream",
    "wikipedia_like", "reddit_like", "gdelt_like",
    "lastfm_like", "mooc_like",
    "DATASETS", "load",
    "encoder_input_deltas", "delta_t_histogram", "equal_frequency_edges",
    "tail_heaviness",
]
