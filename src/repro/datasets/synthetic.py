"""Synthetic temporal interaction streams standing in for Wikipedia/Reddit/GDELT.

The paper evaluates on three real streams that we cannot redistribute, so we
generate statistically similar substitutes (documented in DESIGN.md §1):

* **bipartite** user→item interactions (JODIE's Wikipedia/Reddit are user-page
  and user-subreddit streams);
* **heavy-tailed activity**: user event counts and item popularities follow a
  Zipf law, so per-vertex inter-event times Δt follow the power law the paper
  observes in Fig. 1 ("most inputs are close to 0") — the property the LUT
  time encoder's equal-frequency binning exploits;
* **learnable structure**: vertices carry latent communities; users
  re-interact mostly within their community, and features are noisy community
  prototypes.  This gives temporal link prediction real signal, so teacher /
  student AP comparisons (Table II) are meaningful;
* **feature dimensionality matching the paper**: 172-d edge features for the
  Wikipedia/Reddit analogues, 200-d node features (no edge features) for the
  GDELT analogue.

Scale is configurable; defaults are laptop-sized.  All randomness flows from
one seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.temporal_graph import TemporalGraph

__all__ = ["StreamSpec", "generate_stream", "wikipedia_like", "reddit_like",
           "gdelt_like", "drifting_hot_set_graph"]

SECONDS_PER_DAY = 86_400.0


@dataclass(frozen=True)
class StreamSpec:
    """Parameters of a synthetic interaction stream."""

    name: str
    num_users: int
    num_items: int
    num_edges: int
    edge_dim: int               # 0 for node-feature datasets
    node_dim: int               # 0 for edge-feature datasets
    duration_days: float = 30.0
    num_communities: int = 8
    p_in_community: float = 0.85   # chance an event stays in-community
    p_repeat: float = 0.6          # chance a user re-hits a recent item
    user_zipf: float = 1.1         # activity skew (>1 = heavier tail)
    item_zipf: float = 1.05        # popularity skew
    feature_noise: float = 0.6     # std of noise added to prototypes
    seed: int = 0


def _zipf_weights(n: int, exponent: float) -> np.ndarray:
    """Normalised Zipf weights ``rank^-exponent`` over ``n`` entities."""
    ranks = np.arange(1, n + 1, dtype=np.float64)
    w = ranks ** (-exponent)
    return w / w.sum()


def generate_stream(spec: StreamSpec,
                    rng: np.random.Generator | None = None) -> TemporalGraph:
    """Sample a chronological bipartite interaction stream from ``spec``.

    Vertex id layout: users are ``[0, num_users)``, items are
    ``[num_users, num_users + num_items)``.

    ``rng`` lets a caller thread one generator through a pipeline of
    stochastic stages; the default derives a fresh generator from
    ``spec.seed``, so two calls with the same spec are byte-identical.
    """
    if rng is None:
        rng = np.random.default_rng(spec.seed)
    U, I, E = spec.num_users, spec.num_items, spec.num_edges
    # Every community needs at least one item (see below), so tiny item sets
    # clamp the community count.
    C = max(1, min(spec.num_communities, I))

    user_comm = rng.integers(0, C, size=U)
    item_comm = rng.integers(0, C, size=I)
    # Guarantee every community owns at least one item so in-community picks
    # never fall through to the global distribution by accident.
    item_comm[:C] = np.arange(C)

    # Per-community item pools and popularity weights.
    items_by_comm = [np.nonzero(item_comm == c)[0] for c in range(C)]
    item_pop = _zipf_weights(I, spec.item_zipf)
    pop_by_comm = [item_pop[pool] / item_pop[pool].sum() for pool in items_by_comm]

    # --- who acts, and when ------------------------------------------------
    user_weights = _zipf_weights(U, spec.user_zipf)
    users = rng.choice(U, size=E, p=user_weights)

    # Global arrivals: inhomogeneous Poisson with a daily cycle, which yields
    # the bursty inter-event gaps of real activity streams.  We sample E
    # exponential gaps, modulate them by a diurnal rate, then rescale the
    # total span to `duration_days`.
    gaps = rng.exponential(1.0, size=E)
    phase = np.cumsum(gaps)
    diurnal = 1.0 + 0.8 * np.sin(2.0 * np.pi * phase / (phase[-1] / spec.duration_days))
    gaps = gaps / np.maximum(diurnal, 0.2)
    t = np.cumsum(gaps)
    t *= (spec.duration_days * SECONDS_PER_DAY) / t[-1]

    # --- which item each event touches -------------------------------------
    items = np.empty(E, dtype=np.int64)
    last_item = np.full(U, -1, dtype=np.int64)  # most recent item per user
    repeat_draw = rng.random(E) < spec.p_repeat
    incomm_draw = rng.random(E) < spec.p_in_community
    # Vectorising this loop fully would need per-event categorical draws from
    # varying supports; we instead pre-draw uniforms and index community
    # pools, keeping the Python loop body tiny.
    unif = rng.random(E)
    global_cdf = np.cumsum(item_pop)
    comm_cdfs = [np.cumsum(p) for p in pop_by_comm]
    for i in range(E):
        u = users[i]
        if repeat_draw[i] and last_item[u] >= 0:
            items[i] = last_item[u]
        elif incomm_draw[i]:
            c = user_comm[u]
            pool = items_by_comm[c]
            items[i] = pool[np.searchsorted(comm_cdfs[c], unif[i])]
        else:
            items[i] = np.searchsorted(global_cdf, unif[i])
        last_item[u] = items[i]

    src = users.astype(np.int64)
    dst = (items + U).astype(np.int64)

    # --- features -----------------------------------------------------------
    edge_feat = None
    node_feat = None
    if spec.edge_dim > 0:
        prototypes = rng.normal(0.0, 1.0, size=(C, spec.edge_dim))
        edge_feat = (prototypes[item_comm[items]] +
                     rng.normal(0.0, spec.feature_noise, size=(E, spec.edge_dim)))
    if spec.node_dim > 0:
        prototypes = rng.normal(0.0, 1.0, size=(C, spec.node_dim))
        comm_of_node = np.concatenate([user_comm, item_comm])
        node_feat = (prototypes[comm_of_node] +
                     rng.normal(0.0, spec.feature_noise, size=(U + I, spec.node_dim)))

    return TemporalGraph(src, dst, t, edge_feat=edge_feat, node_feat=node_feat,
                         num_nodes=U + I)


# --------------------------------------------------------------------------- #
# Named dataset analogues.  Dimensions match the paper exactly (Table II input
# dimension columns); node/edge counts are scaled-down defaults.
# --------------------------------------------------------------------------- #

def wikipedia_like(num_edges: int = 6000, seed: int = 0,
                   num_users: int = 800, num_items: int = 120) -> TemporalGraph:
    """Wikipedia analogue: user-page edits, 172-d edge features, ~30 days."""
    return generate_stream(StreamSpec(
        name="wikipedia-like", num_users=num_users, num_items=num_items,
        num_edges=num_edges, edge_dim=172, node_dim=0, duration_days=30.0,
        p_repeat=0.65, seed=seed))


def reddit_like(num_edges: int = 8000, seed: int = 1,
                num_users: int = 1000, num_items: int = 100) -> TemporalGraph:
    """Reddit analogue: user-subreddit posts; denser repeat behaviour."""
    return generate_stream(StreamSpec(
        name="reddit-like", num_users=num_users, num_items=num_items,
        num_edges=num_edges, edge_dim=172, node_dim=0, duration_days=30.0,
        p_repeat=0.75, user_zipf=1.2, seed=seed))


def gdelt_like(num_edges: int = 6000, seed: int = 2,
               num_users: int = 500, num_items: int = 500) -> TemporalGraph:
    """GDELT analogue: entity-entity events, 200-d node features, no edge features."""
    return generate_stream(StreamSpec(
        name="gdelt-like", num_users=num_users, num_items=num_items,
        num_edges=num_edges, edge_dim=0, node_dim=200, duration_days=30.0,
        p_in_community=0.9, p_repeat=0.5, seed=seed))


def lastfm_like(num_edges: int = 6000, seed: int = 3,
                num_users: int = 600, num_items: int = 100) -> TemporalGraph:
    """LastFM analogue (JODIE family): long-horizon user-artist listens.

    No features on either side (the hardest inductive setting: structure and
    timing only), ~4x the time span of the Wikipedia stream and very high
    repeat affinity — users loop over small artist sets.
    """
    return generate_stream(StreamSpec(
        name="lastfm-like", num_users=num_users, num_items=num_items,
        num_edges=num_edges, edge_dim=0, node_dim=0, duration_days=120.0,
        p_repeat=0.85, user_zipf=1.3, seed=seed))


def mooc_like(num_edges: int = 6000, seed: int = 4,
              num_users: int = 700, num_items: int = 50) -> TemporalGraph:
    """MOOC analogue (JODIE family): student-courseware actions.

    Small 4-d edge features (action metadata), short horizon, strong
    diurnal burstiness, low repeat (students progress through items).
    """
    return generate_stream(StreamSpec(
        name="mooc-like", num_users=num_users, num_items=num_items,
        num_edges=num_edges, edge_dim=4, node_dim=0, duration_days=14.0,
        p_repeat=0.3, p_in_community=0.8, seed=seed))


def drifting_hot_set_graph(num_edges: int, shards: int,
                           num_nodes: int = 256, phases: int = 4,
                           hot_frac: float = 0.85, hot_size: int = 12,
                           seed: int = 11) -> TemporalGraph:
    """A hot set that *rotates between shards* mid-stream.

    Each phase (raw span 1e4 s) concentrates ``hot_frac`` of its edges on
    ``hot_size`` vertices that all hash to one shard (the serving layer's
    static multiplicative-hash partition), and the hot shard advances
    every phase — the adversarial case for any static partition: under
    hash one shard melts per phase while its neighbors idle, yet the
    *aggregate* per-shard heat is symmetric, so a profile of the whole run
    (a two-pass rebalancer's input) sees nothing to fix.  Only a policy
    that reacts inside a phase can help; the online-rebalancing bench and
    invariant tests both replay this workload.
    """
    # The bucketing deliberately mirrors the serving partition; imported
    # lazily so the dataset layer stays import-light.
    from ..serving.placement import hash_assignment
    rng = np.random.default_rng(seed)
    buckets = [np.flatnonzero(hash_assignment(num_nodes, shards) == s)
               for s in range(shards)]
    hot_sets = [b[:hot_size] for b in buckets]
    if any(len(h) < hot_size for h in hot_sets):
        raise ValueError("num_nodes too small for hot_size per shard")
    src = np.empty(num_edges, dtype=np.int64)
    dst = np.empty(num_edges, dtype=np.int64)
    t = np.empty(num_edges)
    per_phase = num_edges // phases
    phase_span = 1e4
    for p in range(phases):
        lo = p * per_phase
        hi = (p + 1) * per_phase if p < phases - 1 else num_edges
        n = hi - lo
        hs = hot_sets[p % shards]
        hot = rng.random(n) < hot_frac
        src[lo:hi] = np.where(hot, hs[rng.integers(0, hot_size, n)],
                              rng.integers(0, num_nodes, n))
        dst[lo:hi] = np.where(hot, hs[rng.integers(0, hot_size, n)],
                              rng.integers(0, num_nodes, n))
        t[lo:hi] = np.sort(rng.uniform(p * phase_span, (p + 1) * phase_span,
                                       n))
    same = dst == src
    dst[same] = (dst[same] + 1) % num_nodes
    return TemporalGraph(src=src, dst=dst, t=t, num_nodes=num_nodes)
