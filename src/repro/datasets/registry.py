"""Name-keyed access to the dataset analogues used across benches and tests."""

from __future__ import annotations

from typing import Callable

from ..graph.temporal_graph import TemporalGraph
from .synthetic import (gdelt_like, lastfm_like, mooc_like, reddit_like,
                        wikipedia_like)

__all__ = ["DATASETS", "load"]

DATASETS: dict[str, Callable[..., TemporalGraph]] = {
    "wikipedia": wikipedia_like,
    "reddit": reddit_like,
    "gdelt": gdelt_like,
    "lastfm": lastfm_like,
    "mooc": mooc_like,
}


def load(name: str, **kwargs) -> TemporalGraph:
    """Instantiate a dataset analogue by paper name ('wikipedia', 'reddit', 'gdelt')."""
    try:
        factory = DATASETS[name.lower()]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; "
                       f"available: {sorted(DATASETS)}") from None
    return factory(**kwargs)
