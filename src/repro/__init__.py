"""repro — reproduction of "Model-Architecture Co-Design for High Performance
Temporal GNN Inference on FPGA" (IPDPS 2022).

Subpackages
-----------
``autograd``   NumPy reverse-mode autodiff (training substrate).
``graph``      Temporal-graph storage: streams, neighbor FIFO, vertex state.
``datasets``   Synthetic Wikipedia/Reddit/GDELT analogues + Δt statistics.
``models``     TGN-attn, simplified co-designed variants, APAN baseline.
``training``   Self-supervised link prediction + knowledge distillation.
``profiling``  Closed-form MAC/MEM accounting (Tables I-II).
``hw``         Cycle-approximate FPGA accelerator simulator + resources.
``perf``       Analytical performance model (§V) and GPP cost models.
``pipeline``   Streaming inference engines (batch and real-time windows).
"""

__version__ = "1.0.0"
