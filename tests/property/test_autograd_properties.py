"""Property-based validation of the autograd engine with hypothesis."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.autograd import Tensor, check_gradients
from repro.autograd import functional as F

settings.register_profile("repro", deadline=None, max_examples=40)
settings.load_profile("repro")

floats = hnp.from_dtype(np.dtype(np.float64), min_value=-3.0, max_value=3.0,
                        allow_nan=False, allow_infinity=False)


def arrays(shape):
    return hnp.arrays(np.float64, shape, elements=floats)


@st.composite
def matmul_pair(draw):
    m = draw(st.integers(1, 4))
    k = draw(st.integers(1, 4))
    n = draw(st.integers(1, 4))
    a = draw(arrays((m, k)))
    b = draw(arrays((k, n)))
    return a, b


class TestGradientProperties:
    @given(matmul_pair())
    def test_matmul_gradcheck(self, pair):
        a, b = pair
        ta = Tensor(a, requires_grad=True)
        tb = Tensor(b, requires_grad=True)
        check_gradients(lambda x, y: (x @ y).sum(), [ta, tb],
                        atol=1e-4, rtol=1e-3)

    @given(arrays((3, 4)))
    def test_tanh_sigmoid_chain_gradcheck(self, x):
        t = Tensor(x, requires_grad=True)
        check_gradients(lambda z: (z.tanh().sigmoid() * z).sum(), [t],
                        atol=1e-4, rtol=1e-3)

    @given(arrays((2, 5)), arrays((5,)))
    def test_broadcast_add_mul_gradcheck(self, a, b):
        ta = Tensor(a, requires_grad=True)
        tb = Tensor(b, requires_grad=True)
        check_gradients(lambda x, y: ((x + y) * y).sum(), [ta, tb],
                        atol=1e-4, rtol=1e-3)

    @given(arrays((4, 3)))
    def test_softmax_rows_form_distribution(self, x):
        s = F.softmax(Tensor(x), axis=-1).data
        assert np.all(s >= 0)
        assert np.allclose(s.sum(axis=-1), 1.0)

    @given(arrays((4, 3)), st.floats(1.0, 50.0))
    def test_softmax_shift_invariance(self, x, shift):
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + shift)).data
        assert np.allclose(a, b, atol=1e-10)

    @given(arrays((3, 4)),
           hnp.arrays(np.bool_, (3, 4), elements=st.booleans()))
    def test_masked_softmax_respects_mask(self, x, mask):
        s = F.masked_softmax(Tensor(x), mask).data
        assert np.all(s[~mask] == 0.0)
        assert np.all(np.isfinite(s))
        rows = mask.any(axis=1)
        assert np.allclose(s[rows].sum(axis=1), 1.0)
        assert np.allclose(s[~rows], 0.0)

    @given(arrays((6,)),
           hnp.arrays(np.float64, (6,),
                      elements=st.sampled_from([0.0, 1.0])))
    def test_bce_nonnegative_and_grad_bounded(self, logits, targets):
        t = Tensor(logits, requires_grad=True)
        loss = F.bce_with_logits(t, targets)
        assert loss.item() >= 0.0
        loss.backward()
        # d/dx BCE = (sigmoid(x) - t) / n: bounded by 1/n.
        assert np.all(np.abs(t.grad) <= 1.0 / 6 + 1e-9)

    @given(arrays((5, 4)))
    def test_sum_then_backward_is_ones(self, x):
        t = Tensor(x, requires_grad=True)
        t.sum().backward()
        assert np.allclose(t.grad, 1.0)

    @given(arrays((4, 4)))
    def test_double_backward_accumulates(self, x):
        t = Tensor(x, requires_grad=True)
        (t * 2.0).sum().backward()
        g1 = t.grad.copy()
        (t * 2.0).sum().backward()
        assert np.allclose(t.grad, 2 * g1)
