"""Property-based invariants of the graph substrate and hardware Updater.

These are the correctness properties DESIGN.md §5 commits to:

* the neighbor table always holds exactly the ``min(history, mr)`` most
  recent interactions, timestamp-sorted;
* the Updater's surviving writes equal the last-write-wins oracle whenever
  its invalidation window covers the batch;
* the mailbox implements the Most-Recent aggregator.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import NeighborTable, VertexState
from repro.hw import UpdaterCache

settings.register_profile("repro", deadline=None, max_examples=50)
settings.load_profile("repro")

N_NODES = 8


@st.composite
def edge_stream(draw, max_edges=30):
    n = draw(st.integers(1, max_edges))
    src = draw(st.lists(st.integers(0, N_NODES - 1), min_size=n, max_size=n))
    dst = draw(st.lists(st.integers(0, N_NODES - 1), min_size=n, max_size=n))
    gaps = draw(st.lists(st.floats(0.0, 10.0), min_size=n, max_size=n))
    t = np.cumsum(np.asarray(gaps)) + 1.0
    return (np.asarray(src, dtype=np.int64), np.asarray(dst, dtype=np.int64),
            np.arange(n, dtype=np.int64), t)


class TestNeighborTableInvariant:
    @given(edge_stream(), st.integers(1, 5), st.integers(1, 6))
    def test_matches_oracle(self, stream, mr, n_batches):
        src, dst, eid, t = stream
        table = NeighborTable(N_NODES, mr=mr)
        # Insert in arbitrary batch partitions (stream order preserved).
        cuts = np.linspace(0, len(src), n_batches + 1).astype(int)
        for lo, hi in zip(cuts[:-1], cuts[1:]):
            table.insert_edges(src[lo:hi], dst[lo:hi], eid[lo:hi], t[lo:hi])
        # Oracle: per-vertex full history, most recent mr, in stream order.
        hist = {v: [] for v in range(N_NODES)}
        for s, d, e, ts in zip(src, dst, eid, t):
            hist[s].append((d, e, ts))
            hist[d].append((s, e, ts))
        for v in range(N_NODES):
            g = table.gather(np.array([v]))
            got = list(zip(g.nbrs[0][g.mask[0]], g.eids[0][g.mask[0]],
                           g.times[0][g.mask[0]]))
            expect = hist[v][-mr:]
            assert len(got) == len(expect), v
            # Same multiset and same chronological order of timestamps.
            assert [x[2] for x in got] == [x[2] for x in expect]
            assert sorted((x[0], x[1]) for x in got) \
                == sorted((x[0], x[1]) for x in expect)

    @given(edge_stream(), st.integers(1, 5))
    def test_gather_times_sorted_and_mask_prefix(self, stream, mr):
        src, dst, eid, t = stream
        table = NeighborTable(N_NODES, mr=mr)
        table.insert_edges(src, dst, eid, t)
        g = table.gather(np.arange(N_NODES))
        for row in range(N_NODES):
            valid = g.mask[row]
            # Valid entries form a prefix.
            if valid.any():
                first_invalid = np.argmin(valid) if not valid.all() else mr
                assert valid[:first_invalid].all()
                assert not valid[first_invalid:].any()
            times = g.times[row][valid]
            assert np.all(np.diff(times) >= 0)


class TestUpdaterOracle:
    @given(st.lists(st.integers(0, 9), min_size=1, max_size=60),
           st.integers(1, 4))
    def test_survivors_equal_last_write_when_window_covers(self, ids, scan):
        ids = np.asarray(ids, dtype=np.int64)
        u = UpdaterCache(lines=len(ids) + 1, scan_width=scan)
        r = u.process(ids)
        oracle = sorted({v: i for i, v in enumerate(ids)}.values())
        assert np.array_equal(r.survivors, oracle)
        assert r.committed + r.invalidated == len(ids)

    @given(st.lists(st.integers(0, 3), min_size=1, max_size=60),
           st.integers(2, 8), st.integers(1, 4))
    def test_committed_set_always_includes_final_value(self, ids, lines, scan):
        """Whatever the window, each vertex's LAST write always survives."""
        ids = np.asarray(ids, dtype=np.int64)
        r = UpdaterCache(lines=lines, scan_width=scan).process(ids)
        last_idx = {v: i for i, v in enumerate(ids)}
        assert set(last_idx.values()) <= set(r.survivors.tolist())

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=50))
    def test_timing_bounds(self, ids):
        ids = np.asarray(ids, dtype=np.int64)
        r = UpdaterCache(lines=8, scan_width=3).process(ids)
        assert len(ids) <= r.cycles <= 3 * len(ids) + 8


class TestMailboxMostRecent:
    @given(st.lists(st.tuples(st.integers(0, 4), st.floats(0, 100)),
                    min_size=1, max_size=40))
    def test_mailbox_keeps_latest_write_per_vertex(self, writes):
        state = VertexState(5, memory_dim=2, raw_message_dim=3)
        latest = {}
        for i, (v, _t) in enumerate(writes):
            latest[v] = i
        vs = np.array([w[0] for w in writes])
        ts = np.array([w[1] for w in writes])
        msgs = np.arange(len(writes), dtype=float)[:, None] * np.ones(3)
        state.write_mail(vs, msgs, ts)
        for v, idx in latest.items():
            assert np.allclose(state.mailbox[v], msgs[idx])
            assert state.mail_time[v] == ts[idx]
