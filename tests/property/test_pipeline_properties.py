"""Property-based invariants of the queueing replay and batching."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import TemporalGraph, iter_fixed_size, iter_time_windows
from repro.pipeline import replay_under_load

settings.register_profile("repro", deadline=None, max_examples=30)
settings.load_profile("repro")


@st.composite
def stream(draw):
    n = draw(st.integers(5, 60))
    gaps = draw(st.lists(st.floats(0.1, 500.0), min_size=n, max_size=n))
    t = np.cumsum(gaps)
    src = draw(st.lists(st.integers(0, 5), min_size=n, max_size=n))
    dst = draw(st.lists(st.integers(6, 9), min_size=n, max_size=n))
    return TemporalGraph(src, dst, t)


class ConstBackend:
    def __init__(self, service_s: float):
        self.service_s = service_s

    def process_batch(self, batch) -> float:
        return self.service_s


class TestQueueingProperties:
    @given(stream(), st.floats(1e-4, 0.5), st.floats(1.0, 100.0))
    def test_response_at_least_service(self, g, service, speedup):
        stats = replay_under_load(ConstBackend(service), g,
                                  window_s=600.0, speedup=speedup)
        assert stats.mean_response_s >= service - 1e-12
        assert stats.mean_response_s >= stats.mean_wait_s
        assert stats.windows >= 1

    @given(stream(), st.floats(0.01, 0.2))
    def test_more_load_never_reduces_waiting(self, g, service):
        lo = replay_under_load(ConstBackend(service), g, window_s=600.0,
                               speedup=1.0)
        hi = replay_under_load(ConstBackend(service), g, window_s=600.0,
                               speedup=1000.0)
        assert hi.utilization >= lo.utilization - 1e-9
        assert hi.mean_wait_s >= lo.mean_wait_s - 1e-9

    @given(stream(), st.integers(1, 10))
    def test_windows_and_fixed_batches_cover_same_edges(self, g, size):
        from_windows = sum(len(b) for b in iter_time_windows(g, 600.0))
        from_fixed = sum(len(b) for b in iter_fixed_size(g, size))
        assert from_windows == from_fixed == g.num_edges
