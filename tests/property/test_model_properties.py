"""Property-based invariants of model components: LUT binning, pruning,
attention masking, op-counter monotonicity, performance-model monotonicity."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.datasets import equal_frequency_edges
from repro.hw import ZCU104_DESIGN
from repro.models import ModelConfig, top_k_mask
from repro.models.time_encoding import LUTTimeEncoder
from repro.perf import PerformanceModel
from repro.profiling import Convention, count_ops
from repro.training import average_precision, roc_auc

settings.register_profile("repro", deadline=None, max_examples=40)
settings.load_profile("repro")


class TestLUTBinning:
    @given(st.lists(st.floats(0.0, 1e6), min_size=8, max_size=400),
           st.integers(2, 32))
    def test_partition_covers_all_inputs(self, deltas, bins):
        deltas = np.asarray(deltas)
        edges = equal_frequency_edges(deltas, n_bins=bins)
        assert len(edges) == bins + 1
        assert np.all(np.diff(edges) >= 0)
        idx = np.searchsorted(edges, deltas, side="right") - 1
        assert np.all((idx >= 0) & (idx <= bins - 1) | (idx == bins - 1))

    @given(st.lists(st.floats(0.0, 1e5), min_size=50, max_size=300))
    def test_bin_index_monotone_in_dt(self, deltas):
        deltas = np.asarray(deltas)
        enc = LUTTimeEncoder(time_dim=3, n_bins=8)
        enc.calibrate(deltas)
        probe = np.sort(np.concatenate([deltas, [0.0, 1e9]]))
        idx = enc.bin_index(probe)
        assert np.all(np.diff(idx) >= 0)

    @given(st.lists(st.floats(0.1, 1e5), min_size=100, max_size=300),
           st.integers(2, 8))
    def test_premultiply_commutes_with_lookup(self, deltas, out_dim):
        deltas = np.asarray(deltas)
        enc = LUTTimeEncoder(time_dim=4, n_bins=8,
                             rng=np.random.default_rng(0))
        enc.calibrate(deltas)
        w = np.random.default_rng(1).normal(size=(out_dim, 4))
        lut = enc.premultiply(w)
        probe = deltas[:20]
        assert np.allclose(lut[enc.bin_index(probe)],
                           enc.encode_numpy(probe) @ w.T, atol=1e-10)


class TestPruningProperties:
    @given(hnp.arrays(np.float64, (5, 8),
                      elements=hnp.from_dtype(np.dtype(np.float64),
                                              min_value=-10, max_value=10,
                                              allow_nan=False,
                                              allow_infinity=False)),
           hnp.arrays(np.bool_, (5, 8), elements=st.booleans()),
           st.integers(1, 8))
    def test_selection_properties(self, logits, mask, budget):
        keep = top_k_mask(logits, mask, budget)
        # Subset of valid; at most budget per row; exactly min(budget, valid).
        assert np.all(keep <= mask)
        assert np.all(keep.sum(axis=1) == np.minimum(budget, mask.sum(axis=1)))
        # Every kept logit >= every dropped valid logit (per row).
        for r in range(5):
            kept = logits[r][keep[r]]
            dropped = logits[r][mask[r] & ~keep[r]]
            if len(kept) and len(dropped):
                assert kept.min() >= dropped.max() - 1e-9


class TestOpCounterProperties:
    @given(st.integers(1, 10), st.booleans(), st.booleans())
    def test_pruning_monotone(self, budget, lut, full_conv):
        conv = Convention.FULL if full_conv else Convention.PAPER
        cfg = ModelConfig(simplified_attention=True, lut_time_encoder=lut)
        base = count_ops(cfg, conv)
        pruned = count_ops(cfg.with_(pruning_budget=budget), conv)
        assert pruned.total_macs <= base.total_macs + 1e-9
        assert pruned.total_mems <= base.total_mems + 1e-9

    @given(st.integers(8, 256), st.integers(8, 256))
    def test_counts_scale_with_dims(self, mem, emb):
        small = count_ops(ModelConfig(memory_dim=mem, embed_dim=emb))
        bigger = count_ops(ModelConfig(memory_dim=mem + 8, embed_dim=emb + 8))
        assert bigger.total_macs > small.total_macs

    @given(st.booleans())
    def test_every_optimization_strictly_helps(self, full_conv):
        conv = Convention.FULL if full_conv else Convention.PAPER
        base = count_ops(ModelConfig(), conv).total_macs
        sat = count_ops(ModelConfig(simplified_attention=True), conv).total_macs
        lut = count_ops(ModelConfig(simplified_attention=True,
                                    lut_time_encoder=True), conv).total_macs
        np2 = count_ops(ModelConfig(simplified_attention=True,
                                    lut_time_encoder=True, pruning_budget=2),
                        conv).total_macs
        assert base > sat > lut > np2


class TestPerfModelProperties:
    @given(st.integers(1, 64), st.integers(1, 8))
    def test_latency_positive_and_monotone_in_batches(self, nb_scale, n_pb):
        hw = ZCU104_DESIGN.with_(nb=4 * nb_scale)
        cfg = ModelConfig(simplified_attention=True)
        pm = PerformanceModel(cfg, hw)
        n1 = hw.nb * n_pb
        l1 = pm.predict(n1).latency_s
        l2 = pm.predict(n1 + hw.nb).latency_s
        assert 0 < l1 < l2

    @given(st.sampled_from([2, 4, 8, 16]))
    def test_more_parallelism_not_slower(self, sg):
        cfg = ModelConfig(simplified_attention=True)
        slow = PerformanceModel(cfg, ZCU104_DESIGN.with_(sg=sg))
        fast = PerformanceModel(cfg, ZCU104_DESIGN.with_(sg=2 * sg))
        assert fast.predict(1000).latency_s <= slow.predict(1000).latency_s


class TestMetricsProperties:
    @given(st.lists(st.tuples(st.booleans(), st.floats(-5, 5)),
                    min_size=2, max_size=60))
    def test_ap_and_auc_in_unit_interval(self, pairs):
        labels = np.array([p[0] for p in pairs], dtype=float)
        scores = np.array([p[1] for p in pairs])
        assume(labels.sum() > 0)
        ap = average_precision(labels, scores)
        auc = roc_auc(labels, scores)
        assert 0.0 <= ap <= 1.0 + 1e-12
        assert 0.0 <= auc <= 1.0 + 1e-12

    @given(st.lists(
        # Coarse score grid: keeps distinct scores distinct under the affine
        # transform (subnormals would collapse into ties and change AP).
        st.tuples(st.booleans(), st.integers(-50, 50).map(lambda i: i / 10.0)),
        min_size=2, max_size=40))
    def test_monotone_transform_invariance(self, pairs):
        labels = np.array([p[0] for p in pairs], dtype=float)
        scores = np.array([p[1] for p in pairs])
        assume(labels.sum() > 0)
        a1 = average_precision(labels, scores)
        a2 = average_precision(labels, 3.0 * scores + 7.0)
        assert abs(a1 - a2) < 1e-12
        u1 = roc_auc(labels, scores)
        u2 = roc_auc(labels, 3.0 * scores + 7.0)
        assert abs(u1 - u2) < 1e-12
