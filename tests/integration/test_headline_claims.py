"""Integration: the paper's §VI headline claims hold in *shape*.

Reproduction targets (DESIGN.md E10):
  * 84 % computation reduction / 67 % memory-access reduction for NP(S);
  * FPGA > GPU > CPU ordering in latency and throughput at deployment batch
    sizes, with U200-vs-GPU and U200-vs-CPU factors in the paper's ballpark;
  * performance-model prediction error in the low-percent range (Fig. 6);
  * distilled students lose only a small amount of AP vs the teacher while
    the measured single-thread throughput improves monotonically along the
    Table II ladder.
"""

import numpy as np
import pytest

from repro.datasets import wikipedia_like
from repro.hw import FPGAAccelerator, U200_DESIGN, ZCU104_DESIGN
from repro.models import ModelConfig, TGNN, variant_ladder
from repro.perf import (CPU_32T, GPU, PerformanceModel,
                        validate_performance_model)
from repro.pipeline import SoftwareBackend, run_engine
from repro.profiling import count_ops
from repro.profiling.paper_reference import HEADLINE


@pytest.fixture(scope="module")
def wiki():
    return wikipedia_like(num_edges=3000, num_users=250, num_items=50)


@pytest.fixture(scope="module")
def np_model(wiki):
    cfg = ModelConfig(simplified_attention=True, lut_time_encoder=True,
                      pruning_budget=4, name="+NP(M)")
    m = TGNN(cfg, rng=np.random.default_rng(0))
    m.calibrate(wiki)
    return m


class TestComplexityClaims:
    def test_84pct_compute_67pct_memory(self):
        base = count_ops(ModelConfig())
        nps = count_ops(ModelConfig(simplified_attention=True,
                                    lut_time_encoder=True, pruning_budget=2))
        mac_red = 1 - nps.total_macs / base.total_macs
        mem_red = 1 - nps.total_mems / base.total_mems
        assert mac_red >= HEADLINE["compute_reduction"] - 0.03
        assert mem_red >= HEADLINE["mem_reduction"] - 0.04


class TestCrossPlatformOrdering:
    def test_fpga_beats_gpu_beats_cpu_latency(self, wiki, np_model):
        batch = 200
        u200 = FPGAAccelerator(np_model, U200_DESIGN)
        lat_fpga = u200.latency_single_batch(wiki, batch, warmup_edges=1000)
        counts_base = count_ops(ModelConfig())
        lat_gpu = GPU.latency_s(counts_base, batch)
        lat_cpu = CPU_32T.latency_s(counts_base, batch)
        assert lat_fpga < lat_gpu < lat_cpu
        # Paper: >= 4.6x vs GPU, >= 13.9x vs CPU with NP models on U200.
        assert lat_gpu / lat_fpga > 2.0
        assert lat_cpu / lat_fpga > 8.0

    def test_zcu104_comparable_to_gpu(self, wiki, np_model):
        """Paper: the embedded board reaches GPU-class latency."""
        batch = 200
        z = FPGAAccelerator(np_model, ZCU104_DESIGN)
        lat_z = z.latency_single_batch(wiki, batch, warmup_edges=1000)
        lat_gpu = GPU.latency_s(count_ops(ModelConfig()), batch)
        assert 0.2 < lat_z / lat_gpu < 5.0

    def test_throughput_ordering_at_large_batch(self, wiki, np_model):
        rep = FPGAAccelerator(np_model, U200_DESIGN).run_stream(
            wiki, 2000, end=2000)
        counts_base = count_ops(ModelConfig())
        thpt_gpu = GPU.throughput_eps(counts_base, 2000)
        thpt_cpu = CPU_32T.throughput_eps(counts_base, 2000)
        assert rep.throughput_eps > thpt_gpu > thpt_cpu

    def test_np_s_latency_under_10ms_on_u200(self, wiki):
        cfg = ModelConfig(simplified_attention=True, lut_time_encoder=True,
                          pruning_budget=2, name="+NP(S)")
        m = TGNN(cfg, rng=np.random.default_rng(0))
        m.calibrate(wiki)
        lat = FPGAAccelerator(m, U200_DESIGN).latency_single_batch(
            wiki, 200, warmup_edges=1000)
        assert lat < HEADLINE["np_s_latency_ms_max"] * 1e-3


class TestPerformanceModelClaim:
    def test_error_in_low_percent_range(self, wiki, np_model):
        pts = validate_performance_model(np_model, U200_DESIGN, wiki,
                                         [200, 500, 1000, 2000])
        mean_err = float(np.mean([p.latency_error for p in pts]))
        # Paper reports 9.9-12.8 %; ours is the same order (refined fill
        # term makes it tighter).
        assert mean_err < 0.15


class TestLadderThroughputMeasured:
    def test_measured_speedup_monotone_along_ladder(self, wiki):
        """Table II single-thread throughput: each optimization helps."""
        base_cfg = ModelConfig(memory_dim=64, time_dim=64, embed_dim=64,
                               edge_dim=172, num_neighbors=10)
        thpts = []
        for cfg in [base_cfg,
                    base_cfg.with_(simplified_attention=True,
                                   lut_time_encoder=True, lut_bins=32,
                                   name="+LUT"),
                    base_cfg.with_(simplified_attention=True,
                                   lut_time_encoder=True, lut_bins=32,
                                   pruning_budget=2, name="+NP(S)")]:
            m = TGNN(cfg, rng=np.random.default_rng(0))
            m.calibrate(wiki)
            be = SoftwareBackend(m, wiki)
            run_engine(be, wiki, 200, end=400)       # warm the caches
            rep = run_engine(be, wiki, 200, start=400, end=2400)
            thpts.append(rep.throughput_eps)
        assert thpts[1] > thpts[0]
        assert thpts[2] > thpts[1]
        # NP(S) headline: >= 2x measured single-thread speedup.
        assert thpts[2] / thpts[0] > 1.5
