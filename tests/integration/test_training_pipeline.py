"""Integration: full teacher -> student distillation pipeline with accuracy
retention, mirroring the Table II AP protocol at test scale."""

import numpy as np
import pytest

from repro.datasets import wikipedia_like
from repro.models import ModelConfig, TGNN
from repro.training import (DistillationConfig, DistillationTrainer,
                            TrainConfig, Trainer)


@pytest.fixture(scope="module")
def setting():
    g = wikipedia_like(num_edges=1500, num_users=150, num_items=30)
    _, (tr, va, te) = g.split(0.70, 0.10)
    cfg = ModelConfig(memory_dim=16, time_dim=12, embed_dim=16, edge_dim=172,
                      num_neighbors=5)
    teacher = TGNN(cfg, rng=np.random.default_rng(0))
    trainer = Trainer(teacher, g, TrainConfig(epochs=4, batch_size=100,
                                              seed=0))
    trainer.train(tr)
    teacher_ap = trainer.evaluate(va, te).ap
    return g, cfg, (tr, va, te), teacher, trainer, teacher_ap


class TestTeacher:
    def test_teacher_learns(self, setting):
        *_, trainer, teacher_ap = setting
        assert teacher_ap > 0.60
        assert trainer.history[-1]["loss"] < trainer.history[0]["loss"]


class TestDistilledStudents:
    def test_student_retains_accuracy(self, setting):
        g, cfg, (tr, va, te), teacher, _, teacher_ap = setting
        scfg = cfg.with_(simplified_attention=True, lut_time_encoder=True,
                         lut_bins=32, name="+LUT")
        student = TGNN(scfg, rng=np.random.default_rng(1))
        student.calibrate(g)
        dt = DistillationTrainer(teacher, student, g,
                                 DistillationConfig(epochs=4, batch_size=100,
                                                    seed=0))
        dt.train(tr)
        ap = dt.as_trainer().evaluate(va, te).ap
        # Shape target: small AP loss (paper: <= 0.0033 absolute at full
        # scale; at toy scale we allow a looser but still tight band).
        assert ap > teacher_ap - 0.08
        assert ap > 0.55

    def test_pruned_student_still_accurate(self, setting):
        g, cfg, (tr, va, te), teacher, _, teacher_ap = setting
        scfg = cfg.with_(simplified_attention=True, lut_time_encoder=True,
                         lut_bins=32, pruning_budget=2, name="+NP(S)")
        student = TGNN(scfg, rng=np.random.default_rng(2))
        student.calibrate(g)
        dt = DistillationTrainer(teacher, student, g,
                                 DistillationConfig(epochs=4, batch_size=100,
                                                    seed=0))
        hist = dt.train(tr)
        ap = dt.as_trainer().evaluate(va, te).ap
        assert ap > teacher_ap - 0.10
        assert hist[-1]["top1_agreement"] >= hist[0]["top1_agreement"]

    def test_distillation_beats_self_supervision_only_on_agreement(self, setting):
        g, cfg, (tr, va, te), teacher, _, _ = setting
        scfg = cfg.with_(simplified_attention=True, name="+SAT")

        def agreement_after(kd_weight):
            student = TGNN(scfg, rng=np.random.default_rng(3))
            dt = DistillationTrainer(
                teacher, student, g,
                DistillationConfig(epochs=2, batch_size=100, seed=3,
                                   kd_weight=kd_weight))
            return dt.train(tr)[-1]["top1_agreement"]

        assert agreement_after(4.0) > agreement_after(0.0)
