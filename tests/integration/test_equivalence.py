"""Integration: the three execution paths produce identical embeddings.

Software training path (autograd) == software deployment path (NumPy) ==
hardware simulator (functional), streamed over many batches with evolving
state.  This is the load-bearing guarantee that the performance numbers the
simulator produces describe the *same* computation the accuracy numbers are
measured on.
"""

import numpy as np
import pytest

from repro.autograd import no_grad
from repro.datasets import gdelt_like, wikipedia_like
from repro.graph import iter_fixed_size
from repro.hw import FPGAAccelerator, ZCU104_DESIGN
from repro.models import ModelConfig, TGNN


def ladder_configs():
    base = ModelConfig(memory_dim=10, time_dim=8, embed_dim=10, edge_dim=172,
                       num_neighbors=5)
    sat = base.with_(simplified_attention=True, name="sat")
    lut = sat.with_(lut_time_encoder=True, lut_bins=16, name="lut")
    return [base, sat, lut, lut.with_(pruning_budget=2, name="np")]


@pytest.mark.parametrize("cfg", ladder_configs(), ids=lambda c: c.name)
def test_training_and_deployment_paths_agree_over_stream(cfg):
    g = wikipedia_like(num_edges=400, num_users=60, num_items=15)
    model = TGNN(cfg, rng=np.random.default_rng(0))
    model.calibrate(g)
    rt_a = model.new_runtime(g)
    with no_grad():
        ref = [model.process_batch(b, rt_a, g).embeddings.data
               for b in iter_fixed_size(g, 64)]
    model.prepare_inference()
    rt_b = model.new_runtime(g)
    got = [model.infer_batch(b, rt_b, g).embeddings.data
           for b in iter_fixed_size(g, 64)]
    for i, (a, b) in enumerate(zip(ref, got)):
        assert np.allclose(a, b, atol=1e-9), f"batch {i}"
    # Terminal state must agree too (memory, mailbox, neighbor table).
    assert np.allclose(rt_a.state.memory, rt_b.state.memory, atol=1e-9)
    assert np.allclose(rt_a.state.mailbox, rt_b.state.mailbox, atol=1e-9)
    assert np.array_equal(rt_a.sampler.table._nbrs, rt_b.sampler.table._nbrs)


def test_simulator_matches_software_on_gdelt_features():
    g = gdelt_like(num_edges=300, num_users=40, num_items=40)
    cfg = ModelConfig(memory_dim=10, time_dim=8, embed_dim=10, edge_dim=0,
                      node_dim=200, num_neighbors=4,
                      simplified_attention=True, lut_time_encoder=True,
                      lut_bins=8, pruning_budget=2)
    model = TGNN(cfg, rng=np.random.default_rng(1))
    model.calibrate(g)
    acc = FPGAAccelerator(model, ZCU104_DESIGN)
    report = acc.run_stream(g, batch_size=100, collect_embeddings=True)
    # Rebuild the stream on the software path with identical sub-batching.
    sw = TGNN(cfg, rng=np.random.default_rng(1))
    sw.calibrate(g)
    sw.load_state_dict(model.state_dict())
    sw.prepare_inference()
    rt = sw.new_runtime(g)
    idx = 0
    for batch in iter_fixed_size(g, 100):
        for lo in range(0, len(batch), acc.hw.nb):
            from repro.hw.accelerator import _slice_batch
            sub = _slice_batch(batch, lo, min(lo + acc.hw.nb, len(batch)))
            emb = sw.infer_batch(sub, rt, g).embeddings.data
            assert np.array_equal(emb, report.embeddings[idx]), idx
            idx += 1


def test_batch_size_does_not_change_per_batch_results_much():
    """Within-batch dependency relaxation: different batch sizes change
    results (documented TGN behaviour) but state stays consistent: the same
    total set of vertices ends up with mail."""
    g = wikipedia_like(num_edges=300, num_users=50, num_items=12)
    cfg = ladder_configs()[0]
    outs = {}
    for bs in (30, 150):
        model = TGNN(cfg, rng=np.random.default_rng(0))
        rt = model.new_runtime(g)
        with no_grad():
            for b in iter_fixed_size(g, bs):
                model.process_batch(b, rt, g)
        outs[bs] = rt.state.has_mail(np.arange(g.num_nodes))
    assert np.array_equal(outs[30], outs[150])
