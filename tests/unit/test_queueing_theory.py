"""Statistical validation of ``simulate_queue`` against queueing theory.

The serving benchmarks size fleets from the simulator's wait/response
numbers, so the simulator itself must be trusted against something
*external* to the code: the closed-form M/M/1 and M/M/c (Erlang-C) results.
With seeded Poisson arrivals and exponential service the event-driven
simulation must land on the analytic mean waits within sampling tolerance —
a test that catches wrong utilization denominators, off-by-one admissions,
or non-FIFO dispatch that shape-style unit tests cannot see.

The large-sample distributional checks are marked ``tier2`` (run with
``pytest -m tier2``); the cheap order/boundary invariants run in tier-1.
"""

import numpy as np
import pytest

from repro.serving import simulate_queue

# --------------------------------------------------------------------------- #
# Closed forms


def mm1_mean_wait(lam: float, mu: float) -> float:
    """M/M/1 mean time in queue (excluding service): Wq = rho / (mu - lam)."""
    rho = lam / mu
    assert rho < 1
    return rho / (mu - lam)


def erlang_c(c: int, a: float) -> float:
    """P(wait > 0) for M/M/c offered load ``a = lam / mu`` erlangs."""
    rho = a / c
    assert rho < 1
    inv_pw = 0.0
    term = 1.0                      # a^k / k!
    for k in range(c):
        inv_pw += term
        term *= a / (k + 1)
    top = term / (1.0 - rho)        # a^c / c! / (1 - rho)
    return top / (inv_pw + top)


def mmc_mean_wait(lam: float, mu: float, c: int) -> float:
    """M/M/c mean time in queue: Wq = ErlangC / (c*mu - lam)."""
    return erlang_c(c, lam / mu) / (c * mu - lam)


def kingman_ggc_mean_wait(lam: float, mu: float, c: int,
                          ca2: float, cs2: float) -> float:
    """Kingman / Allen-Cunneen G/G/c approximation.

    ``Wq ~= (ca2 + cs2) / 2 * Wq_M/M/c`` — the squared coefficients of
    variation of interarrival (``ca2``) and service (``cs2``) times scale
    the Markovian wait.  Exact for M/M/c (both 1) and M/D/1 (the
    Pollaczek-Khinchine halving); an approximation elsewhere.
    """
    return (ca2 + cs2) / 2 * mmc_mean_wait(lam, mu, c)


def klb_gg1_mean_wait(lam: float, mu: float,
                      ca2: float, cs2: float) -> float:
    """Kraemer & Langenbach-Belz refinement of Kingman for G/G/1.

    For smoother-than-Poisson arrivals (``ca2 < 1``) the plain Kingman
    bound overestimates; the KLB exponential correction tightens it.
    """
    rho = lam / mu
    w = kingman_ggc_mean_wait(lam, mu, 1, ca2, cs2)
    if ca2 < 1.0:
        w *= np.exp(-2 * (1 - rho) * (1 - ca2) ** 2
                    / (3 * rho * (ca2 + cs2)))
    return w


def poisson_arrivals(rng, lam: float, n: int):
    t = np.cumsum(rng.exponential(1.0 / lam, size=n))
    return [(float(ti), i) for i, ti in enumerate(t)]


# --------------------------------------------------------------------------- #
# Tier-2: distributional agreement with the closed forms


@pytest.mark.tier2
@pytest.mark.parametrize("rho", [0.5, 0.7, 0.85])
def test_mm1_mean_wait_matches_closed_form(rho):
    """Seeded M/M/1 replicates Wq = rho/(mu - lam) within tolerance."""
    mu, n = 1.0, 60_000
    lam = rho * mu
    rng = np.random.default_rng(12345)
    arrivals = poisson_arrivals(rng, lam, n)
    service = rng.exponential(1.0 / mu, size=n)
    res = simulate_queue(arrivals, lambda i: float(service[i]))
    want = mm1_mean_wait(lam, mu)
    # Queue waits are autocorrelated, so the sample mean converges slowly;
    # 60k jobs at these loads sit comfortably inside 10 %.
    assert res.mean_wait_s == pytest.approx(want, rel=0.10)
    assert res.offered_load == pytest.approx(rho, rel=0.05)
    assert res.stable


@pytest.mark.tier2
@pytest.mark.parametrize("c,rho", [(2, 0.7), (4, 0.8)])
def test_mmc_mean_wait_matches_erlang_c(c, rho):
    """Seeded M/M/c replicates the Erlang-C mean wait within tolerance."""
    mu, n = 1.0, 60_000
    lam = rho * c * mu
    rng = np.random.default_rng(98765)
    arrivals = poisson_arrivals(rng, lam, n)
    service = rng.exponential(1.0 / mu, size=n)
    res = simulate_queue(arrivals, lambda i: float(service[i]),
                         num_servers=c)
    want = mmc_mean_wait(lam, mu, c)
    assert res.mean_wait_s == pytest.approx(want, rel=0.12)
    assert res.offered_load == pytest.approx(rho, rel=0.05)
    # Mean response = mean wait + mean service.
    assert res.mean_response_s == pytest.approx(res.mean_wait_s + 1.0 / mu,
                                                rel=0.05)


@pytest.mark.tier2
def test_pooling_beats_partitioning_in_wait():
    """The M/M/c shared queue waits less than c independent M/M/1 queues at
    the same per-server load — the queueing-theory fact behind the serving
    engine's pool topology."""
    c, rho, mu = 4, 0.8, 1.0
    assert mmc_mean_wait(rho * c * mu, mu, c) < mm1_mean_wait(rho * mu, mu)
    # And the simulator reproduces the ordering, not just the formulas.
    n = 40_000
    rng = np.random.default_rng(7)
    service = rng.exponential(1.0 / mu, size=n)
    pooled = simulate_queue(poisson_arrivals(rng, rho * c * mu, n),
                            lambda i: float(service[i]), num_servers=c)
    single = simulate_queue(poisson_arrivals(rng, rho * mu, n),
                            lambda i: float(service[i]))
    assert pooled.mean_wait_s < single.mean_wait_s


@pytest.mark.tier2
@pytest.mark.parametrize("c,rho", [(1, 0.7), (1, 0.85), (2, 0.85),
                                   (4, 0.85)])
def test_kingman_mdc_deterministic_service(c, rho):
    """M/D/c: Poisson arrivals, *deterministic* service — the Kingman /
    Allen-Cunneen G/G/c approximation (cs2 = 0 halves the M/M/c wait)
    lands within a few percent, and exactly at c=1 (Pollaczek-Khinchine).

    This pins the event core on a service-time distribution that is not
    exponential — the shape measured backends actually produce — where the
    M/M/c tests alone would not notice a variance-handling bug.
    """
    mu, n = 1.0, 60_000
    lam = rho * c * mu
    rng = np.random.default_rng(31337)
    arrivals = poisson_arrivals(rng, lam, n)
    res = simulate_queue(arrivals, lambda _i: 1.0 / mu, num_servers=c)
    want = kingman_ggc_mean_wait(lam, mu, c, ca2=1.0, cs2=0.0)
    assert res.mean_wait_s == pytest.approx(want, rel=0.08)
    assert res.offered_load == pytest.approx(rho, rel=0.05)
    # Deterministic service really does halve the exponential-service wait.
    assert res.mean_wait_s < mmc_mean_wait(lam, mu, c)


@pytest.mark.tier2
@pytest.mark.parametrize("k", [2, 4])
def test_kingman_klb_erlang_arrivals_deterministic_service(k):
    """E_k/D/1: smoother-than-Poisson arrivals (ca2 = 1/k), deterministic
    service — the KLB-corrected Kingman approximation holds within
    sampling+model tolerance.  Both coefficients of variation differ from
    1 here, so this exercises the full G/G shape of the approximation."""
    mu, rho, n = 1.0, 0.8, 60_000
    lam = rho * mu
    rng = np.random.default_rng(2024)
    inter = rng.gamma(k, 1.0 / (k * lam), size=n)
    t = np.cumsum(inter)
    arrivals = [(float(ti), i) for i, ti in enumerate(t)]
    res = simulate_queue(arrivals, lambda _i: 1.0 / mu)
    want = klb_gg1_mean_wait(lam, mu, ca2=1.0 / k, cs2=0.0)
    assert res.mean_wait_s == pytest.approx(want, rel=0.15)
    # Smoother arrivals wait less than Poisson ones (M/D/1).
    assert res.mean_wait_s < kingman_ggc_mean_wait(lam, mu, 1, 1.0, 0.0)


@pytest.mark.tier2
def test_online_rebalancer_is_noop_on_stationary_workload():
    """Under a stationary workload the online rebalancer must not act, so
    every closed-form check above transfers unchanged to rebalancer-enabled
    runs: zero migrations, and the full serving report — every wait,
    utilization, and percentile the M/M/c-validated core produced — is
    bit-identical to the plain engine's at statistical sample size.
    """
    from repro.datasets import wikipedia_like
    from repro.pipeline import LinearCostBackend
    from repro.serving import OnlineRebalancer, ServingEngine

    g = wikipedia_like(num_edges=20_000, num_users=2_000, num_items=300)

    def run(rebalancer):
        engine = ServingEngine(
            [LinearCostBackend(per_edge_s=1e-3) for _ in range(4)],
            g.num_nodes, rebalancer=rebalancer)
        return engine.run(g, window_s=3600.0, speedup=5.0, num_streams=2)

    base = run(None)
    rebalanced = run(OnlineRebalancer(window_s=200.0))
    assert rebalanced.migrations == 0
    assert rebalanced.handoff_rows == 0
    d_base, d_reb = base.to_dict(), rebalanced.to_dict()
    for key in ("rebalance", "migrations", "migrated_vertices",
                "handoff_rows"):
        d_reb.pop(key)
    assert d_reb == d_base


# --------------------------------------------------------------------------- #
# Tier-1: fast invariants on the same machinery


def test_percentiles_are_ordered():
    """p95 <= p99 on any served trace (and both bound the max response)."""
    rng = np.random.default_rng(3)
    for servers in (1, 3):
        arrivals = poisson_arrivals(rng, 0.9 * servers, 2_000)
        service = rng.exponential(1.0, size=2_000)
        res = simulate_queue(arrivals, lambda i: float(service[i]),
                             num_servers=servers)
        responses = res.responses()
        assert res.p95_response_s <= res.p99_response_s <= responses.max()
        assert res.mean_wait_s <= res.mean_response_s


@pytest.mark.parametrize("num_servers", [1, 3])
def test_stability_flag_on_analytic_boundary(num_servers):
    """``stable`` <-> offered load < 1, checked just across the boundary.

    Deterministic arrivals one service-time apart per server put the system
    exactly at capacity; shrinking or stretching the spacing by 2 % must
    flip the flag.
    """
    service_s, n = 1.0, 500
    for factor, expect_stable in ((1.02, True), (0.98, False)):
        spacing = service_s * factor / num_servers
        arrivals = [(i * spacing, None) for i in range(n)]
        res = simulate_queue(arrivals, lambda _: service_s,
                             num_servers=num_servers)
        assert res.stable is expect_stable
        assert (res.offered_load < 1.0) is expect_stable

    # Exactly at capacity the load is 1.0 by construction and the system is
    # *not* called stable (a deployment with zero headroom drifts).
    arrivals = [(i * service_s / num_servers, None) for i in range(n)]
    res = simulate_queue(arrivals, lambda _: service_s,
                         num_servers=num_servers)
    assert res.offered_load == pytest.approx(1.0)
    assert not res.stable


def test_deterministic_queue_wait_formula():
    """D/D/1 overload: wait of job i is exactly i*(service - spacing)."""
    service, spacing, n = 1.0, 0.5, 50
    arrivals = [(i * spacing, None) for i in range(n)]
    res = simulate_queue(arrivals, lambda _: service)
    for i, job in enumerate(res.served):
        assert job.wait_s == pytest.approx(i * (service - spacing))


@pytest.mark.tier2
def test_measured_service_times_match_kingman_gg1():
    """M/G/1 with *measured* kernel service times: the simulated wait
    lands on Kingman/Allen-Cunneen computed from the realized arrival
    rate and the measured mean / cv².

    This closes the loop the modeled tier-2 checks cannot: the service
    process here is real numpy kernel wall-clock (via
    ``MeasuredServerGroup`` on the event scheduler), so the test
    validates that measured durations reconcile into event time as a
    well-formed G/G/1 service process — with Poisson arrivals,
    Pollaczek-Khinchine makes the Kingman form exact in expectation,
    whatever distribution the host's timing noise produces.
    """
    from repro.datasets import wikipedia_like
    from repro.graph import iter_fixed_size
    from repro.models import ModelConfig, TGNN
    from repro.serving import (EventScheduler, MeasuredBackend,
                               MeasuredServerGroup, WorkerPool)
    from repro.serving.events import _ARRIVAL

    cfg = ModelConfig(memory_dim=8, time_dim=6, embed_dim=8, edge_dim=172,
                      num_neighbors=4, simplified_attention=True,
                      lut_time_encoder=True, lut_bins=8, pruning_budget=2)
    g = wikipedia_like(num_edges=600, num_users=80, num_items=20)
    model = TGNN(cfg, rng=np.random.default_rng(0))
    model.calibrate(g)
    model.prepare_inference()
    batches = list(iter_fixed_size(g, 20))

    # Calibration pass (also warms caches): place the target rho ~ 0.6.
    warm = MeasuredBackend(model, g)
    est = float(np.mean([warm.process_batch(b) for b in batches]))

    def attempt(seed):
        n = 6000
        lam = 0.6 / est
        rng = np.random.default_rng(seed)
        t = np.cumsum(rng.exponential(1.0 / lam, size=n))

        sched = EventScheduler()
        group = MeasuredServerGroup(0, 1, MeasuredBackend(model, g),
                                    WorkerPool(0), sched)

        def on_arrival(ev):
            group.submit(ev[0], ev[1])

        for i, ti in enumerate(t):
            sched.schedule(float(ti), _ARRIVAL,
                           (float(ti), batches[i % len(batches)]),
                           on_arrival)
        sched.run()
        res = group.finalize()
        assert res.jobs == n

        measured = np.array([s for s, _ in group.samples])
        # A single OS descheduling stall (one sample ~50x the median)
        # corrupts the whole run: the transient it queues up is exactly
        # what a mean-field formula cannot describe.  Signal a retry
        # rather than testing Kingman against a preempted process.
        if float(measured.max()) > 50 * float(np.median(measured)):
            return None
        mean_s = float(measured.mean())
        cs2 = float(measured.var() / mean_s ** 2)
        lam_hat = (n - 1) / float(t[-1] - t[0])
        assert lam_hat * mean_s < 1.0      # realized load stayed stable
        want = kingman_ggc_mean_wait(lam_hat, 1.0 / mean_s, 1,
                                     ca2=1.0, cs2=cs2)
        return res.mean_wait_s, want

    # Wall-clock service brings sampling noise and host timing drift, so
    # one out-of-band attempt proves nothing — but a real reconciliation
    # bug shifts *every* attempt, so three consistent misses fail.
    clean = []
    for seed in (2022, 2023, 2024):
        got = attempt(seed)
        if got is None:
            continue
        clean.append(got)
        sim, want = got
        if sim == pytest.approx(want, rel=0.40):
            return
    if not clean:
        pytest.skip("host preempted the kernel timing in all attempts")
    sim, want = clean[-1]
    assert sim == pytest.approx(want, rel=0.40)
