"""Unit tests for the most-recent neighbor table (Vertex Neighbor Table)."""

import numpy as np
import pytest

from repro.graph import NeighborTable


def insert_seq(table, edges):
    """Insert a list of (src, dst, eid, t) one batch at a time."""
    for s, d, e, t in edges:
        table.insert_edges(np.array([s]), np.array([d]),
                           np.array([e]), np.array([t]))


class TestBasics:
    def test_empty_gather_is_masked(self):
        t = NeighborTable(5, mr=3)
        g = t.gather(np.array([0, 1]))
        assert not g.mask.any()
        assert g.k == 3

    def test_single_edge_both_directions(self):
        t = NeighborTable(5, mr=3)
        t.insert_edges(np.array([1]), np.array([2]), np.array([0]),
                       np.array([5.0]))
        g = t.gather(np.array([1, 2]))
        assert g.mask[0, 0] and g.nbrs[0, 0] == 2
        assert g.mask[1, 0] and g.nbrs[1, 0] == 1
        assert g.times[0, 0] == 5.0

    def test_most_recent_kept_when_overflowing(self):
        t = NeighborTable(5, mr=2)
        insert_seq(t, [(0, 1, 0, 1.0), (0, 2, 1, 2.0), (0, 3, 2, 3.0)])
        g = t.gather(np.array([0]))
        assert set(g.nbrs[0][g.mask[0]]) == {2, 3}
        assert np.array_equal(g.times[0], [2.0, 3.0])

    def test_gather_sorted_ascending(self):
        t = NeighborTable(5, mr=4)
        insert_seq(t, [(0, 1, 0, 1.0), (0, 2, 1, 5.0), (0, 3, 2, 3.0)])
        # Note: stream order == time order in valid streams; table preserves it.
        g = t.gather(np.array([0]))
        valid_times = g.times[0][g.mask[0]]
        assert np.all(np.diff(valid_times) >= 0)

    def test_gather_k_smaller_than_mr_takes_most_recent(self):
        t = NeighborTable(5, mr=4)
        insert_seq(t, [(0, 1, 0, 1.0), (0, 2, 1, 2.0), (0, 3, 2, 3.0)])
        g = t.gather(np.array([0]), k=2)
        assert np.array_equal(np.sort(g.nbrs[0][g.mask[0]]), [2, 3])

    def test_gather_k_validation(self):
        t = NeighborTable(5, mr=3)
        with pytest.raises(ValueError):
            t.gather(np.array([0]), k=0)
        with pytest.raises(ValueError):
            t.gather(np.array([0]), k=4)

    def test_degree(self):
        t = NeighborTable(5, mr=2)
        insert_seq(t, [(0, 1, 0, 1.0), (0, 2, 1, 2.0), (0, 3, 2, 3.0)])
        assert t.degree(np.array([0]))[0] == 2  # capped at mr
        assert t.degree(np.array([4]))[0] == 0
        assert len(t.degree()) == 5


class TestBatchInsertion:
    def test_batch_equals_sequential(self):
        edges = [(0, 1, 0, 1.0), (2, 0, 1, 2.0), (0, 3, 2, 3.0),
                 (1, 2, 3, 4.0), (0, 2, 4, 5.0)]
        seq = NeighborTable(5, mr=3)
        insert_seq(seq, edges)
        batch = NeighborTable(5, mr=3)
        arr = np.array(edges)
        batch.insert_edges(arr[:, 0].astype(int), arr[:, 1].astype(int),
                           arr[:, 2].astype(int), arr[:, 3])
        for v in range(5):
            gs = seq.gather(np.array([v]))
            gb = batch.gather(np.array([v]))
            assert np.array_equal(gs.nbrs[gs.mask], gb.nbrs[gb.mask]), v
            assert np.array_equal(gs.times[gs.mask], gb.times[gb.mask]), v

    def test_vertex_repeated_many_times_in_one_batch(self):
        t = NeighborTable(4, mr=2)
        n = 6
        t.insert_edges(np.zeros(n, dtype=int), np.arange(1, n + 1) % 4,
                       np.arange(n), np.arange(n, dtype=float))
        g = t.gather(np.array([0]))
        # Only the last two insertions survive the ring.
        assert np.array_equal(g.times[0], [4.0, 5.0])

    def test_self_loop_edge_counts_twice(self):
        t = NeighborTable(3, mr=4)
        t.insert_edges(np.array([1]), np.array([1]), np.array([0]),
                       np.array([1.0]))
        g = t.gather(np.array([1]))
        assert g.mask[0].sum() == 2  # both directions recorded

    def test_empty_insert_noop(self):
        t = NeighborTable(3, mr=2)
        t.insert_edges(np.array([], dtype=int), np.array([], dtype=int),
                       np.array([], dtype=int), np.array([]))
        assert t.degree(np.array([0]))[0] == 0

    def test_memory_words(self):
        t = NeighborTable(10, mr=5)
        assert t.memory_words() == 10 * 5 * 3

    def test_invalid_mr(self):
        with pytest.raises(ValueError):
            NeighborTable(5, mr=0)
