"""Unit tests for the §V performance model and the GPP cost models."""

import numpy as np
import pytest

from repro.hw import U200_DESIGN, ZCU104_DESIGN
from repro.models import ModelConfig
from repro.perf import CPU_1T, CPU_32T, GPU, PerformanceModel
from repro.profiling import count_ops, count_ops_apan

SIMPLE = ModelConfig(simplified_attention=True, lut_time_encoder=True,
                     pruning_budget=4)


class TestPerformanceModel:
    def test_rejects_vanilla(self):
        with pytest.raises(ValueError):
            PerformanceModel(ModelConfig(), U200_DESIGN)

    def test_pipeline_period_structure(self):
        pm = PerformanceModel(SIMPLE, U200_DESIGN)
        pred = pm.pipeline_period()
        assert pred.tp_s == max(pred.t_comp_s, pred.t_ls_s)
        assert pred.tp_s > 0

    def test_latency_monotone_in_batch_size(self):
        pm = PerformanceModel(SIMPLE, ZCU104_DESIGN)
        lats = [pm.predict(n).latency_s for n in (100, 500, 2000)]
        assert lats[0] < lats[1] < lats[2]

    def test_throughput_saturates(self):
        pm = PerformanceModel(SIMPLE, U200_DESIGN)
        t_small = pm.predict(50).throughput_eps
        t_large = pm.predict(5000).throughput_eps
        steady = pm.pipeline_period().throughput_eps
        assert t_small < t_large <= steady * 1.001

    def test_u200_dominates_zcu104(self):
        u = PerformanceModel(SIMPLE, U200_DESIGN).predict(1000)
        z = PerformanceModel(SIMPLE, ZCU104_DESIGN).predict(1000)
        assert u.latency_s < z.latency_s
        assert u.throughput_eps > z.throughput_eps

    def test_more_bandwidth_never_hurts(self):
        from repro.hw.platforms import FPGAPlatform
        slow = ZCU104_DESIGN
        fat_platform = FPGAPlatform(name="fat", dies=1, luts_per_die=230_000,
                                    dsps_per_die=1728, brams_per_die=312,
                                    urams_per_die=96, ddr_bw_gbs=200.0)
        fast = ZCU104_DESIGN.with_(platform=fat_platform)
        a = PerformanceModel(SIMPLE, slow).predict(1000)
        b = PerformanceModel(SIMPLE, fast).predict(1000)
        assert b.latency_s <= a.latency_s

    def test_pruning_reduces_period(self):
        light = SIMPLE.with_(pruning_budget=2)
        heavy = SIMPLE.with_(pruning_budget=None)
        a = PerformanceModel(light, ZCU104_DESIGN).pipeline_period()
        b = PerformanceModel(heavy, ZCU104_DESIGN).pipeline_period()
        assert a.t_ls_s < b.t_ls_s

    def test_invalid_batch(self):
        pm = PerformanceModel(SIMPLE, U200_DESIGN)
        with pytest.raises(ValueError):
            pm.predict(0)


class TestGPPModels:
    def test_calibration_anchor_latencies(self):
        counts = count_ops(ModelConfig())
        assert CPU_32T.latency_s(counts, 200) == pytest.approx(64e-3, rel=0.01)
        assert GPU.latency_s(counts, 200) == pytest.approx(8e-3, rel=0.01)

    def test_plateau_throughput(self):
        counts = count_ops(ModelConfig())
        assert CPU_32T.throughput_eps(counts, 100_000) \
            == pytest.approx(6.5e3, rel=0.05)
        assert GPU.throughput_eps(counts, 100_000) \
            == pytest.approx(60e3, rel=0.05)

    def test_gpu_faster_than_cpu_everywhere(self):
        counts = count_ops(ModelConfig())
        for n in (10, 100, 1000, 10000):
            assert GPU.latency_s(counts, n) < CPU_32T.latency_s(counts, n)

    def test_simplified_model_cheaper(self):
        base = count_ops(ModelConfig())
        light = count_ops(ModelConfig(simplified_attention=True,
                                      lut_time_encoder=True,
                                      pruning_budget=2))
        assert CPU_1T.marginal_edge_s(light) < CPU_1T.marginal_edge_s(base)

    def test_apan_light_runtime_lower_latency(self):
        tgn = count_ops(ModelConfig())
        apan = count_ops_apan(ModelConfig())
        lat_tgn = GPU.latency_s(tgn, 200)
        lat_apan = GPU.latency_s(apan, 200, light_runtime=True)
        assert lat_apan < lat_tgn

    def test_part_times(self):
        counts = count_ops(ModelConfig())
        parts = CPU_1T.part_times_s(counts, {"sample": 9e-9, "update": 23e-9})
        assert parts["gnn"] > parts["memory"]   # compute dominates 1T
        assert parts["sample"] >= 9e-9

    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            GPU.latency_s(count_ops(ModelConfig()), 0)
