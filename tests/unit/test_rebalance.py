"""Online rebalancing: exactness, ownership, conservation, and chaos.

Four contracts pin the subsystem (ISSUE 5):

* **Exactness** — a functional sharded replay *with mid-run migrations*
  under ``memsync='push'`` (or ``'invalidate'``) produces held-vertex
  memory tables and embeddings bit-identical to the unsharded runtime:
  the state handoff (memory rows + neighbor-table slices) plus the
  version-counter ownership transfer lose nothing.
* **Exactly-once ownership** — the trace's :class:`MigrationEvent` chain
  is linearizable: every event's ``from_shard`` matches the ownership at
  that instant, so no vertex is ever owned by two shards.
* **Conservation** — every admitted job is serviced exactly once and
  per-server busy intervals stay disjoint, even while ownership changes
  mid-run.
* **Chaos convergence** — on a pathological trace whose hot set flips
  every window, migrations stay bounded per window and no vertex
  ping-pongs inside its cooldown (hysteresis respected).

A stationary workload must make the rebalancer a no-op — zero migrations
and queueing statistics identical to the plain engine (the tier-2 variant
in ``test_queueing_theory`` re-checks this at statistical scale).
"""

import numpy as np
import pytest

from repro.autograd import no_grad
from repro.datasets import drifting_hot_set_graph, wikipedia_like
from repro.graph import TemporalGraph, iter_fixed_size
from repro.graph.temporal_graph import EdgeBatch
from repro.models import ModelConfig, TGNN
from repro.pipeline import LinearCostBackend
from repro.serving import (HANDOFF_ROWS_PER_VERTEX, EventScheduler,
                           HotColdHybrid, MigrationEvent, OnlineRebalancer,
                           Placement, ReplicatedReadMostly, ServerGroup,
                           ServiceBeginEvent, ServiceEndEvent, ServingEngine,
                           ShardRouter, ShardedRuntime, VersionedMemoryCache,
                           VertexHeat, make_stream_arrivals)

CFG = ModelConfig(memory_dim=8, time_dim=6, embed_dim=8, edge_dim=172,
                  num_neighbors=4, simplified_attention=True,
                  lut_time_encoder=True, lut_bins=8, pruning_budget=2)


def setup_model():
    g = wikipedia_like(num_edges=600, num_users=80, num_items=20)
    model = TGNN(CFG, rng=np.random.default_rng(0))
    model.calibrate(g)
    return g, model


def drifting_graph(n_edges=1600, shards=4, num_nodes=128, phases=8,
                   hot_size=6, seed=5):
    """Test-scale defaults for the shared drifting-hot-set workload (the
    bench replays the same generator at bench scale)."""
    return drifting_hot_set_graph(n_edges, shards, num_nodes=num_nodes,
                                  phases=phases, hot_size=hot_size,
                                  seed=seed)


# --------------------------------------------------------------------------- #
class TestOnlineRebalancerValidation:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            OnlineRebalancer(window_s=0.0)
        with pytest.raises(ValueError):
            OnlineRebalancer(window_s=1.0, util_threshold=0.0)
        with pytest.raises(ValueError):
            OnlineRebalancer(window_s=1.0, max_migrations_per_window=0)
        with pytest.raises(ValueError):
            OnlineRebalancer(window_s=1.0, cooldown_windows=-1)
        with pytest.raises(ValueError):
            OnlineRebalancer(window_s=1.0, hysteresis=-0.1)
        with pytest.raises(ValueError):
            OnlineRebalancer(window_s=1.0, depth_threshold=0)
        with pytest.raises(ValueError, match="promote_heat"):
            OnlineRebalancer(window_s=1.0, promote_heat=2, demote_heat=2)

    def test_observe_requires_bind(self):
        reb = OnlineRebalancer(window_s=1.0)
        with pytest.raises(RuntimeError, match="bind"):
            reb.observe(0.0, None)

    def test_pool_topology_rejects_rebalancer(self):
        g = wikipedia_like(num_edges=100, num_users=20, num_items=5)
        with pytest.raises(ValueError, match="rebalance"):
            ServingEngine([LinearCostBackend()], g.num_nodes,
                          topology="pool",
                          rebalancer=OnlineRebalancer(window_s=1.0))

    def test_bind_rejects_pool_shard_out_of_range(self):
        reb = OnlineRebalancer(window_s=1.0)
        router = ShardRouter(2, 10)
        with pytest.raises(ValueError, match="pool_shard"):
            reb.bind(EventScheduler(), [], router, pool_shard=2)

    def test_single_shard_fleet_is_a_noop(self):
        """A lone shard has nowhere to donate: an overloaded 1-shard run
        with the rebalancer enabled completes with zero migrations
        instead of crashing at window close."""
        g = wikipedia_like(num_edges=400, num_users=60, num_items=16)
        reb = OnlineRebalancer(window_s=0.1, util_threshold=1e-9,
                               hysteresis=0.0)
        engine = ServingEngine([LinearCostBackend(per_edge_s=0.1)],
                               g.num_nodes, rebalancer=reb)
        rep = engine.run(g, window_s=3600.0, speedup=2000.0, num_streams=2)
        assert rep.rebalance == "online"
        assert rep.migrations == 0


class TestRouterMigrate:
    def test_ownership_and_membership_flip_atomically(self):
        router = ShardRouter(3, 12)
        v = np.flatnonzero(router.assignment == 0)[:2]
        old = router.migrate(v, 2)
        assert (old == 0).all()
        assert (router.assignment[v] == 2).all()
        assert router._member[2, v].all()
        assert not router._member[0, v].any()
        # Exactly one owner per vertex, before and after.
        assert (router._member.sum(axis=0) == 1).all()

    def test_replicated_vertex_demotes_old_owner(self):
        """Migrating a replicated vertex re-points ownership and demotes
        the old owner into the replica set — copies are never orphaned
        and the owner/replica invariant holds throughout."""
        placement = Placement(assignment=np.array([0, 0, 1, 1]),
                              num_shards=3, replicas={0: (1, 2)})
        router = ShardRouter.from_placement(placement)
        old = router.migrate([0], 1)        # target was itself a replica
        assert old[0] == 0
        assert router.assignment[0] == 1
        # New owner promoted out of the set, old owner demoted into it.
        assert set(placement.replicas[0]) == {0, 2}
        # Every previous holder still holds the vertex.
        assert router._member[:, 0].all()
        # The mutated placement still satisfies its own invariants.
        Placement(assignment=router.assignment, num_shards=3,
                  replicas=dict(placement.replicas))

    def test_replicated_vertex_to_non_replica_shard(self):
        placement = Placement(assignment=np.array([0, 0, 1, 1]),
                              num_shards=3, replicas={0: (1,)})
        router = ShardRouter.from_placement(placement)
        router.migrate([0], 2)              # target held nothing before
        assert router.assignment[0] == 2
        assert set(placement.replicas[0]) == {0, 1}
        assert router._member[:, 0].all()

    def test_range_validation(self):
        router = ShardRouter(2, 8)
        with pytest.raises(ValueError):
            router.migrate([99], 1)
        with pytest.raises(ValueError):
            router.migrate([0], 5)

    def test_routing_follows_new_owner(self):
        router = ShardRouter(2, 8)
        v = int(np.flatnonzero(router.assignment == 0)[0])
        other = int(np.flatnonzero(router.assignment == 1)[0])
        batch = EdgeBatch(src=np.array([v]), dst=np.array([other]),
                          t=np.array([1.0]), eid=np.array([0]),
                          edge_feat=np.zeros((1, 0)))
        before = {sb.shard: sb.local_edges for sb in router.split(batch)}
        assert before[0] == 1            # v's owner processes locally
        router.migrate([v], 1)
        after = router.split(batch)
        assert len(after) == 1           # both endpoints now on shard 1
        assert after[0].shard == 1 and after[0].local_edges == 1
        assert after[0].mail_edges == 0


class TestCacheTransferOwnership:
    def placement(self):
        return Placement(assignment=np.array([0, 0, 1, 1]), num_shards=2)

    def test_new_owner_is_current_old_owner_is_fresh_mirror(self):
        c = VersionedMemoryCache(self.placement(), policy="push")
        c.note_writes(np.array([0]), present_shards=[0])
        c.note_writes(np.array([0]), present_shards=[0])
        c.transfer_ownership([0], [0], 1)
        # The new owner received current rows: nothing to pull.
        assert not len(c.note_reads(1, np.array([0])).pulled)
        # Version history survived the handoff: the next write bumps the
        # same counter.
        assert c.version[0] == 2
        c.note_writes(np.array([0]), present_shards=[0, 1])
        assert c.version[0] == 3
        # The old owner is now a *current* mirror; under push it was
        # present at the write above, so it stays current.
        assert not len(c.note_reads(0, np.array([0])).pulled)

    def test_old_owner_ages_like_any_mirror(self):
        c = VersionedMemoryCache(self.placement(), policy="invalidate")
        c.note_writes(np.array([0]), present_shards=[0])
        c.transfer_ownership([0], [0], 1)
        # A write the old owner did not see makes its copy stale: the
        # next read repairs via the ordinary pull path.
        c.note_writes(np.array([0]), present_shards=[1])
        assert c.note_reads(0, np.array([0])).pulled.tolist() == [0]

    def test_degenerate_self_transfer_keeps_holder(self):
        c = VersionedMemoryCache(self.placement(), policy="push")
        c.transfer_ownership([0], [0], 0)
        assert c._holder[0, 0] and not c._mirror[0, 0]


# --------------------------------------------------------------------------- #
def unsharded_reference(model, graph, batch_size=50):
    rt = model.new_runtime(graph)
    with no_grad():
        results = [model.process_batch(b, rt, graph)
                   for b in iter_fixed_size(graph, batch_size)]
    return rt, results


def assert_held_state_bit_identical(srt, rt):
    for shard in range(srt.router.num_shards):
        held = srt.held_vertices(shard)
        st = srt.runtimes[shard].state
        assert np.array_equal(st.memory[held], rt.state.memory[held])
        assert np.array_equal(st.mailbox[held], rt.state.mailbox[held])
        assert np.array_equal(st.mail_time[held], rt.state.mail_time[held])
        assert np.array_equal(st.last_update[held],
                              rt.state.last_update[held])


def migration_plan(srt, batch, step, exclude=()):
    """Pick up to two non-replicated endpoints of ``batch`` and a rotating
    target shard — deterministic, so the suite is reproducible."""
    target = step % srt.router.num_shards
    vs = [int(v) for v in np.unique(batch.nodes)
          if int(v) not in exclude][:2]
    return vs, target


class TestMigrationExactness:
    """The headline acceptance: migrations lose nothing, bit-for-bit."""

    @pytest.mark.parametrize("policy", ["push", "invalidate"])
    @pytest.mark.parametrize("num_shards", [2, 3])
    def test_bit_identical_to_unsharded_across_migrations(self, policy,
                                                          num_shards):
        g, model = setup_model()
        rt, ref = unsharded_reference(model, g)
        srt = ShardedRuntime(model, g, num_shards=num_shards, policy=policy)
        migrated = 0
        checked = 0
        with no_grad():
            for i, batch in enumerate(iter_fixed_size(g, 50)):
                if i % 3 == 2:      # migrate mid-stream, between batches
                    vs, target = migration_plan(srt, batch, i)
                    migrated += srt.migrate(vs, target)
                outs = srt.process_batch(batch)
                # Held query rows equal the unsharded rows *at the
                # membership in force when the batch ran* (migrations only
                # happen between batches, so splitting again is exact).
                ref_res = ref[i]
                pos = {int(e): k for k, e in enumerate(batch.eid)}
                for sb in srt.router.split(batch):
                    res = outs[sb.shard]
                    rows = np.empty(len(res.nodes), dtype=np.int64)
                    for k in range(len(sb.batch)):
                        p = pos[int(sb.batch.eid[k])]
                        rows[2 * k], rows[2 * k + 1] = 2 * p, 2 * p + 1
                    held = srt.router._member[sb.shard, res.nodes]
                    assert np.array_equal(res.embeddings.data[held],
                                          ref_res.embeddings.data[rows[held]])
                    checked += int(held.sum())
        assert migrated > 0 and checked > 0
        assert_held_state_bit_identical(srt, rt)
        # Exactness was bought with traffic: the handoff rows are priced
        # through the same sync accounting as pulls and pushes.
        assert srt.mailbox.total_sync_rows \
            >= migrated * HANDOFF_ROWS_PER_VERTEX
        assert srt.cache.stale_reads == 0
        assert srt.cache.max_version_lag == 0
        # Exactly-once ownership held throughout (single owner per vertex).
        assert (srt.router._member.sum(axis=0) == 1).all()

    def test_exact_under_replication(self):
        """Migrating non-replicated vertices coexists with replica sets."""
        g, model = setup_model()
        rt, _ = unsharded_reference(model, g)
        heat = VertexHeat.from_graph(g)
        placement = ReplicatedReadMostly(top_k=4).place(heat, 3)
        assert placement.replicated_vertices > 0
        replicated = set(placement.replicas)
        srt = ShardedRuntime(model, g, placement=placement, policy="push")
        migrated = 0
        with no_grad():
            for i, batch in enumerate(iter_fixed_size(g, 50)):
                if i % 3 == 2:
                    vs, target = migration_plan(srt, batch, i,
                                                exclude=replicated)
                    migrated += srt.migrate(vs, target)
                srt.process_batch(batch)
        assert migrated > 0
        assert_held_state_bit_identical(srt, rt)

    def test_migrate_to_current_owner_is_a_noop(self):
        g, model = setup_model()
        srt = ShardedRuntime(model, g, num_shards=2, policy="push")
        v = int(np.flatnonzero(srt.router.assignment == 0)[0])
        assert srt.migrate([v], 0) == 0
        assert srt.mailbox.total_sync_rows == 0

    def test_migrate_refusal_is_atomic(self):
        """A refused migration (bad target, bad vertex) must not leave
        partially-copied state or phantom sync accounting behind."""
        g, model = setup_model()
        srt = ShardedRuntime(model, g, num_shards=2, policy="push")
        with no_grad():
            for b in iter_fixed_size(g, 100):
                srt.process_batch(b)
        snapshots = [rt.state.snapshot() for rt in srt.runtimes]
        rows_before = srt.mailbox.total_sync_rows
        with pytest.raises(ValueError, match="to_shard"):
            srt.migrate([0], -1)
        with pytest.raises(ValueError, match="vertex"):
            srt.migrate([g.num_nodes + 7], 0)
        assert srt.mailbox.total_sync_rows == rows_before
        for rt, snap in zip(srt.runtimes, snapshots):
            assert np.array_equal(rt.state.memory, snap["memory"])
            assert np.array_equal(rt.state.mailbox, snap["mailbox"])

    def test_migrate_replicated_vertex_stays_exact(self):
        """Replicated vertices migrate too (the PR 7 lift): ownership
        re-points, the old owner demotes into the replica set, and the
        push-policy replay stays bit-identical to the unsharded runtime."""
        g, model = setup_model()
        heat = VertexHeat.from_graph(g)
        placement = ReplicatedReadMostly(top_k=2).place(heat, 2)
        replicated = sorted(placement.replicas)
        assert replicated
        rt, _ = unsharded_reference(model, g)
        srt = ShardedRuntime(model, g, placement=placement, policy="push")
        moved = False
        with no_grad():
            for i, batch in enumerate(iter_fixed_size(g, 50)):
                if i == 4:
                    v = replicated[0]
                    target = 1 - int(srt.router.assignment[v])
                    assert srt.migrate([v], target) == 1
                    assert int(srt.router.assignment[v]) == target
                    moved = True
                srt.process_batch(batch)
        assert moved
        assert_held_state_bit_identical(srt, rt)


# --------------------------------------------------------------------------- #
def engine_with_rebalancer(g, shards=4, reb=None, memsync="push",
                           per_edge_s=6e-3):
    return ServingEngine(
        [LinearCostBackend(per_edge_s=per_edge_s) for _ in range(shards)],
        g.num_nodes, memsync=memsync, rebalancer=reb)


class TestEngineMigrationInvariants:
    """Exactly-once ownership and conservation on the event loop."""

    def run_traced(self, g, reb, shards=4, window_s=250.0, speedup=2400.0,
                   streams=2, queue_capacity=None):
        engine = engine_with_rebalancer(g, shards=shards, reb=reb)
        initial = engine.router.assignment.copy()
        arrivals = make_stream_arrivals(g, window_s, num_streams=streams,
                                        speedup=speedup)
        rep = engine._run_events(arrivals, window_s, speedup, streams,
                                 queue_capacity, "serial", trace=True)
        return engine, initial, arrivals, rep

    def test_exactly_once_ownership_chain(self):
        g = drifting_graph()
        reb = OnlineRebalancer(window_s=0.5, util_threshold=0.5,
                               cooldown_windows=1)
        engine, initial, _, rep = self.run_traced(g, reb)
        trace = engine.last_event_trace
        migrations = [e for e in trace if isinstance(e, MigrationEvent)]
        assert len(migrations) == rep.migrations > 0
        # Replay the ownership log: each event's from_shard must equal the
        # ownership at that instant — a vertex can never be owned by two
        # shards, because each handoff consumes the previous owner.
        owner = initial.copy()
        for ev in migrations:
            assert owner[ev.vertex] == ev.from_shard
            assert ev.from_shard != ev.to_shard
            assert ev.rows == HANDOFF_ROWS_PER_VERTEX
            owner[ev.vertex] = ev.to_shard
        # The replay lands exactly on the live router's final assignment.
        assert np.array_equal(owner, engine.router.assignment)
        assert (engine.router._member.sum(axis=0) == 1).all()
        # Trace timestamps stay monotone with migrations interleaved.
        times = [e.t for e in trace]
        assert times == sorted(times)

    def test_jobs_serviced_exactly_once_across_migrations(self):
        g = drifting_graph()
        reb = OnlineRebalancer(window_s=0.5, util_threshold=0.5,
                               cooldown_windows=1)
        engine, _, arrivals, rep = self.run_traced(g, reb)
        assert rep.migrations > 0
        # Window conservation: every stream arrival is served or dropped.
        assert rep.windows + rep.dropped_windows == len(arrivals)
        assert rep.dropped_windows == 0
        # Service conservation from the trace: every (group, index) begins
        # exactly once and ends exactly once, and per-server busy
        # intervals never overlap — migrations reroute future jobs, they
        # never duplicate or lose an admitted one.
        trace = engine.last_event_trace
        begins = [e for e in trace if isinstance(e, ServiceBeginEvent)]
        ends = [e for e in trace if isinstance(e, ServiceEndEvent)]
        assert len(begins) == len(ends)
        assert len({(e.group, e.index) for e in begins}) == len(begins)
        assert len({(e.group, e.index) for e in ends}) == len(ends)
        spans = {}
        for b in begins:
            spans[(b.group, b.index)] = [b.t, None]
        for e in ends:
            spans[(e.group, e.index)][1] = e.t
        by_server = {}
        for b in begins:
            by_server.setdefault((b.group, b.server), []).append(
                spans[(b.group, b.index)])
        for intervals in by_server.values():
            intervals.sort()
            for (b0, e0), (b1, _) in zip(intervals, intervals[1:]):
                assert e0 is not None and b1 >= e0 - 1e-12

    def test_conservation_with_bounded_queues_and_drops(self):
        # Bufferless loss system: any job that would wait is dropped, so
        # the drift's transient overload must produce losses — and the
        # accounting still conserves every offered window.
        g = drifting_graph()
        reb = OnlineRebalancer(window_s=0.5, util_threshold=0.5,
                               cooldown_windows=1)
        engine, _, arrivals, rep = self.run_traced(g, reb,
                                                   queue_capacity=0)
        assert rep.migrations > 0
        assert rep.windows + rep.dropped_windows == len(arrivals)
        assert rep.dropped_windows > 0      # the bound bites under drift

    def test_handoff_rows_priced_into_busy_time(self):
        """With a die plan, handoff rows crossing a die cost hops that
        inflate the destination's service time — the migration is never
        free when the fleet spans dies."""
        g = drifting_graph()

        def run(die_of, mail_hop_s):
            reb = OnlineRebalancer(window_s=0.5, util_threshold=0.5,
                                   cooldown_windows=1)
            engine = ServingEngine(
                [LinearCostBackend(per_edge_s=6e-3) for _ in range(4)],
                g.num_nodes, rebalancer=reb, die_of=die_of,
                mail_hop_s=mail_hop_s)
            return engine.run(g, window_s=250.0, speedup=2400.0,
                              num_streams=2)

        free = run(None, 0.0)
        priced = run([0, 1, 0, 1], 5e-3)
        assert free.migrations > 0 and priced.migrations > 0
        assert priced.handoff_rows > 0
        assert sum(s.busy_s for s in priced.shard_stats) \
            > sum(s.busy_s for s in free.shard_stats)


# --------------------------------------------------------------------------- #
class TestChaosDrift:
    """Pathological drift: the hot set flips every measurement window."""

    def run_chaos(self, cooldown, cap=4, phases=16):
        # One raw phase (1e4 s) compressed to exactly one rebalancer
        # window (0.5 s): the hot set flips every single window — the
        # worst case for a reactive policy.
        g = drifting_graph(n_edges=2400, phases=phases, shards=4,
                           hot_size=4)
        reb = OnlineRebalancer(window_s=0.5, util_threshold=0.5,
                               max_migrations_per_window=cap,
                               cooldown_windows=cooldown)
        engine = engine_with_rebalancer(g, reb=reb)
        rep = engine.run(g, window_s=250.0, speedup=2e4, num_streams=2)
        return reb, rep

    def event_windows(self, reb):
        """Map each logged migration to the window that decided it."""
        windows = []
        i = 0
        for w, count in enumerate(reb.migrations_per_window):
            windows.extend([w] * count)
            i += count
        assert len(windows) == len(reb.migration_log)
        return windows

    def test_migrations_bounded_per_window(self):
        cap = 4
        reb, rep = self.run_chaos(cooldown=1, cap=cap)
        assert rep.migrations > 0
        assert reb.migrations_per_window          # windows were evaluated
        assert max(reb.migrations_per_window) <= cap

    @pytest.mark.parametrize("cooldown", [1, 3])
    def test_no_ping_pong_within_cooldown(self, cooldown):
        reb, rep = self.run_chaos(cooldown=cooldown)
        assert rep.migrations > 0
        windows = self.event_windows(reb)
        last_window = {}
        for ev, w in zip(reb.migration_log, windows):
            if ev.vertex in last_window:
                # Hysteresis respected: a migrated vertex is frozen for
                # its cooldown — flipping heat cannot bounce it back.
                assert w >= last_window[ev.vertex] + 1 + cooldown
            last_window[ev.vertex] = w

    def test_scheduler_invariants_survive_chaos(self):
        """The monotonicity/conservation invariants of test_events hold
        with the rebalancer thrashing ownership every window."""
        g = drifting_graph(n_edges=2400, phases=16, shards=4, hot_size=4)
        reb = OnlineRebalancer(window_s=0.5, util_threshold=0.5,
                               max_migrations_per_window=4,
                               cooldown_windows=1)
        engine = engine_with_rebalancer(g, reb=reb)
        arrivals = make_stream_arrivals(g, 250.0, num_streams=2,
                                        speedup=2e4)
        rep = engine._run_events(arrivals, 250.0, 2e4, 2, None, "serial",
                                 trace=True)
        assert rep.migrations > 0
        trace = engine.last_event_trace
        times = [e.t for e in trace]
        assert times == sorted(times)
        begins = [e for e in trace if isinstance(e, ServiceBeginEvent)]
        ends = [e for e in trace if isinstance(e, ServiceEndEvent)]
        assert len(begins) == len(ends) > 0
        assert rep.windows + rep.dropped_windows == len(arrivals)

    def test_pipelined_ingest_composes_with_rebalancing(self):
        g = drifting_graph()
        reb = OnlineRebalancer(window_s=0.5, util_threshold=0.5,
                               cooldown_windows=1)
        engine = engine_with_rebalancer(g, reb=reb)
        rep = engine.run(g, window_s=250.0, speedup=2400.0, num_streams=2,
                         ingest="pipelined")
        assert rep.ingest == "pipelined"
        assert rep.migrations > 0
        assert rep.windows + rep.dropped_windows > 0


# --------------------------------------------------------------------------- #
class TestStationaryNoOp:
    def test_zero_migrations_and_identical_statistics(self):
        """Balanced load below the threshold: the rebalancer must not act,
        and every statistic matches the plain engine bit-for-bit."""
        g = wikipedia_like(num_edges=600, num_users=80, num_items=20)

        def run(reb):
            engine = ServingEngine(
                [LinearCostBackend(per_edge_s=1e-3) for _ in range(4)],
                g.num_nodes, rebalancer=reb)
            return engine.run(g, window_s=3600.0, speedup=2.0,
                              num_streams=2)

        base = run(None)
        rebalanced = run(OnlineRebalancer(window_s=100.0))
        assert rebalanced.migrations == 0
        assert rebalanced.handoff_rows == 0
        assert rebalanced.rebalance == "online"
        d_base, d_reb = base.to_dict(), rebalanced.to_dict()
        for key in ("rebalance", "migrations", "migrated_vertices",
                    "handoff_rows"):
            d_reb.pop(key)
        assert d_reb == d_base


class TestHybridDrift:
    """Hybrid topology: heating pool vertices promote, cooled demote."""

    def two_phase_graph(self, n_edges=1200, num_nodes=64, seed=9):
        """Phase 1: vertices {0,1} hot; phase 2: {2,3} hot, {0,1} cold."""
        rng = np.random.default_rng(seed)
        half = n_edges // 2
        src = np.empty(n_edges, dtype=np.int64)
        dst = np.empty(n_edges, dtype=np.int64)
        for lo, hi, hot in ((0, half, (0, 1)), (half, n_edges, (2, 3))):
            n = hi - lo
            pick = rng.random(n) < 0.8
            src[lo:hi] = np.where(pick, rng.choice(hot, n),
                                  rng.integers(4, num_nodes, n))
            dst[lo:hi] = np.where(pick, rng.choice(hot, n),
                                  rng.integers(4, num_nodes, n))
        same = dst == src
        dst[same] = (dst[same] + 1) % num_nodes
        t = np.sort(rng.uniform(0, 2e4, n_edges))
        return TemporalGraph(src=src, dst=dst, t=t, num_nodes=num_nodes)

    def test_heating_promotes_cooling_demotes(self):
        g = self.two_phase_graph()
        # Placement from *phase-1* heat: {0,1} on the dedicated shards,
        # {2,3} still in the pool when phase 2 flips the hot set.
        heat1 = VertexHeat.from_graph(g, end=g.num_edges // 2)
        placement = HotColdHybrid(hot_top_k=2).place(heat1, 3)
        pool = 2
        assert set(np.flatnonzero(placement.assignment != pool)) == {0, 1}
        reb = OnlineRebalancer(window_s=1.0, promote_heat=8, demote_heat=1,
                               cooldown_windows=1)
        engine = ServingEngine(
            [LinearCostBackend(per_edge_s=2e-3) for _ in range(3)],
            g.num_nodes, placement=placement, topology="hybrid",
            pool_servers=2, rebalancer=reb, memsync="push")
        rep = engine.run(g, window_s=500.0, speedup=1000.0, num_streams=2)
        assert rep.migrations > 0
        reasons = {ev.reason for ev in reb.migration_log}
        assert "heat-up" in reasons and "cool-down" in reasons
        # The drift is tracked: the phase-2 hot set ends on dedicated
        # shards and the cooled phase-1 set is back in the pool.
        assert (engine.router.assignment[[2, 3]] != pool).all()
        assert (engine.router.assignment[[0, 1]] == pool).all()
        # Ownership stayed exactly-once throughout.
        assert (engine.router._member.sum(axis=0) == 1).all()

    def test_hybrid_stationary_is_noop(self):
        """A band nothing crosses (huge promote, zero demote cutoffs
        untouched by the uniform load) -> zero migrations."""
        g = wikipedia_like(num_edges=400, num_users=60, num_items=16)
        heat = VertexHeat.from_graph(g)
        placement = HotColdHybrid(hot_top_k=4).place(heat, 3)
        reb = OnlineRebalancer(window_s=100.0, promote_heat=10 ** 6,
                               demote_heat=-1)
        engine = ServingEngine(
            [LinearCostBackend(per_edge_s=1e-3) for _ in range(3)],
            g.num_nodes, placement=placement, topology="hybrid",
            pool_servers=2, rebalancer=reb)
        rep = engine.run(g, window_s=3600.0, speedup=2.0, num_streams=2)
        assert rep.migrations == 0


class TestDepthTrigger:
    def test_deep_queue_flags_donor_before_utilization_does(self):
        """A queue that built inside the window triggers migration even
        when the utilization estimate alone would not."""
        sched = EventScheduler()
        slow = ServerGroup(0, 1, lambda _p: 1e4, sched)
        idle = ServerGroup(1, 1, lambda _p: 1e4, sched)
        for i in range(6):                  # 1 in service, 5 waiting
            slow.submit(0.0, i)
        assert slow.queue_depth == 5
        router = ShardRouter(2, 16)
        on_donor = np.flatnonzero(router.assignment == 0)[:2]
        batch = EdgeBatch(src=np.array([on_donor[0]]),
                          dst=np.array([on_donor[1]]),
                          t=np.array([0.0]), eid=np.array([0]),
                          edge_feat=np.zeros((1, 0)))
        # An enormous util threshold disables the utilization trigger;
        # only the depth trigger can flag the donor.
        reb = OnlineRebalancer(window_s=1.0, util_threshold=1e12,
                               depth_threshold=2, hysteresis=0.0)
        reb.bind(sched, [slow, idle], router)
        reb.observe(0.0, batch)
        reb.observe(2.0, batch)             # closes the window: evaluate
        assert reb.migrations > 0
        assert all(ev.reason == "overload" for ev in reb.migration_log)
