"""Unit tests for the multi-layer TGNN extension."""

import numpy as np
import pytest

from repro.autograd import no_grad
from repro.datasets import wikipedia_like
from repro.graph import iter_fixed_size
from repro.models import ModelConfig, MultiLayerTGNN, TGNN

CFG = ModelConfig(memory_dim=10, time_dim=8, embed_dim=10, edge_dim=172,
                  num_neighbors=3)


def stream():
    return wikipedia_like(num_edges=200, num_users=40, num_items=10)


class TestConstruction:
    def test_layer_count_validation(self):
        with pytest.raises(ValueError):
            MultiLayerTGNN(CFG, num_layers=0)

    def test_requires_matching_dims(self):
        bad = CFG.with_(embed_dim=12)
        with pytest.raises(ValueError, match="embed_dim"):
            MultiLayerTGNN(bad, num_layers=2)

    def test_per_layer_parameters(self):
        m1 = MultiLayerTGNN(CFG, num_layers=1, rng=np.random.default_rng(0))
        m2 = MultiLayerTGNN(CFG, num_layers=2, rng=np.random.default_rng(0))
        assert m2.num_parameters() > m1.num_parameters()
        names = dict(m2.named_parameters())
        assert any(n.startswith("attn1.") for n in names)
        assert any(n.startswith("transform1.") for n in names)


class TestOneLayerEquivalence:
    def test_matches_single_layer_tgnn_with_shared_weights(self):
        """The recursion's base case reproduces the production model."""
        g = stream()
        ref = TGNN(CFG, rng=np.random.default_rng(0))
        ml = MultiLayerTGNN(CFG, num_layers=1, rng=np.random.default_rng(1))
        # Map the single-layer model's weights onto layer 0.
        sd = ref.state_dict()
        mapped = {}
        for name, value in sd.items():
            if name.startswith("attention."):
                mapped["attn0." + name[len("attention."):]] = value
            elif name.startswith("out_transform."):
                mapped["transform0." + name[len("out_transform."):]] = value
            else:
                mapped[name] = value
        ml.load_state_dict(mapped)
        rt_a, rt_b = ref.new_runtime(g), ml.new_runtime(g)
        with no_grad():
            for batch in iter_fixed_size(g, 40):
                a = ref.process_batch(batch, rt_a, g).embeddings.data
                b = ml.process_batch(batch, rt_b, g).embeddings.data
                assert np.allclose(a, b, atol=1e-9)


class TestTwoLayer:
    def test_shapes_and_state_evolution(self):
        g = stream()
        ml = MultiLayerTGNN(CFG, num_layers=2, rng=np.random.default_rng(0))
        rt = ml.new_runtime(g)
        with no_grad():
            res = ml.process_batch(g.slice(0, 30), rt, g)
        assert res.embeddings.shape == (60, CFG.embed_dim)
        assert rt.state.has_mail(g.slice(0, 30).nodes).all()

    def test_negative_queries(self):
        g = stream()
        ml = MultiLayerTGNN(CFG, num_layers=2, rng=np.random.default_rng(0))
        rt = ml.new_runtime(g)
        with no_grad():
            res = ml.process_batch(g.slice(0, 20), rt, g,
                                   neg_dst=np.array([1, 2]))
        assert res.neg_embeddings.shape == (2, CFG.embed_dim)

    def test_second_layer_widens_receptive_field(self):
        """A 2-hop-only relative must influence 2-layer but not 1-layer
        embeddings."""
        from repro.graph import TemporalGraph
        # Chain: 0-1 at t=1, 1-2 at t=2; query vertex 0 at t=3 (edge 0-3).
        g = TemporalGraph([0, 1, 0], [1, 2, 3], [1.0, 2.0, 3.0],
                          edge_feat=np.random.default_rng(0).normal(
                              size=(3, 172)))
        cfg = CFG
        rng_seed = 5

        def final_emb(layers, perturb):
            ml = MultiLayerTGNN(cfg, num_layers=layers,
                                rng=np.random.default_rng(rng_seed))
            rt = ml.new_runtime(g)
            with no_grad():
                ml.process_batch(g.slice(0, 2), rt, g)
                if perturb:   # change vertex 2's memory (2 hops from 0)
                    rt.state.memory[2] += 1.0
                res = ml.process_batch(g.slice(2, 3), rt, g)
            return res.embeddings.data[0]    # vertex 0's embedding

        one_a, one_b = final_emb(1, False), final_emb(1, True)
        two_a, two_b = final_emb(2, False), final_emb(2, True)
        assert np.allclose(one_a, one_b)        # 1 layer: 2-hop invisible
        assert not np.allclose(two_a, two_b)    # 2 layers: 2-hop visible

    def test_gradients_reach_both_layers(self):
        g = stream()
        ml = MultiLayerTGNN(CFG, num_layers=2, rng=np.random.default_rng(0))
        rt = ml.new_runtime(g)
        ml.process_batch(g.slice(0, 30), rt, g)
        res = ml.process_batch(g.slice(30, 60), rt, g)
        (res.embeddings ** 2).sum().backward()
        for name in ("attn0.w_v.weight", "attn1.w_v.weight",
                     "transform0.weight", "transform1.weight",
                     "memory_updater.gru.weight_ih"):
            p = dict(ml.named_parameters())[name]
            assert p.grad is not None, name

    def test_trainable_end_to_end(self):
        g = wikipedia_like(num_edges=400, num_users=60, num_items=15)
        ml = MultiLayerTGNN(CFG, num_layers=2, rng=np.random.default_rng(0))
        from repro.training import TrainConfig, Trainer
        trainer = Trainer(ml, g, TrainConfig(epochs=2, batch_size=50,
                                             seed=0))
        hist = trainer.train(train_end=280)
        assert hist[-1]["loss"] < hist[0]["loss"]
        res = trainer.evaluate(280, 400)
        assert res.ap > 0.5
