"""Elastic capacity: SLO-driven autoscaling on the event core (ISSUE 10).

Contracts pinned here:

* **Capacity identity** — :class:`CapacityConfig` validates
  ``micro_batch x replicas == global_capacity`` at construction, plus
  fleet bounds and the cold-start price.
* **Pool elasticity** — an overloaded pool grows one replica per
  decision (cold start priced by the dispatch rule), a burst-then-quiet
  trace produces both ups and downs, and every admitted job is still
  serviced exactly once through the scale chain.
* **Sharded elasticity** — scale-ups split the hottest shard's
  ownership into a freshly-activated station, scale-downs merge the
  drained station's ownership away; both ride the rebalancer's
  :class:`MigrationEvent` apply path, so exactly-once ownership and
  ``--memsync push`` bit-identity survive (the split exactness test
  replays a split pattern through :class:`ShardedRuntime`).
* **Replayability** — ``tracecheck``'s ``fleet-size`` check replays the
  ScaleEvent chain and lands on the live controller's fleet; fabricated
  corrupt chains are rejected with findings.
* **No-op** — an autoscaler whose band is never crossed leaves every
  report statistic identical to the plain engine (only the ``scaling``
  block differs, and it is omitted entirely when autoscaling is off).
"""

import numpy as np
import pytest

from repro.analysis.tracecheck import check_fleet_size, check_run
from repro.autograd import no_grad
from repro.datasets import wikipedia_like
from repro.graph import TemporalGraph, iter_fixed_size
from repro.models import ModelConfig, TGNN
from repro.pipeline import LinearCostBackend
from repro.serving import (HANDOFF_ROWS_PER_VERTEX, AutoScaler,
                           CapacityConfig, EventScheduler, MigrationEvent,
                           OnlineRebalancer, ScaleEvent, ServerGroup,
                           ServiceBeginEvent, ServiceEndEvent, ServingEngine,
                           ShardRouter, ShardedRuntime,
                           padded_hash_placement)

CFG = ModelConfig(memory_dim=8, time_dim=6, embed_dim=8, edge_dim=172,
                  num_neighbors=4, simplified_attention=True,
                  lut_time_encoder=True, lut_bins=8, pruning_budget=2)


def overload_graph():
    return wikipedia_like(num_edges=800, num_users=80, num_items=20)


def burst_then_quiet_graph(num_nodes=64, seed=3):
    """Dense early arrivals (queue builds, SLO breaches) followed by a
    long sparse tail (queue drains, p95 collapses into the low band)."""
    rng = np.random.default_rng(seed)
    n_burst, n_quiet = 600, 300
    t = np.concatenate([np.sort(rng.uniform(0.0, 3000.0, n_burst)),
                        np.sort(rng.uniform(3000.0, 60000.0, n_quiet))])
    n = n_burst + n_quiet
    src = rng.integers(0, num_nodes, n)
    dst = rng.integers(0, num_nodes, n)
    same = dst == src
    dst[same] = (dst[same] + 1) % num_nodes
    return TemporalGraph(src=src, dst=dst, t=t, num_nodes=num_nodes)


def pool_engine(g, auto, per_edge_s=20.0):
    return ServingEngine([LinearCostBackend(per_edge_s=per_edge_s)],
                         g.num_nodes, topology="pool", pool_servers=None,
                         autoscaler=auto)


def overload_autoscaler(**kwargs):
    cap = CapacityConfig(micro_batch=32, replicas=1, max_replicas=4)
    defaults = dict(slo_p95_s=10.0, scale_window_s=200.0)
    defaults.update(kwargs)
    return AutoScaler(cap, **defaults)


# --------------------------------------------------------------------------- #
class TestCapacityConfig:
    def test_derives_global_capacity(self):
        cap = CapacityConfig(micro_batch=32, replicas=3, max_replicas=8)
        assert cap.global_capacity == 96
        assert cap.capacity_at(8) == 256

    def test_explicit_identity_checked(self):
        CapacityConfig(micro_batch=4, replicas=2, max_replicas=4,
                       global_capacity=8)
        with pytest.raises(ValueError, match="global_capacity"):
            CapacityConfig(micro_batch=4, replicas=2, max_replicas=4,
                           global_capacity=9)

    def test_bounds_validated(self):
        with pytest.raises(ValueError, match="micro_batch"):
            CapacityConfig(micro_batch=0, replicas=1, max_replicas=2)
        with pytest.raises(ValueError, match="min_replicas"):
            CapacityConfig(micro_batch=1, replicas=1, max_replicas=2,
                           min_replicas=0)
        with pytest.raises(ValueError, match="replicas must satisfy"):
            CapacityConfig(micro_batch=1, replicas=5, max_replicas=4)
        with pytest.raises(ValueError, match="replicas must satisfy"):
            CapacityConfig(micro_batch=1, replicas=1, max_replicas=4,
                           min_replicas=2)
        with pytest.raises(ValueError, match="cold_start_s"):
            CapacityConfig(micro_batch=1, replicas=1, max_replicas=2,
                           cold_start_s=-1.0)

    def test_capacity_at_respects_bounds(self):
        cap = CapacityConfig(micro_batch=8, replicas=2, max_replicas=4,
                             min_replicas=2)
        with pytest.raises(ValueError):
            cap.capacity_at(1)
        with pytest.raises(ValueError):
            cap.capacity_at(5)

    def test_frozen(self):
        cap = CapacityConfig(micro_batch=1, replicas=1, max_replicas=2)
        with pytest.raises(AttributeError):
            cap.replicas = 3


class TestAutoScalerValidation:
    def test_parameter_validation(self):
        cap = CapacityConfig(micro_batch=1, replicas=1, max_replicas=2)
        with pytest.raises(TypeError, match="CapacityConfig"):
            AutoScaler({"replicas": 1}, slo_p95_s=1.0, scale_window_s=1.0)
        with pytest.raises(ValueError):
            AutoScaler(cap, slo_p95_s=0.0, scale_window_s=1.0)
        with pytest.raises(ValueError):
            AutoScaler(cap, slo_p95_s=1.0, scale_window_s=0.0)
        with pytest.raises(ValueError):
            AutoScaler(cap, slo_p95_s=1.0, scale_window_s=1.0,
                       low_band_frac=1.0)
        with pytest.raises(ValueError):
            AutoScaler(cap, slo_p95_s=1.0, scale_window_s=1.0,
                       cooldown_windows=-1)

    def test_observe_requires_bind(self):
        auto = overload_autoscaler()
        with pytest.raises(RuntimeError, match="bind"):
            auto.observe(0.0)

    def test_pool_bind_checks_group_size(self):
        auto = overload_autoscaler()          # capacity.replicas == 1
        sched = EventScheduler()
        with pytest.raises(ValueError, match="capacity.replicas"):
            auto.bind(sched, [ServerGroup(0, 2, lambda _p: 1.0, sched)])
        with pytest.raises(ValueError, match="exactly one"):
            auto.bind(sched, [ServerGroup(i, 1, lambda _p: 1.0, sched)
                              for i in range(2)])

    def test_sharded_bind_checks_station_count(self):
        auto = overload_autoscaler()          # max_replicas == 4
        sched = EventScheduler()
        groups = [ServerGroup(i, 1, lambda _p: 1.0, sched)
                  for i in range(2)]
        with pytest.raises(ValueError, match="one station per fleet"):
            auto.bind(sched, groups, router=ShardRouter(2, 16))

    def test_sharded_bind_rejects_active_tail_ownership(self):
        # replicas == 1 but a plain 4-shard hash assignment owns vertices
        # on shards 1..3: the initial active set would not cover them.
        auto = overload_autoscaler()
        sched = EventScheduler()
        groups = [ServerGroup(i, 1, lambda _p: 1.0, sched)
                  for i in range(4)]
        with pytest.raises(ValueError, match="active set"):
            auto.bind(sched, groups, router=ShardRouter(4, 16))

    def test_engine_rejects_autoscaler_with_rebalancer(self):
        g = overload_graph()
        with pytest.raises(ValueError, match="rebalancing"):
            ServingEngine([LinearCostBackend()], g.num_nodes,
                          topology="pool",
                          rebalancer=OnlineRebalancer(window_s=1.0),
                          autoscaler=overload_autoscaler())

    def test_engine_rejects_pool_size_mismatch(self):
        g = overload_graph()
        with pytest.raises(ValueError, match="pool_servers"):
            ServingEngine([LinearCostBackend()], g.num_nodes,
                          topology="pool", pool_servers=2,
                          autoscaler=overload_autoscaler())

    def test_engine_rejects_sharded_backend_count_mismatch(self):
        g = overload_graph()
        with pytest.raises(ValueError, match="one backend per fleet"):
            ServingEngine([LinearCostBackend() for _ in range(2)],
                          g.num_nodes,
                          autoscaler=overload_autoscaler())


# --------------------------------------------------------------------------- #
class TestServerGroupElastic:
    def make(self, servers=1, service_s=1.0):
        sched = EventScheduler()
        grp = ServerGroup(0, servers, lambda _p: service_s, sched)
        responses = []
        grp.on_serviced = lambda f, r: responses.append((f, r))
        return sched, grp, responses

    def test_cold_start_prices_first_job(self):
        sched, grp, responses = self.make()
        grp.submit(0.0, "a")                  # server 0: [0, 1]
        assert grp.scale_up(0.0, cold_start_s=5.0) == 1
        assert grp.num_servers == 2
        grp.submit(0.1, "b")                  # only server 1 is idle
        # The newcomer is free at t=5: the job begins when the warm-up
        # completes, so its response carries the cold start.
        assert responses[-1] == (6.0, pytest.approx(5.9))

    def test_negative_cold_start_rejected(self):
        _, grp, _ = self.make()
        with pytest.raises(ValueError):
            grp.scale_up(0.0, cold_start_s=-1.0)

    def test_server_ids_never_reused(self):
        sched, grp, _ = self.make(servers=2)
        assert grp.scale_up(0.0) == 2
        assert grp.scale_down(1.0) in (0, 1, 2)
        # The next scale-up mints a fresh id even though a slot just
        # left: trace rows stay unambiguous across the cycle.
        assert grp.scale_up(2.0) == 3

    def test_scale_down_prefers_idle_server(self):
        sched, grp, _ = self.make(servers=1)
        grp.submit(0.0, "a")                  # server 0 busy until 1.0
        grp.scale_up(0.0, cold_start_s=9.0)   # server 1 idle, still cold
        assert grp.scale_down(0.5) == 1       # the warming idler retires
        assert grp.num_servers == 1

    def test_scale_down_drains_busy_server(self):
        sched, grp, responses = self.make(servers=2, service_s=10.0)
        grp.submit(0.0, "a")
        grp.submit(0.0, "b")                  # both servers busy
        assert grp.scale_down(1.0) == 1       # nobody idle: drain top id
        assert grp.num_servers == 1
        sched.run()
        # The committed job still finishes (priced at begin, like a dead
        # shard's in-flight work) — then the server leaves the fleet.
        assert responses == [(10.0, 10.0), (10.0, 10.0)]
        assert grp._retired == {1}

    def test_scale_down_below_one_server_rejected(self):
        _, grp, _ = self.make(servers=1)
        with pytest.raises(ValueError, match="below one"):
            grp.scale_down(0.0)


# --------------------------------------------------------------------------- #
class TestPoolScaling:
    def run_overloaded(self, cold_start_s=0.0, trace=False):
        g = overload_graph()
        auto = overload_autoscaler() if cold_start_s == 0.0 else \
            AutoScaler(CapacityConfig(micro_batch=32, replicas=1,
                                      max_replicas=4,
                                      cold_start_s=cold_start_s),
                       slo_p95_s=10.0, scale_window_s=200.0)
        engine = pool_engine(g, auto)
        rep = engine.run(g, window_s=100.0, speedup=200.0, num_streams=2,
                         trace=trace)
        return engine, auto, rep

    def test_overload_scales_to_max(self):
        engine, auto, rep = self.run_overloaded()
        assert auto.scale_ups == 3            # 1 -> 4, one per decision
        assert auto.scale_downs == 0
        assert auto.fleet_size == 4
        s = rep.scaling
        assert s is not None
        assert s["initial_servers"] == 1 and s["final_servers"] == 4
        assert s["peak_servers"] == 4
        assert s["scale_ups"] == 3 and s["scale_downs"] == 0
        assert s["handoff_rows"] == 0         # stateless pool replicas
        assert 1.0 < s["mean_servers"] < 4.0
        assert s["server_seconds"] == pytest.approx(
            s["mean_servers"] * rep.makespan_s)

    def test_scale_chain_replays_clean(self):
        engine, auto, rep = self.run_overloaded(trace=True)
        assert auto.scale_ups > 0
        report = check_run(engine=engine, report=rep)
        assert "fleet-size" in report.checks
        assert report.findings == []
        # Fleet conservation from the raw trace, independently of
        # check_run's wiring.
        scale_events = [e for e in engine.last_event_trace
                        if isinstance(e, ScaleEvent)]
        assert len(scale_events) == 3
        assert check_fleet_size(scale_events, 1, 4) == []

    def test_jobs_serviced_exactly_once_through_scale_chain(self):
        engine, auto, rep = self.run_overloaded(trace=True)
        assert auto.scale_ups > 0
        assert rep.windows + rep.dropped_windows == engine.last_num_arrivals
        assert rep.dropped_windows == 0
        trace = engine.last_event_trace
        begins = [e for e in trace if isinstance(e, ServiceBeginEvent)]
        ends = [e for e in trace if isinstance(e, ServiceEndEvent)]
        assert len(begins) == len(ends) == rep.windows
        assert len({(e.group, e.index) for e in begins}) == len(begins)
        assert len({(e.group, e.index) for e in ends}) == len(ends)

    def test_cold_start_delays_the_relief(self):
        # Same decisions, pricier warm-up: the scale chain is identical
        # but every post-scale job starts no earlier, so p95 can only
        # get worse with a cold start.
        _, free_auto, free = self.run_overloaded(cold_start_s=0.0)
        _, cold_auto, cold = self.run_overloaded(cold_start_s=50.0)
        assert free_auto.scale_ups == cold_auto.scale_ups > 0
        assert cold.scaling["cold_start_s"] == 50.0
        assert cold.p95_response_s >= free.p95_response_s

    def test_burst_then_quiet_scales_both_ways(self):
        g = burst_then_quiet_graph()
        cap = CapacityConfig(micro_batch=8, replicas=1, max_replicas=4)
        auto = AutoScaler(cap, slo_p95_s=30.0, scale_window_s=20.0)
        engine = pool_engine(g, auto, per_edge_s=1.0)
        rep = engine.run(g, window_s=50.0, speedup=100.0, num_streams=2,
                         trace=True)
        assert auto.scale_ups > 0
        assert auto.scale_downs > 0
        # Band hysteresis: every decision names its edge of the band.
        reasons = {ev.reason for ev in auto.scale_log}
        assert reasons == {"slo-breach", "slo-slack"}
        assert rep.scaling["final_servers"] == auto.fleet_size
        assert check_run(engine=engine, report=rep).findings == []

    def test_cooldown_separates_decisions(self):
        engine, auto, rep = self.run_overloaded()
        closes = [ev.t for ev in auto.scale_log]
        # Decisions happen at window closes, and a cooldown window must
        # pass between consecutive ones: gaps of at least two windows.
        for a, b in zip(closes, closes[1:]):
            assert b - a >= 2 * auto.scale_window_s - 1e-9


# --------------------------------------------------------------------------- #
class TestShardedScaling:
    def sharded_engine(self, g, auto, active, per_edge_s=20.0,
                       memsync="none"):
        placement = padded_hash_placement(
            g.num_nodes, active, auto.capacity.max_replicas)
        return ServingEngine(
            [LinearCostBackend(per_edge_s=per_edge_s) for _ in range(4)],
            g.num_nodes, placement=placement, memsync=memsync,
            autoscaler=auto)

    def test_padded_placement_validation(self):
        with pytest.raises(ValueError):
            padded_hash_placement(16, 0, 4)
        with pytest.raises(ValueError):
            padded_hash_placement(16, 5, 4)
        p = padded_hash_placement(16, 2, 4)
        assert p.num_shards == 4
        assert int(p.assignment.max()) == 1   # tail owns nothing

    def test_overload_splits_ownership(self):
        g = overload_graph()
        auto = overload_autoscaler()
        engine = self.sharded_engine(g, auto, active=1, memsync="push")
        rep = engine.run(g, window_s=100.0, speedup=200.0, num_streams=2,
                         trace=True)
        assert auto.scale_ups == 3
        assert auto.migration_log                # splits actually moved
        assert {ev.reason for ev in auto.migration_log} == {"split"}
        # Each activated station now owns something, and ownership is
        # exactly-once throughout the chain.
        assert (engine.router._member.sum(axis=0) == 1).all()
        for shard in range(auto.fleet_size):
            assert (engine.router.assignment == shard).any()
        # Rows accounting: every split vertex priced the same handoff as
        # a rebalancer migration, and the report carries the total.
        expected = len(auto.migration_log) * HANDOFF_ROWS_PER_VERTEX
        assert auto.handoff_rows == expected
        assert rep.scaling["handoff_rows"] == expected
        assert check_run(engine=engine, report=rep).findings == []

    def test_split_migrations_replay_exactly_once(self):
        g = overload_graph()
        auto = overload_autoscaler()
        engine = self.sharded_engine(g, auto, active=1)
        initial = engine.router.assignment.copy()
        engine.run(g, window_s=100.0, speedup=200.0, num_streams=2,
                   trace=True)
        migrations = [e for e in engine.last_event_trace
                      if isinstance(e, MigrationEvent)]
        assert len(migrations) == len(auto.migration_log) > 0
        owner = initial.copy()
        for ev in migrations:
            assert owner[ev.vertex] == ev.from_shard
            assert ev.from_shard != ev.to_shard
            owner[ev.vertex] = ev.to_shard
        assert np.array_equal(owner, engine.router.assignment)

    def test_quiet_fleet_merges_down(self):
        g = overload_graph()
        cap = CapacityConfig(micro_batch=32, replicas=2, max_replicas=4)
        auto = AutoScaler(cap, slo_p95_s=100.0, scale_window_s=200.0,
                          low_band_frac=0.9)
        engine = self.sharded_engine(g, auto, active=2, per_edge_s=2e-3,
                                     memsync="push")
        rep = engine.run(g, window_s=100.0, speedup=200.0, num_streams=2,
                         trace=True)
        assert auto.scale_downs == 1          # 2 -> min fleet of 1
        assert auto.fleet_size == 1
        assert {ev.reason for ev in auto.migration_log} == {"merge"}
        # The drained station owns nothing: the router can never send it
        # another sub-job.
        assert not (engine.router.assignment >= 1).any()
        assert (engine.router._member.sum(axis=0) == 1).all()
        assert rep.scaling["final_servers"] == 1
        assert check_run(engine=engine, report=rep).findings == []


# --------------------------------------------------------------------------- #
class TestSplitExactness:
    """A split's coherence side loses nothing, bit-for-bit: migrating a
    shard's hotter half into a previously-empty padded station keeps a
    functional ``push`` replay identical to the unsharded runtime —
    the engine-level split rides exactly this transfer."""

    def test_split_into_empty_station_stays_bit_identical(self):
        g = wikipedia_like(num_edges=600, num_users=80, num_items=20)
        model = TGNN(CFG, rng=np.random.default_rng(0))
        model.calibrate(g)
        rt = model.new_runtime(g)
        with no_grad():
            for b in iter_fixed_size(g, 50):
                model.process_batch(b, rt, g)
        placement = padded_hash_placement(g.num_nodes, 2, 3)
        srt = ShardedRuntime(model, g, placement=placement, policy="push")
        batches = list(iter_fixed_size(g, 50))
        split_at = len(batches) // 2
        with no_grad():
            for i, batch in enumerate(batches):
                if i == split_at:
                    # The split: half of shard 0's ownership moves onto
                    # the empty station 2, exactly as _plan_split does.
                    owned = np.flatnonzero(srt.router.assignment == 0)
                    moved = srt.migrate(owned[:len(owned) // 2], 2)
                    assert moved > 0
                srt.process_batch(batch)
        assert (srt.router.assignment == 2).any()
        assert (srt.router._member.sum(axis=0) == 1).all()
        assert srt.cache.stale_reads == 0
        assert srt.cache.max_version_lag == 0
        for shard in range(3):
            held = srt.held_vertices(shard)
            st = srt.runtimes[shard].state
            assert np.array_equal(st.memory[held], rt.state.memory[held])
            assert np.array_equal(st.mailbox[held],
                                  rt.state.mailbox[held])


# --------------------------------------------------------------------------- #
class TestAutoscaleOffNoOp:
    def test_untriggered_band_leaves_statistics_identical(self):
        g = overload_graph()

        def run(auto):
            engine = ServingEngine([LinearCostBackend(per_edge_s=1e-3)],
                                   g.num_nodes, topology="pool",
                                   pool_servers=2, autoscaler=auto)
            return engine.run(g, window_s=3600.0, speedup=2.0,
                              num_streams=2)

        base = run(None)
        # A band nothing crosses: breach needs p95 > 1e6, slack needs
        # p95 <= 0 — the controller observes every window and never acts.
        cap = CapacityConfig(micro_batch=1, replicas=2, max_replicas=4)
        scaled = run(AutoScaler(cap, slo_p95_s=1e6, scale_window_s=100.0,
                                low_band_frac=0.0))
        s = scaled.to_dict()
        assert s.pop("scaling")["scale_ups"] == 0
        assert s == base.to_dict()

    def test_scaling_block_omitted_when_off(self):
        g = overload_graph()
        engine = ServingEngine([LinearCostBackend(per_edge_s=1e-3)],
                               g.num_nodes, topology="pool",
                               pool_servers=2)
        rep = engine.run(g, window_s=3600.0, speedup=2.0, num_streams=2)
        assert rep.scaling is None
        assert "scaling" not in rep.to_dict()
        assert '"scaling"' not in rep.to_json()


# --------------------------------------------------------------------------- #
def scale_ev(t, kind, before, after, reason="slo-breach"):
    return ScaleEvent(t=t, kind=kind, shard=0, servers_before=before,
                      servers_after=after, rows=0, reason=reason)


class TestCheckFleetSize:
    def test_clean_chain(self):
        trace = [scale_ev(1.0, "up", 1, 2), scale_ev(2.0, "up", 2, 3),
                 scale_ev(3.0, "down", 3, 2)]
        assert check_fleet_size(trace, 1, 2) == []

    def test_bogus_kind(self):
        findings = check_fleet_size([scale_ev(1.0, "sideways", 1, 2)], 1)
        assert len(findings) == 1 and "sideways" in findings[0].detail

    def test_step_must_be_one(self):
        findings = check_fleet_size([scale_ev(1.0, "up", 1, 3)], 1)
        assert any("1 -> 3" in f.detail for f in findings)

    def test_stale_decision_detected(self):
        trace = [scale_ev(1.0, "up", 1, 2), scale_ev(2.0, "up", 1, 2)]
        findings = check_fleet_size(trace, 1)
        assert any("stale" in f.detail for f in findings)

    def test_fleet_never_empties(self):
        findings = check_fleet_size([scale_ev(1.0, "down", 1, 0)], 1)
        assert findings

    def test_final_fleet_mismatch(self):
        findings = check_fleet_size([scale_ev(1.0, "up", 1, 2)], 1,
                                    final_servers=3)
        assert any("live controller" in f.detail for f in findings)


class TestReportBlock:
    def test_server_seconds_integral(self):
        auto = overload_autoscaler()
        sched = EventScheduler()
        auto.bind(sched, [ServerGroup(0, 1, lambda _p: 1.0, sched)])
        auto.scale_log.append(scale_ev(4.0, "up", 1, 2))
        auto.scale_log.append(scale_ev(7.0, "up", 2, 3))
        auto.fleet_size = 3
        block = auto.report_block(0.0, 10.0)
        # 1 server for 4s, 2 for 3s, 3 for the last 3s.
        assert block["server_seconds"] == pytest.approx(19.0)
        assert block["mean_servers"] == pytest.approx(1.9)
        assert block["peak_servers"] == 3
        assert block["initial_servers"] == 1
        assert block["final_servers"] == 3
        assert block["scale_ups"] == 2 and block["scale_downs"] == 0

    def test_events_clamped_to_run_span(self):
        auto = overload_autoscaler()
        sched = EventScheduler()
        auto.bind(sched, [ServerGroup(0, 1, lambda _p: 1.0, sched)])
        auto.scale_log.append(scale_ev(50.0, "up", 1, 2))
        auto.fleet_size = 2
        block = auto.report_block(0.0, 10.0)
        # The scale instant lies past the integration end: clamped.
        assert block["server_seconds"] == pytest.approx(10.0)
        assert block["peak_servers"] == 2
