"""Unit tests for differentiable functional blocks."""

import numpy as np

from repro.autograd import Tensor, check_gradients
from repro.autograd import functional as F


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(0).normal(size=(4, 5)))
        s = F.softmax(x, axis=-1).data
        assert np.allclose(s.sum(axis=-1), 1.0)

    def test_shift_invariance(self):
        x = np.random.default_rng(1).normal(size=(3, 4))
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + 100.0)).data
        assert np.allclose(a, b)

    def test_extreme_values_stable(self):
        x = Tensor(np.array([[1e30, 0.0, -1e30]]))
        s = F.softmax(x).data
        assert np.all(np.isfinite(s))
        assert np.allclose(s, [[1.0, 0.0, 0.0]])

    def test_log_softmax_consistency(self):
        x = Tensor(np.random.default_rng(2).normal(size=(3, 6)))
        assert np.allclose(F.log_softmax(x).data,
                           np.log(F.softmax(x).data), atol=1e-12)

    def test_softmax_gradient(self):
        x = Tensor(np.random.default_rng(3).normal(size=(2, 4)),
                   requires_grad=True)
        check_gradients(lambda t: (F.softmax(t) ** 2).sum(), [x])


class TestMaskedSoftmax:
    def test_masked_positions_zero(self):
        x = Tensor(np.zeros((2, 4)))
        mask = np.array([[True, True, False, False],
                         [True, False, False, False]])
        s = F.masked_softmax(x, mask).data
        assert np.allclose(s[0], [0.5, 0.5, 0.0, 0.0])
        assert np.allclose(s[1], [1.0, 0.0, 0.0, 0.0])

    def test_fully_masked_row_is_zero_not_nan(self):
        x = Tensor(np.ones((1, 3)))
        s = F.masked_softmax(x, np.zeros((1, 3), dtype=bool)).data
        assert np.allclose(s, 0.0)
        assert np.all(np.isfinite(s))

    def test_gradient_flows_only_through_valid(self):
        mask = np.array([[True, True, False]])
        x = Tensor(np.array([[1.0, 2.0, 3.0]]), requires_grad=True)
        (F.masked_softmax(x, mask) ** 2).sum().backward()
        assert x.grad[0, 2] == 0.0
        check_gradients(lambda t: (F.masked_softmax(t, mask) ** 2).sum(), [x])


class TestLosses:
    def test_bce_matches_reference(self):
        logits = np.array([0.0, 2.0, -2.0])
        targets = np.array([1.0, 1.0, 0.0])
        got = F.bce_with_logits(Tensor(logits), targets).item()
        p = 1.0 / (1.0 + np.exp(-logits))
        ref = -(targets * np.log(p) + (1 - targets) * np.log(1 - p)).mean()
        assert abs(got - ref) < 1e-10

    def test_bce_extreme_logits_finite(self):
        out = F.bce_with_logits(Tensor([1000.0, -1000.0]),
                                np.array([0.0, 1.0]))
        assert np.isfinite(out.item())

    def test_bce_gradient(self):
        x = Tensor(np.random.default_rng(0).normal(size=6),
                   requires_grad=True)
        t = np.random.default_rng(1).integers(0, 2, 6).astype(float)
        check_gradients(lambda z: F.bce_with_logits(z, t), [x])

    def test_soft_ce_minimized_when_matching(self):
        teacher = np.array([[2.0, 0.0, -1.0]])
        same = F.soft_cross_entropy(Tensor(teacher), teacher).item()
        worse = F.soft_cross_entropy(Tensor(-teacher), teacher).item()
        assert same < worse

    def test_soft_ce_temperature_softens(self):
        teacher = np.array([[5.0, 0.0, 0.0]])
        student = Tensor(np.array([[0.0, 5.0, 0.0]]))
        hot = F.soft_cross_entropy(student, teacher, temperature=10.0).item()
        cold = F.soft_cross_entropy(student, teacher, temperature=0.5).item()
        assert hot < cold  # high T -> softer targets -> smaller penalty

    def test_soft_ce_masked_rows(self):
        teacher = np.array([[1.0, 2.0, 9.9], [0.0, 0.0, 0.0]])
        mask = np.array([[True, True, False], [False, False, False]])
        student = Tensor(np.array([[1.0, 2.0, -5.0], [7.0, 7.0, 7.0]]),
                         requires_grad=True)
        loss = F.soft_cross_entropy(student, teacher, mask=mask)
        loss.backward()
        # Masked column and fully-masked row contribute no gradient.
        assert np.allclose(student.grad[0, 2], 0.0)
        assert np.allclose(student.grad[1], 0.0)

    def test_soft_ce_gradient(self):
        teacher = np.random.default_rng(2).normal(size=(3, 4))
        x = Tensor(np.random.default_rng(3).normal(size=(3, 4)),
                   requires_grad=True)
        check_gradients(
            lambda t: F.soft_cross_entropy(t, teacher, temperature=2.0), [x])

    def test_mse(self):
        pred = Tensor(np.array([1.0, 2.0]))
        assert abs(F.mse_loss(pred, np.array([0.0, 0.0])).item() - 2.5) < 1e-12

    def test_dot_rows(self):
        a = Tensor(np.ones((2, 3)))
        b = Tensor(np.full((2, 3), 2.0))
        assert np.allclose(F.dot_rows(a, b).data, [6.0, 6.0])
