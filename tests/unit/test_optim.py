"""Unit tests for optimisers and gradient clipping."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.autograd.module import Parameter
from repro.autograd.optim import SGD, Adam, clip_grad_norm


def quadratic_loss(p: Parameter) -> Tensor:
    return ((p - 3.0) ** 2).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(4))
        opt = SGD([p], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        assert np.allclose(p.data, 3.0, atol=1e-3)

    def test_momentum_faster_than_plain(self):
        def run(momentum):
            p = Parameter(np.zeros(1))
            opt = SGD([p], lr=0.02, momentum=momentum)
            for _ in range(50):
                opt.zero_grad()
                quadratic_loss(p).backward()
                opt.step()
            return abs(p.data[0] - 3.0)
        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks(self):
        p = Parameter(np.full(3, 10.0))
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        # With zero loss gradient, decay alone must shrink the weights.
        p.grad = np.zeros(3)
        opt.step()
        assert np.all(np.abs(p.data) < 10.0)

    def test_empty_parameters_raise(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(4))
        opt = Adam([p], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        assert np.allclose(p.data, 3.0, atol=1e-2)

    def test_bias_correction_first_step_magnitude(self):
        # First Adam step is ~lr regardless of gradient scale.
        for scale in (1e-3, 1e3):
            p = Parameter(np.zeros(1))
            opt = Adam([p], lr=0.01)
            p.grad = np.array([scale])
            opt.step()
            assert abs(abs(p.data[0]) - 0.01) < 1e-3

    def test_skips_gradless_parameters(self):
        p1, p2 = Parameter(np.zeros(2)), Parameter(np.ones(2))
        opt = Adam([p1, p2], lr=0.1)
        p1.grad = np.ones(2)
        opt.step()
        assert np.allclose(p2.data, 1.0)
        assert not np.allclose(p1.data, 0.0)


class TestClipGradNorm:
    def test_clips_large_norm(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 10.0)
        pre = clip_grad_norm([p], max_norm=1.0)
        assert pre == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_leaves_small_norm(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 0.1)
        clip_grad_norm([p], max_norm=10.0)
        assert np.allclose(p.grad, 0.1)

    def test_handles_missing_grads(self):
        p = Parameter(np.zeros(4))
        assert clip_grad_norm([p], max_norm=1.0) == 0.0
