"""Unit tests for the event-trace checker (repro.analysis.tracecheck).

Two halves:

* **known-bad traces** — hand-built traces that violate exactly one
  invariant each must be flagged with the right finding type;
* **clean-run property** — real engine runs from the PR 4-7 suites
  (plain sharded, pipelined ingest, online rebalancing under drift,
  failure injection, heap-vs-vectorized lanes) must yield zero findings.
"""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.analysis.tracecheck import (TraceCheckReport, TraceFinding,
                                       check_causality, check_conservation,
                                       check_lane_agreement,
                                       check_mail_at_flush,
                                       check_ownership_chain, check_run,
                                       check_service_exactly_once)
from repro.datasets import drifting_hot_set_graph, wikipedia_like
from repro.pipeline import LinearCostBackend
from repro.serving import (FailurePlan, FlushEvent, HeapEventScheduler,
                           MailEvent, MigrationEvent, OnlineRebalancer,
                           ServiceBeginEvent, ServiceEndEvent, ServingEngine)


def checks_of(findings):
    return [f.check for f in findings]


# --------------------------------------------------------------------------- #
class TestKnownBadTraces:
    def test_past_scheduling_flags_causality(self):
        trace = [FlushEvent(1.0, "size", 1),
                 FlushEvent(0.5, "timeout", 1),      # recorded into the past
                 FlushEvent(2.0, "size", 1)]
        fs = check_causality(trace)
        assert checks_of(fs) == ["causality"]
        assert fs[0].t == 0.5
        assert "into the past" in fs[0].detail

    def test_monotone_trace_is_clean(self):
        trace = [FlushEvent(0.0, "size", 1), FlushEvent(0.0, "size", 1),
                 FlushEvent(1.0, "timeout", 1)]
        assert check_causality(trace) == []

    def test_duplicate_begin_flags_exactly_once(self):
        trace = [ServiceBeginEvent(0.0, 0, 0, 7),
                 ServiceBeginEvent(0.1, 0, 1, 7),    # same (group, index)
                 ServiceEndEvent(0.2, 0, 0, 7)]
        fs = check_service_exactly_once(trace)
        assert "exactly-once-service" in checks_of(fs)
        assert any("began twice" in f.detail for f in fs)

    def test_lost_job_flags_exactly_once(self):
        trace = [ServiceBeginEvent(0.0, 0, 0, 7)]    # never ends
        fs = check_service_exactly_once(trace)
        assert checks_of(fs) == ["exactly-once-service"]
        assert "never ended" in fs[0].detail

    def test_end_without_begin_flags_exactly_once(self):
        fs = check_service_exactly_once([ServiceEndEvent(0.2, 0, 0, 7)])
        assert checks_of(fs) == ["exactly-once-service"]
        assert "without" in fs[0].detail

    def test_overlapping_service_flags_busy_overlap(self):
        trace = [ServiceBeginEvent(0.0, 0, 0, 1),
                 ServiceBeginEvent(0.5, 0, 0, 2),    # same server, mid-span
                 ServiceEndEvent(1.0, 0, 0, 1),
                 ServiceEndEvent(1.5, 0, 0, 2)]
        fs = check_service_exactly_once(trace)
        assert checks_of(fs) == ["busy-overlap"]
        assert fs[0].t == 0.5

    def test_abutting_spans_are_clean(self):
        trace = [ServiceBeginEvent(0.0, 0, 0, 1),
                 ServiceEndEvent(1.0, 0, 0, 1),
                 ServiceBeginEvent(1.0, 0, 0, 2),    # back-to-back is fine
                 ServiceEndEvent(2.0, 0, 0, 2)]
        assert check_service_exactly_once(trace) == []

    def test_overlap_on_distinct_servers_is_clean(self):
        trace = [ServiceBeginEvent(0.0, 0, 0, 1),
                 ServiceBeginEvent(0.5, 0, 1, 2),    # different server
                 ServiceEndEvent(1.0, 0, 0, 1),
                 ServiceEndEvent(1.5, 0, 1, 2)]
        assert check_service_exactly_once(trace) == []

    def test_mail_away_from_flush_is_flagged(self):
        trace = [FlushEvent(1.0, "size", 1),
                 MailEvent(1.0, 0, 1, 5),            # at the flush: fine
                 MailEvent(2.5, 0, 1, 5)]            # away from any flush
        fs = check_mail_at_flush(trace)
        assert checks_of(fs) == ["mail-at-flush"]
        assert fs[0].t == 2.5

    def test_self_migration_is_flagged(self):
        trace = [MigrationEvent(1.0, 3, 2, 2, 4, "hot")]
        fs = check_ownership_chain(trace, [0, 0, 0, 2])
        assert checks_of(fs) == ["ownership-chain"]
        assert "own shard" in fs[0].detail

    def test_wrong_owner_is_double_ownership(self):
        trace = [MigrationEvent(1.0, 3, 1, 0, 4, "hot")]   # owner is 2
        fs = check_ownership_chain(trace, [0, 0, 0, 2])
        assert checks_of(fs) == ["ownership-chain"]
        assert "double ownership" in fs[0].detail

    def test_final_assignment_mismatch_is_flagged(self):
        trace = [MigrationEvent(1.0, 0, 0, 1, 4, "hot")]
        fs = check_ownership_chain(trace, [0, 0], final_assignment=[0, 0])
        assert checks_of(fs) == ["ownership-chain"]
        assert "disagrees" in fs[0].detail

    def test_valid_chain_is_clean(self):
        trace = [MigrationEvent(1.0, 0, 0, 1, 4, "hot"),
                 MigrationEvent(2.0, 0, 1, 2, 4, "hot")]   # chained handoff
        assert check_ownership_chain(trace, [0, 9],
                                     final_assignment=[2, 9]) == []

    def test_dropped_job_breaks_report_conservation(self):
        report = SimpleNamespace(windows=3, dropped_windows=0)
        fs = check_conservation(4, report=report)
        assert checks_of(fs) == ["conservation"]
        assert "4 were offered" in fs[0].detail

    def test_report_with_drops_conserves(self):
        report = SimpleNamespace(windows=3, dropped_windows=1)
        assert check_conservation(4, report=report) == []

    def test_flush_sum_breaks_trace_conservation(self):
        trace = [FlushEvent(1.0, "size", 2), FlushEvent(2.0, "timeout", 1)]
        fs = check_conservation(4, trace=trace)
        assert checks_of(fs) == ["conservation"]
        assert "flushed 3" in fs[0].detail
        assert check_conservation(3, trace=trace) == []

    def test_equal_t_reorder_is_same_key_order(self):
        a = ServiceBeginEvent(1.0, 0, 0, 1)
        b = FlushEvent(1.0, "size", 1)
        fs = check_lane_agreement([a, b], [b, a])
        assert checks_of(fs) == ["same-key-order"]
        assert "equal" in fs[0].detail

    def test_different_t_divergence_is_lane_divergence(self):
        fs = check_lane_agreement([FlushEvent(1.0, "size", 1)],
                                  [FlushEvent(2.0, "size", 1)])
        assert checks_of(fs) == ["lane-divergence"]

    def test_length_mismatch_is_lane_divergence(self):
        ev = FlushEvent(1.0, "size", 1)
        fs = check_lane_agreement([ev, FlushEvent(2.0, "size", 1)], [ev])
        assert checks_of(fs) == ["lane-divergence"]
        assert "1 events" in fs[0].detail or "2 events" in fs[0].detail

    def test_identical_lanes_agree(self):
        trace = [FlushEvent(1.0, "size", 1), ServiceBeginEvent(1.0, 0, 0, 1)]
        assert check_lane_agreement(trace, list(trace)) == []


class TestReportObject:
    def test_render_clean_and_dirty(self):
        assert TraceCheckReport(events=5, checks=("causality",)).render() \
            == "trace check: clean (5 events, 1 checks)"
        rep = TraceCheckReport(
            findings=[TraceFinding("causality", 1.0, "boom")], events=5)
        text = rep.render()
        assert "[causality] @ t=1 boom" in text
        assert "1 finding(s) over 5 events" in text
        assert not rep.ok
        assert rep.counts() == {"causality": 1}

    def test_check_run_requires_trace(self):
        with pytest.raises(ValueError, match="trace=True"):
            check_run(report=None)


# --------------------------------------------------------------------------- #
def wiki_graph():
    return wikipedia_like(num_edges=600, num_users=80, num_items=20)


def fresh_engine(g, shards=2, **kw):
    return ServingEngine(
        [LinearCostBackend(per_edge_s=2e-3) for _ in range(shards)],
        g.num_nodes, **kw)


def run_checked(engine, g, **run_kw):
    initial = engine.router.assignment.copy()
    rep = engine.run(g, trace=True, **run_kw)
    return check_run(engine=engine, report=rep, initial_assignment=initial)


class TestCleanRunsYieldZeroFindings:
    """The PR 4-7 behaviors pass every invariant the checker encodes."""

    def test_plain_sharded_run(self):
        result = run_checked(fresh_engine(wiki_graph()), wiki_graph(),
                             window_s=3600.0, num_streams=2, speedup=100.0)
        assert result.ok, result.render()
        assert result.events > 0
        assert set(result.checks) >= {"causality", "exactly-once-service",
                                      "mail-at-flush", "ownership-chain",
                                      "conservation"}

    def test_pipelined_ingest_run(self):
        result = run_checked(fresh_engine(wiki_graph()), wiki_graph(),
                             window_s=3600.0, num_streams=2, speedup=100.0,
                             ingest="pipelined")
        assert result.ok, result.render()

    def test_online_rebalance_under_drift(self):
        g = drifting_hot_set_graph(1600, 4, num_nodes=128, phases=8,
                                   hot_size=6, seed=5)
        reb = OnlineRebalancer(window_s=0.5, util_threshold=0.5,
                               cooldown_windows=1)
        engine = ServingEngine(
            [LinearCostBackend(per_edge_s=6e-3) for _ in range(4)],
            g.num_nodes, rebalancer=reb, memsync="push")
        initial = engine.router.assignment.copy()
        rep = engine.run(g, window_s=250.0, num_streams=2, speedup=2400.0,
                         trace=True)
        result = check_run(engine=engine, report=rep,
                           initial_assignment=initial)
        assert result.ok, result.render()
        assert rep.migrations > 0   # the drift actually moved vertices

    def test_failover_chaos_run(self):
        g = wiki_graph()
        engine = fresh_engine(
            g, shards=2,
            failures=FailurePlan(fail_at=5.0, shard=1, mode="dead",
                                 recover_at=20.0))
        result = run_checked(engine, g, window_s=3600.0, num_streams=2,
                             speedup=100.0)
        assert result.ok, result.render()

    def test_heap_and_vectorized_lanes_agree(self):
        g = wiki_graph()
        heap_engine = fresh_engine(g)
        heap_engine.run(g, window_s=3600.0, num_streams=2, speedup=100.0,
                        scheduler_cls=HeapEventScheduler, trace=True)
        vec_engine = fresh_engine(g)
        initial = vec_engine.router.assignment.copy()
        rep = vec_engine.run(g, window_s=3600.0, num_streams=2,
                             speedup=100.0, trace=True)
        result = check_run(engine=vec_engine, report=rep,
                           initial_assignment=initial,
                           heap_trace=heap_engine.last_event_trace)
        assert result.ok, result.render()
        assert "same-key-order" in result.checks
